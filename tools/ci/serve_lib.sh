# Shared helpers for CI jobs that boot the serving binaries as
# daemons (metrics-scrape, durability, fleet). Source this from the
# build directory:
#
#     source ../tools/ci/serve_lib.sh
#
# Every serving example runs until stdin EOF, so each daemon gets a
# dedicated stdin FIFO held open by a `sleep` writer: shutdown is an
# explicit EOF (stop_daemon), never an implicit close -- and a crash
# is an explicit SIGKILL (kill9_daemon), never a half-shutdown. The
# FIFO doubles as the daemon's command console: write lines to
# stdin_<NAME> to drive it (e.g. the gateway's drain/undrain).
#
#     boot_daemon NAME LOG CMD...   start CMD < stdin_NAME > LOG
#     wait_for_line LOG PATTERN     poll LOG until PATTERN appears
#     wait_http URL                 poll URL until curl -sf succeeds
#     stop_daemon NAME              EOF stdin, wait for a clean exit
#     kill9_daemon NAME             SIGKILL, like a real crash
#
# PIDs are tracked in DAEMON_<NAME> / HOLDER_<NAME>; NAME must be a
# valid shell identifier (use be_a, not be-a).

boot_daemon() {
    local name=$1 log=$2
    shift 2
    mkfifo "stdin_${name}"
    sleep 600 > "stdin_${name}" &
    eval "HOLDER_${name}=\$!"
    "$@" < "stdin_${name}" > "$log" 2>&1 &
    eval "DAEMON_${name}=\$!"
}

wait_for_line() {
    local log=$1 pattern=$2 tries=${3:-100}
    local i
    for i in $(seq 1 "$tries"); do
        grep -q "$pattern" "$log" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "timeout waiting for '$pattern' in $log" >&2
    cat "$log" >&2 || true
    return 1
}

wait_http() {
    local url=$1 tries=${2:-100}
    local i
    for i in $(seq 1 "$tries"); do
        curl -sf "$url" > /dev/null && return 0
        sleep 0.2
    done
    echo "timeout waiting for $url" >&2
    return 1
}

stop_daemon() {
    local name=$1 holder pid
    eval "holder=\$HOLDER_${name}"
    eval "pid=\$DAEMON_${name}"
    kill "$holder" 2>/dev/null || true
    wait "$pid"
}

kill9_daemon() {
    local name=$1 holder pid
    eval "holder=\$HOLDER_${name}"
    eval "pid=\$DAEMON_${name}"
    kill -9 "$pid"
    kill "$holder" 2>/dev/null || true
}
