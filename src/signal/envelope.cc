#include "signal/envelope.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace quma::signal {

const char *
toString(EnvelopeKind kind)
{
    switch (kind) {
      case EnvelopeKind::Zero:
        return "zero";
      case EnvelopeKind::Square:
        return "square";
      case EnvelopeKind::Gaussian:
        return "gaussian";
      case EnvelopeKind::GaussianDerivative:
        return "gaussian-derivative";
    }
    return "unknown";
}

Envelope::Envelope(EnvelopeKind kind, double duration_ns, double amplitude,
                   double sigma_ns)
    : _kind(kind), _durationNs(duration_ns), _amplitude(amplitude),
      _sigmaNs(sigma_ns)
{
    if (duration_ns <= 0)
        fatal("Envelope duration must be positive, got ", duration_ns);
    if ((kind == EnvelopeKind::Gaussian ||
         kind == EnvelopeKind::GaussianDerivative) && _sigmaNs <= 0) {
        _sigmaNs = duration_ns / 4.0;
    }
}

Envelope
Envelope::zero(double duration_ns)
{
    return Envelope(EnvelopeKind::Zero, duration_ns, 0.0);
}

Envelope
Envelope::square(double duration_ns, double amplitude)
{
    return Envelope(EnvelopeKind::Square, duration_ns, amplitude);
}

Envelope
Envelope::gaussian(double duration_ns, double amplitude, double sigma_ns)
{
    return Envelope(EnvelopeKind::Gaussian, duration_ns, amplitude,
                    sigma_ns);
}

Envelope
Envelope::gaussianDerivative(double duration_ns, double amplitude,
                             double sigma_ns)
{
    return Envelope(EnvelopeKind::GaussianDerivative, duration_ns, amplitude,
                    sigma_ns);
}

double
Envelope::value(double t_ns) const
{
    if (t_ns < 0 || t_ns > _durationNs)
        return 0.0;
    switch (_kind) {
      case EnvelopeKind::Zero:
        return 0.0;
      case EnvelopeKind::Square:
        return _amplitude;
      case EnvelopeKind::Gaussian: {
        double t0 = _durationNs / 2.0;
        double g = std::exp(-0.5 * (t_ns - t0) * (t_ns - t0) /
                            (_sigmaNs * _sigmaNs));
        double edge = std::exp(-0.5 * t0 * t0 / (_sigmaNs * _sigmaNs));
        // Shift so the truncated tails land at exactly zero, and
        // renormalise the peak back to the nominal amplitude.
        return _amplitude * (g - edge) / (1.0 - edge);
      }
      case EnvelopeKind::GaussianDerivative: {
        double t0 = _durationNs / 2.0;
        double u = (t_ns - t0) / _sigmaNs;
        return _amplitude * (-u) * std::exp(-0.5 * u * u);
      }
    }
    return 0.0;
}

std::vector<double>
Envelope::sample(double rate_hz) const
{
    if (rate_hz <= 0)
        fatal("Envelope sample rate must be positive, got ", rate_hz);
    double dt_ns = 1e9 / rate_hz;
    auto n = static_cast<std::size_t>(std::llround(_durationNs / dt_ns));
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = value((static_cast<double>(i) + 0.5) * dt_ns);
    return out;
}

double
Envelope::area() const
{
    switch (_kind) {
      case EnvelopeKind::Zero:
        return 0.0;
      case EnvelopeKind::Square:
        return _amplitude * _durationNs;
      case EnvelopeKind::Gaussian: {
        // Closed form of the truncated, edge-shifted Gaussian:
        //   integral (g - edge) / (1 - edge)
        // with integral g = sigma * sqrt(2 pi) * erf(t0 / (sigma sqrt 2))
        // over [0, 2 t0]. Callers (calibration gain) sit on machine
        // construction paths, so this avoids a 2000-step quadrature.
        double t0 = _durationNs / 2.0;
        double edge = std::exp(-0.5 * t0 * t0 / (_sigmaNs * _sigmaNs));
        double gauss = _sigmaNs * std::sqrt(2.0 * std::numbers::pi) *
                       std::erf(t0 / (_sigmaNs * std::sqrt(2.0)));
        return _amplitude * (gauss - _durationNs * edge) / (1.0 - edge);
      }
      case EnvelopeKind::GaussianDerivative:
        // Odd function about the centre: integrates to zero.
        return 0.0;
    }
    return 0.0;
}

} // namespace quma::signal
