/**
 * @file
 * Data converter models: the DACs that render stored envelope samples
 * and the ADCs that digitise readout traces (paper §7.1: 14-bit DACs
 * in the AWGs, 8-bit ADCs in the master controller).
 */

#ifndef QUMA_SIGNAL_CONVERTERS_HH
#define QUMA_SIGNAL_CONVERTERS_HH

#include <cstdint>
#include <vector>

#include "signal/waveform.hh"

namespace quma::signal {

/**
 * Mid-tread uniform quantiser with saturation over [-fullScale,
 * +fullScale]. Models both DAC and ADC amplitude quantisation.
 */
class Quantizer
{
  public:
    Quantizer(unsigned bits, double full_scale);

    unsigned bits() const { return _bits; }
    double fullScale() const { return _fullScale; }
    /** Quantisation step size. */
    double lsb() const { return _lsb; }

    /** Quantise one sample to the nearest code's value. */
    double quantize(double x) const;

    /** Integer code for one sample (two's-complement range). */
    std::int32_t code(double x) const;

    /** Reconstruct the analog value for an integer code. */
    double value(std::int32_t code) const;

    /** Quantise an entire waveform. */
    Waveform quantize(const Waveform &w) const;

  private:
    unsigned _bits;
    double _fullScale;
    double _lsb;
    std::int32_t _maxCode;
    std::int32_t _minCode;
};

/** Digital-to-analog converter: quantises stored samples on playback. */
class Dac
{
  public:
    Dac(unsigned bits, double full_scale, double rate_hz)
        : quant(bits, full_scale), _rateHz(rate_hz)
    {}

    double rateHz() const { return _rateHz; }
    const Quantizer &quantizer() const { return quant; }

    /** Render stored samples as an output waveform at the DAC rate. */
    Waveform render(const std::vector<double> &samples) const;

  private:
    Quantizer quant;
    double _rateHz;
};

/** Analog-to-digital converter: samples and quantises an input trace. */
class Adc
{
  public:
    Adc(unsigned bits, double full_scale, double rate_hz)
        : quant(bits, full_scale), _rateHz(rate_hz)
    {}

    double rateHz() const { return _rateHz; }
    const Quantizer &quantizer() const { return quant; }

    /**
     * Digitise an input waveform, resampling (zero-order hold) from
     * the input rate to the ADC rate and quantising.
     */
    Waveform digitize(const Waveform &input) const;

  private:
    Quantizer quant;
    double _rateHz;
};

} // namespace quma::signal

#endif // QUMA_SIGNAL_CONVERTERS_HH
