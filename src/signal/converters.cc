#include "signal/converters.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace quma::signal {

Quantizer::Quantizer(unsigned bits, double full_scale)
    : _bits(bits), _fullScale(full_scale)
{
    if (bits == 0 || bits > 31)
        fatal("Quantizer bits must be in [1, 31], got ", bits);
    if (full_scale <= 0)
        fatal("Quantizer full scale must be positive, got ", full_scale);
    _maxCode = (std::int32_t{1} << (bits - 1)) - 1;
    _minCode = -(std::int32_t{1} << (bits - 1));
    _lsb = _fullScale / static_cast<double>(_maxCode);
}

std::int32_t
Quantizer::code(double x) const
{
    double scaled = x / _lsb;
    auto c = static_cast<std::int64_t>(std::llround(scaled));
    c = std::clamp<std::int64_t>(c, _minCode, _maxCode);
    return static_cast<std::int32_t>(c);
}

double
Quantizer::value(std::int32_t c) const
{
    return static_cast<double>(c) * _lsb;
}

double
Quantizer::quantize(double x) const
{
    return value(code(x));
}

Waveform
Quantizer::quantize(const Waveform &w) const
{
    std::vector<double> out(w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        out[i] = quantize(w[i]);
    return Waveform(std::move(out), w.rateHz());
}

Waveform
Dac::render(const std::vector<double> &samples) const
{
    std::vector<double> out(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i)
        out[i] = quant.quantize(samples[i]);
    return Waveform(std::move(out), _rateHz);
}

Waveform
Adc::digitize(const Waveform &input) const
{
    if (input.empty())
        return Waveform({}, _rateHz);
    double ratio = input.rateHz() / _rateHz;
    auto n = static_cast<std::size_t>(
        std::floor(static_cast<double>(input.size()) / ratio));
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto src = static_cast<std::size_t>(
            std::floor(static_cast<double>(i) * ratio));
        src = std::min(src, input.size() - 1);
        out[i] = quant.quantize(input[src]);
    }
    return Waveform(std::move(out), _rateHz);
}

} // namespace quma::signal
