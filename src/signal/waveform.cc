#include "signal/waveform.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace quma::signal {

Waveform::Waveform(std::vector<double> samples, double rate_hz)
    : data(std::move(samples)), _rateHz(rate_hz)
{
    if (rate_hz <= 0)
        fatal("Waveform rate must be positive, got ", rate_hz);
}

Waveform
Waveform::zeros(std::size_t n, double rate_hz)
{
    return Waveform(std::vector<double>(n, 0.0), rate_hz);
}

double
Waveform::durationNs() const
{
    return static_cast<double>(data.size()) * 1e9 / _rateHz;
}

Waveform &
Waveform::operator+=(const Waveform &other)
{
    quma_assert(_rateHz == other._rateHz,
                "Waveform rate mismatch in operator+=");
    if (other.data.size() > data.size())
        data.resize(other.data.size(), 0.0);
    for (std::size_t i = 0; i < other.data.size(); ++i)
        data[i] += other.data[i];
    return *this;
}

Waveform &
Waveform::operator*=(double gain)
{
    for (double &s : data)
        s *= gain;
    return *this;
}

void
Waveform::append(const Waveform &other)
{
    quma_assert(_rateHz == other._rateHz,
                "Waveform rate mismatch in append");
    data.insert(data.end(), other.data.begin(), other.data.end());
}

double
Waveform::integral() const
{
    double dt_ns = 1e9 / _rateHz;
    double acc = 0;
    for (double s : data)
        acc += s;
    return acc * dt_ns;
}

double
Waveform::peak() const
{
    double p = 0;
    for (double s : data)
        p = std::max(p, std::abs(s));
    return p;
}

} // namespace quma::signal
