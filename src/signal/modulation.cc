#include "signal/modulation.hh"

#include <cmath>

#include "common/logging.hh"
#include "signal/phasor.hh"

namespace quma::signal {

std::pair<Waveform, Waveform>
ssbModulate(const Waveform &env, double ssb_hz, double t0_ns, double phi)
{
    std::vector<double> i(env.size()), q(env.size());
    double dt_ns = 1e9 / env.rateHz();
    Phasor ph = gridPhasor(ssb_hz, t0_ns, dt_ns, phi);
    for (std::size_t k = 0; k < env.size(); ++k) {
        i[k] = env[k] * ph.cosine();
        q[k] = env[k] * ph.sine();
        ph.advance();
    }
    return {Waveform(std::move(i), env.rateHz()),
            Waveform(std::move(q), env.rateHz())};
}

Waveform
iqUpconvert(const Waveform &i, const Waveform &q, double carrier_hz,
            double t0_ns)
{
    quma_assert(i.size() == q.size() && i.rateHz() == q.rateHz(),
                "iqUpconvert: I/Q shape mismatch");
    std::vector<double> rf(i.size());
    double dt_ns = 1e9 / i.rateHz();
    Phasor ph = gridPhasor(carrier_hz, t0_ns, dt_ns);
    for (std::size_t k = 0; k < i.size(); ++k) {
        rf[k] = i[k] * ph.cosine() - q[k] * ph.sine();
        ph.advance();
    }
    return Waveform(std::move(rf), i.rateHz());
}

std::vector<std::complex<double>>
complexBaseband(const Waveform &i, const Waveform &q)
{
    quma_assert(i.size() == q.size(), "complexBaseband: size mismatch");
    std::vector<std::complex<double>> out(i.size());
    for (std::size_t k = 0; k < i.size(); ++k)
        out[k] = {i[k], q[k]};
    return out;
}

std::complex<double>
demodulate(const Waveform &trace, double f_if_hz, double t0_ns)
{
    double dt_ns = 1e9 / trace.rateHz();
    Phasor ph = gridPhasor(f_if_hz, t0_ns, dt_ns);
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t k = 0; k < trace.size(); ++k) {
        acc += trace[k] * std::conj(ph.value());
        ph.advance();
    }
    if (!trace.empty())
        acc *= 2.0 / static_cast<double>(trace.size());
    return acc;
}

} // namespace quma::signal
