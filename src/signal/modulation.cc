#include "signal/modulation.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace quma::signal {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
} // namespace

std::pair<Waveform, Waveform>
ssbModulate(const Waveform &env, double ssb_hz, double t0_ns, double phi)
{
    std::vector<double> i(env.size()), q(env.size());
    double dt_ns = 1e9 / env.rateHz();
    for (std::size_t k = 0; k < env.size(); ++k) {
        double t_s = (t0_ns + (static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * ssb_hz * t_s + phi;
        i[k] = env[k] * std::cos(arg);
        q[k] = env[k] * std::sin(arg);
    }
    return {Waveform(std::move(i), env.rateHz()),
            Waveform(std::move(q), env.rateHz())};
}

Waveform
iqUpconvert(const Waveform &i, const Waveform &q, double carrier_hz,
            double t0_ns)
{
    quma_assert(i.size() == q.size() && i.rateHz() == q.rateHz(),
                "iqUpconvert: I/Q shape mismatch");
    std::vector<double> rf(i.size());
    double dt_ns = 1e9 / i.rateHz();
    for (std::size_t k = 0; k < i.size(); ++k) {
        double t_s = (t0_ns + (static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * carrier_hz * t_s;
        rf[k] = i[k] * std::cos(arg) - q[k] * std::sin(arg);
    }
    return Waveform(std::move(rf), i.rateHz());
}

std::vector<std::complex<double>>
complexBaseband(const Waveform &i, const Waveform &q)
{
    quma_assert(i.size() == q.size(), "complexBaseband: size mismatch");
    std::vector<std::complex<double>> out(i.size());
    for (std::size_t k = 0; k < i.size(); ++k)
        out[k] = {i[k], q[k]};
    return out;
}

std::complex<double>
demodulate(const Waveform &trace, double f_if_hz, double t0_ns)
{
    double dt_ns = 1e9 / trace.rateHz();
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t k = 0; k < trace.size(); ++k) {
        double t_s = (t0_ns + (static_cast<double>(k) + 0.5) * dt_ns) * 1e-9;
        double arg = kTwoPi * f_if_hz * t_s;
        acc += trace[k] * std::complex<double>(std::cos(arg),
                                               -std::sin(arg));
    }
    if (!trace.empty())
        acc *= 2.0 / static_cast<double>(trace.size());
    return acc;
}

} // namespace quma::signal
