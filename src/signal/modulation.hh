/**
 * @file
 * Single-sideband modulation, I/Q mixing and demodulation.
 *
 * The experimental chain (paper §2.2, §8): the AWG plays I and Q
 * envelope components including a fixed single-sideband (SSB)
 * modulation, an I/Q mixer combines them with a microwave carrier, and
 * the result drives the qubit at f_carrier + f_ssb. On the readout
 * side the transmitted feedline signal is demodulated against a local
 * oscillator to an intermediate frequency and digitised.
 */

#ifndef QUMA_SIGNAL_MODULATION_HH
#define QUMA_SIGNAL_MODULATION_HH

#include <complex>
#include <utility>

#include "signal/waveform.hh"

namespace quma::signal {

/**
 * Generate the I/Q pair for an envelope with SSB modulation:
 *
 *   I(t) = env(t) * cos(2*pi*f_ssb*t + phi)
 *   Q(t) = env(t) * sin(2*pi*f_ssb*t + phi)
 *
 * where t is measured from t0_ns. Keeping t referenced to a global
 * origin is what makes pulse timing set the rotation axis: a 5 ns
 * offset with f_ssb = 50 MHz shifts the axis by 90 degrees (paper
 * §4.2.3).
 *
 * @param env     baseband envelope samples
 * @param ssb_hz  single-sideband modulation frequency (may be negative)
 * @param t0_ns   global start time of the first sample
 * @param phi     extra phase (radians); 0 gives an x rotation, pi/2 a y
 */
std::pair<Waveform, Waveform> ssbModulate(const Waveform &env,
                                          double ssb_hz, double t0_ns,
                                          double phi);

/**
 * Up-convert an I/Q pair with a carrier:
 *
 *   rf(t) = I(t) * cos(2*pi*f_c*t) - Q(t) * sin(2*pi*f_c*t)
 *
 * With the SSB pair above this produces a single tone at f_c + f_ssb.
 * The output is rendered at the I waveform's sample rate, which for a
 * faithful RF rendering should exceed 2*(f_c + |f_ssb|); for
 * microwave-frequency carriers the physics model works instead with
 * the complex baseband form (see complexBaseband).
 */
Waveform iqUpconvert(const Waveform &i, const Waveform &q,
                     double carrier_hz, double t0_ns);

/**
 * Complex baseband representation I(t) + i*Q(t) of an I/Q pair; the
 * qubit-frame drive used by the physics model.
 */
std::vector<std::complex<double>> complexBaseband(const Waveform &i,
                                                  const Waveform &q);

/**
 * Digital homodyne demodulation of a real IF trace: multiply by
 * cos/sin at f_if and low-pass by full-window integration, returning
 * the complex amplitude (I + iQ) of the tone.
 */
std::complex<double> demodulate(const Waveform &trace, double f_if_hz,
                                double t0_ns = 0.0);

} // namespace quma::signal

#endif // QUMA_SIGNAL_MODULATION_HH
