/**
 * @file
 * A sampled waveform: a sequence of amplitude samples at a fixed rate.
 */

#ifndef QUMA_SIGNAL_WAVEFORM_HH
#define QUMA_SIGNAL_WAVEFORM_HH

#include <cstddef>
#include <vector>

namespace quma::signal {

/**
 * Uniformly sampled real-valued signal. Used for stored pulse envelopes
 * (AWG wave memory), rendered RF, and digitised readout traces.
 */
class Waveform
{
  public:
    Waveform() = default;
    Waveform(std::vector<double> samples, double rate_hz);

    static Waveform zeros(std::size_t n, double rate_hz);

    std::size_t size() const { return data.size(); }
    bool empty() const { return data.empty(); }
    double rateHz() const { return _rateHz; }
    double durationNs() const;

    double operator[](std::size_t i) const { return data[i]; }
    double &operator[](std::size_t i) { return data[i]; }

    const std::vector<double> &samples() const { return data; }
    std::vector<double> &samples() { return data; }

    /** Element-wise sum; the other waveform must have the same rate. */
    Waveform &operator+=(const Waveform &other);

    /** Scale all samples in place. */
    Waveform &operator*=(double gain);

    /** Append another waveform of the same rate. */
    void append(const Waveform &other);

    /** Sum of samples times the sample period (ns): discrete integral. */
    double integral() const;

    /** Largest absolute sample value. */
    double peak() const;

  private:
    std::vector<double> data;
    double _rateHz = 1.0e9;
};

} // namespace quma::signal

#endif // QUMA_SIGNAL_WAVEFORM_HH
