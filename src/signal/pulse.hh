/**
 * @file
 * Timed analog pulse records exchanged between the AWG models (which
 * produce them) and the transmon physics model (which consumes them).
 */

#ifndef QUMA_SIGNAL_PULSE_HH
#define QUMA_SIGNAL_PULSE_HH

#include "common/types.hh"
#include "signal/waveform.hh"

namespace quma::signal {

/**
 * A microwave drive pulse leaving an AWG's I/Q channel pair.
 *
 * The stored I/Q samples already include the single-sideband
 * modulation (the AWG plays exactly what is in its wave memory), so
 * together with the start time they fully determine the rotation the
 * qubit experiences.
 */
struct DrivePulse
{
    /** Global start time of the first sample in nanoseconds. */
    TimeNs t0Ns = 0;
    /** In-phase component at the AWG sample rate. */
    Waveform i;
    /** Quadrature component at the AWG sample rate. */
    Waveform q;
    /** SSB modulation frequency baked into the samples (Hz). */
    double ssbHz = 0.0;
    /** Carrier frequency of the upconverting source (Hz). */
    double carrierHz = 0.0;

    double durationNs() const { return i.durationNs(); }
};

/**
 * A square measurement pulse gating the readout carrier (produced by
 * the master controller's digital output unit via a pulse-modulated
 * microwave source).
 */
struct MeasurementPulse
{
    TimeNs t0Ns = 0;
    /** Pulse duration in nanoseconds (D cycles * 5 ns). */
    TimeNs durationNs = 0;
    /** Readout carrier frequency (Hz). */
    double carrierHz = 0.0;
};

} // namespace quma::signal

#endif // QUMA_SIGNAL_PULSE_HH
