#include "quma/execcontroller.hh"

#include <bit>

#include "common/logging.hh"

namespace quma::core {

ExecutionController::ExecutionController(ExecConfig config,
                                         QuantumPipeline &pipeline)
    : cfg(config), qp(pipeline), dataMem(config.dataMemoryWords, 0),
      rng(config.seed)
{
    if (cfg.issueWidth == 0)
        fatal("issue width must be at least 1");
}

void
ExecutionController::loadProgram(isa::Program program)
{
    prog = std::move(program);
    pcReg = 0;
    isHalted = prog.empty();
    isBlocked = false;
    readyCycle = 0;
}

void
ExecutionController::reset()
{
    pcReg = 0;
    isHalted = prog.empty();
    isBlocked = false;
    readyCycle = 0;
    execStats = ExecStats{};
    regs.reset();
    dataMem.assign(cfg.dataMemoryWords, 0);
    rng.reseed(cfg.seed);
}

std::int64_t
ExecutionController::readDataMemory(std::size_t word) const
{
    if (word >= dataMem.size())
        fatal("data memory read out of bounds: word ", word);
    return dataMem[word];
}

void
ExecutionController::writeDataMemory(std::size_t word, std::int64_t value)
{
    if (word >= dataMem.size())
        fatal("data memory write out of bounds: word ", word);
    dataMem[word] = value;
}

bool
ExecutionController::executeOne(Cycle now)
{
    using isa::Opcode;
    const isa::Instruction &inst = prog.at(pcReg);

    // Register-operand scoreboard: reading a register that awaits an
    // MD write-back stalls the pipeline.
    auto readable = [&](RegIndex r) { return !regs.pending(r); };

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        isHalted = true;
        break;
      case Opcode::Mov:
        regs.write(inst.rd, inst.imm);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        if (!readable(inst.rs) || !readable(inst.rt)) {
            ++execStats.registerStalls;
            return false;
        }
        std::int64_t a = regs.read(inst.rs);
        std::int64_t b = regs.read(inst.rt);
        std::int64_t r = 0;
        switch (inst.op) {
          case Opcode::Add:
            r = a + b;
            break;
          case Opcode::Sub:
            r = a - b;
            break;
          case Opcode::And:
            r = a & b;
            break;
          case Opcode::Or:
            r = a | b;
            break;
          default:
            r = a ^ b;
            break;
        }
        regs.write(inst.rd, r);
        break;
      }
      case Opcode::Addi:
      case Opcode::Shl:
      case Opcode::Shr: {
        if (!readable(inst.rs)) {
            ++execStats.registerStalls;
            return false;
        }
        std::int64_t a = regs.read(inst.rs);
        std::int64_t r = 0;
        if (inst.op == Opcode::Addi)
            r = a + inst.imm;
        else if (inst.op == Opcode::Shl)
            r = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) << (inst.imm & 63));
        else
            r = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) >> (inst.imm & 63));
        regs.write(inst.rd, r);
        break;
      }
      case Opcode::Load: {
        if (!readable(inst.rs)) {
            ++execStats.registerStalls;
            return false;
        }
        auto addr = static_cast<std::size_t>(regs.read(inst.rs) +
                                             inst.imm);
        regs.write(inst.rd, readDataMemory(addr));
        break;
      }
      case Opcode::Store: {
        if (!readable(inst.rs) || !readable(inst.rt)) {
            ++execStats.registerStalls;
            return false;
        }
        auto addr = static_cast<std::size_t>(regs.read(inst.rs) +
                                             inst.imm);
        writeDataMemory(addr, regs.read(inst.rt));
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge: {
        if (!readable(inst.rs) || !readable(inst.rt)) {
            ++execStats.registerStalls;
            return false;
        }
        std::int64_t a = regs.read(inst.rs);
        std::int64_t b = regs.read(inst.rt);
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq:
            taken = a == b;
            break;
          case Opcode::Bne:
            taken = a != b;
            break;
          case Opcode::Blt:
            taken = a < b;
            break;
          default:
            taken = a >= b;
            break;
        }
        if (taken) {
            pcReg = static_cast<std::size_t>(inst.imm);
            ++execStats.classicalExecuted;
            return true;
        }
        break;
      }
      case Opcode::Br:
        pcReg = static_cast<std::size_t>(inst.imm);
        ++execStats.classicalExecuted;
        return true;

      // --- quantum instructions: resolve registers and dispatch ---
      case Opcode::QWaitReg: {
        if (!readable(inst.rs)) {
            ++execStats.registerStalls;
            return false;
        }
        std::int64_t cycles = regs.read(inst.rs);
        if (cycles <= 0)
            fatal("QNopReg r", static_cast<unsigned>(inst.rs),
                  " read a non-positive wait of ", cycles, " cycles");
        if (!qp.tryDispatch(isa::Instruction::wait(cycles))) {
            ++execStats.dispatchRetries;
            return false;
        }
        ++execStats.quantumDispatched;
        ++pcReg;
        return true;
      }
      case Opcode::QWait:
      case Opcode::Pulse:
      case Opcode::Mpg:
      case Opcode::Apply:
      case Opcode::Cnot:
        if (!qp.tryDispatch(inst)) {
            ++execStats.dispatchRetries;
            return false;
        }
        ++execStats.quantumDispatched;
        ++pcReg;
        return true;
      case Opcode::Md:
      case Opcode::MeasureQ: {
        if (!qp.tryDispatch(inst)) {
            ++execStats.dispatchRetries;
            return false;
        }
        // The destination register is written back asynchronously by
        // the MDU(s): scoreboard it with one write per qubit.
        auto writes = static_cast<unsigned>(
            std::popcount(static_cast<std::uint32_t>(inst.qmask)));
        regs.markPending(inst.rd, writes);
        ++execStats.quantumDispatched;
        ++pcReg;
        return true;
      }
      case Opcode::NumOpcodes:
        panic("invalid opcode reached execution");
    }

    if (!isHalted)
        ++pcReg;
    ++execStats.classicalExecuted;
    (void)now;
    return true;
}

void
ExecutionController::stepAt(Cycle now)
{
    isBlocked = false;
    if (isHalted || now < readyCycle)
        return;
    if (pcReg >= prog.size()) {
        isHalted = true;
        return;
    }
    bool progressed = false;
    for (unsigned i = 0; i < cfg.issueWidth; ++i) {
        if (isHalted || pcReg >= prog.size())
            break;
        if (!executeOne(now)) {
            isBlocked = true;
            break;
        }
        progressed = true;
    }
    if (progressed) {
        Cycle stall = 0;
        if (cfg.stallInjection && rng.bernoulli(cfg.stallProbability)) {
            stall = rng.uniformInt(1, cfg.maxStallCycles);
            execStats.stallCyclesInjected += stall;
        }
        readyCycle = now + 1 + stall;
    }
    if (pcReg >= prog.size())
        isHalted = true;
}

std::optional<Cycle>
ExecutionController::nextEventCycle() const
{
    if (isHalted)
        return std::nullopt;
    if (isBlocked)
        return std::nullopt; // re-polled by the machine after events
    return readyCycle;
}

} // namespace quma::core
