/**
 * @file
 * Host-PC communication model (paper §7.1): the master controller
 * talks to the PC over USB (communication and data collection run at
 * 50 MHz in the implemented control box). This model accounts for
 * the configuration traffic of an experiment -- binary program
 * upload, lookup-table upload, microprogram upload and result
 * readback -- so the configuration-time claims of §4.2.2 can be
 * quantified against the conventional waveform flow.
 */

#ifndef QUMA_QUMA_HOSTLINK_HH
#define QUMA_QUMA_HOSTLINK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace quma::core {

class QumaMachine;

/** One recorded transfer over the host link. */
struct Transfer
{
    std::string what;
    std::size_t bytes = 0;
    bool toDevice = true;
};

/** Accumulated session traffic. */
struct LinkStats
{
    std::size_t uploads = 0;
    std::size_t downloads = 0;
    std::size_t bytesUp = 0;
    std::size_t bytesDown = 0;
    double secondsUp = 0.0;
    double secondsDown = 0.0;
};

/**
 * Byte accounting of a modeled host link: counts transfers in each
 * direction and converts them to transfer time at the link rate.
 * HostLink meters the paper's configuration traffic through one;
 * the net serving layer (net::QumaServer / net::QumaClient) meters
 * its wire frames through another, so remote-experiment request
 * traffic is quantified in the same units as §7.1's USB budget.
 * Not thread-safe: callers serialise access (the server records
 * under its stats lock).
 */
class LinkMeter
{
  public:
    /** @param bytes_per_second link throughput (USB-ish 30 MB/s) */
    explicit LinkMeter(double bytes_per_second = 30.0e6);

    /** Account one transfer of `bytes` toward (true) or from the
     *  device end of the link. */
    void record(std::size_t bytes, bool to_device);

    LinkStats stats() const;

  private:
    double rate;
    LinkStats acc;
};

/**
 * A host session: wraps a machine and meters every configuration
 * action the way the experimental flow does (program binaries are
 * 64-bit words; LUT samples are 12-bit; results are 64-bit).
 */
class HostLink
{
  public:
    /**
     * @param machine the device being configured
     * @param bytes_per_second link throughput (USB-ish 30 MB/s)
     */
    explicit HostLink(QumaMachine &machine,
                      double bytes_per_second = 30.0e6);

    /** Serialise, meter and load a program binary. */
    void uploadProgram(const isa::Program &program);

    /** Meter and perform the standard calibration upload. */
    void uploadCalibration();

    /** Meter the retrieval of the data collection unit's averages. */
    std::vector<double> retrieveAverages();

    const std::vector<Transfer> &transfers() const { return log; }
    LinkStats stats() const;

  private:
    void record(const std::string &what, std::size_t bytes,
                bool to_device);

    QumaMachine &device;
    double rate;
    std::vector<Transfer> log;
};

} // namespace quma::core

#endif // QUMA_QUMA_HOSTLINK_HH
