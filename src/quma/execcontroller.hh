/**
 * @file
 * The execution controller (paper §5.3.2, §7.2).
 *
 * Runs the auxiliary classical instructions of the QIS in a simple
 * pipeline (register update, program flow control) and streams
 * quantum instructions to the physical execution layer after reading
 * register values (e.g. QNopReg r15 becomes Wait 40000 with whatever
 * r15 holds at that moment).
 *
 * Instruction timing here is deliberately NON-deterministic: an
 * optional stall injector adds random extra cycles per instruction,
 * modelling the cache misses / communication jitter of a real host.
 * The queue-based timing control downstream guarantees the quantum
 * output timing is unaffected, which the property tests verify.
 */

#ifndef QUMA_QUMA_EXECCONTROLLER_HH
#define QUMA_QUMA_EXECCONTROLLER_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "isa/program.hh"
#include "quma/qmb.hh"
#include "quma/registerfile.hh"

namespace quma::core {

struct ExecConfig
{
    /** Instructions issued per cycle (paper §6 proposes VLIW > 1). */
    unsigned issueWidth = 1;
    /** Enable random per-instruction stall injection. */
    bool stallInjection = false;
    /** Probability that an instruction incurs an extra stall. */
    double stallProbability = 0.15;
    /** Maximum injected stall in cycles. */
    unsigned maxStallCycles = 4;
    std::uint64_t seed = 1;
    /** Data memory size in 64-bit words. */
    std::size_t dataMemoryWords = 4096;
};

struct ExecStats
{
    std::size_t classicalExecuted = 0;
    std::size_t quantumDispatched = 0;
    std::size_t stallCyclesInjected = 0;
    std::size_t dispatchRetries = 0;
    std::size_t registerStalls = 0;
};

class ExecutionController
{
  public:
    ExecutionController(ExecConfig config, QuantumPipeline &pipeline);

    void loadProgram(isa::Program program);
    const isa::Program &program() const { return prog; }

    RegisterFile &registers() { return regs; }
    const RegisterFile &registers() const { return regs; }

    std::int64_t readDataMemory(std::size_t word) const;
    void writeDataMemory(std::size_t word, std::int64_t value);

    bool halted() const { return isHalted; }
    std::size_t pc() const { return pcReg; }

    /** Execute up to issueWidth instructions if ready at `now`. */
    void stepAt(Cycle now);

    /**
     * Cycle at which the controller next wants to run; nullopt when
     * halted or blocked with no self-scheduled wake-up (the machine
     * re-polls after every other event).
     */
    std::optional<Cycle> nextEventCycle() const;

    bool blocked() const { return isBlocked; }
    const ExecStats &stats() const { return execStats; }

    /**
     * Return to the freshly-constructed state: registers and data
     * memory zeroed, pc rewound, stats cleared, and the stall RNG
     * rewound to the configured seed. The loaded program is kept.
     */
    void reset();

    /** Replace the stall-injection seed used by the next reset(). */
    void reseed(std::uint64_t seed) { cfg.seed = seed; }

  private:
    /** Execute one instruction; false when blocked (pc unchanged). */
    bool executeOne(Cycle now);

    ExecConfig cfg;
    QuantumPipeline &qp;
    isa::Program prog;
    RegisterFile regs;
    std::vector<std::int64_t> dataMem;
    Rng rng;

    std::size_t pcReg = 0;
    bool isHalted = false;
    bool isBlocked = false;
    Cycle readyCycle = 0;
    ExecStats execStats;
};

} // namespace quma::core

#endif // QUMA_QUMA_EXECCONTROLLER_HH
