#include "quma/machine.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/nametable.hh"

namespace quma::core {

QumaMachine::QumaMachine(MachineConfig config) : cfg(std::move(config))
{
    if (cfg.qubits.empty())
        fatal("machine needs at least one qubit");
    if (cfg.numAwgs == 0)
        fatal("machine needs at least one AWG");

    unsigned nq = static_cast<unsigned>(cfg.qubits.size());

    // Routing: drive AWG per qubit (round-robin default), one MDU
    // per qubit.
    routing.driveAwg = cfg.driveAwg;
    if (routing.driveAwg.empty()) {
        for (unsigned q = 0; q < nq; ++q)
            routing.driveAwg.push_back(q % cfg.numAwgs);
    }
    if (routing.driveAwg.size() != nq)
        fatal("driveAwg must have one entry per qubit");
    for (unsigned q = 0; q < nq; ++q)
        if (routing.driveAwg[q] >= cfg.numAwgs)
            fatal("driveAwg[", q, "] out of range");
    for (unsigned q = 0; q < nq; ++q)
        routing.mdu.push_back(q);

    recorder.setEnabled(cfg.traceEnabled);

    // Timing control unit with one pulse queue per AWG and one MD
    // queue per qubit.
    timing::TimingConfig tc = cfg.timing;
    tc.numPulseQueues = cfg.numAwgs;
    tc.numMdQueues = nq;
    tcu = std::make_unique<timing::TimingController>(tc);

    Cycle gate_wait = cfg.gateWaitCycles != 0
                          ? cfg.gateWaitCycles
                          : nsToCycles(static_cast<TimeNs>(cfg.pulseNs));
    auto store = microcode::QControlStore::standard(gate_wait,
                                                    cfg.msmtCycles);
    qp = std::make_unique<QuantumPipeline>(std::move(store), routing,
                                           *tcu, recorder, cfg.qmbDepth,
                                           cfg.qmbDrainRate);
    exec = std::make_unique<ExecutionController>(cfg.exec, *qp);
    digOut = std::make_unique<measure::DigitalOutputUnit>(
        std::max(8u, nq), cfg.msmtCarrierHz);

    // One AWG board per configured unit. Each board's carrier sits
    // ssb away from the (first) served qubit's transition so the
    // calibrated SSB modulation lands on resonance.
    auto seqTable = microcode::UopSequenceTable::standard();
    for (unsigned a = 0; a < cfg.numAwgs; ++a) {
        awg::AwgConfig ac;
        ac.servedQubits = 0;
        double carrier = 0.0;
        for (unsigned q = 0; q < nq; ++q) {
            if (routing.driveAwg[q] == a) {
                ac.servedQubits |= QubitMask{1} << q;
                if (carrier == 0.0)
                    carrier = cfg.qubits[q].freqHz - cfg.ssbHz +
                              cfg.carrierDetuningHz;
            }
        }
        if (carrier == 0.0)
            carrier = cfg.qubits[0].freqHz - cfg.ssbHz;
        ac.uopDelayCycles = cfg.uopDelayCycles;
        ac.ctpg.delayCycles = cfg.ctpgDelayCycles;
        ac.ctpg.carrierHz = carrier;
        ac.ctpg.ssbHz = cfg.ssbHz;
        awgs.push_back(
            std::make_unique<awg::AwgModule>(ac, seqTable));
    }

    chipSim = std::make_unique<qsim::TransmonChip>(cfg.qubits,
                                                   cfg.chipSeed);
    if (numEventSources() > timing::EventWheel::kMaxSources)
        fatal("machine has ", numEventSources(),
              " event sources; the event wheel supports at most ",
              timing::EventWheel::kMaxSources);
    wheel = timing::EventWheel(numEventSources());
    mdWriteMode.assign(nq, {true, 0});
    msmtDelay = cfg.msmtPathDelayCycles >= 0
                    ? static_cast<Cycle>(cfg.msmtPathDelayCycles)
                    : cfg.uopDelayCycles + cfg.ctpgDelayCycles;

    // MDUs are calibrated in uploadStandardCalibration(); create
    // placeholders lazily there (they need the readout window).
    wire();
}

void
QumaMachine::wire()
{
    tcu->setPulseSink([this](unsigned queue, Cycle td,
                             const timing::PulseEvent &ev) {
        onPulseFired(queue, td, ev);
    });
    tcu->setMpgSink([this](Cycle td, const timing::MpgEvent &ev) {
        onMpgFired(td, ev);
    });
    tcu->setMdSink([this](unsigned queue, Cycle td,
                          const timing::MdEvent &ev) {
        onMdFired(queue, td, ev);
    });
    tcu->setFireObserver([this](Cycle td, TimingLabel label) {
        recorder.recordLabelFire({td, label});
    });
    for (unsigned a = 0; a < awgs.size(); ++a) {
        awgs[a]->setPulseSink([this, a](const signal::DrivePulse &pulse,
                                        Codeword cw, QubitMask mask) {
            onDrivePulse(a, pulse, cw, mask);
        });
        awgs[a]->setTriggerObserver(
            [this, a](Codeword cw, Cycle td, QubitMask mask) {
                recorder.recordCodeword({td, a, cw, mask});
            });
    }
    digOut->setPulseSink([this](unsigned qubit,
                                const signal::MeasurementPulse &pulse) {
        onMeasurementPulse(qubit, pulse);
    });
}

void
QumaMachine::uploadStandardCalibration(const LutProvider &provider)
{
    unsigned nq = static_cast<unsigned>(cfg.qubits.size());

    for (unsigned a = 0; a < awgs.size(); ++a) {
        // Calibrate against the first qubit the board serves.
        double gain = cfg.qubits[0].rabiRadPerAmpNs;
        for (unsigned q = 0; q < nq; ++q) {
            if (routing.driveAwg[q] == a) {
                gain = cfg.qubits[q].rabiRadPerAmpNs;
                break;
            }
        }
        awg::CalibrationParams cp;
        cp.pulseNs = cfg.pulseNs;
        cp.ssbHz = cfg.ssbHz;
        cp.rabiRadPerAmpNs = gain;
        cp.amplitudeError = cfg.amplitudeError;
        cp.msmtPulseNs =
            static_cast<double>(cyclesToNs(cfg.msmtCycles));
        if (provider)
            awg::uploadLut(awgs[a]->waveMemory(), *provider(cp));
        else
            awg::buildStandardLut(awgs[a]->waveMemory(), cp);
    }

    mdus.clear();
    for (unsigned q = 0; q < nq; ++q) {
        auto cal = measure::calibrateMdu(cfg.qubits[q].readout,
                                         cyclesToNs(cfg.msmtCycles));
        auto unit = std::make_unique<measure::Mdu>(
            std::move(cal), cfg.mduLatencyCycles);
        unit->setResultSink([this, q](const measure::MduResult &r) {
            onMduResult(q, r);
        });
        mdus.push_back(std::move(unit));
    }
    calibrated = true;
}

void
QumaMachine::loadProgram(isa::Program program)
{
    exec->loadProgram(std::move(program));
    // Re-arm the deterministic domain and re-initialise the chip so
    // a machine can run successive programs.
    tcu->reset();
    qp->reset();
    chipSim->newRound();
    recorder.clear();
    ran = false;
}

void
QumaMachine::loadAssembly(const std::string &source)
{
    isa::Assembler assembler;
    loadProgram(assembler.assemble(source));
}

void
QumaMachine::configureDataCollection(std::size_t k)
{
    collector.configure(k);
}

awg::AwgModule &
QumaMachine::awgModule(unsigned i)
{
    quma_assert(i < awgs.size(), "AWG index out of range");
    return *awgs[i];
}

measure::Mdu &
QumaMachine::mdu(unsigned qubit)
{
    quma_assert(qubit < mdus.size(),
                "MDU index out of range (calibration not uploaded?)");
    return *mdus[qubit];
}

const timing::TimingViolations &
QumaMachine::violations() const
{
    return tcu->violations();
}

MachineStats
QumaMachine::stats() const
{
    MachineStats s;
    s.queues = tcu->queueStats();
    s.exec = exec->stats();
    s.microInstsIssued = qp->microInstsIssued();
    s.wheel = wheel.stats();
    return s;
}

void
QumaMachine::reset()
{
    tcu->reset();
    qp->reset();
    for (auto &a : awgs)
        a->reset();
    digOut->reset();
    for (auto &m : mdus)
        m->reset();
    chipSim->reseed(cfg.chipSeed);
    exec->reset();
    // Back to UNCONFIGURED, exactly like a fresh machine: a stale bin
    // count would survive into the next run's auto-configuration.
    collector.reset();
    recorder.clear();
    mdWriteMode.assign(cfg.qubits.size(), {true, 0});
    wheel.clear();
    wheel.clearStats();
    ran = false;
}

void
QumaMachine::reset(std::uint64_t chip_seed, std::uint64_t exec_seed)
{
    cfg.chipSeed = chip_seed;
    cfg.exec.seed = exec_seed;
    exec->reseed(exec_seed);
    reset();
}

void
QumaMachine::onPulseFired(unsigned queue, Cycle td,
                          const timing::PulseEvent &ev)
{
    recorder.recordUopFire({td, queue, ev.uop, ev.mask});
    wokenMask |= std::uint64_t{1} << srcAwg(queue);
    awgs[queue]->fireUop(ev.uop, td, ev.mask);
}

void
QumaMachine::onMpgFired(Cycle td, const timing::MpgEvent &ev)
{
    recorder.recordMpgFire({td, ev.mask, ev.durationCycles});
    // The measurement path's calibrated latency aligns the readout
    // window with the gate pulses at the chip; delivery is scheduled
    // so it stays ordered with the other deterministic events.
    wokenMask |= std::uint64_t{1} << srcDigOut();
    digOut->fire(ev.mask, td + msmtDelay, ev.durationCycles);
}

void
QumaMachine::onMdFired(unsigned queue, Cycle td,
                       const timing::MdEvent &ev)
{
    quma_assert(queue < mdus.size(), "MD fired for unknown MDU");
    // Remember the write-back mode so the result sink can honour it.
    auto qubit = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint32_t>(ev.mask)));
    mdWriteMode[queue] = {ev.overwrite, ev.bitIndex};
    wokenMask |= std::uint64_t{1} << srcMdu(queue);
    mdus[queue]->discriminate(td, ev.destReg, QubitMask{1} << qubit);
}

void
QumaMachine::onDrivePulse(unsigned awg_index,
                          const signal::DrivePulse &pulse, Codeword cw,
                          QubitMask mask)
{
    recorder.recordPulse({pulse.t0Ns, awg_index, cw, mask,
                          pulse.durationNs()});
    if (cw == isa::uops::Msmt)
        return; // measurement pulses travel via the digital outputs
    if (cw == isa::uops::Cz) {
        // Flux pulse: a CZ between the two addressed qubits.
        std::vector<unsigned> qs;
        for (unsigned q = 0; q < 32; ++q)
            if (mask & (QubitMask{1} << q))
                qs.push_back(q);
        if (qs.size() != 2)
            fatal("CZ pulse must address exactly two qubits, got ",
                  qs.size());
        chipSim->applyCz(qs[0], qs[1], pulse.t0Ns,
                         cfg.czDurationNs);
        return;
    }
    for (unsigned q = 0; q < 32; ++q)
        if (mask & (QubitMask{1} << q))
            chipSim->applyDrive(q, pulse);
}

void
QumaMachine::onMeasurementPulse(unsigned qubit,
                                const signal::MeasurementPulse &pulse)
{
    quma_assert(qubit < mdus.size(), "measurement of unknown qubit");
    Cycle td = nsToCycles(pulse.t0Ns);
    Cycle dur = nsToCycles(pulse.durationNs);
    auto trace = chipSim->measure(qubit, pulse.t0Ns, pulse.durationNs);
    recorder.recordMeasurement({td, qubit, dur, trace.initialOne});
    wokenMask |= std::uint64_t{1} << srcMdu(qubit);
    mdus[qubit]->submitTrace(std::move(trace.trace), td, dur);
}

void
QumaMachine::onMduResult(unsigned qubit, const measure::MduResult &r)
{
    auto [overwrite, bit] = mdWriteMode[qubit];
    exec->registers().writeBack(r.destReg, r.bit ? 1 : 0, overwrite,
                                bit);
    collector.addSample(r.s);
    collector.addBit(r.bit);
    recorder.recordMduResult({r.completionCycle, qubit, r.s, r.bit,
                              r.destReg});
}

void
QumaMachine::reportWedge(Cycle now) const
{
    fatal("machine wedged at cycle ", now, ": execution controller ",
          exec->halted() ? "halted" : "blocked", ", QMB backlog ",
          qp->backlog(), ", timing violations: late points ",
          tcu->violations().latePoints, ", stale events ",
          tcu->violations().staleEvents,
          " (a stale MD drops its register write-back)");
}

RunResult
QumaMachine::run(Cycle max_cycles)
{
    if (!calibrated)
        uploadStandardCalibration();
    if (ran)
        fatal("QumaMachine::run is one-shot; reload a program first");
    ran = true;
    if (collector.numBins() == 0)
        collector.configure(1);

    const unsigned nAwg = static_cast<unsigned>(awgs.size());
    const unsigned nMdu = static_cast<unsigned>(mdus.size());
    const unsigned sDig = srcDigOut();
    const unsigned sMdu0 = srcMdu(0);
    const unsigned sQp = srcQp();
    const unsigned sExec = srcExec();

    // Every component registers its next due cycle in the event
    // wheel after being touched; the loop pops the global minimum in
    // O(1) amortized instead of re-polling every nextEventCycle()
    // per step. A source is touched (and must re-register) when it
    // was due at the popped cycle or a cross-component sink woke it
    // this cycle (wokenMask); the TCU, pipeline and execution
    // controller are touched every visited cycle -- re-polling is
    // what unblocks a backpressured producer, and the TCU's lateness
    // accounting needs to observe every visited cycle.
    wheel.clear();
    wheel.clearStats();
    auto reschedule = [this](unsigned src, std::optional<Cycle> c,
                             Cycle now) {
        if (c)
            wheel.schedule(src, std::max(*c, now + 1));
        else
            wheel.cancel(src);
    };

    tcu->start(0);
    Cycle now = 0;
    // Cycle 0 considers every source, exactly like a full poll.
    std::uint64_t due = ~std::uint64_t{0};
    for (;;) {
        wokenMask = 0;
        // Deterministic domain first: fire everything due now. The
        // AWGs run before the digital outputs so gate pulses due at
        // the same cycle reach the chip before a measurement window
        // opening that cycle. Sinks fired along the way extend
        // wokenMask, and every wake target sits later in this fixed
        // order than its waker, so one pass suffices.
        tcu->advanceTo(now);
        for (unsigned a = 0; a < nAwg; ++a)
            if ((due | wokenMask) & (std::uint64_t{1} << (1 + a)))
                awgs[a]->advanceTo(now);
        if ((due | wokenMask) & (std::uint64_t{1} << sDig))
            digOut->advanceTo(now);
        for (unsigned q = 0; q < nMdu; ++q)
            if ((due | wokenMask) & (std::uint64_t{1} << (sMdu0 + q)))
                mdus[q]->advanceTo(now);

        // Non-deterministic domain: drain and execute.
        qp->drainAt(now);
        exec->stepAt(now);

        // Re-register every touched source. The TCU goes last-ish in
        // state terms: drainAt may have pushed new time points.
        const std::uint64_t touched = due | wokenMask;
        reschedule(kSrcTcu, tcu->nextDueCycle(), now);
        for (unsigned a = 0; a < nAwg; ++a)
            if (touched & (std::uint64_t{1} << (1 + a)))
                reschedule(1 + a, awgs[a]->nextEventCycle(), now);
        if (touched & (std::uint64_t{1} << sDig))
            reschedule(sDig, digOut->nextEventCycle(), now);
        for (unsigned q = 0; q < nMdu; ++q)
            if (touched & (std::uint64_t{1} << (sMdu0 + q)))
                reschedule(sMdu0 + q, mdus[q]->nextEventCycle(), now);
        reschedule(sQp, qp->nextEventCycle(), now);
        reschedule(sExec, exec->nextEventCycle(), now);

        // A blocked producer is woken by whatever event frees it; if
        // nothing is scheduled at all, decide between done and wedged.
        auto popped = wheel.popEarliest();
        if (!popped) {
            bool done = exec->halted() && qp->empty() &&
                        tcu->allQueuesEmpty();
            if (done)
                break;
            reportWedge(now);
        }
        now = popped->cycle;
        due = popped->sources;
        if (now > max_cycles)
            break;
    }

    RunResult result;
    result.cyclesRun = now;
    result.halted = exec->halted();
    result.violations = tcu->violations();
    return result;
}

} // namespace quma::core
