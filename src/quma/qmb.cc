#include "quma/qmb.hh"

#include <bit>

#include "common/logging.hh"
#include "isa/nametable.hh"

namespace quma::core {

unsigned
QubitRouting::awgFor(unsigned qubit) const
{
    quma_assert(qubit < driveAwg.size(), "qubit has no drive AWG");
    return driveAwg[qubit];
}

unsigned
QubitRouting::mduFor(unsigned qubit) const
{
    quma_assert(qubit < mdu.size(), "qubit has no MDU");
    return mdu[qubit];
}

QuantumPipeline::QuantumPipeline(microcode::QControlStore store,
                                 QubitRouting routing,
                                 timing::TimingController &timing,
                                 TraceRecorder &trace,
                                 std::size_t buffer_depth,
                                 unsigned drain_rate)
    : cs(std::move(store)), route(std::move(routing)), tcu(timing),
      recorder(trace), depth(buffer_depth), drainRate(drain_rate)
{
    if (buffer_depth == 0 || drain_rate == 0)
        fatal("QuantumPipeline needs positive buffer depth and drain "
              "rate");
}

bool
QuantumPipeline::tryDispatch(const isa::Instruction &inst)
{
    std::vector<isa::Instruction> expanded;
    switch (inst.op) {
      case isa::Opcode::Apply:
        expanded = cs.expandApply(inst.gate, inst.qmask);
        break;
      case isa::Opcode::MeasureQ:
        expanded = cs.expandMeasure(inst.qmask, inst.rd);
        break;
      case isa::Opcode::Cnot:
        expanded = cs.expandCnot(inst.rd, inst.rs);
        break;
      case isa::Opcode::QWait:
      case isa::Opcode::Pulse:
      case isa::Opcode::Mpg:
      case isa::Opcode::Md:
        expanded = {inst};
        break;
      case isa::Opcode::QWaitReg:
        panic("QWaitReg must be resolved to Wait before dispatch");
      default:
        panic("tryDispatch called with classical instruction '",
              isa::toString(inst), "'");
    }
    if (buffer.size() + expanded.size() > depth)
        return false;
    for (auto &mi : expanded)
        buffer.push_back(std::move(mi));
    return true;
}

bool
QuantumPipeline::pushOne(const isa::Instruction &inst)
{
    switch (inst.op) {
      case isa::Opcode::QWait: {
        // No pre-check: a full queue rejects the push itself, which
        // also feeds the saturation counters (pushFailed).
        TimingLabel next = label + 1;
        if (!tcu.pushTimePoint(static_cast<Cycle>(inst.imm), next))
            return false;
        label = next;
        return true;
      }
      case isa::Opcode::Pulse: {
        // All-or-nothing: verify capacity across the addressed
        // queues first. One event is pushed per (AWG, slot).
        std::vector<std::pair<unsigned, timing::PulseEvent>> pushes;
        for (const auto &slot : inst.slots) {
            // A CZ micro-operation is one flux pulse spanning both
            // qubits: route it whole (via the first qubit's unit)
            // instead of splitting it per drive AWG.
            if (slot.uop == isa::uops::Cz) {
                unsigned first = 0;
                while (first < 32 &&
                       !(slot.mask & (QubitMask{1} << first)))
                    ++first;
                quma_assert(first < 32, "CZ with empty mask");
                pushes.emplace_back(
                    route.awgFor(first),
                    timing::PulseEvent{label, slot.mask, slot.uop});
                continue;
            }
            // Group the slot's qubits by drive AWG.
            std::vector<QubitMask> byAwg(route.driveAwg.size(), 0);
            for (unsigned q = 0; q < 32; ++q) {
                if (!(slot.mask & (QubitMask{1} << q)))
                    continue;
                unsigned awg = route.awgFor(q);
                if (awg >= byAwg.size())
                    byAwg.resize(awg + 1, 0);
                byAwg[awg] |= QubitMask{1} << q;
            }
            for (unsigned awg = 0;
                 awg < static_cast<unsigned>(byAwg.size()); ++awg) {
                if (byAwg[awg] == 0)
                    continue;
                pushes.emplace_back(
                    awg, timing::PulseEvent{label, byAwg[awg],
                                            slot.uop});
            }
        }
        for (const auto &[awg, ev] : pushes)
            if (tcu.pulseQueueFull(awg))
                return false;
        for (const auto &[awg, ev] : pushes)
            tcu.pushPulse(awg, ev);
        return true;
      }
      case isa::Opcode::Mpg: {
        if (tcu.mpgQueueFull())
            return false;
        return tcu.pushMpg(timing::MpgEvent{
            label, inst.qmask, static_cast<Cycle>(inst.imm)});
      }
      case isa::Opcode::Md: {
        bool single =
            std::popcount(static_cast<std::uint32_t>(inst.qmask)) == 1;
        std::vector<std::pair<unsigned, timing::MdEvent>> pushes;
        for (unsigned q = 0; q < 32; ++q) {
            if (!(inst.qmask & (QubitMask{1} << q)))
                continue;
            pushes.emplace_back(
                route.mduFor(q),
                timing::MdEvent{label, QubitMask{1} << q, inst.rd,
                                single, q});
        }
        if (pushes.empty())
            fatal("MD with empty qubit mask");
        for (const auto &[mdu, ev] : pushes)
            if (tcu.mdQueueFull(mdu))
                return false;
        for (const auto &[mdu, ev] : pushes)
            tcu.pushMd(mdu, ev);
        return true;
      }
      default:
        panic("QMB holds a non-QuMIS instruction '",
              isa::toString(inst), "'");
    }
}

void
QuantumPipeline::drainAt(Cycle now)
{
    if (drainedThisCycle && lastDrainCycle == now)
        return;
    lastDrainCycle = now;
    drainedThisCycle = true;
    blockedOnQueue = false;
    for (unsigned i = 0; i < drainRate && !buffer.empty(); ++i) {
        const isa::Instruction &front = buffer.front();
        if (!pushOne(front)) {
            // Backpressure: park until a fire frees queue space (the
            // machine re-polls after every event).
            blockedOnQueue = true;
            break;
        }
        recorder.recordMicroInst({now, front});
        buffer.pop_front();
        ++issued;
    }
}

std::optional<Cycle>
QuantumPipeline::nextEventCycle() const
{
    if (buffer.empty() || blockedOnQueue)
        return std::nullopt;
    return lastDrainCycle + 1;
}

void
QuantumPipeline::reset()
{
    buffer.clear();
    label = 0;
    lastDrainCycle = 0;
    drainedThisCycle = false;
    blockedOnQueue = false;
    issued = 0;
}

} // namespace quma::core
