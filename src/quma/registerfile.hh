/**
 * @file
 * The execution controller's register file.
 *
 * Holds runtime information related to quantum program execution
 * (paper §7.2): loop counters, computed wait times, and measurement
 * results written back asynchronously by the measurement
 * discrimination units.
 *
 * Because MD results arrive with a physical latency, registers
 * awaiting a write-back are scoreboarded: a classical instruction
 * that reads a pending register stalls the pipeline until the result
 * lands (the same interlock the eQASM successor exposes as FMR).
 */

#ifndef QUMA_QUMA_REGISTERFILE_HH
#define QUMA_QUMA_REGISTERFILE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace quma::core {

class RegisterFile
{
  public:
    RegisterFile();

    /** Read a register; r0 always reads 0. */
    std::int64_t read(RegIndex r) const;

    /** Write a register; writes to r0 are ignored. */
    void write(RegIndex r, std::int64_t value);

    /** True if the register awaits one or more MD write-backs. */
    bool pending(RegIndex r) const;

    /** Mark a register as awaiting `count` MD write-backs. */
    void markPending(RegIndex r, unsigned count = 1);

    /**
     * Asynchronous MD write-back. With overwrite = true the whole
     * register is replaced (single-qubit MD); otherwise only the
     * given bit is updated (multi-qubit MD packs one bit per qubit).
     */
    void writeBack(RegIndex r, std::int64_t value, bool overwrite,
                   unsigned bit);

    void reset();

  private:
    std::array<std::int64_t, kNumRegisters> regs{};
    std::array<unsigned, kNumRegisters> pendingCount{};
};

} // namespace quma::core

#endif // QUMA_QUMA_REGISTERFILE_HH
