#include "quma/trace.hh"

namespace quma::core {

void
TraceRecorder::recordUopFire(const UopFireRecord &r)
{
    if (enabled)
        uops.push_back(r);
}

void
TraceRecorder::recordCodeword(const CodewordRecord &r)
{
    if (enabled)
        cws.push_back(r);
}

void
TraceRecorder::recordPulse(const PulseRecord &r)
{
    if (enabled)
        pulseRecs.push_back(r);
}

void
TraceRecorder::recordMpgFire(const MpgFireRecord &r)
{
    if (enabled)
        mpgRecs.push_back(r);
}

void
TraceRecorder::recordMeasurement(const MeasurementRecord &r)
{
    if (enabled)
        msmts.push_back(r);
}

void
TraceRecorder::recordMduResult(const MduResultRecord &r)
{
    if (enabled)
        mduRecs.push_back(r);
}

void
TraceRecorder::recordLabelFire(const LabelFireRecord &r)
{
    if (enabled)
        labels.push_back(r);
}

void
TraceRecorder::recordMicroInst(const MicroInstRecord &r)
{
    if (enabled)
        micro.push_back(r);
}

void
TraceRecorder::clear()
{
    uops.clear();
    cws.clear();
    pulseRecs.clear();
    mpgRecs.clear();
    msmts.clear();
    mduRecs.clear();
    labels.clear();
    micro.clear();
}

} // namespace quma::core
