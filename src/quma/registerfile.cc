#include "quma/registerfile.hh"

#include "common/logging.hh"

namespace quma::core {

RegisterFile::RegisterFile()
{
    reset();
}

std::int64_t
RegisterFile::read(RegIndex r) const
{
    quma_assert(r < kNumRegisters, "register index out of range");
    return r == 0 ? 0 : regs[r];
}

void
RegisterFile::write(RegIndex r, std::int64_t value)
{
    quma_assert(r < kNumRegisters, "register index out of range");
    if (r != 0)
        regs[r] = value;
}

bool
RegisterFile::pending(RegIndex r) const
{
    quma_assert(r < kNumRegisters, "register index out of range");
    return pendingCount[r] > 0;
}

void
RegisterFile::markPending(RegIndex r, unsigned count)
{
    quma_assert(r < kNumRegisters, "register index out of range");
    if (r != 0)
        pendingCount[r] += count;
}

void
RegisterFile::writeBack(RegIndex r, std::int64_t value, bool overwrite,
                        unsigned bit)
{
    quma_assert(r < kNumRegisters, "register index out of range");
    if (r != 0) {
        if (overwrite) {
            regs[r] = value;
        } else {
            std::int64_t mask = std::int64_t{1} << bit;
            regs[r] = (regs[r] & ~mask) | (value ? mask : 0);
        }
        if (pendingCount[r] > 0)
            --pendingCount[r];
    }
}

void
RegisterFile::reset()
{
    regs.fill(0);
    pendingCount.fill(0);
}

} // namespace quma::core
