/**
 * @file
 * Execution trace recorder.
 *
 * Captures the observable activity of every pipeline stage so the
 * paper's tables and figures can be regenerated: the QuMIS stream
 * entering the QMB (Table 5 left), micro-operations fired to the
 * u-op units (Table 5 bottom-left), codeword triggers reaching the
 * CTPGs/MDUs (Table 5 bottom-right), emitted pulses and measurement
 * windows (Figures 3 and 5), and timing-label fires (Tables 2-4).
 */

#ifndef QUMA_QUMA_TRACE_HH
#define QUMA_QUMA_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace quma::core {

/** A micro-operation fired from a pulse queue to a u-op unit. */
struct UopFireRecord
{
    Cycle td = 0;
    unsigned awg = 0;
    std::uint8_t uop = 0;
    QubitMask mask = 0;
};

/** A codeword trigger arriving at a CTPG (after the u-op delay). */
struct CodewordRecord
{
    Cycle td = 0;
    unsigned awg = 0;
    Codeword codeword = 0;
    QubitMask mask = 0;
};

/** An analog pulse leaving a CTPG (after its fixed delay). */
struct PulseRecord
{
    TimeNs t0Ns = 0;
    unsigned awg = 0;
    Codeword codeword = 0;
    QubitMask mask = 0;
    double durationNs = 0;
};

/** An MPG event firing at its timing label (paper Table 5 "CW 7"). */
struct MpgFireRecord
{
    Cycle td = 0;
    QubitMask mask = 0;
    Cycle durationCycles = 0;
};

/** A measurement window arriving at the chip. */
struct MeasurementRecord
{
    /** Window start at the chip (label + calibrated path delay). */
    Cycle windowStart = 0;
    unsigned qubit = 0;
    Cycle durationCycles = 0;
    /** Ground truth sampled by the chip (for validation only). */
    bool trueOutcome = false;
};

/** An MD result write-back. */
struct MduResultRecord
{
    Cycle completionTd = 0;
    unsigned qubit = 0;
    double s = 0.0;
    bool bit = false;
    RegIndex destReg = 0;
};

/** A timing label broadcast. */
struct LabelFireRecord
{
    Cycle td = 0;
    TimingLabel label = 0;
};

/** A QuMIS microinstruction entering the QMB. */
struct MicroInstRecord
{
    Cycle cycle = 0;
    isa::Instruction inst;
};

class TraceRecorder
{
  public:
    void setEnabled(bool on) { enabled = on; }
    bool isEnabled() const { return enabled; }

    void recordUopFire(const UopFireRecord &r);
    void recordCodeword(const CodewordRecord &r);
    void recordPulse(const PulseRecord &r);
    void recordMpgFire(const MpgFireRecord &r);
    void recordMeasurement(const MeasurementRecord &r);
    void recordMduResult(const MduResultRecord &r);
    void recordLabelFire(const LabelFireRecord &r);
    void recordMicroInst(const MicroInstRecord &r);

    const std::vector<UopFireRecord> &uopFires() const { return uops; }
    const std::vector<CodewordRecord> &codewords() const { return cws; }
    const std::vector<PulseRecord> &pulses() const { return pulseRecs; }
    const std::vector<MpgFireRecord> &mpgFires() const
    {
        return mpgRecs;
    }
    const std::vector<MeasurementRecord> &measurements() const
    {
        return msmts;
    }
    const std::vector<MduResultRecord> &mduResults() const
    {
        return mduRecs;
    }
    const std::vector<LabelFireRecord> &labelFires() const
    {
        return labels;
    }
    const std::vector<MicroInstRecord> &microInsts() const
    {
        return micro;
    }

    void clear();

  private:
    bool enabled = false;
    std::vector<UopFireRecord> uops;
    std::vector<CodewordRecord> cws;
    std::vector<PulseRecord> pulseRecs;
    std::vector<MpgFireRecord> mpgRecs;
    std::vector<MeasurementRecord> msmts;
    std::vector<MduResultRecord> mduRecs;
    std::vector<LabelFireRecord> labels;
    std::vector<MicroInstRecord> micro;
};

} // namespace quma::core

#endif // QUMA_QUMA_TRACE_HH
