/**
 * @file
 * The assembled QuMA system: master controller (execution controller,
 * physical microcode unit, QMB, timing control unit, digital outputs,
 * MDUs, data collection unit), the AWG boards, and the simulated
 * transmon chip behind the quantum-classical interface -- the whole
 * of the paper's Figures 4 and 7 in one object.
 *
 * The host-PC API mirrors the experimental flow of paper §8: upload
 * the calibrated lookup tables, load the (assembled) program into the
 * quantum instruction cache, run, and retrieve the averaged results
 * from the data collection unit.
 */

#ifndef QUMA_QUMA_MACHINE_HH
#define QUMA_QUMA_MACHINE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "awg/awgmodule.hh"
#include "awg/calibration.hh"
#include "measure/datacollector.hh"
#include "measure/digitaloutput.hh"
#include "measure/mdu.hh"
#include "qsim/transmon.hh"
#include "quma/execcontroller.hh"
#include "quma/qmb.hh"
#include "quma/trace.hh"
#include "timing/wheel.hh"

namespace quma::core {

struct MachineConfig
{
    /** The chip: one entry per simulated qubit. */
    std::vector<qsim::TransmonParams> qubits{qsim::paperQubitParams()};

    /** Number of AWG boards (paper: 3 two-channel boards). */
    unsigned numAwgs = 3;
    /** Drive AWG per qubit; empty = round-robin over numAwgs. */
    std::vector<unsigned> driveAwg;

    /** SSB modulation programmed into the calibration (-50 MHz). */
    double ssbHz = -50.0e6;
    /** Single-qubit pulse duration (ns). */
    double pulseNs = 20.0;
    /**
     * Gate spacing (cycles) used by the control store's Wait after
     * each gate; 0 derives it from pulseNs (4 cycles = 20 ns).
     * Setting 5 injects the paper's 5 ns inter-pulse timing error.
     */
    Cycle gateWaitCycles = 0;
    /** Amplitude miscalibration injected into every gate pulse. */
    double amplitudeError = 0.0;
    /** Drive-carrier detuning from resonance (Hz, 0 = calibrated). */
    double carrierDetuningHz = 0.0;

    /** u-op unit delay Delta (cycles). */
    Cycle uopDelayCycles = 2;
    /** CTPG fixed delay (cycles; 16 = 80 ns). */
    Cycle ctpgDelayCycles = kCtpgDelayCycles;
    /** MDU discrimination latency (cycles; 100 = 500 ns < 1 us). */
    Cycle mduLatencyCycles = 100;
    /** Default measurement pulse duration for Measure (cycles). */
    Cycle msmtCycles = 300;
    /**
     * Fixed latency of the measurement-pulse path (digital output ->
     * gated source -> chip), in cycles. Calibrated to match the gate
     * path (u-op delay + CTPG delay) so that pulses and measurement
     * windows scheduled back-to-back in the program arrive
     * back-to-back at the chip, as in the experimental setup. -1
     * selects that default.
     */
    std::int64_t msmtPathDelayCycles = -1;
    /** CZ flux pulse duration (ns). */
    TimeNs czDurationNs = 40;
    /** Readout carrier gated by the digital outputs (Hz). */
    double msmtCarrierHz = 6.849e9;

    ExecConfig exec;
    timing::TimingConfig timing;
    std::size_t qmbDepth = 16;
    unsigned qmbDrainRate = 1;

    /** Chip / readout noise seed. */
    std::uint64_t chipSeed = 0x9b1d;
    /** Record a full execution trace (Tables 2-5, Figures 3/5). */
    bool traceEnabled = false;
};

/** Summary of one run. */
struct RunResult
{
    Cycle cyclesRun = 0;
    bool halted = false;
    timing::TimingViolations violations;

    bool operator==(const RunResult &) const = default;

    /**
     * Fold another run into a sweep-level aggregate: cycle counts
     * and violation counters add, halted ANDs. `first` marks the
     * first fold (it initialises halted).
     */
    void
    accumulate(const RunResult &other, bool first)
    {
        cyclesRun += other.cyclesRun;
        halted = (first || halted) && other.halted;
        violations.latePoints += other.violations.latePoints;
        violations.staleEvents += other.violations.staleEvents;
        violations.totalLateCycles += other.violations.totalLateCycles;
    }
};

/** Observable machine counters (pool saturation, pipeline health). */
struct MachineStats
{
    timing::TimingUnitStats queues;
    ExecStats exec;
    std::size_t microInstsIssued = 0;
    /** Event-wheel counters of the most recent run. */
    timing::EventWheelStats wheel;
};

class QumaMachine
{
  public:
    explicit QumaMachine(MachineConfig config);

    const MachineConfig &config() const { return cfg; }

    /**
     * Supplier of pre-rendered LUT content for a calibration. When
     * set, uploadStandardCalibration copies the returned entries
     * instead of rendering them -- the runtime's program cache uses
     * this to share one rendered LUT across a machine pool.
     */
    using LutProvider = std::function<std::shared_ptr<
        const std::map<Codeword, awg::StoredPulse>>(
        const awg::CalibrationParams &)>;

    /** Upload the Table 1 LUTs and calibrate every MDU. */
    void uploadStandardCalibration(const LutProvider &provider = {});

    /** Load an assembled program into the instruction cache. */
    void loadProgram(isa::Program program);
    /** Assemble and load. */
    void loadAssembly(const std::string &source);

    /** Configure ensemble averaging with K bins (paper: K = 42). */
    void configureDataCollection(std::size_t k);

    /**
     * Run until the program halts and all queues/pipelines drain,
     * or until max_cycles elapses.
     */
    RunResult run(Cycle max_cycles = 2'000'000'000ULL);

    /**
     * Re-arm the machine to its freshly-constructed state without
     * reconstruction: all pipelines, queues, registers, data memory,
     * collected data and RNG streams are rewound, so a subsequent
     * loadProgram + run reproduces a fresh machine's results bit for
     * bit. Uploaded calibration (LUTs, MDU weights) is preserved --
     * this is what makes pooled machines cheap to reuse.
     */
    void reset();

    /**
     * reset(), additionally re-deriving the stochastic domains from
     * new seeds (chip/readout noise and execution stall injection).
     * The runtime uses this to give every job its own deterministic
     * RNG streams regardless of which pooled machine runs it.
     */
    void reset(std::uint64_t chip_seed, std::uint64_t exec_seed);

    // --- component access (tests, benches, examples) ---
    RegisterFile &registers() { return exec->registers(); }
    ExecutionController &execController() { return *exec; }
    QuantumPipeline &pipeline() { return *qp; }
    timing::TimingController &timingUnit() { return *tcu; }
    awg::AwgModule &awgModule(unsigned i);
    measure::Mdu &mdu(unsigned qubit);
    measure::DigitalOutputUnit &digitalOutputs() { return *digOut; }
    measure::DataCollectionUnit &dataCollector() { return collector; }
    qsim::TransmonChip &chip() { return *chipSim; }
    TraceRecorder &trace() { return recorder; }

    const timing::TimingViolations &violations() const;

    /** Queue-saturation and pipeline counters for this run. */
    MachineStats stats() const;

  private:
    void wire();
    void onPulseFired(unsigned queue, Cycle td,
                      const timing::PulseEvent &ev);
    void onMpgFired(Cycle td, const timing::MpgEvent &ev);
    void onMdFired(unsigned queue, Cycle td, const timing::MdEvent &ev);
    void onDrivePulse(unsigned awg_index, const signal::DrivePulse &pulse,
                      Codeword cw, QubitMask mask);
    void onMeasurementPulse(unsigned qubit,
                            const signal::MeasurementPulse &pulse);
    void onMduResult(unsigned qubit, const measure::MduResult &r);

    [[noreturn]] void reportWedge(Cycle now) const;

    // --- event-wheel source ids (bit positions in the due/woken
    //     masks; fixed processing order = fixed dispatch order) ---
    static constexpr unsigned kSrcTcu = 0;
    unsigned srcAwg(unsigned a) const { return 1 + a; }
    unsigned srcDigOut() const { return 1 + cfg.numAwgs; }
    unsigned srcMdu(unsigned q) const { return 2 + cfg.numAwgs + q; }
    unsigned srcQp() const
    {
        return 2 + cfg.numAwgs +
               static_cast<unsigned>(cfg.qubits.size());
    }
    unsigned srcExec() const { return srcQp() + 1; }
    unsigned numEventSources() const { return srcExec() + 1; }

    MachineConfig cfg;
    QubitRouting routing;
    TraceRecorder recorder;

    std::unique_ptr<timing::TimingController> tcu;
    std::unique_ptr<QuantumPipeline> qp;
    std::unique_ptr<ExecutionController> exec;
    std::unique_ptr<measure::DigitalOutputUnit> digOut;
    std::vector<std::unique_ptr<awg::AwgModule>> awgs;
    std::vector<std::unique_ptr<measure::Mdu>> mdus;
    std::unique_ptr<qsim::TransmonChip> chipSim;
    measure::DataCollectionUnit collector;

    /** Pending write-back mode (overwrite, bit) per MDU. */
    std::vector<std::pair<bool, unsigned>> mdWriteMode;
    /** Resolved measurement path delay (cycles). */
    Cycle msmtDelay = 0;

    /** Next-event index over all sources; cleared per run. */
    timing::EventWheel wheel;
    /** Sources poked by a cross-component sink this cycle; their
     *  advanceTo must run even if the wheel had them idle. */
    std::uint64_t wokenMask = 0;

    bool calibrated = false;
    bool ran = false;
};

} // namespace quma::core

#endif // QUMA_QUMA_MACHINE_HH
