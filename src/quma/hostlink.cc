#include "quma/hostlink.hh"

#include "common/logging.hh"
#include "quma/machine.hh"

namespace quma::core {

LinkMeter::LinkMeter(double bytes_per_second)
    : rate(bytes_per_second)
{
    if (rate <= 0)
        fatal("LinkMeter needs a positive link rate");
}

void
LinkMeter::record(std::size_t bytes, bool to_device)
{
    if (to_device) {
        ++acc.uploads;
        acc.bytesUp += bytes;
    } else {
        ++acc.downloads;
        acc.bytesDown += bytes;
    }
}

LinkStats
LinkMeter::stats() const
{
    LinkStats s = acc;
    s.secondsUp = static_cast<double>(s.bytesUp) / rate;
    s.secondsDown = static_cast<double>(s.bytesDown) / rate;
    return s;
}

HostLink::HostLink(QumaMachine &machine, double bytes_per_second)
    : device(machine), rate(bytes_per_second)
{
    if (rate <= 0)
        fatal("HostLink needs a positive link rate");
}

void
HostLink::record(const std::string &what, std::size_t bytes,
                 bool to_device)
{
    log.push_back(Transfer{what, bytes, to_device});
}

void
HostLink::uploadProgram(const isa::Program &program)
{
    auto image = program.toBinary();
    record("program binary", image.size() * sizeof(std::uint64_t),
           true);
    // The instruction cache receives the decoded image.
    device.loadProgram(isa::Program::fromBinary(image));
}

void
HostLink::uploadCalibration()
{
    device.uploadStandardCalibration();
    std::size_t bytes = 0;
    const auto &cfg = device.config();
    for (unsigned a = 0; a < cfg.numAwgs; ++a)
        bytes += device.awgModule(a).waveMemory().memoryBytes();
    record("lookup tables", bytes, true);
}

std::vector<double>
HostLink::retrieveAverages()
{
    auto averages = device.dataCollector().averages();
    record("averaged results", averages.size() * sizeof(double),
           false);
    return averages;
}

LinkStats
HostLink::stats() const
{
    LinkMeter meter(rate);
    for (const auto &t : log)
        meter.record(t.bytes, t.toDevice);
    return meter.stats();
}

} // namespace quma::core
