/**
 * @file
 * The physical microcode unit and quantum microinstruction buffer.
 *
 * The physical microcode unit translates QIS quantum instructions
 * into QuMIS microinstruction sequences using the Q control store
 * (paper §5.3.2). The quantum microinstruction buffer (QMB) then
 * decomposes microinstructions into micro-operations with timing
 * labels and pushes them into the timing control unit's queues:
 *
 *   Wait n  -> allocate the next timing label L, push (n, L) into
 *              the timing queue;
 *   Pulse   -> PulseEvent(L, mask, uop) into the pulse queue of each
 *              addressed AWG (horizontal: multiple qubits at once);
 *   MPG     -> MpgEvent(L, mask, D) into the MPG queue (bypassing
 *              the u-op stage, paper Table 5);
 *   MD      -> MdEvent(L, qubit, rd) into each addressed qubit's MD
 *              queue.
 *
 * Everything here runs in the non-deterministic timing domain: the
 * buffer drains as fast as the queues accept entries, and stalls on
 * backpressure without affecting deterministic output timing.
 */

#ifndef QUMA_QUMA_QMB_HH
#define QUMA_QUMA_QMB_HH

#include <deque>
#include <optional>
#include <vector>

#include "microcode/controlstore.hh"
#include "quma/trace.hh"
#include "timing/controller.hh"

namespace quma::core {

/** Static routing of qubits onto hardware units. */
struct QubitRouting
{
    /** Pulse-queue (AWG) index for each qubit. */
    std::vector<unsigned> driveAwg;
    /** MD-queue (MDU) index for each qubit. */
    std::vector<unsigned> mdu;

    unsigned awgFor(unsigned qubit) const;
    unsigned mduFor(unsigned qubit) const;
};

class QuantumPipeline
{
  public:
    QuantumPipeline(microcode::QControlStore store, QubitRouting routing,
                    timing::TimingController &timing,
                    TraceRecorder &trace, std::size_t buffer_depth = 16,
                    unsigned drain_rate = 1);

    const microcode::QControlStore &controlStore() const { return cs; }

    /**
     * Accept one quantum instruction (registers already resolved:
     * QWaitReg arrives as a Wait). Returns false when the expansion
     * would overflow the microinstruction buffer.
     */
    bool tryDispatch(const isa::Instruction &inst);

    bool empty() const { return buffer.empty(); }
    std::size_t backlog() const { return buffer.size(); }

    /**
     * Drain up to the configured number of microinstructions into
     * the timing queues. Stalls (leaving entries buffered) when a
     * target queue is full.
     */
    void drainAt(Cycle now);

    /** Next cycle at which the buffer wants to do work. */
    std::optional<Cycle> nextEventCycle() const;

    /** Timing label of the most recently allocated time point. */
    TimingLabel currentLabel() const { return label; }

    /** Total microinstructions pushed into the timing queues. */
    std::size_t microInstsIssued() const { return issued; }

    /** Drop buffered microinstructions and restart label numbering. */
    void reset();

  private:
    bool pushOne(const isa::Instruction &inst);

    microcode::QControlStore cs;
    QubitRouting route;
    timing::TimingController &tcu;
    TraceRecorder &recorder;
    std::deque<isa::Instruction> buffer;
    std::size_t depth;
    unsigned drainRate;
    TimingLabel label = 0;
    Cycle lastDrainCycle = 0;
    bool drainedThisCycle = false;
    /** Set when the front entry hit a full queue; re-polled on events. */
    bool blockedOnQueue = false;
    std::size_t issued = 0;
};

} // namespace quma::core

#endif // QUMA_QUMA_QMB_HH
