/**
 * @file
 * Fixed-width 64-bit binary encoding of the instruction set.
 *
 * Layout (bit 63 is the MSB):
 *
 *   [63:58] opcode
 *
 * then per format:
 *   R-type (add/sub/and/or/xor):   rd[57:53] rs[52:48] rt[47:43]
 *   I-type (mov/addi/shl/shr/load/store): rd[57:53] rs[52:48]
 *       rt[47:43] imm[31:0] (signed)
 *   Branch (beq/bne/blt/bge/br):   rs[57:53] rt[52:48]
 *       imm[31:0] = absolute target instruction index
 *   Wait:     imm[31:0] cycles;  QNopReg: rs[52:48]
 *   Pulse:    count[57:56], slot i in [16i+15 : 16i]
 *             with mask in the high byte and uop in the low byte
 *   MPG:      qmask[55:40], imm[31:0] duration cycles
 *   MD:       qmask[55:40], rd[39:35]
 *   Apply:    gate[57:50], qmask[15:0]
 *   Measure:  qmask[55:40], rd[39:35]
 *   CNOT:     qt[57:53], qc[52:48]
 */

#ifndef QUMA_ISA_ENCODING_HH
#define QUMA_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace quma::isa {

/** Encode one instruction to its 64-bit binary form. */
std::uint64_t encode(const Instruction &inst);

/** Decode one 64-bit word; fatal() on an invalid opcode. */
Instruction decode(std::uint64_t word);

/** Encode a whole instruction sequence. */
std::vector<std::uint64_t> encodeAll(const std::vector<Instruction> &prog);

/** Decode a whole binary image. */
std::vector<Instruction> decodeAll(const std::vector<std::uint64_t> &image);

} // namespace quma::isa

#endif // QUMA_ISA_ENCODING_HH
