/**
 * @file
 * Symbolic name registries for micro-operations and QIS gates.
 *
 * The standard micro-operation ids for primitives coincide with the
 * codeword-triggered pulse generation lookup-table indices of the
 * paper's Table 1, so in the pass-through configuration used for the
 * AllXY experiment the u-op unit "simply forwards the codewords to
 * the wave memory without translation" (paper §8).
 */

#ifndef QUMA_ISA_NAMETABLE_HH
#define QUMA_ISA_NAMETABLE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace quma::isa {

/** Standard micro-operation / codeword assignments (paper Table 1). */
namespace uops {
inline constexpr std::uint8_t I = 0;
inline constexpr std::uint8_t X180 = 1;  ///< Rx(pi)
inline constexpr std::uint8_t X90 = 2;   ///< Rx(pi/2)
inline constexpr std::uint8_t Xm90 = 3;  ///< Rx(-pi/2)
inline constexpr std::uint8_t Y180 = 4;  ///< Ry(pi)
inline constexpr std::uint8_t Y90 = 5;   ///< Ry(pi/2)
inline constexpr std::uint8_t Ym90 = 6;  ///< Ry(-pi/2)
inline constexpr std::uint8_t Msmt = 7;  ///< measurement pulse codeword
inline constexpr std::uint8_t Cz = 8;    ///< flux pulse (two-qubit CZ)
// Emulated (composite) micro-operations handled by the u-op unit.
inline constexpr std::uint8_t Z180 = 9;
inline constexpr std::uint8_t Z90 = 10;
inline constexpr std::uint8_t Zm90 = 11;
inline constexpr std::uint8_t H = 12;
} // namespace uops

/**
 * Bidirectional symbol table mapping textual names to 8-bit ids.
 * Lookups are case-insensitive; the canonical spelling is preserved
 * for printing.
 */
class NameTable
{
  public:
    /** Register a name; fatal() on duplicate name or id. */
    void define(const std::string &name, std::uint8_t id);

    std::optional<std::uint8_t> idOf(const std::string &name) const;
    std::optional<std::string> nameOf(std::uint8_t id) const;

    /** All (name, id) pairs in id order. */
    std::vector<std::pair<std::string, std::uint8_t>> entries() const;

    /** Table 1 micro-operation names. */
    static NameTable standardUops();

    /** Standard QIS gate names (superset of the primitive set). */
    static NameTable standardGates();

  private:
    std::unordered_map<std::string, std::uint8_t> byName;
    std::unordered_map<std::uint8_t, std::string> byId;
};

} // namespace quma::isa

#endif // QUMA_ISA_NAMETABLE_HH
