#include "isa/assembler.hh"

#include <cctype>

#include "common/logging.hh"
#include "common/strings.hh"

namespace quma::isa {

namespace {

/** Strip comments introduced by '#' or ';'. */
std::string
stripComment(const std::string &line)
{
    auto pos = line.find_first_of("#;");
    if (pos == std::string::npos)
        return line;
    return line.substr(0, pos);
}

/** Split an operand list on top-level commas (not inside () or {}). */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || (s[i] == ',' && depth == 0)) {
            std::string field = trim(s.substr(start, i - start));
            if (!field.empty())
                out.push_back(field);
            start = i + 1;
            continue;
        }
        if (s[i] == '(' || s[i] == '{')
            ++depth;
        else if (s[i] == ')' || s[i] == '}')
            --depth;
    }
    return out;
}

struct LineRef
{
    std::size_t number;
    const std::string &text;
};

[[noreturn]] void
asmError(const LineRef &where, const std::string &what)
{
    fatal("assembly error at line ", where.number, ": ", what,
          "  [", trim(where.text), "]");
}

RegIndex
parseRegister(const std::string &tok, const LineRef &where)
{
    std::string t = toLower(trim(tok));
    if (t.size() < 2 || t[0] != 'r')
        asmError(where, "expected register, got '" + tok + "'");
    long long v;
    if (!parseInt(t.substr(1), v) || v < 0 ||
        v >= static_cast<long long>(kNumRegisters))
        asmError(where, "bad register '" + tok + "'");
    return static_cast<RegIndex>(v);
}

std::int64_t
parseImmediate(const std::string &tok, const LineRef &where)
{
    long long v;
    if (!parseInt(tok, v))
        asmError(where, "expected immediate, got '" + tok + "'");
    return v;
}

unsigned
parseQubit(const std::string &tok, const LineRef &where)
{
    std::string t = toLower(trim(tok));
    if (t.size() >= 2 && t[0] == 'q')
        t = t.substr(1);
    long long v;
    if (!parseInt(t, v) || v < 0 || v >= 32)
        asmError(where, "bad qubit '" + tok + "'");
    return static_cast<unsigned>(v);
}

/** Parse "{q0, q2}" or "q2" or "2" into a mask. */
QubitMask
parseQubitSet(const std::string &tok, const LineRef &where)
{
    std::string t = trim(tok);
    QubitMask mask = 0;
    if (!t.empty() && t.front() == '{') {
        if (t.back() != '}')
            asmError(where, "unterminated qubit set '" + tok + "'");
        for (const auto &part : split(t.substr(1, t.size() - 2), ','))
            mask |= QubitMask{1} << parseQubit(part, where);
        if (mask == 0)
            asmError(where, "empty qubit set");
        return mask;
    }
    return QubitMask{1} << parseQubit(t, where);
}

} // namespace

Assembler::Assembler()
    : uopTable(NameTable::standardUops()),
      gateTable(NameTable::standardGates())
{}

Assembler::Assembler(NameTable uop_names, NameTable gate_names)
    : uopTable(std::move(uop_names)), gateTable(std::move(gate_names))
{}

namespace {

/**
 * Intermediate form: an instruction that may still reference a label
 * by name (branch targets are resolved in the second pass).
 */
struct PendingInst
{
    Instruction inst;
    std::string pendingLabel; // empty when resolved
    std::size_t lineNumber = 0;
    std::string lineText;
};

} // namespace

Instruction
Assembler::assembleLine(const std::string &line) const
{
    // Delegate to assemble() so one code path handles parsing; a
    // branch in a single line cannot resolve a label.
    Program p = assemble(line);
    if (p.size() != 1)
        fatal("assembleLine expects exactly one instruction, got ",
              p.size());
    return p.at(0);
}

Program
Assembler::assemble(const std::string &source) const
{
    std::vector<PendingInst> pending;
    Program prog;

    std::vector<std::string> lines = split(source, '\n', true);
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        LineRef where{ln + 1, lines[ln]};
        std::string text = trim(stripComment(lines[ln]));
        if (text.empty())
            continue;

        // Label definitions: "name:" optionally followed by code.
        while (true) {
            auto colon = text.find(':');
            if (colon == std::string::npos)
                break;
            std::string head = trim(text.substr(0, colon));
            bool isIdent = !head.empty();
            for (char c : head)
                if (!std::isalnum(static_cast<unsigned char>(c)) &&
                    c != '_')
                    isIdent = false;
            if (!isIdent)
                break;
            prog.defineLabelAt(head, pending.size());
            text = trim(text.substr(colon + 1));
            if (text.empty())
                break;
        }
        if (text.empty())
            continue;

        // Mnemonic and operand text.
        std::size_t sp = 0;
        while (sp < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[sp])))
            ++sp;
        std::string mn = text.substr(0, sp);
        std::string rest = trim(text.substr(sp));
        auto opOpt = opcodeFromMnemonic(mn);
        if (!opOpt)
            asmError(where, "unknown mnemonic '" + mn + "'");
        Opcode op = *opOpt;
        std::vector<std::string> ops = splitOperands(rest);

        PendingInst pi;
        pi.lineNumber = where.number;
        pi.lineText = lines[ln];
        Instruction &inst = pi.inst;
        inst.op = op;

        auto expect = [&](std::size_t n) {
            if (ops.size() != n)
                asmError(where, "expected " + std::to_string(n) +
                                    " operand(s), got " +
                                    std::to_string(ops.size()));
        };

        switch (op) {
          case Opcode::Nop:
          case Opcode::Halt:
            expect(0);
            break;
          case Opcode::Mov:
            expect(2);
            inst.rd = parseRegister(ops[0], where);
            inst.imm = parseImmediate(ops[1], where);
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
            expect(3);
            inst.rd = parseRegister(ops[0], where);
            inst.rs = parseRegister(ops[1], where);
            inst.rt = parseRegister(ops[2], where);
            break;
          case Opcode::Addi:
          case Opcode::Shl:
          case Opcode::Shr:
            expect(3);
            inst.rd = parseRegister(ops[0], where);
            inst.rs = parseRegister(ops[1], where);
            inst.imm = parseImmediate(ops[2], where);
            break;
          case Opcode::Load:
          case Opcode::Store: {
            // load rd, rs[imm] / store rt, rs[imm]
            expect(2);
            RegIndex data = parseRegister(ops[0], where);
            std::string mem = trim(ops[1]);
            auto lb = mem.find('[');
            auto rb = mem.rfind(']');
            if (lb == std::string::npos || rb == std::string::npos ||
                rb < lb)
                asmError(where, "expected rs[offset], got '" + mem + "'");
            inst.rs = parseRegister(mem.substr(0, lb), where);
            inst.imm =
                parseImmediate(mem.substr(lb + 1, rb - lb - 1), where);
            if (op == Opcode::Load)
                inst.rd = data;
            else
                inst.rt = data;
            break;
          }
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
            expect(3);
            inst.rs = parseRegister(ops[0], where);
            inst.rt = parseRegister(ops[1], where);
            pi.pendingLabel = trim(ops[2]);
            break;
          case Opcode::Br:
            expect(1);
            pi.pendingLabel = trim(ops[0]);
            break;
          case Opcode::QWait:
            expect(1);
            inst.imm = parseImmediate(ops[0], where);
            if (inst.imm <= 0)
                asmError(where, "Wait interval must be positive");
            break;
          case Opcode::QWaitReg:
            expect(1);
            inst.rs = parseRegister(ops[0], where);
            break;
          case Opcode::Pulse: {
            if (ops.empty())
                asmError(where, "Pulse needs operands");
            if (!ops.empty() && ops[0].front() == '(') {
                // Multi-slot form: (set, uop), (set, uop) ...
                for (const auto &slot : ops) {
                    std::string t = trim(slot);
                    if (t.front() != '(' || t.back() != ')')
                        asmError(where, "bad Pulse slot '" + slot + "'");
                    auto parts =
                        splitOperands(t.substr(1, t.size() - 2));
                    if (parts.size() != 2)
                        asmError(where,
                                 "Pulse slot needs (qubits, uop)");
                    PulseSlot s;
                    s.mask = parseQubitSet(parts[0], where);
                    auto id = uopTable.idOf(parts[1]);
                    if (!id)
                        asmError(where, "unknown micro-operation '" +
                                            parts[1] + "'");
                    s.uop = *id;
                    inst.slots.push_back(s);
                }
            } else {
                // Short form: Pulse {q2}, I
                expect(2);
                PulseSlot s;
                s.mask = parseQubitSet(ops[0], where);
                auto id = uopTable.idOf(ops[1]);
                if (!id)
                    asmError(where, "unknown micro-operation '" +
                                        ops[1] + "'");
                s.uop = *id;
                inst.slots.push_back(s);
            }
            if (inst.slots.size() > kMaxPulseSlots)
                asmError(where, "too many Pulse slots");
            break;
          }
          case Opcode::Mpg:
            expect(2);
            inst.qmask = parseQubitSet(ops[0], where);
            inst.imm = parseImmediate(ops[1], where);
            if (inst.imm <= 0)
                asmError(where, "MPG duration must be positive");
            break;
          case Opcode::Md:
            if (ops.size() == 1) {
                inst.qmask = parseQubitSet(ops[0], where);
                inst.rd = 0;
            } else {
                expect(2);
                inst.qmask = parseQubitSet(ops[0], where);
                inst.rd = parseRegister(ops[1], where);
            }
            break;
          case Opcode::Apply:
            expect(2);
            {
                auto id = gateTable.idOf(ops[0]);
                if (!id)
                    asmError(where, "unknown gate '" + ops[0] + "'");
                inst.gate = *id;
            }
            inst.qmask = parseQubitSet(ops[1], where);
            break;
          case Opcode::MeasureQ:
            expect(2);
            inst.qmask = parseQubitSet(ops[0], where);
            inst.rd = parseRegister(ops[1], where);
            break;
          case Opcode::Cnot:
            expect(2);
            inst.rd = static_cast<RegIndex>(parseQubit(ops[0], where));
            inst.rs = static_cast<RegIndex>(parseQubit(ops[1], where));
            break;
          case Opcode::NumOpcodes:
            asmError(where, "invalid opcode");
        }
        pending.push_back(std::move(pi));
    }

    // Second pass: resolve branch targets.
    for (auto &pi : pending) {
        if (!pi.pendingLabel.empty()) {
            LineRef where{pi.lineNumber, pi.lineText};
            auto target = prog.labelTarget(pi.pendingLabel);
            if (target) {
                pi.inst.imm = static_cast<std::int64_t>(*target);
            } else {
                long long v;
                if (parseInt(pi.pendingLabel, v) && v >= 0)
                    pi.inst.imm = v; // numeric absolute target
                else
                    asmError(where,
                             "undefined label '" + pi.pendingLabel + "'");
            }
        }
        prog.push(std::move(pi.inst));
    }
    return prog;
}

} // namespace quma::isa
