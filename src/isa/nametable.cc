#include "isa/nametable.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strings.hh"

namespace quma::isa {

void
NameTable::define(const std::string &name, std::uint8_t id)
{
    std::string key = toLower(name);
    if (byName.count(key))
        fatal("NameTable: duplicate name '", name, "'");
    if (byId.count(id))
        fatal("NameTable: duplicate id ", static_cast<unsigned>(id));
    byName[key] = id;
    byId[id] = name;
}

std::optional<std::uint8_t>
NameTable::idOf(const std::string &name) const
{
    auto it = byName.find(toLower(name));
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::string>
NameTable::nameOf(std::uint8_t id) const
{
    auto it = byId.find(id);
    if (it == byId.end())
        return std::nullopt;
    return it->second;
}

std::vector<std::pair<std::string, std::uint8_t>>
NameTable::entries() const
{
    std::vector<std::pair<std::string, std::uint8_t>> out;
    for (const auto &[id, name] : byId)
        out.emplace_back(name, id);
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    return out;
}

NameTable
NameTable::standardUops()
{
    NameTable t;
    t.define("I", uops::I);
    t.define("X180", uops::X180);
    t.define("X90", uops::X90);
    t.define("Xm90", uops::Xm90);
    t.define("Y180", uops::Y180);
    t.define("Y90", uops::Y90);
    t.define("Ym90", uops::Ym90);
    t.define("MSMT", uops::Msmt);
    t.define("CZ", uops::Cz);
    t.define("Z180", uops::Z180);
    t.define("Z90", uops::Z90);
    t.define("Zm90", uops::Zm90);
    t.define("H", uops::H);
    return t;
}

NameTable
NameTable::standardGates()
{
    // QIS gate ids deliberately reuse the micro-operation numbering
    // for the shared names, which keeps the control-store microcode
    // for primitive gates a one-line pass-through.
    return standardUops();
}

} // namespace quma::isa
