/**
 * @file
 * The decoded instruction representation shared by the assembler,
 * encoder and execution pipeline.
 */

#ifndef QUMA_ISA_INSTRUCTION_HH
#define QUMA_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace quma::isa {

/** One (qubit set, micro-operation) pair of a horizontal Pulse. */
struct PulseSlot
{
    QubitMask mask = 0;
    std::uint8_t uop = 0;

    bool operator==(const PulseSlot &) const = default;
};

/** Maximum (mask, uop) pairs encodable in one Pulse instruction. */
inline constexpr unsigned kMaxPulseSlots = 3;

/**
 * A decoded instruction. Fields are used according to the opcode's
 * format; unused fields stay zero so equality works across
 * encode/decode round trips.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;
    RegIndex rs = 0;
    RegIndex rt = 0;
    /**
     * Immediate: mov/addi value, load/store offset, Wait cycles, MPG
     * duration, or branch target (absolute instruction index).
     */
    std::int64_t imm = 0;
    /** Addressed qubits for Mpg/Md/Apply/MeasureQ. */
    QubitMask qmask = 0;
    /** Gate identifier for Apply (index into the Q control store). */
    std::uint8_t gate = 0;
    /** Slots for Pulse. */
    std::vector<PulseSlot> slots;

    bool operator==(const Instruction &) const = default;

    static Instruction nop() { return {}; }
    static Instruction halt();
    static Instruction mov(RegIndex rd, std::int64_t imm);
    static Instruction add(RegIndex rd, RegIndex rs, RegIndex rt);
    static Instruction addi(RegIndex rd, RegIndex rs, std::int64_t imm);
    static Instruction sub(RegIndex rd, RegIndex rs, RegIndex rt);
    static Instruction load(RegIndex rd, RegIndex rs, std::int64_t off);
    static Instruction store(RegIndex rt, RegIndex rs, std::int64_t off);
    static Instruction beq(RegIndex rs, RegIndex rt, std::int64_t target);
    static Instruction bne(RegIndex rs, RegIndex rt, std::int64_t target);
    static Instruction br(std::int64_t target);
    static Instruction wait(std::int64_t cycles);
    static Instruction waitReg(RegIndex rs);
    static Instruction pulse(std::vector<PulseSlot> slots);
    static Instruction pulse1(QubitMask mask, std::uint8_t uop);
    static Instruction mpg(QubitMask mask, std::int64_t duration_cycles);
    static Instruction md(QubitMask mask, RegIndex rd);
    static Instruction apply(std::uint8_t gate, QubitMask mask);
    static Instruction measure(QubitMask mask, RegIndex rd);
    static Instruction cnot(RegIndex qt, RegIndex qc);
};

/**
 * Render an instruction in assembly syntax. Micro-operation and gate
 * ids are printed numerically here; the disassembler resolves names
 * via its tables.
 */
std::string toString(const Instruction &inst);

/** Render a qubit mask as "{q0, q2, ...}". */
std::string maskToString(QubitMask mask);

} // namespace quma::isa

#endif // QUMA_ISA_INSTRUCTION_HH
