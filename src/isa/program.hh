/**
 * @file
 * An assembled program: the instruction sequence plus label metadata.
 */

#ifndef QUMA_ISA_PROGRAM_HH
#define QUMA_ISA_PROGRAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace quma::isa {

class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> insts)
        : instructions(std::move(insts))
    {}

    std::size_t size() const { return instructions.size(); }
    bool empty() const { return instructions.empty(); }

    const Instruction &at(std::size_t i) const;
    const std::vector<Instruction> &all() const { return instructions; }

    void push(Instruction inst) { instructions.push_back(std::move(inst)); }

    /** Bind a label to the next instruction index. */
    void defineLabel(const std::string &name);
    /** Bind a label to an explicit index. */
    void defineLabelAt(const std::string &name, std::size_t index);

    std::optional<std::size_t> labelTarget(const std::string &name) const;
    /** First label bound to the given index, if any. */
    std::optional<std::string> labelAt(std::size_t index) const;

    const std::unordered_map<std::string, std::size_t> &labels() const
    {
        return labelMap;
    }

    /** Serialise to the 64-bit binary image (labels are dropped). */
    std::vector<std::uint64_t> toBinary() const;
    static Program fromBinary(const std::vector<std::uint64_t> &image);

  private:
    std::vector<Instruction> instructions;
    std::unordered_map<std::string, std::size_t> labelMap;
};

} // namespace quma::isa

#endif // QUMA_ISA_PROGRAM_HH
