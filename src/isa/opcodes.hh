/**
 * @file
 * Opcode definitions for the QuMA instruction set.
 *
 * The instruction stream mixes three families (paper §5.3):
 *
 *  - auxiliary classical instructions: arithmetic, logic, memory and
 *    control flow, executed by the execution controller;
 *  - QuMIS quantum microinstructions (paper Table 6): Wait, Pulse,
 *    MPG, MD, plus QNopReg (a Wait whose duration comes from a
 *    register, enabling runtime-computed timing);
 *  - QIS quantum instructions (Apply/Measure/CNOT): technology-
 *    independent operations expanded into QuMIS by the physical
 *    microcode unit using the Q control store.
 */

#ifndef QUMA_ISA_OPCODES_HH
#define QUMA_ISA_OPCODES_HH

#include <cstdint>
#include <optional>
#include <string>

namespace quma::isa {

enum class Opcode : std::uint8_t
{
    // Auxiliary classical instructions.
    Nop = 0,
    Mov,   ///< mov rd, imm
    Add,   ///< add rd, rs, rt
    Addi,  ///< addi rd, rs, imm
    Sub,   ///< sub rd, rs, rt
    And,   ///< and rd, rs, rt
    Or,    ///< or rd, rs, rt
    Xor,   ///< xor rd, rs, rt
    Shl,   ///< shl rd, rs, imm
    Shr,   ///< shr rd, rs, imm (logical)
    Load,  ///< load rd, rs[imm]
    Store, ///< store rt, rs[imm]
    Beq,   ///< beq rs, rt, label
    Bne,   ///< bne rs, rt, label
    Blt,   ///< blt rs, rt, label (signed)
    Bge,   ///< bge rs, rt, label (signed)
    Br,    ///< br label
    Halt,  ///< halt

    // QuMIS microinstructions (Table 6).
    QWait = 32, ///< Wait imm (cycles)
    QWaitReg,   ///< QNopReg rs: wait for the number of cycles in rs
    Pulse,      ///< Pulse (mask, uop)[, (mask, uop) ...]
    Mpg,        ///< MPG mask, duration
    Md,         ///< MD mask, rd

    // QIS quantum instructions (expanded via the Q control store).
    Apply = 48, ///< Apply gate, mask
    MeasureQ,   ///< Measure mask, rd
    Cnot,       ///< CNOT qt, qc

    NumOpcodes
};

/** Assembly mnemonic for an opcode (canonical spelling). */
const char *mnemonic(Opcode op);

/** Reverse lookup, case-insensitive. std::nullopt if unknown. */
std::optional<Opcode> opcodeFromMnemonic(const std::string &name);

/** True for instructions handled by the quantum pipeline. */
bool isQuantum(Opcode op);

/** True for QIS-level instructions needing control-store expansion. */
bool isQis(Opcode op);

/** True for branch/jump instructions. */
bool isBranch(Opcode op);

} // namespace quma::isa

#endif // QUMA_ISA_OPCODES_HH
