#include "isa/disassembler.hh"

#include <set>
#include <sstream>

#include "common/logging.hh"

namespace quma::isa {

Disassembler::Disassembler()
    : uopTable(NameTable::standardUops()),
      gateTable(NameTable::standardGates())
{}

Disassembler::Disassembler(NameTable uop_names, NameTable gate_names)
    : uopTable(std::move(uop_names)), gateTable(std::move(gate_names))
{}

std::string
Disassembler::render(const Instruction &inst) const
{
    std::ostringstream oss;
    auto reg = [](RegIndex r) { return "r" + std::to_string(r); };
    switch (inst.op) {
      case Opcode::Pulse: {
        oss << mnemonic(inst.op);
        if (inst.slots.size() == 1) {
            auto name = uopTable.nameOf(inst.slots[0].uop);
            oss << " " << maskToString(inst.slots[0].mask) << ", "
                << (name ? *name
                         : std::to_string(inst.slots[0].uop));
        } else {
            bool first = true;
            for (const auto &s : inst.slots) {
                auto name = uopTable.nameOf(s.uop);
                oss << (first ? " " : ", ") << "("
                    << maskToString(s.mask) << ", "
                    << (name ? *name : std::to_string(s.uop)) << ")";
                first = false;
            }
        }
        return oss.str();
      }
      case Opcode::Apply: {
        auto name = gateTable.nameOf(inst.gate);
        oss << mnemonic(inst.op) << " "
            << (name ? *name : std::to_string(inst.gate)) << ", "
            << maskToString(inst.qmask);
        return oss.str();
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        oss << mnemonic(inst.op) << " " << reg(inst.rs) << ", "
            << reg(inst.rt) << ", L" << inst.imm;
        return oss.str();
      case Opcode::Br:
        oss << mnemonic(inst.op) << " L" << inst.imm;
        return oss.str();
      default:
        return toString(inst);
    }
}

std::string
Disassembler::render(const Program &prog) const
{
    // Collect branch targets so labels can be emitted.
    std::set<std::size_t> targets;
    for (const auto &inst : prog.all())
        if (isBranch(inst.op))
            targets.insert(static_cast<std::size_t>(inst.imm));

    std::ostringstream oss;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        if (targets.count(i))
            oss << "L" << i << ":\n";
        oss << "    " << render(prog.at(i)) << "\n";
    }
    // A branch may target one past the last instruction (loop exit).
    if (targets.count(prog.size()))
        oss << "L" << prog.size() << ":\n";
    return oss.str();
}

} // namespace quma::isa
