#include "isa/program.hh"

#include "common/logging.hh"
#include "isa/encoding.hh"

namespace quma::isa {

const Instruction &
Program::at(std::size_t i) const
{
    quma_assert(i < instructions.size(), "instruction index out of range");
    return instructions[i];
}

void
Program::defineLabel(const std::string &name)
{
    defineLabelAt(name, instructions.size());
}

void
Program::defineLabelAt(const std::string &name, std::size_t index)
{
    if (labelMap.count(name))
        fatal("duplicate label '", name, "'");
    labelMap[name] = index;
}

std::optional<std::size_t>
Program::labelTarget(const std::string &name) const
{
    auto it = labelMap.find(name);
    if (it == labelMap.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::string>
Program::labelAt(std::size_t index) const
{
    for (const auto &[name, idx] : labelMap)
        if (idx == index)
            return name;
    return std::nullopt;
}

std::vector<std::uint64_t>
Program::toBinary() const
{
    return encodeAll(instructions);
}

Program
Program::fromBinary(const std::vector<std::uint64_t> &image)
{
    return Program(decodeAll(image));
}

} // namespace quma::isa
