#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace quma::isa {

Instruction
Instruction::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return i;
}

Instruction
Instruction::mov(RegIndex rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = rd;
    i.imm = imm;
    return i;
}

Instruction
Instruction::add(RegIndex rd, RegIndex rs, RegIndex rt)
{
    Instruction i;
    i.op = Opcode::Add;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    return i;
}

Instruction
Instruction::addi(RegIndex rd, RegIndex rs, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::Addi;
    i.rd = rd;
    i.rs = rs;
    i.imm = imm;
    return i;
}

Instruction
Instruction::sub(RegIndex rd, RegIndex rs, RegIndex rt)
{
    Instruction i;
    i.op = Opcode::Sub;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    return i;
}

Instruction
Instruction::load(RegIndex rd, RegIndex rs, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::Load;
    i.rd = rd;
    i.rs = rs;
    i.imm = off;
    return i;
}

Instruction
Instruction::store(RegIndex rt, RegIndex rs, std::int64_t off)
{
    Instruction i;
    i.op = Opcode::Store;
    i.rt = rt;
    i.rs = rs;
    i.imm = off;
    return i;
}

Instruction
Instruction::beq(RegIndex rs, RegIndex rt, std::int64_t target)
{
    Instruction i;
    i.op = Opcode::Beq;
    i.rs = rs;
    i.rt = rt;
    i.imm = target;
    return i;
}

Instruction
Instruction::bne(RegIndex rs, RegIndex rt, std::int64_t target)
{
    Instruction i;
    i.op = Opcode::Bne;
    i.rs = rs;
    i.rt = rt;
    i.imm = target;
    return i;
}

Instruction
Instruction::br(std::int64_t target)
{
    Instruction i;
    i.op = Opcode::Br;
    i.imm = target;
    return i;
}

Instruction
Instruction::wait(std::int64_t cycles)
{
    Instruction i;
    i.op = Opcode::QWait;
    i.imm = cycles;
    return i;
}

Instruction
Instruction::waitReg(RegIndex rs)
{
    Instruction i;
    i.op = Opcode::QWaitReg;
    i.rs = rs;
    return i;
}

Instruction
Instruction::pulse(std::vector<PulseSlot> slots)
{
    quma_assert(!slots.empty() && slots.size() <= kMaxPulseSlots,
                "Pulse supports 1..", kMaxPulseSlots, " slots");
    Instruction i;
    i.op = Opcode::Pulse;
    i.slots = std::move(slots);
    return i;
}

Instruction
Instruction::pulse1(QubitMask mask, std::uint8_t uop)
{
    return pulse({PulseSlot{mask, uop}});
}

Instruction
Instruction::mpg(QubitMask mask, std::int64_t duration_cycles)
{
    Instruction i;
    i.op = Opcode::Mpg;
    i.qmask = mask;
    i.imm = duration_cycles;
    return i;
}

Instruction
Instruction::md(QubitMask mask, RegIndex rd)
{
    Instruction i;
    i.op = Opcode::Md;
    i.qmask = mask;
    i.rd = rd;
    return i;
}

Instruction
Instruction::apply(std::uint8_t gate, QubitMask mask)
{
    Instruction i;
    i.op = Opcode::Apply;
    i.gate = gate;
    i.qmask = mask;
    return i;
}

Instruction
Instruction::measure(QubitMask mask, RegIndex rd)
{
    Instruction i;
    i.op = Opcode::MeasureQ;
    i.qmask = mask;
    i.rd = rd;
    return i;
}

Instruction
Instruction::cnot(RegIndex qt, RegIndex qc)
{
    Instruction i;
    i.op = Opcode::Cnot;
    i.rd = qt;
    i.rs = qc;
    return i;
}

std::string
maskToString(QubitMask mask)
{
    std::ostringstream oss;
    oss << "{";
    bool first = true;
    for (unsigned q = 0; q < 32; ++q) {
        if (mask & (QubitMask{1} << q)) {
            if (!first)
                oss << ", ";
            oss << "q" << q;
            first = false;
        }
    }
    oss << "}";
    return oss.str();
}

std::string
toString(const Instruction &inst)
{
    std::ostringstream oss;
    oss << mnemonic(inst.op);
    auto reg = [](RegIndex r) { return "r" + std::to_string(r); };
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Mov:
        oss << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        oss << " " << reg(inst.rd) << ", " << reg(inst.rs) << ", "
            << reg(inst.rt);
        break;
      case Opcode::Addi:
      case Opcode::Shl:
      case Opcode::Shr:
        oss << " " << reg(inst.rd) << ", " << reg(inst.rs) << ", "
            << inst.imm;
        break;
      case Opcode::Load:
        oss << " " << reg(inst.rd) << ", " << reg(inst.rs) << "["
            << inst.imm << "]";
        break;
      case Opcode::Store:
        oss << " " << reg(inst.rt) << ", " << reg(inst.rs) << "["
            << inst.imm << "]";
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        oss << " " << reg(inst.rs) << ", " << reg(inst.rt) << ", "
            << inst.imm;
        break;
      case Opcode::Br:
        oss << " " << inst.imm;
        break;
      case Opcode::QWait:
        oss << " " << inst.imm;
        break;
      case Opcode::QWaitReg:
        oss << " " << reg(inst.rs);
        break;
      case Opcode::Pulse: {
        bool first = true;
        for (const auto &s : inst.slots) {
            oss << (first ? " " : ", ") << "(" << maskToString(s.mask)
                << ", " << static_cast<unsigned>(s.uop) << ")";
            first = false;
        }
        break;
      }
      case Opcode::Mpg:
        oss << " " << maskToString(inst.qmask) << ", " << inst.imm;
        break;
      case Opcode::Md:
        oss << " " << maskToString(inst.qmask) << ", " << reg(inst.rd);
        break;
      case Opcode::Apply:
        oss << " " << static_cast<unsigned>(inst.gate) << ", "
            << maskToString(inst.qmask);
        break;
      case Opcode::MeasureQ:
        oss << " " << maskToString(inst.qmask) << ", " << reg(inst.rd);
        break;
      case Opcode::Cnot:
        oss << " q" << static_cast<unsigned>(inst.rd) << ", q"
            << static_cast<unsigned>(inst.rs);
        break;
      case Opcode::NumOpcodes:
        break;
    }
    return oss.str();
}

} // namespace quma::isa
