/**
 * @file
 * Two-pass assembler for the QuMA mixed instruction set.
 *
 * The accepted syntax follows the paper's listings (Table 5,
 * Algorithm 3):
 *
 *     mov r15, 40000        # comment
 *   Outer_Loop:
 *     QNopReg r15
 *     Pulse {q2}, I         ; single-slot short form
 *     Pulse (q2, X180), (q3, Y90)
 *     Wait 4
 *     MPG {q2}, 300
 *     MD {q2}, r7           ; destination register optional
 *     Apply X180, q2
 *     Measure q2, r7
 *     CNOT q1, q2
 *     addi r1, r1, 1
 *     bne r1, r2, Outer_Loop
 *     halt
 *
 * Mnemonics are case-insensitive; `#` and `;` start comments; qubit
 * sets are written `{q0, q2}` (or a bare `q2`); micro-operations and
 * gates are looked up in the configured name tables.
 */

#ifndef QUMA_ISA_ASSEMBLER_HH
#define QUMA_ISA_ASSEMBLER_HH

#include <string>

#include "isa/nametable.hh"
#include "isa/program.hh"

namespace quma::isa {

class Assembler
{
  public:
    /** Construct with the standard name tables. */
    Assembler();
    Assembler(NameTable uop_names, NameTable gate_names);

    /** Assemble a full source text; fatal() with line info on error. */
    Program assemble(const std::string &source) const;

    /** Assemble a single instruction line (no labels). */
    Instruction assembleLine(const std::string &line) const;

    const NameTable &uopNames() const { return uopTable; }
    const NameTable &gateNames() const { return gateTable; }

  private:
    NameTable uopTable;
    NameTable gateTable;
};

} // namespace quma::isa

#endif // QUMA_ISA_ASSEMBLER_HH
