/**
 * @file
 * Disassembler: renders a Program back to assembly text that the
 * Assembler accepts (round-trip property is tested).
 */

#ifndef QUMA_ISA_DISASSEMBLER_HH
#define QUMA_ISA_DISASSEMBLER_HH

#include <string>

#include "isa/nametable.hh"
#include "isa/program.hh"

namespace quma::isa {

class Disassembler
{
  public:
    Disassembler();
    Disassembler(NameTable uop_names, NameTable gate_names);

    /** Render one instruction (labels printed as L<index>). */
    std::string render(const Instruction &inst) const;

    /** Render a whole program with synthesised branch-target labels. */
    std::string render(const Program &prog) const;

  private:
    NameTable uopTable;
    NameTable gateTable;
};

} // namespace quma::isa

#endif // QUMA_ISA_DISASSEMBLER_HH
