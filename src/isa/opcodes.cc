#include "isa/opcodes.hh"

#include <unordered_map>

#include "common/strings.hh"

namespace quma::isa {

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return "nop";
      case Opcode::Mov:
        return "mov";
      case Opcode::Add:
        return "add";
      case Opcode::Addi:
        return "addi";
      case Opcode::Sub:
        return "sub";
      case Opcode::And:
        return "and";
      case Opcode::Or:
        return "or";
      case Opcode::Xor:
        return "xor";
      case Opcode::Shl:
        return "shl";
      case Opcode::Shr:
        return "shr";
      case Opcode::Load:
        return "load";
      case Opcode::Store:
        return "store";
      case Opcode::Beq:
        return "beq";
      case Opcode::Bne:
        return "bne";
      case Opcode::Blt:
        return "blt";
      case Opcode::Bge:
        return "bge";
      case Opcode::Br:
        return "br";
      case Opcode::Halt:
        return "halt";
      case Opcode::QWait:
        return "Wait";
      case Opcode::QWaitReg:
        return "QNopReg";
      case Opcode::Pulse:
        return "Pulse";
      case Opcode::Mpg:
        return "MPG";
      case Opcode::Md:
        return "MD";
      case Opcode::Apply:
        return "Apply";
      case Opcode::MeasureQ:
        return "Measure";
      case Opcode::Cnot:
        return "CNOT";
      case Opcode::NumOpcodes:
        break;
    }
    return "<invalid>";
}

std::optional<Opcode>
opcodeFromMnemonic(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> t;
        for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
             ++i) {
            auto op = static_cast<Opcode>(i);
            std::string m = mnemonic(op);
            if (m != "<invalid>")
                t[toLower(m)] = op;
        }
        return t;
    }();
    auto it = table.find(toLower(name));
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

bool
isQuantum(Opcode op)
{
    auto v = static_cast<std::uint8_t>(op);
    return v >= static_cast<std::uint8_t>(Opcode::QWait) &&
           v < static_cast<std::uint8_t>(Opcode::NumOpcodes);
}

bool
isQis(Opcode op)
{
    auto v = static_cast<std::uint8_t>(op);
    return v >= static_cast<std::uint8_t>(Opcode::Apply) &&
           v < static_cast<std::uint8_t>(Opcode::NumOpcodes);
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Br:
        return true;
      default:
        return false;
    }
}

} // namespace quma::isa
