#include "isa/encoding.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace quma::isa {

namespace {

void
checkImm32(std::int64_t imm, const Instruction &inst)
{
    if (imm < INT32_MIN || imm > INT32_MAX)
        fatal("immediate out of 32-bit range in '", toString(inst), "'");
}

std::uint64_t
imm32Field(std::int64_t imm)
{
    return static_cast<std::uint32_t>(static_cast<std::int32_t>(imm));
}

} // namespace

std::uint64_t
encode(const Instruction &inst)
{
    std::uint64_t w = 0;
    w = insertBits(w, 63, 58, static_cast<std::uint64_t>(inst.op));
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        w = insertBits(w, 57, 53, inst.rd);
        w = insertBits(w, 52, 48, inst.rs);
        w = insertBits(w, 47, 43, inst.rt);
        break;
      case Opcode::Mov:
      case Opcode::Addi:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Load:
      case Opcode::Store:
        checkImm32(inst.imm, inst);
        w = insertBits(w, 57, 53, inst.rd);
        w = insertBits(w, 52, 48, inst.rs);
        w = insertBits(w, 47, 43, inst.rt);
        w = insertBits(w, 31, 0, imm32Field(inst.imm));
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Br:
        checkImm32(inst.imm, inst);
        w = insertBits(w, 57, 53, inst.rs);
        w = insertBits(w, 52, 48, inst.rt);
        w = insertBits(w, 31, 0, imm32Field(inst.imm));
        break;
      case Opcode::QWait:
        checkImm32(inst.imm, inst);
        w = insertBits(w, 31, 0, imm32Field(inst.imm));
        break;
      case Opcode::QWaitReg:
        w = insertBits(w, 52, 48, inst.rs);
        break;
      case Opcode::Pulse: {
        if (inst.slots.empty() || inst.slots.size() > kMaxPulseSlots)
            fatal("Pulse must carry 1..", kMaxPulseSlots, " slots");
        w = insertBits(w, 57, 56, inst.slots.size());
        for (std::size_t i = 0; i < inst.slots.size(); ++i) {
            const auto &s = inst.slots[i];
            if (s.mask > 0xff)
                fatal("Pulse qubit mask exceeds 8 encodable bits");
            unsigned base = static_cast<unsigned>(i) * 16;
            w = insertBits(w, base + 15, base + 8, s.mask);
            w = insertBits(w, base + 7, base, s.uop);
        }
        break;
      }
      case Opcode::Mpg:
        checkImm32(inst.imm, inst);
        if (inst.qmask > 0xffff)
            fatal("MPG qubit mask exceeds 16 encodable bits");
        w = insertBits(w, 55, 40, inst.qmask);
        w = insertBits(w, 31, 0, imm32Field(inst.imm));
        break;
      case Opcode::Md:
      case Opcode::MeasureQ:
        if (inst.qmask > 0xffff)
            fatal("MD/Measure qubit mask exceeds 16 encodable bits");
        w = insertBits(w, 55, 40, inst.qmask);
        w = insertBits(w, 39, 35, inst.rd);
        break;
      case Opcode::Apply:
        if (inst.qmask > 0xffff)
            fatal("Apply qubit mask exceeds 16 encodable bits");
        w = insertBits(w, 57, 50, inst.gate);
        w = insertBits(w, 15, 0, inst.qmask);
        break;
      case Opcode::Cnot:
        w = insertBits(w, 57, 53, inst.rd);
        w = insertBits(w, 52, 48, inst.rs);
        break;
      case Opcode::NumOpcodes:
        fatal("cannot encode invalid opcode");
    }
    return w;
}

Instruction
decode(std::uint64_t w)
{
    Instruction inst;
    auto opv = bits(w, 63, 58);
    if (opv >= static_cast<std::uint64_t>(Opcode::NumOpcodes))
        fatal("decode: invalid opcode value ", opv);
    inst.op = static_cast<Opcode>(opv);
    // Reject encodings in the reserved gaps.
    if (std::string(mnemonic(inst.op)) == "<invalid>")
        fatal("decode: reserved opcode value ", opv);

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        inst.rd = static_cast<RegIndex>(bits(w, 57, 53));
        inst.rs = static_cast<RegIndex>(bits(w, 52, 48));
        inst.rt = static_cast<RegIndex>(bits(w, 47, 43));
        break;
      case Opcode::Mov:
      case Opcode::Addi:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Load:
      case Opcode::Store:
        inst.rd = static_cast<RegIndex>(bits(w, 57, 53));
        inst.rs = static_cast<RegIndex>(bits(w, 52, 48));
        inst.rt = static_cast<RegIndex>(bits(w, 47, 43));
        inst.imm = signExtend(bits(w, 31, 0), 32);
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Br:
        inst.rs = static_cast<RegIndex>(bits(w, 57, 53));
        inst.rt = static_cast<RegIndex>(bits(w, 52, 48));
        inst.imm = signExtend(bits(w, 31, 0), 32);
        break;
      case Opcode::QWait:
        inst.imm = signExtend(bits(w, 31, 0), 32);
        break;
      case Opcode::QWaitReg:
        inst.rs = static_cast<RegIndex>(bits(w, 52, 48));
        break;
      case Opcode::Pulse: {
        auto count = bits(w, 57, 56);
        if (count == 0 || count > kMaxPulseSlots)
            fatal("decode: Pulse with invalid slot count ", count);
        for (unsigned i = 0; i < count; ++i) {
            unsigned base = i * 16;
            PulseSlot s;
            s.mask = static_cast<QubitMask>(bits(w, base + 15, base + 8));
            s.uop = static_cast<std::uint8_t>(bits(w, base + 7, base));
            inst.slots.push_back(s);
        }
        break;
      }
      case Opcode::Mpg:
        inst.qmask = static_cast<QubitMask>(bits(w, 55, 40));
        inst.imm = signExtend(bits(w, 31, 0), 32);
        break;
      case Opcode::Md:
      case Opcode::MeasureQ:
        inst.qmask = static_cast<QubitMask>(bits(w, 55, 40));
        inst.rd = static_cast<RegIndex>(bits(w, 39, 35));
        break;
      case Opcode::Apply:
        inst.gate = static_cast<std::uint8_t>(bits(w, 57, 50));
        inst.qmask = static_cast<QubitMask>(bits(w, 15, 0));
        break;
      case Opcode::Cnot:
        inst.rd = static_cast<RegIndex>(bits(w, 57, 53));
        inst.rs = static_cast<RegIndex>(bits(w, 52, 48));
        break;
      case Opcode::NumOpcodes:
        break;
    }
    return inst;
}

std::vector<std::uint64_t>
encodeAll(const std::vector<Instruction> &prog)
{
    std::vector<std::uint64_t> out;
    out.reserve(prog.size());
    for (const auto &inst : prog)
        out.push_back(encode(inst));
    return out;
}

std::vector<Instruction>
decodeAll(const std::vector<std::uint64_t> &image)
{
    std::vector<Instruction> out;
    out.reserve(image.size());
    for (auto w : image)
        out.push_back(decode(w));
    return out;
}

} // namespace quma::isa
