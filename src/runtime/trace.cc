#include "runtime/trace.hh"

#include <cstdio>
#include <map>
#include <utility>

namespace quma::runtime {

const char *
tracePhaseName(TracePhase phase)
{
    switch (phase) {
    case TracePhase::Submitted:
        return "submitted";
    case TracePhase::Admitted:
        return "admitted";
    case TracePhase::Queued:
        return "queued";
    case TracePhase::Leased:
        return "leased";
    case TracePhase::ShardStart:
        return "shard start";
    case TracePhase::ShardFinish:
        return "shard finish";
    case TracePhase::Merge:
        return "merge";
    case TracePhase::Finished:
        return "finished";
    case TracePhase::ResultPushed:
        return "result pushed";
    }
    return "unknown";
}

JobTraceRecorder::JobTraceRecorder(std::size_t capacity)
    : cap(capacity ? capacity : 1),
      epoch(std::chrono::steady_clock::now())
{
}

void
JobTraceRecorder::record(JobId job, TracePhase phase,
                         std::uint32_t shard)
{
    if (!enabled())
        return;
    auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
    std::lock_guard<std::mutex> lock(mu);
    if (buf.size() >= cap) {
        ++droppedCount;
        return;
    }
    buf.push_back({job, shard, phase, nanos});
}

void
JobTraceRecorder::setTraceId(JobId job, std::uint64_t traceId)
{
    if (!enabled() || traceId == 0)
        return;
    std::lock_guard<std::mutex> lock(mu);
    // Bounded like the event buffer: an association for a job whose
    // events were all dropped would never be rendered anyway.
    if (traceIds.size() >= cap && !traceIds.count(job))
        return;
    traceIds[job] = traceId;
}

std::uint64_t
JobTraceRecorder::traceIdOf(JobId job) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = traceIds.find(job);
    return it == traceIds.end() ? 0 : it->second;
}

std::vector<std::pair<JobId, std::uint64_t>>
JobTraceRecorder::traceIdPairs() const
{
    std::lock_guard<std::mutex> lock(mu);
    return {traceIds.begin(), traceIds.end()};
}

std::uint64_t
JobTraceRecorder::nowNanos() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

std::vector<TraceEvent>
JobTraceRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buf;
}

std::size_t
JobTraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buf.size();
}

std::size_t
JobTraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return droppedCount;
}

void
JobTraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    buf.clear();
    traceIds.clear();
    droppedCount = 0;
}

std::string
JobTraceRecorder::chromeTraceJson() const
{
    std::vector<TraceEvent> snapshot;
    std::unordered_map<JobId, std::uint64_t> ids;
    {
        std::lock_guard<std::mutex> lock(mu);
        snapshot = buf;
        ids = traceIds;
    }
    return "{\"traceEvents\":[" +
           renderChromeEvents(snapshot, ids, 0, 1) + "]}";
}

std::string
renderChromeEvents(
    const std::vector<TraceEvent> &events,
    const std::unordered_map<JobId, std::uint64_t> &traceIds,
    std::int64_t shift_nanos, int pid)
{
    std::string out;
    bool first = true;
    char line[384];
    char trace[40];

    // The optional ,"traceId":"..." args suffix for a job.
    auto traceArg = [&traceIds, &trace](JobId job) -> const char * {
        auto it = traceIds.find(job);
        if (it == traceIds.end() || it->second == 0)
            return "";
        std::snprintf(trace, sizeof trace,
                      ",\"traceId\":\"%016llx\"",
                      static_cast<unsigned long long>(it->second));
        return trace;
    };
    auto usOf = [shift_nanos](std::uint64_t nanos) {
        return static_cast<double>(static_cast<std::int64_t>(nanos) +
                                   shift_nanos) /
               1e3;
    };
    auto emit = [&out, &first](const char *text) {
        if (!first)
            out += ',';
        first = false;
        out += text;
    };

    // ShardStart events wait here for their matching ShardFinish;
    // unmatched starts (job still running at dump time) fall back to
    // instant events below.
    std::map<std::pair<JobId, std::uint32_t>, std::uint64_t> open;

    for (const TraceEvent &e : events) {
        if (e.phase == TracePhase::ShardStart) {
            open[{e.job, e.shard}] = e.nanos;
            continue;
        }
        if (e.phase == TracePhase::ShardFinish) {
            auto it = open.find({e.job, e.shard});
            if (it != open.end()) {
                double durUs =
                    static_cast<double>(e.nanos - it->second) / 1e3;
                std::snprintf(line, sizeof line,
                              "{\"name\":\"shard %u\",\"ph\":\"X\","
                              "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                              "\"tid\":%llu,\"args\":{\"job\":%llu,"
                              "\"shard\":%u%s}}",
                              e.shard, usOf(it->second), durUs, pid,
                              static_cast<unsigned long long>(e.job),
                              static_cast<unsigned long long>(e.job),
                              e.shard, traceArg(e.job));
                emit(line);
                open.erase(it);
                continue;
            }
        }
        std::snprintf(line, sizeof line,
                      "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":%d,\"tid\":%llu,\"s\":\"t\","
                      "\"args\":{\"job\":%llu,\"shard\":%u%s}}",
                      tracePhaseName(e.phase), usOf(e.nanos), pid,
                      static_cast<unsigned long long>(e.job),
                      static_cast<unsigned long long>(e.job), e.shard,
                      traceArg(e.job));
        emit(line);
    }

    // Shards still open at dump time: render what is known as an
    // instant so the start is not silently lost.
    for (const auto &[key, nanos] : open) {
        std::snprintf(line, sizeof line,
                      "{\"name\":\"shard %u (running)\",\"ph\":\"i\","
                      "\"ts\":%.3f,\"pid\":%d,\"tid\":%llu,\"s\":\"t\","
                      "\"args\":{\"job\":%llu,\"shard\":%u%s}}",
                      key.second, usOf(nanos), pid,
                      static_cast<unsigned long long>(key.first),
                      static_cast<unsigned long long>(key.first),
                      key.second, traceArg(key.first));
        emit(line);
    }

    return out;
}

} // namespace quma::runtime
