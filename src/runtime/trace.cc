#include "runtime/trace.hh"

#include <cstdio>
#include <map>
#include <utility>

namespace quma::runtime {

const char *
tracePhaseName(TracePhase phase)
{
    switch (phase) {
    case TracePhase::Submitted:
        return "submitted";
    case TracePhase::Admitted:
        return "admitted";
    case TracePhase::Queued:
        return "queued";
    case TracePhase::Leased:
        return "leased";
    case TracePhase::ShardStart:
        return "shard start";
    case TracePhase::ShardFinish:
        return "shard finish";
    case TracePhase::Merge:
        return "merge";
    case TracePhase::Finished:
        return "finished";
    case TracePhase::ResultPushed:
        return "result pushed";
    }
    return "unknown";
}

JobTraceRecorder::JobTraceRecorder(std::size_t capacity)
    : cap(capacity ? capacity : 1),
      epoch(std::chrono::steady_clock::now())
{
}

void
JobTraceRecorder::record(JobId job, TracePhase phase,
                         std::uint32_t shard)
{
    if (!enabled())
        return;
    auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
    std::lock_guard<std::mutex> lock(mu);
    if (buf.size() >= cap) {
        ++droppedCount;
        return;
    }
    buf.push_back({job, shard, phase, nanos});
}

std::vector<TraceEvent>
JobTraceRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buf;
}

std::size_t
JobTraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return buf.size();
}

std::size_t
JobTraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    return droppedCount;
}

void
JobTraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    buf.clear();
    droppedCount = 0;
}

std::string
JobTraceRecorder::chromeTraceJson() const
{
    std::vector<TraceEvent> snapshot = events();

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char line[256];

    auto emit = [&out, &first](const char *text) {
        if (!first)
            out += ',';
        first = false;
        out += text;
    };

    // ShardStart events wait here for their matching ShardFinish;
    // unmatched starts (job still running at dump time) fall back to
    // instant events below.
    std::map<std::pair<JobId, std::uint32_t>, std::uint64_t> open;

    for (const TraceEvent &e : snapshot) {
        double us = static_cast<double>(e.nanos) / 1e3;
        if (e.phase == TracePhase::ShardStart) {
            open[{e.job, e.shard}] = e.nanos;
            continue;
        }
        if (e.phase == TracePhase::ShardFinish) {
            auto it = open.find({e.job, e.shard});
            if (it != open.end()) {
                double beginUs = static_cast<double>(it->second) / 1e3;
                double durUs =
                    static_cast<double>(e.nanos - it->second) / 1e3;
                std::snprintf(line, sizeof line,
                              "{\"name\":\"shard %u\",\"ph\":\"X\","
                              "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                              "\"tid\":%llu,\"args\":{\"job\":%llu,"
                              "\"shard\":%u}}",
                              e.shard, beginUs, durUs,
                              static_cast<unsigned long long>(e.job),
                              static_cast<unsigned long long>(e.job),
                              e.shard);
                emit(line);
                open.erase(it);
                continue;
            }
        }
        std::snprintf(line, sizeof line,
                      "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
                      "\"pid\":1,\"tid\":%llu,\"s\":\"t\","
                      "\"args\":{\"job\":%llu,\"shard\":%u}}",
                      tracePhaseName(e.phase), us,
                      static_cast<unsigned long long>(e.job),
                      static_cast<unsigned long long>(e.job), e.shard);
        emit(line);
    }

    // Shards still open at dump time: render what is known as an
    // instant so the start is not silently lost.
    for (const auto &[key, nanos] : open) {
        std::snprintf(line, sizeof line,
                      "{\"name\":\"shard %u (running)\",\"ph\":\"i\","
                      "\"ts\":%.3f,\"pid\":1,\"tid\":%llu,\"s\":\"t\","
                      "\"args\":{\"job\":%llu,\"shard\":%u}}",
                      key.second, static_cast<double>(nanos) / 1e3,
                      static_cast<unsigned long long>(key.first),
                      static_cast<unsigned long long>(key.first),
                      key.second);
        emit(line);
    }

    out += "]}";
    return out;
}

} // namespace quma::runtime
