/**
 * @file
 * The experiment-backend interface: the submit / poll / await surface
 * of the concurrent runtime, abstracted away from WHERE the runtime
 * runs.
 *
 * Two implementations exist today:
 *
 *  - runtime::ExperimentService executes jobs in-process (the pooled
 *    machines live in this address space);
 *  - net::QumaClient forwards the same calls over a wire connection
 *    to a QumaServer driving a remote ExperimentService.
 *
 * Experiment fan-outs (AllXY, RB, coherence sweeps) program against
 * this interface, so the same sweep code runs unchanged against a
 * local service or a remote one -- and the determinism contract
 * (results are a pure function of the JobSpec) holds identically on
 * both paths, which is what the remote-vs-local bit-identity tests
 * pin.
 */

#ifndef QUMA_RUNTIME_BACKEND_HH
#define QUMA_RUNTIME_BACKEND_HH

#include <optional>
#include <vector>

#include "runtime/job.hh"

namespace quma::runtime {

class IExperimentBackend
{
  public:
    virtual ~IExperimentBackend() = default;

    /** Enqueue a job; blocks while the backend is at capacity. */
    virtual JobId submit(JobSpec spec) = 0;
    /** Enqueue a job; nullopt when admission rejects it. */
    virtual std::optional<JobId> trySubmit(JobSpec spec) = 0;

    virtual JobStatus status(JobId id) const = 0;
    /** The result once the job finished, nullopt while in flight. */
    virtual std::optional<JobResult> poll(JobId id) const = 0;
    /** Block until the job finishes and return its result. */
    virtual JobResult await(JobId id) = 0;

    /**
     * Submit a whole sweep's jobs at once; ids in argument order.
     * The default loops over submit(); remote backends override it
     * to PIPELINE the batch -- every spec leaves on the connection
     * before the first acknowledgement is read, so an N-point
     * fan-out pays roughly one round-trip instead of N.
     */
    virtual std::vector<JobId>
    submitAll(std::vector<JobSpec> specs)
    {
        std::vector<JobId> ids;
        ids.reserve(specs.size());
        for (JobSpec &spec : specs)
            ids.push_back(submit(std::move(spec)));
        return ids;
    }

    /** Await many jobs, results in argument order. */
    virtual std::vector<JobResult>
    awaitAll(const std::vector<JobId> &ids)
    {
        std::vector<JobResult> out;
        out.reserve(ids.size());
        for (JobId id : ids)
            out.push_back(await(id));
        return out;
    }

    /** Convenience: submit and block for the result. */
    virtual JobResult
    runSync(JobSpec spec)
    {
        return await(submit(std::move(spec)));
    }
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_BACKEND_HH
