#include "runtime/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"
#include "net/wire.hh"

namespace quma::runtime {

// --- shared record container ------------------------------------------------

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

/** Per-record length+CRC container overhead. */
constexpr std::size_t kRecordHeaderBytes = 8;
/** Defensive cap: no legitimate record approaches the wire's 64 MiB
 *  payload limit, so anything claiming more is damage, not data. */
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
appendRecord(std::vector<std::uint8_t> &out, std::uint16_t type,
             const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> body;
    body.reserve(2 + payload.size());
    body.push_back(static_cast<std::uint8_t>(type));
    body.push_back(static_cast<std::uint8_t>(type >> 8));
    body.insert(body.end(), payload.begin(), payload.end());

    putU32(out, static_cast<std::uint32_t>(body.size()));
    putU32(out, crc32(body.data(), body.size()));
    out.insert(out.end(), body.begin(), body.end());
}

ScanResult
scanRecords(const std::vector<std::uint8_t> &bytes,
            std::string_view magic)
{
    ScanResult result;
    if (bytes.size() < magic.size() ||
        std::memcmp(bytes.data(), magic.data(), magic.size()) != 0) {
        // A non-empty file with the wrong magic is damage; an empty
        // one is simply not a record file yet.
        result.corruptRecords = bytes.empty() ? 0 : 1;
        return result;
    }
    result.magicValid = true;

    std::size_t at = magic.size();
    while (at < bytes.size()) {
        if (bytes.size() - at < kRecordHeaderBytes) {
            result.corruptRecords = 1; // torn header
            return result;
        }
        const std::uint32_t len = getU32(bytes.data() + at);
        const std::uint32_t crc = getU32(bytes.data() + at + 4);
        if (len < 2 || len > kMaxRecordBytes ||
            bytes.size() - at - kRecordHeaderBytes < len) {
            result.corruptRecords = 1; // torn/garbage body
            return result;
        }
        const std::uint8_t *body = bytes.data() + at + kRecordHeaderBytes;
        if (crc32(body, len) != crc) {
            result.corruptRecords = 1; // bit flip
            return result;
        }
        ScannedRecord rec;
        rec.type = static_cast<std::uint16_t>(
            body[0] | static_cast<std::uint16_t>(body[1]) << 8);
        rec.payload.assign(body + 2, body + len);
        result.records.push_back(std::move(rec));
        at += kRecordHeaderBytes + len;
    }
    return result;
}

// --- recovery ---------------------------------------------------------------

std::optional<FsyncPolicy>
fsyncPolicyFromName(std::string_view name)
{
    if (name == "none")
        return FsyncPolicy::None;
    if (name == "batch")
        return FsyncPolicy::Batch;
    if (name == "always")
        return FsyncPolicy::Always;
    return std::nullopt;
}

RecoveryReport
recoverJournal(const std::string &path)
{
    RecoveryReport report;

    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return report; // no file: a fresh journal
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    if (bytes.empty())
        return report;
    report.journalExisted = true;

    ScanResult scan = scanRecords(bytes, kJournalMagic);
    report.corruptRecords = scan.corruptRecords;
    report.magicValid = scan.magicValid;
    if (scan.magicValid)
        report.validPrefixBytes = kJournalMagic.size();

    // Ordered pending set: id -> position in `order`, so recovered
    // jobs come back in original submission order.
    std::unordered_map<JobId, std::size_t> live;
    std::vector<std::optional<RecoveredJob>> order;

    auto retire = [&](JobId id) {
        auto it = live.find(id);
        if (it == live.end())
            return; // unknown/already-retired id: harmless
        order[it->second].reset();
        live.erase(it);
    };

    for (const ScannedRecord &rec : scan.records) {
        ++report.recordsScanned;
        try {
            net::Reader r(rec.payload);
            switch (static_cast<JournalRecordType>(rec.type)) {
            case JournalRecordType::Submitted: {
                RecoveredJob job;
                job.journalId = r.u64();
                job.spec = net::decodeJobSpec(r);
                r.expectEnd();
                live[job.journalId] = order.size();
                order.emplace_back(std::move(job));
                ++report.submitted;
                break;
            }
            case JournalRecordType::Completed: {
                const JobId id = r.u64();
                r.u8(); // failed flag: completed either way
                r.expectEnd();
                retire(id);
                ++report.completed;
                break;
            }
            case JournalRecordType::Cancelled: {
                const JobId id = r.u64();
                r.expectEnd();
                retire(id);
                ++report.cancelled;
                break;
            }
            case JournalRecordType::Resubmitted: {
                RecoveredJob job;
                const JobId old_id = r.u64();
                job.journalId = r.u64();
                job.spec = net::decodeJobSpec(r);
                r.expectEnd();
                retire(old_id);
                live[job.journalId] = order.size();
                order.emplace_back(std::move(job));
                ++report.resubmitted;
                break;
            }
            default:
                // Unknown type with a valid CRC: a future version's
                // record. Skip it rather than dropping the tail.
                break;
            }
            report.validPrefixBytes +=
                kRecordHeaderBytes + 2 + rec.payload.size();
        }
        catch (const net::WireError &) {
            // CRC-valid but undecodable body: count and stop, the
            // prefix before it is still trustworthy.
            ++report.corruptRecords;
            break;
        }
    }

    for (std::optional<RecoveredJob> &slot : order)
        if (slot)
            report.pending.push_back(std::move(*slot));
    return report;
}

// --- compaction -------------------------------------------------------------

CompactionReport
compactJournal(const std::string &path,
               const RecoveryReport &recovered)
{
    CompactionReport report;
    report.recordsBefore = recovered.recordsScanned;
    report.recordsAfter = recovered.pending.size();
    if (!recovered.magicValid)
        return report; // foreign or absent file: never touch it

    {
        struct stat st{};
        if (::stat(path.c_str(), &st) == 0)
            report.bytesBefore = static_cast<std::size_t>(st.st_size);
    }

    // The live suffix: magic + one Submitted record per pending job,
    // under its surviving journal id (a Resubmitted chain collapses
    // to its last id -- recovery treats both spellings identically).
    std::vector<std::uint8_t> bytes(kJournalMagic.begin(),
                                    kJournalMagic.end());
    for (const RecoveredJob &job : recovered.pending) {
        net::Writer w;
        w.u64(job.journalId);
        net::encodeJobSpec(w, job.spec);
        appendRecord(
            bytes,
            static_cast<std::uint16_t>(JournalRecordType::Submitted),
            w.bytes());
    }

    // Temp + fsync + rename: atomic replacement, crash-safe.
    const std::string tmp = path + ".compact";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("journal: compaction cannot open '" + tmp +
             "': " + std::strerror(errno));
        return report;
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + written,
                            bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("journal: compaction write to '" + tmp +
                 "' failed: " + std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return report;
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        warn("journal: compaction fsync of '" + tmp +
             "' failed: " + std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return report;
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("journal: compaction rename onto '" + path +
             "' failed: " + std::strerror(errno));
        ::unlink(tmp.c_str());
        return report;
    }
    report.performed = true;
    report.bytesAfter = bytes.size();
    return report;
}

// --- the journal append side ------------------------------------------------

JobJournal::JobJournal(JournalConfig config)
    : cfg(std::move(config))
{
    fd = ::open(cfg.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        fatal("journal: cannot open '" + cfg.path +
                      "': " + std::strerror(errno));

    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size == 0) {
        // Fresh file: stamp the magic synchronously, before any
        // record can race it through the writer thread.
        if (::write(fd, kJournalMagic.data(), kJournalMagic.size()) !=
            static_cast<ssize_t>(kJournalMagic.size())) {
            ::close(fd);
            fatal("journal: cannot write magic to '" +
                          cfg.path + "': " + std::strerror(errno));
        }
    }

    writer = std::thread([this] { writerLoop(); });
}

JobJournal::~JobJournal() { close(); }

std::optional<JobJournal::EncodedSpec>
JobJournal::encodeSpec(const JobSpec &spec)
{
    if (spec.program.has_value())
        return std::nullopt; // no serialized form; see header
    net::Writer w;
    net::encodeJobSpec(w, spec);
    return w.bytes();
}

void
JobJournal::appendSubmitted(JobId id, const EncodedSpec &spec)
{
    net::Writer w;
    w.u64(id);
    std::vector<std::uint8_t> payload = w.bytes();
    payload.insert(payload.end(), spec.begin(), spec.end());

    std::vector<std::uint8_t> record;
    appendRecord(record,
                 static_cast<std::uint16_t>(JournalRecordType::Submitted),
                 payload);
    append(std::move(record), cfg.fsync == FsyncPolicy::Always);
}

void
JobJournal::appendResubmitted(JobId old_id, JobId new_id,
                              const EncodedSpec &spec)
{
    net::Writer w;
    w.u64(old_id);
    w.u64(new_id);
    std::vector<std::uint8_t> payload = w.bytes();
    payload.insert(payload.end(), spec.begin(), spec.end());

    std::vector<std::uint8_t> record;
    appendRecord(
        record,
        static_cast<std::uint16_t>(JournalRecordType::Resubmitted),
        payload);
    append(std::move(record), cfg.fsync == FsyncPolicy::Always);
}

void
JobJournal::appendCompleted(JobId id, bool failed)
{
    net::Writer w;
    w.u64(id);
    w.u8(failed ? 1 : 0);
    std::vector<std::uint8_t> record;
    appendRecord(record,
                 static_cast<std::uint16_t>(JournalRecordType::Completed),
                 w.bytes());
    append(std::move(record), false);
}

void
JobJournal::appendCancelled(JobId id)
{
    net::Writer w;
    w.u64(id);
    std::vector<std::uint8_t> record;
    appendRecord(record,
                 static_cast<std::uint16_t>(JournalRecordType::Cancelled),
                 w.bytes());
    append(std::move(record), false);
}

void
JobJournal::append(std::vector<std::uint8_t> &&record, bool await_durable)
{
    std::unique_lock<std::mutex> lock(mu);
    if (closed)
        return;
    counters.recordsAppended += 1;
    counters.bytesAppended += record.size();
    pending.push_back(std::move(record));
    const std::uint64_t seq = ++appendedSeq;
    cvWork.notify_one();
    if (await_durable)
        cvDurable.wait(lock, [&] { return durableSeq >= seq || closed; });
}

void
JobJournal::sync()
{
    std::unique_lock<std::mutex> lock(mu);
    const std::uint64_t seq = appendedSeq;
    cvDurable.wait(lock, [&] { return durableSeq >= seq || closed; });
    // Under FsyncPolicy::None reaching durableSeq only means the
    // write()s landed; sync() promises durability, so fsync here.
    // Done under mu: it serializes against close()'s ::close(fd),
    // and sync() is a shutdown/test path, never a hot one.
    if (!closed && fd >= 0 && cfg.fsync == FsyncPolicy::None &&
        ::fsync(fd) == 0)
        counters.fsyncs += 1;
}

void
JobJournal::close()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        if (closed && !writer.joinable())
            return;
        // Let the writer drain what is queued, then stop it.
        const std::uint64_t seq = appendedSeq;
        cvDurable.wait(lock, [&] { return durableSeq >= seq; });
        closed = true;
        cvWork.notify_all();
        cvDurable.notify_all();
    }
    if (writer.joinable())
        writer.join();
    if (fd >= 0) {
        ::fsync(fd); // the close() contract: everything durable
        ::close(fd);
        fd = -1;
    }
}

JournalStats
JobJournal::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

void
JobJournal::bindMetrics(metrics::MetricsRegistry &registry)
{
    registry.counterFn("quma_journal_records_total",
                       "Records appended to the job journal.", {},
                       [this] {
                           return static_cast<double>(
                               stats().recordsAppended);
                       });
    registry.counterFn("quma_journal_bytes_total",
                       "Bytes appended to the job journal.", {},
                       [this] {
                           return static_cast<double>(
                               stats().bytesAppended);
                       });
    registry.counterFn("quma_journal_fsyncs_total",
                       "fsync() calls issued by the journal writer.",
                       {}, [this] {
                           return static_cast<double>(stats().fsyncs);
                       });
    registry.counterFn(
        "quma_journal_append_errors_total",
        "Journal write()/fsync() failures (journal keeps serving).",
        {}, [this] {
            return static_cast<double>(stats().appendErrors);
        });
    registry.gaugeFn("quma_journal_queue_depth",
                     "Records queued for the journal writer thread.",
                     {}, [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(pending.size());
                     });
    fsyncLatency = registry.histogram(
        "quma_journal_fsync_seconds",
        "Journal fsync() latency (the durability gate of "
        "FsyncPolicy::Always submissions).",
        metrics::latencyBucketsSeconds());
}

void
JobJournal::writerLoop()
{
    for (;;) {
        std::vector<std::vector<std::uint8_t>> batch;
        std::uint64_t batch_end = 0;
        bool someone_waiting = false;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvWork.wait(lock,
                        [&] { return !pending.empty() || closed; });
            if (pending.empty() && closed)
                return;
            while (!pending.empty()) {
                batch.push_back(std::move(pending.front()));
                pending.pop_front();
            }
            batch_end = appendedSeq;
            // sync() and Always-appends both wait on cvDurable, so
            // any waiter means this batch must hit the platter.
            someone_waiting = cfg.fsync == FsyncPolicy::Always;
        }

        // Coalesce the batch into one write(): records stay atomic
        // within the file because O_APPEND writes are positioned by
        // the kernel and this is the only writer.
        std::vector<std::uint8_t> blob;
        for (const auto &rec : batch)
            blob.insert(blob.end(), rec.begin(), rec.end());

        bool io_error = false;
        std::size_t off = 0;
        while (off < blob.size()) {
            const ssize_t n =
                ::write(fd, blob.data() + off, blob.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                io_error = true;
                break;
            }
            off += static_cast<std::size_t>(n);
        }

        const bool want_fsync =
            !io_error &&
            (cfg.fsync != FsyncPolicy::None || someone_waiting);
        bool did_fsync = false;
        if (want_fsync) {
            const auto t0 = std::chrono::steady_clock::now();
            if (::fsync(fd) == 0)
                did_fsync = true;
            else
                io_error = true;
            fsyncLatency.observe(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }

        {
            std::lock_guard<std::mutex> lock(mu);
            if (io_error) {
                counters.appendErrors += 1;
                warn("journal: append failed on '" + cfg.path +
                             "': " + std::strerror(errno));
            }
            if (did_fsync)
                counters.fsyncs += 1;
            // Advance even on error: a wedged disk must not deadlock
            // submission (the error is counted and logged instead).
            durableSeq = batch_end;
            cvDurable.notify_all();
        }
    }
}

} // namespace quma::runtime
