#include "runtime/job.hh"

#include <algorithm>
#include <sstream>

#include "runtime/keys.hh"

namespace quma::runtime {

using keys::appendBits;
using keys::appendInt;

std::vector<RoundRange>
partitionRounds(std::size_t rounds, std::size_t shards,
                std::size_t min_rounds_per_shard)
{
    if (rounds == 0)
        return {};
    std::size_t minRounds = std::max<std::size_t>(min_rounds_per_shard, 1);
    std::size_t s = std::max<std::size_t>(shards, 1);
    s = std::min(s, std::max<std::size_t>(rounds / minRounds, 1));
    s = std::min(s, rounds);

    // Balanced contiguous split: the first (rounds % s) shards take
    // one extra round, so sizes differ by at most one.
    std::vector<RoundRange> out;
    out.reserve(s);
    std::size_t base = rounds / s;
    std::size_t extra = rounds % s;
    std::size_t at = 0;
    for (std::size_t i = 0; i < s; ++i) {
        std::size_t len = base + (i < extra ? 1 : 0);
        out.push_back({at, at + len});
        at += len;
    }
    return out;
}

std::string
configKey(const core::MachineConfig &config)
{
    std::ostringstream os;
    appendInt(os, config.qubits.size());
    for (const auto &q : config.qubits) {
        appendBits(os, q.freqHz);
        appendBits(os, q.resonatorHz);
        appendBits(os, q.t1Ns);
        appendBits(os, q.t2Ns);
        appendBits(os, q.quasiStaticDetuningSigmaHz);
        appendBits(os, q.rabiRadPerAmpNs);
        appendBits(os, q.readout.c0.real());
        appendBits(os, q.readout.c0.imag());
        appendBits(os, q.readout.c1.real());
        appendBits(os, q.readout.c1.imag());
        appendBits(os, q.readout.noiseSigma);
        appendBits(os, q.readout.ifHz);
        appendBits(os, q.readout.adcRateHz);
    }
    appendInt(os, config.numAwgs);
    appendInt(os, config.driveAwg.size());
    for (unsigned a : config.driveAwg)
        appendInt(os, a);
    appendBits(os, config.ssbHz);
    appendBits(os, config.pulseNs);
    appendInt(os, config.gateWaitCycles);
    appendBits(os, config.amplitudeError);
    appendBits(os, config.carrierDetuningHz);
    appendInt(os, config.uopDelayCycles);
    appendInt(os, config.ctpgDelayCycles);
    appendInt(os, config.mduLatencyCycles);
    appendInt(os, config.msmtCycles);
    appendInt(os, static_cast<std::uint64_t>(config.msmtPathDelayCycles));
    appendInt(os, config.czDurationNs);
    appendBits(os, config.msmtCarrierHz);
    appendInt(os, config.exec.issueWidth);
    appendInt(os, config.exec.stallInjection ? 1 : 0);
    appendBits(os, config.exec.stallProbability);
    appendInt(os, config.exec.maxStallCycles);
    appendInt(os, config.exec.dataMemoryWords);
    appendInt(os, config.timing.timingQueueCapacity);
    appendInt(os, config.timing.pulseQueueCapacity);
    appendInt(os, config.timing.mpgQueueCapacity);
    appendInt(os, config.timing.mdQueueCapacity);
    appendInt(os, config.timing.numPulseQueues);
    appendInt(os, config.timing.numMdQueues);
    appendInt(os, config.qmbDepth);
    appendInt(os, config.qmbDrainRate);
    appendInt(os, config.traceEnabled ? 1 : 0);
    // config.chipSeed and config.exec.seed are intentionally omitted:
    // every job reseeds its machine from the job seed.
    return os.str();
}

} // namespace quma::runtime
