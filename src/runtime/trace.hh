/**
 * @file
 * Job-lifecycle tracing: every job's path through the runtime as
 * timestamped span points.
 *
 * A JobTraceRecorder captures one TraceEvent per lifecycle phase --
 * submitted -> admitted -> queued -> leased -> per-shard start/finish
 * -> merge -> finished -> result pushed -- from the scheduler's
 * instrumentation points. The recorder is OFF by default and its
 * disabled fast path is one relaxed atomic load and a predicted
 * branch per call site (the near-zero-overhead guarantee the
 * metrics-overhead bench section pins): enabling tracing is a
 * runtime decision, not a build flag.
 *
 * Events live in a bounded in-memory buffer (capacity at
 * construction; overflow increments dropped() instead of growing or
 * blocking -- an incident recorder must never become the incident).
 * Timestamps are steady-clock nanoseconds since the recorder's
 * epoch, so spans subtract cleanly and never jump with wall-clock
 * adjustments.
 *
 * The capture is retrievable as raw events (events()) and dumpable
 * as Chrome trace-event JSON (chromeTraceJson()): load the dump in
 * chrome://tracing or Perfetto to see queue residence and shard
 * parallelism per job on a common timeline. Pair-phases
 * (ShardStart/ShardFinish) become complete ("X") slices; the rest
 * are instant events on the job's track.
 */

#ifndef QUMA_RUNTIME_TRACE_HH
#define QUMA_RUNTIME_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/job.hh"

namespace quma::runtime {

/** Lifecycle phase of a traced event. */
enum class TracePhase : std::uint8_t
{
    /** Job accepted by a submit path (id assigned). */
    Submitted = 0,
    /** Job passed admission control (trySubmit) or the blocking
     *  queue-space wait (submit/submitFor). */
    Admitted = 1,
    /** Job's tasks entered the priority queue. */
    Queued = 2,
    /** A worker bound one of the job's tasks to a machine lease. */
    Leased = 3,
    /** One shard (or the whole opaque job, shard 0) started running. */
    ShardStart = 4,
    /** That shard finished (successfully or not). */
    ShardFinish = 5,
    /** The deterministic round-order merge of the shard partials. */
    Merge = 6,
    /** The job reached its final Done/Failed status. */
    Finished = 7,
    /** A completion notification was delivered to a subscriber
     *  (e.g. the serving layer pushed the result frame). */
    ResultPushed = 8,
};

/** Stable lower-case name of a phase ("submitted", "leased", ...). */
const char *tracePhaseName(TracePhase phase);

struct TraceEvent
{
    JobId job = 0;
    std::uint32_t shard = 0;
    TracePhase phase = TracePhase::Submitted;
    /** Steady-clock nanoseconds since the recorder epoch. */
    std::uint64_t nanos = 0;
};

class JobTraceRecorder
{
  public:
    /** @param capacity event-buffer bound; overflow counts dropped */
    explicit JobTraceRecorder(std::size_t capacity = 1 << 16);

    JobTraceRecorder(const JobTraceRecorder &) = delete;
    JobTraceRecorder &operator=(const JobTraceRecorder &) = delete;

    void enable() { on.store(true, std::memory_order_relaxed); }
    void disable() { on.store(false, std::memory_order_relaxed); }
    /** The disabled fast path every instrumentation site runs. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Append one event (no-op while disabled; bounded). */
    void record(JobId job, TracePhase phase, std::uint32_t shard = 0);

    /**
     * Associate a job with a client-provided distributed traceId
     * (0 = none; no-op while disabled, bounded like the buffer).
     * Events need no per-event copy: the dump joins on job id.
     */
    void setTraceId(JobId job, std::uint64_t traceId);
    /** The job's distributed traceId, or 0 when none was recorded. */
    std::uint64_t traceIdOf(JobId job) const;
    /** Snapshot of every job -> traceId association. */
    std::vector<std::pair<JobId, std::uint64_t>> traceIdPairs() const;

    /**
     * "Now" on the recorder's trace clock: steady-clock nanoseconds
     * since the epoch, the timebase of every buffered event. What
     * the wire ClockSync exchange samples so a remote client can
     * shift this recorder's timestamps into its own trace clock.
     */
    std::uint64_t nowNanos() const;

    /** Snapshot of the captured events, in record order. */
    std::vector<TraceEvent> events() const;
    std::size_t eventCount() const;
    /** Events lost to the capacity bound since the last clear(). */
    std::size_t dropped() const;
    void clear();

    /**
     * The capture as Chrome trace-event JSON (the
     * {"traceEvents":[...]} envelope): ShardStart/ShardFinish pairs
     * render as complete "X" slices (one track per job, one slice
     * per shard), everything else as instant events on the job's
     * track. Timestamps in microseconds since the recorder epoch.
     */
    std::string chromeTraceJson() const;

  private:
    std::atomic<bool> on{false};
    const std::size_t cap;
    const std::chrono::steady_clock::time_point epoch;
    mutable std::mutex mu;
    std::vector<TraceEvent> buf;
    std::unordered_map<JobId, std::uint64_t> traceIds;
    std::size_t droppedCount = 0;
};

/**
 * Render trace events as the comma-joined bodies of a Chrome
 * trace-event array (no envelope): ShardStart/ShardFinish pairs as
 * "X" slices, the rest as instants. `traceIds` annotates each job's
 * args with its distributed traceId (jobs absent from the map get
 * none); `shift_nanos` is added to every timestamp, which is how a
 * client folds a server dump into its own trace clock; `pid` keys
 * the Perfetto process track ("server" and "client" halves of a
 * merged trace use different pids). Returns "" for no events.
 */
std::string renderChromeEvents(
    const std::vector<TraceEvent> &events,
    const std::unordered_map<JobId, std::uint64_t> &traceIds,
    std::int64_t shift_nanos, int pid);

} // namespace quma::runtime

#endif // QUMA_RUNTIME_TRACE_HH
