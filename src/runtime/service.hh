/**
 * @file
 * ExperimentService: the facade of the concurrent experiment runtime.
 *
 * Owns the three layers -- ProgramCache (compilation/calibration
 * memoization), MachinePool (sharded reusable machines), JobScheduler
 * (bounded queue + workers) -- wired together, and exposes the small
 * submit / poll / await surface experiments and services program
 * against:
 *
 *     runtime::ExperimentService svc({.workers = 4});
 *     auto id = svc.submit({.assembly = src, .bins = 42, .seed = s});
 *     runtime::JobResult r = svc.await(id);
 */

#ifndef QUMA_RUNTIME_SERVICE_HH
#define QUMA_RUNTIME_SERVICE_HH

#include <memory>
#include <vector>

#include "common/metrics.hh"
#include "runtime/backend.hh"
#include "runtime/journal.hh"
#include "runtime/machine_pool.hh"
#include "runtime/program_cache.hh"
#include "runtime/scheduler.hh"
#include "runtime/trace.hh"

namespace quma::runtime {

struct ServiceConfig
{
    unsigned workers = 2;
    std::size_t queueCapacity = 256;
    /** Pool capacity; 0 = workers + 2 (one spare per config flip). */
    std::size_t poolCapacity = 0;
    std::size_t cachedPrograms = 256;
    std::size_t cachedLuts = 64;
    bool startPaused = false;
    std::size_t leaseBatchLimit = 8;
    std::size_t maxRetainedResults = 65536;
    /** Priority aging: one class step per this many newer
     *  submissions (0 = pure class order, no aging). */
    std::size_t agingQuantum = 64;
    /** Machine-stats-driven admission control for trySubmit (see
     *  SchedulerConfig for the saturation knobs). */
    bool adaptiveAdmission = true;
    double saturationThreshold = 0.5;
    double congestedQueueFraction = 0.25;
    double saturationAlpha = 0.25;
    /** Pool-wait admission signal (see SchedulerConfig). */
    double poolWaitThresholdSeconds = 0.02;
    double poolWaitAlpha = 0.25;
    /** Work stealing between shards (see SchedulerConfig). */
    bool workSteal = true;
    std::size_t minStealRounds = 4;
    /** Per-job progress-notification rate limit (see
     *  SchedulerConfig::progressInterval; 0 = every round). */
    std::chrono::milliseconds progressInterval{50};
    /** Completion-order ring kept by finishedIds(). */
    std::size_t finishedHistoryLimit = 1024;
    /** Job-lifecycle trace buffer bound (events, not jobs). */
    std::size_t traceCapacity = 1 << 16;
    /**
     * Write-ahead job journal file ("" = durability off). On
     * construction the service first RECOVERS the journal at this
     * path -- every submitted-but-never-completed job found there is
     * re-submitted (fresh ids; see recoveredIds()) -- and then
     * journals every accepted submission and completion, so queued
     * work survives a process crash. See docs/durability.md.
     */
    std::string journalPath = {};
    /** Journal durability/latency trade-off (see FsyncPolicy). */
    FsyncPolicy journalFsync = FsyncPolicy::Batch;
    /**
     * Recovery-time journal compaction trigger: when at least this
     * many RETIRED records (completions, cancellations, and the
     * submissions they closed -- everything but the live suffix)
     * are found, the journal is rewritten to just its pending jobs
     * before reopening (compactJournal). 0 disables compaction.
     */
    std::size_t journalCompactMinRetired = 1024;
    /**
     * Stable identity of this service instance in a fleet ("" =
     * anonymous). The gateway's per-backend metrics and the
     * /healthz//statusz pages surface it, so an operator can tell
     * WHICH backend a fleet-level symptom points at.
     */
    std::string instanceName = {};
};

/** One-call snapshot across all three runtime layers. */
struct ServiceStats
{
    JobScheduler::Stats scheduler;
    MachinePool::Stats pool;
    ProgramCache::Stats cache;
    std::size_t effectiveQueueCapacity = 0;
};

/**
 * The in-process IExperimentBackend: jobs run on this address
 * space's machine pool. net::QumaClient is the remote counterpart,
 * and experiment fan-outs accept either through the interface.
 */
class ExperimentService : public IExperimentBackend
{
  public:
    explicit ExperimentService(ServiceConfig config = {});
    /** Closes the journal FIRST (see JobJournal::close), so jobs the
     *  scheduler fails at shutdown stay pending on disk. */
    ~ExperimentService() override;

    JobId submit(JobSpec spec) override;
    std::optional<JobId> trySubmit(JobSpec spec) override;
    /**
     * JobScheduler::submitFor with journaling: the serving layer's
     * interruptible submit must journal exactly like submit() does,
     * or remote work would not survive a crash.
     */
    std::optional<JobId> submitFor(const JobSpec &spec,
                                   std::chrono::milliseconds timeout);

    JobStatus
    status(JobId id) const override
    {
        return sched.status(id);
    }
    std::optional<JobResult>
    poll(JobId id) const override
    {
        return sched.poll(id);
    }
    JobResult await(JobId id) override { return sched.await(id); }

    /** Await many jobs, results in argument order. */
    std::vector<JobResult>
    awaitAll(const std::vector<JobId> &ids) override;

    void start() { sched.start(); }
    void drain() { sched.drain(); }

    ProgramCache &cache() { return cacheStore; }
    MachinePool &pool() { return poolStore; }
    JobScheduler &scheduler() { return sched; }

    /**
     * Job-lifecycle trace recorder wired into the scheduler. Off by
     * default; trace().enable() starts capturing.
     */
    JobTraceRecorder &trace() { return traceStore; }
    const JobTraceRecorder &trace() const { return traceStore; }

    /** The write-ahead journal; null when journalPath was "". */
    JobJournal *journal() { return journalStore.get(); }
    /** What construction-time recovery found in the journal. */
    const RecoveryReport &recovery() const { return recoveryReport; }
    /** What recovery-time compaction did (performed=false when the
     *  retired-record count was under the trigger). */
    const CompactionReport &compaction() const
    {
        return compactionReport;
    }
    /** ServiceConfig::instanceName ("" = anonymous). */
    const std::string &instanceName() const
    {
        return instanceNameStore;
    }
    /**
     * Fresh ids of the jobs recovery re-submitted, in original
     * submission order (await these to finish the crashed queue).
     */
    const std::vector<JobId> &recoveredIds() const
    {
        return recoveredIdsStore;
    }

    /** Snapshot of all three layers (what StatsFrame serializes). */
    ServiceStats stats() const;

    /**
     * Register every layer's series with `registry`. The service
     * must outlive the registry's last render: gauge callbacks read
     * live component state.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    /** Journal the job's eventual completion (no-op without a
     *  journal). Registered AFTER the Submitted append, so the
     *  single-writer queue keeps the record order causal. */
    void subscribeJournal(JobId id);

    ProgramCache cacheStore;
    MachinePool poolStore;
    /** Before sched: SchedulerConfig::trace points here. */
    JobTraceRecorder traceStore;
    /** Recovery runs before the journal reopens for appending (both
     *  before sched: the ctor body re-submits into a live queue). */
    RecoveryReport recoveryReport;
    /** Compaction (if triggered) rewrites the file between recovery
     *  and the reopen below -- declaration order is the sequencing. */
    CompactionReport compactionReport;
    std::unique_ptr<JobJournal> journalStore;
    JobScheduler sched;
    std::vector<JobId> recoveredIdsStore;
    std::string instanceNameStore;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_SERVICE_HH
