/**
 * @file
 * ExperimentService: the facade of the concurrent experiment runtime.
 *
 * Owns the three layers -- ProgramCache (compilation/calibration
 * memoization), MachinePool (sharded reusable machines), JobScheduler
 * (bounded queue + workers) -- wired together, and exposes the small
 * submit / poll / await surface experiments and services program
 * against:
 *
 *     runtime::ExperimentService svc({.workers = 4});
 *     auto id = svc.submit({.assembly = src, .bins = 42, .seed = s});
 *     runtime::JobResult r = svc.await(id);
 */

#ifndef QUMA_RUNTIME_SERVICE_HH
#define QUMA_RUNTIME_SERVICE_HH

#include <vector>

#include "common/metrics.hh"
#include "runtime/backend.hh"
#include "runtime/machine_pool.hh"
#include "runtime/program_cache.hh"
#include "runtime/scheduler.hh"
#include "runtime/trace.hh"

namespace quma::runtime {

struct ServiceConfig
{
    unsigned workers = 2;
    std::size_t queueCapacity = 256;
    /** Pool capacity; 0 = workers + 2 (one spare per config flip). */
    std::size_t poolCapacity = 0;
    std::size_t cachedPrograms = 256;
    std::size_t cachedLuts = 64;
    bool startPaused = false;
    std::size_t leaseBatchLimit = 8;
    std::size_t maxRetainedResults = 65536;
    /** Priority aging: one class step per this many newer
     *  submissions (0 = pure class order, no aging). */
    std::size_t agingQuantum = 64;
    /** Machine-stats-driven admission control for trySubmit (see
     *  SchedulerConfig for the saturation knobs). */
    bool adaptiveAdmission = true;
    double saturationThreshold = 0.5;
    double congestedQueueFraction = 0.25;
    double saturationAlpha = 0.25;
    /** Pool-wait admission signal (see SchedulerConfig). */
    double poolWaitThresholdSeconds = 0.02;
    double poolWaitAlpha = 0.25;
    /** Work stealing between shards (see SchedulerConfig). */
    bool workSteal = true;
    std::size_t minStealRounds = 4;
    /** Completion-order ring kept by finishedIds(). */
    std::size_t finishedHistoryLimit = 1024;
    /** Job-lifecycle trace buffer bound (events, not jobs). */
    std::size_t traceCapacity = 1 << 16;
};

/** One-call snapshot across all three runtime layers. */
struct ServiceStats
{
    JobScheduler::Stats scheduler;
    MachinePool::Stats pool;
    ProgramCache::Stats cache;
    std::size_t effectiveQueueCapacity = 0;
};

/**
 * The in-process IExperimentBackend: jobs run on this address
 * space's machine pool. net::QumaClient is the remote counterpart,
 * and experiment fan-outs accept either through the interface.
 */
class ExperimentService : public IExperimentBackend
{
  public:
    explicit ExperimentService(ServiceConfig config = {});

    JobId
    submit(JobSpec spec) override
    {
        return sched.submit(std::move(spec));
    }
    std::optional<JobId>
    trySubmit(JobSpec spec) override
    {
        return sched.trySubmit(std::move(spec));
    }

    JobStatus
    status(JobId id) const override
    {
        return sched.status(id);
    }
    std::optional<JobResult>
    poll(JobId id) const override
    {
        return sched.poll(id);
    }
    JobResult await(JobId id) override { return sched.await(id); }

    /** Await many jobs, results in argument order. */
    std::vector<JobResult>
    awaitAll(const std::vector<JobId> &ids) override;

    void start() { sched.start(); }
    void drain() { sched.drain(); }

    ProgramCache &cache() { return cacheStore; }
    MachinePool &pool() { return poolStore; }
    JobScheduler &scheduler() { return sched; }

    /**
     * Job-lifecycle trace recorder wired into the scheduler. Off by
     * default; trace().enable() starts capturing.
     */
    JobTraceRecorder &trace() { return traceStore; }
    const JobTraceRecorder &trace() const { return traceStore; }

    /** Snapshot of all three layers (what StatsFrame serializes). */
    ServiceStats stats() const;

    /**
     * Register every layer's series with `registry`. The service
     * must outlive the registry's last render: gauge callbacks read
     * live component state.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    ProgramCache cacheStore;
    MachinePool poolStore;
    /** Before sched: SchedulerConfig::trace points here. */
    JobTraceRecorder traceStore;
    JobScheduler sched;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_SERVICE_HH
