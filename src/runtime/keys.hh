/**
 * @file
 * Internal helpers for building memoization/shard keys: values are
 * streamed as exact bit patterns (no formatting round-trip), so two
 * keys are equal iff every field is bitwise equal.
 */

#ifndef QUMA_RUNTIME_KEYS_HH
#define QUMA_RUNTIME_KEYS_HH

#include <cstdint>
#include <cstring>
#include <sstream>

namespace quma::runtime::keys {

/** Append a double's exact bit pattern. */
inline void
appendBits(std::ostringstream &os, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    os << std::hex << bits << ',';
}

inline void
appendInt(std::ostringstream &os, std::uint64_t v)
{
    os << std::hex << v << ',';
}

} // namespace quma::runtime::keys

#endif // QUMA_RUNTIME_KEYS_HH
