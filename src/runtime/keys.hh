/**
 * @file
 * Internal helpers for building memoization/shard keys, and the RNG
 * stream-derivation conventions of the runtime.
 *
 * Key building: values are streamed as exact bit patterns (no
 * formatting round-trip), so two keys are equal iff every field is
 * bitwise equal.
 *
 * RNG streams: a job seed fans out into independent generator seeds
 * via Rng::derive(seed, stream). The stream indices are fixed here so
 * every layer (scheduler, tests, benches) derives the same streams:
 *
 *  - kChipStream / kExecStream seed the chip-noise and the
 *    stall-injection RNGs of an OPAQUE job (JobSpec::rounds == 0),
 *    which runs its whole program on one machine with one pair of
 *    streams, exactly as in a single-machine session.
 *
 *  - Round-structured jobs (JobSpec::rounds > 0) derive one stream
 *    PAIR PER ROUND: round r uses chipStreamOf(r) / execStreamOf(r).
 *    Because every round's randomness is a pure function of
 *    (job seed, round index) -- never of which machine ran it, or of
 *    which rounds preceded it on that machine -- any contiguous
 *    partition of the rounds across pooled machines replays the exact
 *    same per-round draws, which is what makes shard merges
 *    bit-identical (see runtime/README.md, "Determinism contract").
 */

#ifndef QUMA_RUNTIME_KEYS_HH
#define QUMA_RUNTIME_KEYS_HH

#include <cstdint>
#include <cstring>
#include <sstream>

namespace quma::runtime {

/** Chip-noise stream of an opaque (whole-program) job. */
inline constexpr std::uint64_t kChipStream = 0;
/** Stall-injection stream of an opaque (whole-program) job. */
inline constexpr std::uint64_t kExecStream = 1;
/** First per-round stream index; rounds use pairs from here up. */
inline constexpr std::uint64_t kRoundStreamBase = 2;

/** Chip-noise stream of round `r` of a round-structured job. */
inline constexpr std::uint64_t
chipStreamOf(std::uint64_t round)
{
    return kRoundStreamBase + 2 * round;
}

/** Stall-injection stream of round `r` of a round-structured job. */
inline constexpr std::uint64_t
execStreamOf(std::uint64_t round)
{
    return kRoundStreamBase + 2 * round + 1;
}

namespace keys {

/** Append a double's exact bit pattern. */
inline void
appendBits(std::ostringstream &os, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    os << std::hex << bits << ',';
}

inline void
appendInt(std::ostringstream &os, std::uint64_t v)
{
    os << std::hex << v << ',';
}

} // namespace keys

} // namespace quma::runtime

#endif // QUMA_RUNTIME_KEYS_HH
