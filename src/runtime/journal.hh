/**
 * @file
 * JobJournal: the write-ahead job journal of the serving runtime.
 *
 * The source paper's host/control-box split assumes the host can
 * always re-drive the control box; for a service with real users
 * that means a process crash must not lose the queue. The journal
 * records every accepted JobSpec (and every completion) in an
 * append-only file, so a restarted service can recover the work that
 * was queued-but-unfinished at the crash and run it again -- and,
 * because a job's result is a pure function of its spec (the
 * determinism contract, runtime/job.hh), the recovered run produces
 * the bit-identical JobResult the uninterrupted run would have.
 *
 * RECORD FORMAT. The file starts with an 8-byte magic; every record
 * after it is
 *
 *     u32 length   body byte count
 *     u32 crc32    CRC-32 (IEEE 802.3) of the body bytes
 *     u8  body[length]   -- body = u16 record type + payload
 *
 * Payloads reuse the net/wire.hh codecs (explicit little-endian, no
 * struct-memcpy), so a journal is readable on any architecture and a
 * JobSpec round-trips through it exactly like it round-trips through
 * the wire. The same length+CRC container frames the serving layer's
 * capture files (net/capture.hh).
 *
 * WRITER THREAD AND FSYNC POLICY. Appends are encoded on the calling
 * thread, queued, and written by one dedicated writer thread --
 * submission latency never pays the disk unless asked to:
 *
 *  - FsyncPolicy::None    never fsync (the OS decides; fastest,
 *                         loses up to the page-cache window);
 *  - FsyncPolicy::Batch   fsync after each drained batch (bounded
 *                         loss: the records queued behind one write);
 *  - FsyncPolicy::Always  SUBMISSION records block their caller
 *                         until fsync confirms durability -- the
 *                         classic WAL ack gate. Completion markers
 *                         never block even here: losing one re-runs
 *                         a finished job after a crash (duplicate
 *                         work), it never loses one.
 *
 * RECOVERY. recoverJournal() scans the file and returns the
 * submitted-but-never-completed specs in submission order. The scan
 * never throws past the API: a torn final record (crash mid-append),
 * a flipped CRC byte, or garbage after a valid prefix all stop the
 * scan at the last valid record, counted in corruptRecords -- the
 * valid prefix is always kept. On restart the service re-submits the
 * pending specs under fresh ids and appends one Resubmitted record
 * per job (old id -> new id, spec), which both neutralises the stale
 * pending entry and keeps the journal self-contained for a second
 * crash.
 */

#ifndef QUMA_RUNTIME_JOURNAL_HH
#define QUMA_RUNTIME_JOURNAL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.hh"
#include "runtime/job.hh"

namespace quma::runtime {

// --- shared record container ------------------------------------------------

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** Append one length+CRC framed record (body = u16 type + payload). */
void appendRecord(std::vector<std::uint8_t> &out, std::uint16_t type,
                  const std::vector<std::uint8_t> &payload);

/** One record recovered from a journal or capture file. */
struct ScannedRecord
{
    std::uint16_t type = 0;
    std::vector<std::uint8_t> payload;
};

/** Result of scanning a record file: the valid prefix, always. */
struct ScanResult
{
    std::vector<ScannedRecord> records;
    /** 1 when the scan stopped early -- torn final record, CRC
     *  mismatch, or garbage tail; the records above are the valid
     *  prefix before the damage. */
    std::size_t corruptRecords = 0;
    /** False on a missing/foreign magic (zero records recovered). */
    bool magicValid = false;
};

/**
 * Scan `bytes` as a record file with the given 8-byte magic. Total:
 * never throws; damage stops the scan and is counted, the records
 * decoded before it are returned.
 */
ScanResult scanRecords(const std::vector<std::uint8_t> &bytes,
                       std::string_view magic);

// --- the job journal --------------------------------------------------------

/** Journal file magic (8 bytes, versioned by the trailing digit). */
inline constexpr std::string_view kJournalMagic = "QUMAJNL1";

/** Journal record types (u16 on disk; values are wire-frozen). */
enum class JournalRecordType : std::uint16_t
{
    /** u64 id + JobSpec (wire codec): an accepted submission. */
    Submitted = 1,
    /** u64 id + u8 failed: the job finished (either way). */
    Completed = 2,
    /** u64 id: the job was cancelled while still queued. */
    Cancelled = 3,
    /** u64 oldId + u64 newId + JobSpec: a recovered pending job was
     *  re-submitted under a fresh id (retires oldId, opens newId). */
    Resubmitted = 4,
};

enum class FsyncPolicy : std::uint8_t
{
    None,
    Batch,
    Always,
};

/** Parse a policy name (none|batch|always); nullopt on anything else. */
std::optional<FsyncPolicy> fsyncPolicyFromName(std::string_view name);

struct JournalConfig
{
    std::string path;
    FsyncPolicy fsync = FsyncPolicy::Batch;
};

struct JournalStats
{
    std::size_t recordsAppended = 0;
    std::size_t bytesAppended = 0;
    std::size_t fsyncs = 0;
    /** write()/fsync() failures (the journal keeps serving). */
    std::size_t appendErrors = 0;
};

/** One submitted-but-never-completed job found by recovery. */
struct RecoveredJob
{
    /** The id the job had in the crashed process (journal-local). */
    JobId journalId = 0;
    JobSpec spec;
};

/** What recoverJournal() found. */
struct RecoveryReport
{
    /** Un-completed submissions, in original submission order. */
    std::vector<RecoveredJob> pending;
    std::size_t recordsScanned = 0;
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t cancelled = 0;
    std::size_t resubmitted = 0;
    /** Scan-stopping damage (torn tail, bad CRC, garbage). */
    std::size_t corruptRecords = 0;
    /** False when the file was absent/empty (a fresh journal). */
    bool journalExisted = false;
    /** True when the file carried the journal magic. False + existed
     *  = a foreign file: refuse to append, never clobber it. */
    bool magicValid = false;
    /**
     * Byte length of the valid prefix (magic + every record decoded
     * before damage stopped the scan). The service truncates a
     * damaged journal to this length before reopening it for append,
     * so new records extend readable data instead of hiding behind a
     * garbage tail.
     */
    std::size_t validPrefixBytes = 0;
};

/**
 * Scan the journal at `path` for pending work. Never throws: a
 * missing file is a fresh journal (empty report), damage keeps the
 * valid prefix and is counted in corruptRecords.
 */
RecoveryReport recoverJournal(const std::string &path);

/** What compactJournal() did (or declined to do). */
struct CompactionReport
{
    /** True when the file was rewritten to its live suffix. */
    bool performed = false;
    std::size_t recordsBefore = 0;
    /** One Submitted record per still-pending job. */
    std::size_t recordsAfter = 0;
    std::size_t bytesBefore = 0;
    std::size_t bytesAfter = 0;
};

/**
 * Rewrite the journal at `path` down to its LIVE SUFFIX: a fresh
 * magic plus one Submitted record per job in `recovered.pending`
 * (retired submissions, their completion/cancellation markers, and
 * any damaged tail all disappear; Resubmitted chains collapse to
 * their final id). The rewrite goes through a temp file + fsync +
 * rename, so a crash mid-compaction leaves either the old journal or
 * the new one, never a torn hybrid. Recovery of the compacted file
 * yields the identical pending set (pinned by tests/test_journal.cc).
 *
 * Never throws; on any I/O failure the original file is left intact
 * and `performed` stays false. Call only between recovery and the
 * JobJournal reopen (nothing may be appending).
 */
CompactionReport compactJournal(const std::string &path,
                                const RecoveryReport &recovered);

/**
 * The append side: an append-only record file fed through one writer
 * thread. Thread-safe; appends after close() are counted no-ops.
 */
class JobJournal
{
  public:
    /** Pre-encoded JobSpec payload (see encodeSpec). */
    using EncodedSpec = std::vector<std::uint8_t>;

    /** Opens (creating or appending) the journal file; fatal() when
     *  the path cannot be opened -- the operator asked for
     *  durability the process cannot provide. */
    explicit JobJournal(JournalConfig config);
    ~JobJournal();

    JobJournal(const JobJournal &) = delete;
    JobJournal &operator=(const JobJournal &) = delete;

    /**
     * Encode a spec for a later appendSubmitted/appendResubmitted.
     * nullopt for specs carrying a pre-assembled isa::Program: the
     * binary image is a host-side optimisation with no serialized
     * form, so such jobs are not journaled (documented limitation --
     * remote submissions always travel as assembly and always
     * journal). Encoding on the submitting thread keeps the writer
     * thread I/O-only.
     */
    static std::optional<EncodedSpec> encodeSpec(const JobSpec &spec);

    /**
     * Journal an accepted submission. With FsyncPolicy::Always this
     * blocks until the record is fsync-durable -- the WAL guarantee
     * that an acknowledged job survives a crash.
     */
    void appendSubmitted(JobId id, const EncodedSpec &spec);

    /** Journal the re-submission of a recovered job (retires the
     *  old id, opens the new one). Durability as appendSubmitted. */
    void appendResubmitted(JobId old_id, JobId new_id,
                           const EncodedSpec &spec);

    /** Journal a completion (never blocks on fsync: a lost marker
     *  re-runs a finished job, it cannot lose one). */
    void appendCompleted(JobId id, bool failed);

    /** Journal a queued-job cancellation (cancelled work must NOT
     *  come back on restart). */
    void appendCancelled(JobId id);

    /** Block until everything appended so far is written AND
     *  fsynced, regardless of policy. */
    void sync();

    /**
     * Drain, fsync, and close the file; later appends are no-ops.
     * ExperimentService calls this FIRST in its destructor, so the
     * scheduler's shutdown-failure notifications (jobs that never
     * ran) cannot mark still-pending work completed -- destruction
     * without drain() journals like a crash, which is exactly what
     * the recovery tests rely on.
     */
    void close();

    JournalStats stats() const;

    const JournalConfig &config() const { return cfg; }

    /**
     * Register the quma_journal_* families with `registry`. The
     * journal must outlive the registry's last render.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    void append(std::vector<std::uint8_t> &&record,
                bool await_durable);
    void writerLoop();

    const JournalConfig cfg;
    int fd = -1;

    mutable std::mutex mu;
    std::condition_variable cvWork;
    std::condition_variable cvDurable;
    std::deque<std::vector<std::uint8_t>> pending;
    /** Sequence numbers: appended (queued), durable (fsynced). */
    std::uint64_t appendedSeq = 0;
    std::uint64_t durableSeq = 0;
    bool closed = false;
    JournalStats counters;
    /** Bound by bindMetrics (quma_journal_fsync_seconds); the
     *  default-constructed histogram is a no-op, so the writer can
     *  observe unconditionally. */
    metrics::Histogram fsyncLatency;
    std::thread writer;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_JOURNAL_HH
