#include "runtime/scheduler.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/keys.hh"

namespace quma::runtime {

namespace {

/** Completions per priority class kept for percentile estimation. */
constexpr std::size_t kLatencySampleWindow = 512;

bool
queueSaturated(const timing::QueueSaturation &q)
{
    // pushFailed is the backpressure signal proper: the producer hit
    // a full queue and had to retry. Stale drops are the same story
    // from the consumer side -- payloads silently discarded because
    // the machine fell behind its own time points. High-water alone
    // is not enough (a healthy pipeline is expected to run the
    // queues deep).
    return q.pushFailed > 0 || q.staleDropped > 0;
}

/** Did this run drive any timing event queue into backpressure? */
bool
machineSaturated(const core::MachineStats &s)
{
    if (queueSaturated(s.queues.timing) || queueSaturated(s.queues.mpg))
        return true;
    for (const auto &q : s.queues.pulse)
        if (queueSaturated(q))
            return true;
    for (const auto &q : s.queues.md)
        if (queueSaturated(q))
            return true;
    return false;
}

} // namespace

JobScheduler::JobScheduler(SchedulerConfig config, MachinePool &pool_,
                           ProgramCache &cache_)
    : cfg(config), pool(pool_), cache(cache_), tracer(config.trace)
{
    if (cfg.workers == 0)
        fatal("JobScheduler needs at least one worker");
    if (cfg.queueCapacity == 0)
        fatal("JobScheduler needs a positive queue capacity");
    // The notifier runs even while paused: subscriptions on jobs
    // cancelled before start() still deliver.
    notifier = std::thread([this] { notifierLoop(); });
    if (!cfg.startPaused)
        start();
}

JobScheduler::~JobScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stop = true;
        // Tasks still queued will never run: fail their jobs so
        // awaiters unblock with a diagnosable result. A job with
        // shards already running is failed here too; the late shard
        // deliveries see the Failed status and drop their partials.
        for (const Task &t : queue) {
            auto it = entries.find(t.id);
            if (it == entries.end())
                continue;
            Entry &e = it->second;
            if (e.jobStatus == JobStatus::Done ||
                e.jobStatus == JobStatus::Failed)
                continue;
            e.jobStatus = JobStatus::Failed;
            e.result = JobResult{};
            e.result.error = kShutdownJobError;
            e.spec.reset();
            e.partials.clear();
            e.shardRanges.clear();
            e.progress.clear();
            ++counters.failed;
            ms.failed.inc();
            // Shutdown failures notify too: a subscriber is promised
            // exactly one callback per job, however the job ends.
            queueNotificationsLocked(t.id, e.result);
        }
        queue.clear();
    }
    cvWork.notify_all();
    cvSpace.notify_all();
    cvDone.notify_all();
    for (auto &w : workers)
        w.join();
    // Only after the last worker is gone can no further completion
    // arrive; the notifier drains what is queued, then exits.
    {
        std::lock_guard<std::mutex> lock(mu);
        notifierStop = true;
    }
    cvNotify.notify_all();
    notifier.join();
}

void
JobScheduler::subscribe(JobId id, CompletionCallback callback)
{
    if (!callback)
        fatal("subscribe needs a callback");
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = entries.find(id);
        if (it == entries.end())
            fatal("unknown job id ", id);
        const Entry &e = it->second;
        if (e.jobStatus == JobStatus::Done ||
            e.jobStatus == JobStatus::Failed) {
            // Already finished: deliver through the same notifier
            // thread so the ordering contract holds either way.
            Notification n;
            n.id = id;
            n.result = std::make_shared<const JobResult>(e.result);
            n.callback = std::move(callback);
            notifyQueue.push_back(std::move(n));
        } else {
            subscriptions[id].push_back(std::move(callback));
            return;
        }
    }
    cvNotify.notify_all();
}

void
JobScheduler::subscribeProgress(JobId id, ProgressCallback callback)
{
    if (!callback)
        fatal("subscribeProgress needs a callback");
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    // Best-effort by design: an id that aged out of retention, or a
    // job that already finished, simply never notifies -- its
    // completion push (or UnknownJob error) is the remaining signal.
    if (it == entries.end())
        return;
    const Entry &e = it->second;
    if (e.jobStatus == JobStatus::Done ||
        e.jobStatus == JobStatus::Failed)
        return;
    progressSubs[id].push_back(std::move(callback));
    progressSubCount.fetch_add(1, std::memory_order_relaxed);
}

void
JobScheduler::noteRoundsDoneLocked(JobId id, Entry &entry,
                                   std::size_t rounds)
{
    entry.roundsDone += rounds;
    if (progressSubCount.load(std::memory_order_relaxed) > 0)
        queueProgressLocked(id, entry, /*force=*/false);
}

void
JobScheduler::queueProgressLocked(JobId id, Entry &entry, bool force)
{
    auto it = progressSubs.find(id);
    if (it == progressSubs.end() || !entry.spec)
        return;
    auto now = std::chrono::steady_clock::now();
    if (!force &&
        entry.lastProgressAt !=
            std::chrono::steady_clock::time_point{} &&
        now - entry.lastProgressAt < cfg.progressInterval)
        return;
    entry.lastProgressAt = now;
    for (const ProgressCallback &cb : it->second) {
        Notification n;
        n.id = id;
        n.progress = cb;
        n.roundsDone = entry.roundsDone;
        n.roundsTotal = entry.spec->rounds;
        notifyQueue.push_back(std::move(n));
        ++counters.progressNotifications;
    }
    cvNotify.notify_all();
}

void
JobScheduler::queueNotificationsLocked(JobId id,
                                       const JobResult &result)
{
    auto it = subscriptions.find(id);
    if (it == subscriptions.end())
        return;
    // One shared copy of the result serves every subscriber of this
    // job; the copy (not the entry) is what the notifier hands out,
    // so bounded retention may evict the entry meanwhile.
    auto shared = std::make_shared<const JobResult>(result);
    for (CompletionCallback &cb : it->second) {
        Notification n;
        n.id = id;
        n.result = shared;
        n.callback = std::move(cb);
        notifyQueue.push_back(std::move(n));
    }
    subscriptions.erase(it);
    cvNotify.notify_all();
}

void
JobScheduler::notifierLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cvNotify.wait(lock, [this] {
            return notifierStop || !notifyQueue.empty();
        });
        if (notifyQueue.empty())
            return; // notifierStop and fully drained
        Notification n = std::move(notifyQueue.front());
        notifyQueue.pop_front();
        lock.unlock();
        // Outside the mutex: the callback may call back into the
        // scheduler (poll, stats, even subscribe) without deadlock.
        if (n.progress) {
            try {
                n.progress(n.id, n.roundsDone, n.roundsTotal);
            } catch (const std::exception &ex) {
                warn("progress callback for job ", n.id,
                     " threw: ", ex.what());
            }
        } else {
            try {
                n.callback(n.id, n.result);
            } catch (const std::exception &ex) {
                warn("completion callback for job ", n.id,
                     " threw: ", ex.what());
            }
            traceRecord(n.id, TracePhase::ResultPushed);
        }
        lock.lock();
    }
}

void
JobScheduler::start()
{
    std::lock_guard<std::mutex> lock(mu);
    if (started)
        return;
    started = true;
    for (unsigned i = 0; i < cfg.workers; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

JobId
JobScheduler::enqueueLocked(JobSpec &&spec)
{
    JobId id = nextId++;
    Entry e;
    e.key = configKey(spec.machine);
    e.priority = spec.priority;
    e.seq = counters.submitted;
    e.submittedAt = std::chrono::steady_clock::now();
    if (spec.rounds > 0) {
        // Round-structured job: one task per shard. shards == 0 asks
        // for the widest useful split, one shard per worker.
        std::size_t shards = spec.shards ? spec.shards : cfg.workers;
        e.shardRanges =
            partitionRounds(spec.rounds, shards, spec.minRoundsPerShard);
        e.partials.resize(e.shardRanges.size());
        e.progress.resize(e.shardRanges.size());
        for (std::size_t s = 0; s < e.shardRanges.size(); ++s)
            e.progress[s] = {e.shardRanges[s].begin,
                             e.shardRanges[s].end, false};
        e.shardsRemaining = e.shardRanges.size();
        if (e.shardRanges.size() > 1) {
            ++counters.shardedJobs;
            ms.shardedJobs.inc();
        }
    }
    std::size_t tasks = e.shardRanges.empty() ? 1 : e.shardRanges.size();
    e.spec = std::make_shared<const JobSpec>(std::move(spec));
    entries.emplace(id, std::move(e));
    for (std::size_t s = 0; s < tasks; ++s)
        queue.push_back({id, static_cast<std::uint32_t>(s)});
    counters.queueHighWater =
        std::max(counters.queueHighWater, queue.size());
    ++counters.submitted;
    ms.submitted.inc();
    // Every enqueue passed its gate (queue-space wait or admission
    // control) and entered the queue in the same breath; the three
    // lifecycle points coincide by construction here, but stay
    // distinct phases so traces read against the documented model.
    traceRecord(id, TracePhase::Submitted);
    traceRecord(id, TracePhase::Admitted);
    traceRecord(id, TracePhase::Queued);
    return id;
}

JobId
JobScheduler::submit(JobSpec spec)
{
    std::unique_lock<std::mutex> lock(mu);
    cvSpace.wait(lock, [this] {
        return stop || queue.size() < cfg.queueCapacity;
    });
    if (stop)
        fatal("submit on a stopped scheduler");
    JobId id = enqueueLocked(std::move(spec));
    lock.unlock();
    cvWork.notify_all();
    return id;
}

std::optional<JobId>
JobScheduler::submitFor(const JobSpec &spec,
                        std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu);
    bool space = cvSpace.wait_for(lock, timeout, [this] {
        return stop || queue.size() < cfg.queueCapacity;
    });
    if (!space)
        return std::nullopt;
    if (stop)
        fatal("submit on a stopped scheduler");
    JobId id = enqueueLocked(JobSpec(spec));
    lock.unlock();
    cvWork.notify_all();
    return id;
}

std::optional<JobId>
JobScheduler::trySubmit(JobSpec spec)
{
    std::unique_lock<std::mutex> lock(mu);
    std::size_t bound = effectiveCapacityLocked();
    if (stop || queue.size() >= bound) {
        ++counters.rejected;
        ms.rejected.inc();
        if (!stop && bound < cfg.queueCapacity &&
            queue.size() < cfg.queueCapacity) {
            ++counters.admissionSoftRejects;
            ms.admissionSoftRejects.inc();
        }
        return std::nullopt;
    }
    JobId id = enqueueLocked(std::move(spec));
    lock.unlock();
    cvWork.notify_all();
    return id;
}

JobStatus
JobScheduler::status(JobId id) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("unknown job id ", id);
    return it->second.jobStatus;
}

std::optional<JobResult>
JobScheduler::poll(JobId id) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("unknown job id ", id);
    const Entry &e = it->second;
    if (e.jobStatus == JobStatus::Done ||
        e.jobStatus == JobStatus::Failed)
        return e.result;
    return std::nullopt;
}

JobResult
JobScheduler::await(JobId id)
{
    std::unique_lock<std::mutex> lock(mu);
    if (entries.find(id) == entries.end())
        fatal("unknown job id ", id);
    // Re-resolve per wake-up: bounded retention may erase the entry
    // while we are blocked (it finished, then aged out).
    cvDone.wait(lock, [&] {
        auto it = entries.find(id);
        return it == entries.end() ||
               it->second.jobStatus == JobStatus::Done ||
               it->second.jobStatus == JobStatus::Failed;
    });
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("job ", id, " finished but its result aged out of the ",
              "bounded retention before await could read it");
    return it->second.result;
}

std::optional<JobResult>
JobScheduler::awaitFor(JobId id, std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu);
    if (entries.find(id) == entries.end())
        fatal("unknown job id ", id);
    bool finished = cvDone.wait_for(lock, timeout, [&] {
        auto it = entries.find(id);
        return it == entries.end() ||
               it->second.jobStatus == JobStatus::Done ||
               it->second.jobStatus == JobStatus::Failed;
    });
    if (!finished)
        return std::nullopt;
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("job ", id, " finished but its result aged out of the ",
              "bounded retention before awaitFor could read it");
    return it->second.result;
}

void
JobScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    cvDone.wait(lock,
                [this] { return queue.empty() && inFlight == 0; });
}

bool
JobScheduler::cancel(JobId id)
{
    std::unique_lock<std::mutex> lock(mu);
    auto it = entries.find(id);
    if (it == entries.end())
        return false;
    Entry &e = it->second;
    // Only a fully queued job can be cancelled: once any shard is
    // running the machine time is committed and the merge machinery
    // owns the entry.
    if (e.jobStatus != JobStatus::Queued)
        return false;
    std::erase_if(queue, [id](const Task &t) { return t.id == id; });
    ++counters.cancelled;
    ms.cancelled.inc();
    JobResult r;
    r.error = kCancelledJobError;
    // A cancelled job never ran: recording its queue-residence as a
    // "latency" would drag the digests toward zero.
    finishLocked(id, std::move(r), /*record_latency=*/false);
    lock.unlock();
    cvSpace.notify_all();
    cvDone.notify_all();
    return true;
}

void
JobScheduler::bindMetrics(metrics::MetricsRegistry &registry)
{
    ms.submitted = registry.counter(
        "quma_jobs_submitted_total",
        "Jobs accepted by a submit path (one per assigned job id).");
    ms.rejected = registry.counter(
        "quma_submit_rejected_total",
        "trySubmit rejections, hard-bound and admission together.");
    ms.admissionSoftRejects = registry.counter(
        "quma_admission_soft_rejects_total",
        "trySubmit rejections below the hard queue bound (the "
        "stats-driven admission controller said no).");
    ms.completed = registry.counter(
        "quma_jobs_completed_total",
        "Jobs finished with a successful result.");
    ms.failed = registry.counter(
        "quma_jobs_failed_total",
        "Jobs finished Failed (errors, cancellations, shutdown).");
    ms.cancelled = registry.counter(
        "quma_jobs_cancelled_total",
        "Jobs cancelled while still fully queued.");
    ms.batchedJobs = registry.counter(
        "quma_tasks_lease_batched_total",
        "Tasks that reused the previous task's machine lease.");
    ms.shardedJobs = registry.counter(
        "quma_jobs_sharded_total",
        "Jobs split into more than one shard.");
    ms.shardsExecuted = registry.counter(
        "quma_shards_executed_total",
        "Shard tasks executed (single-shard round jobs included).");
    ms.saturatedRuns = registry.counter(
        "quma_saturated_runs_total",
        "Runs whose machine reported timing-queue backpressure.");
    ms.shardsStolen = registry.counter(
        "quma_shards_stolen_total",
        "Shards created by splitting a running shard's unclaimed "
        "round tail onto an idle worker.");
    ms.roundsStolen = registry.counter(
        "quma_rounds_stolen_total",
        "Rounds moved between workers by shard stealing.");
    ms.eventsDispatched = registry.counter(
        "quma_wheel_events_dispatched_total",
        "Event-wheel pops performed by machines running jobs.");
    static constexpr const char *kClassNames[3] = {"batch", "normal",
                                                   "high"};
    for (std::size_t cls = 0; cls < ms.latency.size(); ++cls)
        ms.latency[cls] = registry.histogram(
            "quma_job_latency_seconds",
            "Submit->finish latency by priority class.",
            metrics::latencyBucketsSeconds(),
            {{"priority", kClassNames[cls]}});

    registry.gaugeFn("quma_queue_depth",
                     "Tasks currently queued (sharded jobs hold one "
                     "slot per shard).",
                     {}, [this] {
                         return static_cast<double>(queueDepth());
                     });
    registry.gaugeFn("quma_jobs_in_flight",
                     "Tasks currently executing on workers.", {},
                     [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(inFlight);
                     });
    registry.gaugeFn("quma_queue_capacity_effective",
                     "Task bound trySubmit currently admits against.",
                     {}, [this] {
                         return static_cast<double>(
                             effectiveQueueCapacity());
                     });
    registry.gaugeFn("quma_machine_saturation_ewma",
                     "EWMA of machine queue-saturation samples "
                     "(admission signal 1).",
                     {}, [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return saturationEwma;
                     });
    registry.gaugeFn("quma_pool_wait_ewma_seconds",
                     "EWMA of pool-acquisition waits (admission "
                     "signal 2).",
                     {}, [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return poolWaitEwma;
                     });
    registry.gaugeFn("quma_wheel_occupancy_high_water",
                     "Largest number of simultaneously registered "
                     "event sources seen in any machine run.",
                     {}, [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(
                             counters.wheelHighWater);
                     });
}

std::size_t
JobScheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu);
    return queue.size();
}

JobScheduler::Stats
JobScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s = counters;
    s.machineSaturation = saturationEwma;
    s.poolWaitEwmaSeconds = poolWaitEwma;
    for (std::size_t cls = 0; cls < s.latency.size(); ++cls)
        s.latency[cls] = latencyDigestLocked(cls);
    return s;
}

std::vector<JobId>
JobScheduler::finishedIds() const
{
    std::lock_guard<std::mutex> lock(mu);
    return {finishedHistory.begin(), finishedHistory.end()};
}

std::size_t
JobScheduler::effectiveQueueCapacity() const
{
    std::lock_guard<std::mutex> lock(mu);
    return effectiveCapacityLocked();
}

std::size_t
JobScheduler::effectiveCapacityLocked() const
{
    // Two independent congestion signals tighten admission: the
    // machines running their timing queues into backpressure, and
    // workers blocking on the pool for a machine. Either means more
    // queue depth would buy latency, not throughput.
    bool congested =
        saturationEwma > cfg.saturationThreshold ||
        poolWaitEwma > cfg.poolWaitThresholdSeconds;
    if (!cfg.adaptiveAdmission || !congested)
        return cfg.queueCapacity;
    auto tightened = static_cast<std::size_t>(
        static_cast<double>(cfg.queueCapacity) *
        cfg.congestedQueueFraction);
    tightened = std::max<std::size_t>(tightened, cfg.workers);
    return std::min(tightened, cfg.queueCapacity);
}

void
JobScheduler::noteSaturationLocked(bool saturated)
{
    if (saturated) {
        ++counters.saturatedRuns;
        ms.saturatedRuns.inc();
    }
    saturationEwma = (1.0 - cfg.saturationAlpha) * saturationEwma +
                     cfg.saturationAlpha * (saturated ? 1.0 : 0.0);
}

void
JobScheduler::notePoolWaitLocked(double seconds)
{
    poolWaitEwma = (1.0 - cfg.poolWaitAlpha) * poolWaitEwma +
                   cfg.poolWaitAlpha * seconds;
}

void
JobScheduler::noteLatencyLocked(const Entry &entry)
{
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      entry.submittedAt)
            .count();
    auto cls = static_cast<std::size_t>(entry.priority);
    ms.latency[cls].observe(seconds);
    ++latencyCount[cls];
    latencyMax[cls] = std::max(latencyMax[cls], seconds);
    std::vector<double> &window = latencyWindow[cls];
    if (window.size() < kLatencySampleWindow) {
        window.push_back(seconds);
    } else {
        window[latencyWindowNext[cls]] = seconds;
        latencyWindowNext[cls] =
            (latencyWindowNext[cls] + 1) % kLatencySampleWindow;
    }
}

JobScheduler::LatencyDigest
JobScheduler::latencyDigestLocked(std::size_t cls) const
{
    LatencyDigest d;
    d.count = latencyCount[cls];
    d.max = latencyMax[cls];
    if (latencyWindow[cls].empty())
        return d;
    // Nearest-rank percentiles over a copy of the sliding window
    // (stats() is a diagnostic path; the window is small).
    std::vector<double> w = latencyWindow[cls];
    auto rank = [&w](double q) {
        auto idx = static_cast<std::size_t>(
            q * static_cast<double>(w.size() - 1) + 0.5);
        std::nth_element(w.begin(),
                         w.begin() + static_cast<std::ptrdiff_t>(idx),
                         w.end());
        return w[idx];
    };
    d.p50 = rank(0.50);
    d.p95 = rank(0.95);
    return d;
}

long
JobScheduler::effectivePriorityLocked(const Entry &entry) const
{
    long p = static_cast<long>(entry.priority);
    if (cfg.agingQuantum > 0)
        p += static_cast<long>((counters.submitted - entry.seq) /
                               cfg.agingQuantum);
    return p;
}

std::size_t
JobScheduler::pickBestLocked() const
{
    std::size_t best = 0;
    long bestPrio = std::numeric_limits<long>::min();
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Entry &e = entries.at(queue[i].id);
        long p = effectivePriorityLocked(e);
        if (p > bestPrio) {
            best = i;
            bestPrio = p;
            continue;
        }
        if (p == bestPrio) {
            const Entry &b = entries.at(queue[best].id);
            // Tie: oldest submission first; within one job, shards
            // in round order.
            if (e.seq < b.seq ||
                (e.seq == b.seq && queue[i].shard < queue[best].shard))
                best = i;
        }
    }
    return best;
}

void
JobScheduler::finishLocked(JobId id, JobResult &&result,
                           bool record_latency)
{
    Entry &e = entries.at(id);
    if (record_latency)
        noteLatencyLocked(e);
    bool failed = result.failed();
    // Final progress push, unthrottled and ahead of the completion
    // notification in the FIFO notifier queue: subscribers always see
    // done == total before the result lands. A non-sharded job (one
    // machine run, no per-round loop) reports exactly this one frame.
    if (!failed && e.spec) {
        e.roundsDone = e.spec->rounds;
        queueProgressLocked(id, e, /*force=*/true);
    }
    e.result = std::move(result);
    e.jobStatus = failed ? JobStatus::Failed : JobStatus::Done;
    // Free the program/source copies and any shard bookkeeping.
    e.spec.reset();
    e.partials.clear();
    e.shardRanges.clear();
    e.progress.clear();
    activeSharded.erase(id);
    if (failed) {
        ++counters.failed;
        ms.failed.inc();
    } else {
        ++counters.completed;
        ms.completed.inc();
    }
    traceRecord(id, TracePhase::Finished);
    // A finished job's progress subscriptions end here; the queued
    // progress notifications (including the forced 100% one) are
    // already ahead of the completion push in the notifier queue.
    auto ps = progressSubs.find(id);
    if (ps != progressSubs.end()) {
        progressSubCount.fetch_sub(ps->second.size(),
                                   std::memory_order_relaxed);
        progressSubs.erase(ps);
    }
    // Push the result to completion subscribers (the notifier thread
    // delivers outside the mutex). Before the retention loop below:
    // it may evict this very entry.
    queueNotificationsLocked(id, e.result);
    // Bounded retention: a long-lived service must not accumulate one
    // result per job forever. Oldest finished results age out; an
    // await/poll on an aged-out id reports an unknown job.
    finishedOrder.push_back(id);
    while (finishedOrder.size() > cfg.maxRetainedResults) {
        entries.erase(finishedOrder.front());
        finishedOrder.pop_front();
    }
    // The completion-order observable is its own, typically much
    // smaller, ring: last N completions only.
    finishedHistory.push_back(id);
    while (finishedHistory.size() > cfg.finishedHistoryLimit)
        finishedHistory.pop_front();
}

void
JobScheduler::deliverShardLocked(JobId id, std::uint32_t shard,
                                 ShardPartial &&partial)
{
    auto it = entries.find(id);
    if (it == entries.end())
        return;
    Entry &e = it->second;
    // The job may already be failed (scheduler shutdown while this
    // shard was running): drop the late partial.
    if (e.jobStatus == JobStatus::Done ||
        e.jobStatus == JobStatus::Failed)
        return;
    // The shard is no longer a steal victim; zero its claim window
    // so any unclaimed rounds of a FAILED shard are not stolen and
    // run after the job's fate is already sealed.
    if (shard < e.progress.size())
        e.progress[shard] = {0, 0, false};
    e.partials[shard] = std::move(partial);
    quma_assert(e.shardsRemaining > 0, "shard delivered twice");
    if (--e.shardsRemaining == 0)
        mergeShardsLocked(id); // finishLocked forces the 100% push
}

/**
 * Deterministic merge: re-sum the per-round collector sums in global
 * round order. Every shard holds a contiguous round range (stealing
 * splits ranges but never interleaves them) and the shards are
 * visited sorted by range start, so the floating-point additions
 * happen in exactly the sequence round 0, 1, ..., N-1 -- the SAME
 * sequence for every partition, which is what makes the merged sums
 * (and hence the averages) bit-identical across 1-way, 2-way and
 * 4-way splits, with stealing on or off, at any worker count.
 */
void
JobScheduler::mergeShardsLocked(JobId id)
{
    traceRecord(id, TracePhase::Merge);
    Entry &e = entries.at(id);
    const JobSpec &spec = *e.spec;
    std::size_t bins = spec.bins ? spec.bins : 1;

    // Stolen shards were appended as they were split off; restore
    // global round order before merging.
    std::vector<const ShardPartial *> order;
    order.reserve(e.partials.size());
    for (const ShardPartial &p : e.partials)
        order.push_back(&p);
    std::sort(order.begin(), order.end(),
              [](const ShardPartial *a, const ShardPartial *b) {
                  return a->range.begin < b->range.begin;
              });

    JobResult merged;
    for (const ShardPartial *p : order) {
        if (!p->error.empty()) {
            merged.error = "shard covering rounds " +
                           std::to_string(p->range.begin) + ".." +
                           std::to_string(p->range.end) +
                           " failed: " + p->error;
            break;
        }
    }

    if (merged.error.empty()) {
        std::vector<double> sums(bins, 0.0);
        std::vector<double> bitSums(bins, 0.0);
        std::vector<std::size_t> cnt(bins, 0);
        std::vector<std::size_t> bitCnt(bins, 0);
        bool first = true;
        for (const ShardPartial *pp : order) {
            const ShardPartial &p = *pp;
            // Defensive: a shard whose rounds were all stolen away
            // before it ran contributes nothing (cannot happen with
            // the current claim rules, which always leave the victim
            // at least one round -- but an empty partial must never
            // poison the halted AND below).
            if (p.range.size() == 0 && p.samples == 0)
                continue;
            std::size_t rows = p.range.size();
            for (std::size_t r = 0; r < rows; ++r)
                for (std::size_t b = 0; b < bins; ++b) {
                    sums[b] += p.roundSums[r * bins + b];
                    bitSums[b] += p.roundBitSums[r * bins + b];
                }
            for (std::size_t b = 0; b < bins; ++b) {
                cnt[b] += p.binCounts[b];
                bitCnt[b] += p.bitBinCounts[b];
            }
            merged.run.accumulate(p.run, first);
            first = false;
            merged.sampleCount += p.samples;
        }
        merged.averages.assign(bins, 0.0);
        merged.bitAverages.assign(bins, 0.0);
        for (std::size_t b = 0; b < bins; ++b) {
            if (cnt[b] > 0)
                merged.averages[b] =
                    sums[b] / static_cast<double>(cnt[b]);
            if (bitCnt[b] > 0)
                merged.bitAverages[b] =
                    bitSums[b] / static_cast<double>(bitCnt[b]);
        }
    }

    finishLocked(id, std::move(merged));
}

JobResult
JobScheduler::runJob(const JobSpec &spec, core::QumaMachine &machine,
                     RunSample &sample)
{
    JobResult r;
    try {
        machine.reset(Rng::derive(spec.seed, kChipStream),
                      Rng::derive(spec.seed, kExecStream));
        // Always (re)configure collection: a pooled machine may carry
        // the previous job's bin count, and determinism requires the
        // collector state to depend on this spec alone.
        machine.configureDataCollection(spec.bins ? spec.bins : 1);
        if (spec.program)
            machine.loadProgram(*spec.program);
        else
            machine.loadProgram(*cache.assemble(spec.assembly));
        r.run = machine.run(spec.maxCycles);
        r.averages = machine.dataCollector().averages();
        r.bitAverages = machine.dataCollector().bitAverages();
        r.sampleCount = machine.dataCollector().sampleCount();
        auto st = machine.stats();
        sample.absorb(st, machineSaturated(st));
    } catch (const std::exception &ex) {
        r = JobResult{};
        r.error = ex.what();
    }
    return r;
}

JobScheduler::ShardPartial
JobScheduler::runShard(const JobSpec &spec, core::QumaMachine &machine,
                       JobId id, std::uint32_t shard, RoundRange range,
                       RunSample &sample)
{
    ShardPartial p;
    // The claimed range grows round by round; claims are contiguous
    // from range.begin in both modes, so [range.begin, p.range.end)
    // is always exactly the rounds this partial holds.
    p.range = {range.begin, range.begin};
    std::size_t bins = spec.bins ? spec.bins : 1;
    p.binCounts.assign(bins, 0);
    p.bitBinCounts.assign(bins, 0);
    p.roundSums.reserve(range.size() * bins);
    p.roundBitSums.reserve(range.size() * bins);
    try {
        // cached keeps the assembled program alive for the loop; a
        // pre-built program lives in spec, which outlives the run.
        std::shared_ptr<const isa::Program> cached;
        const isa::Program *program;
        if (spec.program) {
            program = &*spec.program;
        } else {
            cached = cache.assemble(spec.assembly);
            program = cached.get();
        }

        bool first = true;
        // The previous iteration's round is counted as DONE under
        // the next claim's mutex hold (the loop re-enters it even to
        // discover the shard is exhausted), so the progress counter
        // rides the lock the stealing mode already takes. The
        // non-stealing loop is lock-free per round: it accumulates
        // locally and only takes the mutex while subscribers exist
        // (or once at the end, to reconcile the job counter).
        bool countPrev = false;
        std::size_t uncountedRounds = 0;
        for (;;) {
            std::size_t r;
            if (cfg.workSteal) {
                // Claim the next round under the scheduler mutex:
                // the shard's window may have shrunk (a thief took
                // the tail) or vanished (the job failed at
                // shutdown). Claims stay contiguous because only
                // this worker advances the cursor.
                std::lock_guard<std::mutex> claim(mu);
                auto it = entries.find(id);
                if (it == entries.end())
                    break;
                Entry &e = it->second;
                if (countPrev) {
                    noteRoundsDoneLocked(id, e);
                    countPrev = false;
                }
                if (shard >= e.progress.size())
                    break; // job already finished/failed
                ShardProgress &pr = e.progress[shard];
                if (pr.cursor >= pr.end)
                    break;
                r = pr.cursor++;
            } else {
                if (p.range.end >= range.end)
                    break;
                r = p.range.end;
            }
            // Every round is a full session with its OWN RNG streams
            // derived from (seed, round): the draws a round sees
            // never depend on which machine it ran on or which
            // rounds preceded it there, so any partition of the
            // rounds -- including one rebalanced by stealing --
            // replays them exactly.
            machine.reset(Rng::derive(spec.seed, chipStreamOf(r)),
                          Rng::derive(spec.seed, execStreamOf(r)));
            machine.configureDataCollection(bins);
            machine.loadProgram(*program);
            core::RunResult rr = machine.run(spec.maxCycles);
            p.run.accumulate(rr, first);
            first = false;

            const auto &dc = machine.dataCollector();
            const auto &sums = dc.binSums();
            const auto &bitSums = dc.bitBinSums();
            const auto &cnt = dc.binCounts();
            const auto &bitCnt = dc.bitBinCounts();
            p.roundSums.insert(p.roundSums.end(), sums.begin(),
                               sums.end());
            p.roundBitSums.insert(p.roundBitSums.end(),
                                  bitSums.begin(), bitSums.end());
            for (std::size_t b = 0; b < bins; ++b) {
                p.binCounts[b] += cnt[b];
                p.bitBinCounts[b] += bitCnt[b];
            }
            p.samples += dc.sampleCount();
            // loadProgram re-arms the timing unit (clearing its
            // counters), so saturation must be sampled per round.
            auto st = machine.stats();
            sample.absorb(st, machineSaturated(st));
            p.range.end = r + 1;
            if (cfg.workSteal) {
                countPrev = true;
            } else {
                ++uncountedRounds;
                if (progressSubCount.load(
                        std::memory_order_relaxed) > 0) {
                    std::lock_guard<std::mutex> note(mu);
                    auto it = entries.find(id);
                    if (it != entries.end()) {
                        noteRoundsDoneLocked(id, it->second,
                                             uncountedRounds);
                        uncountedRounds = 0;
                    }
                }
            }
        }
        if (uncountedRounds > 0) {
            // Rounds completed while nobody listened still count:
            // the final forced push at finish reports the truth.
            std::lock_guard<std::mutex> note(mu);
            auto it = entries.find(id);
            if (it != entries.end())
                it->second.roundsDone += uncountedRounds;
        }
    } catch (const std::exception &ex) {
        p = ShardPartial{};
        p.range = range;
        p.error = ex.what();
    }
    return p;
}

bool
JobScheduler::stealableLocked() const
{
    if (!cfg.workSteal)
        return false;
    std::size_t floor = std::max<std::size_t>(cfg.minStealRounds, 2);
    for (JobId id : activeSharded) {
        auto it = entries.find(id);
        if (it == entries.end())
            continue;
        for (const ShardProgress &pr : it->second.progress)
            if (pr.running && pr.end > pr.cursor &&
                pr.end - pr.cursor >= floor)
                return true;
    }
    return false;
}

std::optional<JobScheduler::Task>
JobScheduler::stealLocked()
{
    std::size_t floor = std::max<std::size_t>(cfg.minStealRounds, 2);
    JobId bestId = 0;
    std::size_t bestShard = 0;
    std::size_t bestRemaining = 0;
    for (JobId id : activeSharded) {
        auto it = entries.find(id);
        if (it == entries.end())
            continue;
        const Entry &e = it->second;
        for (std::size_t s = 0; s < e.progress.size(); ++s) {
            const ShardProgress &pr = e.progress[s];
            if (!pr.running || pr.end <= pr.cursor)
                continue;
            std::size_t remaining = pr.end - pr.cursor;
            if (remaining >= floor && remaining > bestRemaining) {
                bestRemaining = remaining;
                bestId = id;
                bestShard = s;
            }
        }
    }
    if (bestRemaining == 0)
        return std::nullopt;

    // Split the victim's unclaimed tail in half. The victim always
    // keeps at least one round (stolen < remaining), so no partial
    // ever ends up empty.
    Entry &e = entries.at(bestId);
    ShardProgress &v = e.progress[bestShard];
    std::size_t stolen = (v.end - v.cursor) / 2;
    std::size_t mid = v.end - stolen;
    std::size_t oldEnd = v.end;
    v.end = mid;
    auto shardIdx = static_cast<std::uint32_t>(e.shardRanges.size());
    e.shardRanges.push_back({mid, oldEnd});
    e.partials.emplace_back();
    // Marked running immediately: the thief executes it without a
    // queue round-trip, and its own tail is stealable meanwhile.
    e.progress.push_back({mid, oldEnd, true});
    ++e.shardsRemaining;
    ++counters.shardsStolen;
    ms.shardsStolen.inc();
    counters.roundsStolen += stolen;
    ms.roundsStolen.inc(static_cast<double>(stolen));
    return Task{bestId, shardIdx};
}

void
JobScheduler::noteRunLocked(const RunSample &sample)
{
    noteSaturationLocked(sample.saturated);
    counters.eventsDispatched += sample.eventsDispatched;
    counters.wheelHighWater =
        std::max(counters.wheelHighWater, sample.wheelHighWater);
    counters.staleEventDrops += sample.staleDrops;
    ms.eventsDispatched.inc(
        static_cast<double>(sample.eventsDispatched));
}

void
JobScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cvWork.wait(lock, [this] {
            return stop || !queue.empty() || stealableLocked();
        });
        if (stop)
            return;

        Task task;
        std::shared_ptr<const JobSpec> spec;
        std::string key;
        bool sharded;
        RoundRange range;
        if (!queue.empty()) {
            std::size_t slot = pickBestLocked();
            task = queue[slot];
            queue.erase(queue.begin() +
                        static_cast<std::ptrdiff_t>(slot));
            Entry &entry = entries.at(task.id);
            entry.jobStatus = JobStatus::Running;
            spec = entry.spec;
            key = entry.key;
            sharded = !entry.shardRanges.empty();
            range = sharded ? entry.shardRanges[task.shard]
                            : RoundRange{};
            if (sharded) {
                entry.progress[task.shard].running = true;
                activeSharded.insert(task.id);
            }
        } else {
            // Queue drained but a running shard has rounds to spare:
            // split its tail off as a fresh shard and run it here,
            // without a queue round-trip.
            auto stolen = stealLocked();
            if (!stolen)
                continue; // raced with the victim finishing
            task = *stolen;
            Entry &entry = entries.at(task.id);
            spec = entry.spec;
            key = entry.key;
            sharded = true;
            range = entry.shardRanges[task.shard];
        }
        ++inFlight;
        lock.unlock();
        cvSpace.notify_one();
        // A newly started (or newly stolen) shard is itself a steal
        // candidate: wake idle workers so they can carve it up.
        if (sharded)
            cvWork.notify_all();

        MachinePool::Lease lease;
        double acquireWait = 0.0;
        try {
            lease = pool.acquireKeyed(key, spec->machine,
                                      &acquireWait);
        } catch (const std::exception &ex) {
            // Machine construction rejected the config: fail THIS
            // task; letting the exception leave the thread would
            // terminate the whole service.
            std::string err =
                std::string("machine unavailable: ") + ex.what();
            lock.lock();
            if (sharded) {
                ShardPartial p;
                p.range = range;
                p.error = std::move(err);
                deliverShardLocked(task.id, task.shard, std::move(p));
            } else {
                JobResult r;
                r.error = std::move(err);
                finishLocked(task.id, std::move(r));
            }
            --inFlight;
            cvDone.notify_all();
            continue;
        }
        // One pool-wait sample per acquisition (batched tasks reuse
        // the lease and pay no wait -- that is the point of
        // batching, so they contribute no sample). The sample is the
        // time acquire spent BLOCKED on a fully leased pool, not the
        // cost of constructing a cold machine.
        lock.lock();
        notePoolWaitLocked(acquireWait);
        lock.unlock();
        traceRecord(task.id, TracePhase::Leased, task.shard);
        std::size_t ranOnLease = 0;
        for (;;) {
            RunSample sample;
            traceRecord(task.id, TracePhase::ShardStart, task.shard);
            if (sharded) {
                ShardPartial partial =
                    runShard(*spec, lease.machine(), task.id,
                             task.shard, range, sample);
                traceRecord(task.id, TracePhase::ShardFinish,
                            task.shard);
                lock.lock();
                ++counters.shardsExecuted;
                ms.shardsExecuted.inc();
                deliverShardLocked(task.id, task.shard,
                                   std::move(partial));
            } else {
                JobResult result =
                    runJob(*spec, lease.machine(), sample);
                traceRecord(task.id, TracePhase::ShardFinish,
                            task.shard);
                lock.lock();
                finishLocked(task.id, std::move(result));
            }
            noteRunLocked(sample);
            ++ranOnLease;
            --inFlight;
            cvDone.notify_all();

            // Lease batching: when the task the priority policy
            // would pick next wants this machine configuration, run
            // it on the same lease without a pool round-trip.
            if (!stop && !queue.empty() &&
                ranOnLease < cfg.leaseBatchLimit) {
                std::size_t next = pickBestLocked();
                Entry &ne = entries.at(queue[next].id);
                if (ne.key == key) {
                    task = queue[next];
                    queue.erase(queue.begin() +
                                static_cast<std::ptrdiff_t>(next));
                    ++inFlight;
                    ne.jobStatus = JobStatus::Running;
                    spec = ne.spec;
                    sharded = !ne.shardRanges.empty();
                    range = sharded ? ne.shardRanges[task.shard]
                                    : RoundRange{};
                    if (sharded) {
                        ne.progress[task.shard].running = true;
                        activeSharded.insert(task.id);
                    }
                    ++counters.batchedJobs;
                    ms.batchedJobs.inc();
                    lock.unlock();
                    cvSpace.notify_one();
                    if (sharded)
                        cvWork.notify_all();
                    traceRecord(task.id, TracePhase::Leased,
                                task.shard);
                    continue;
                }
            }
            break;
        }
        // Still holding the lock from the loop exit; release the
        // lease outside it (reset + pool hand-back take the pool
        // mutex, not ours).
        lock.unlock();
        lease.release();
        lock.lock();
    }
}

} // namespace quma::runtime
