#include "runtime/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace quma::runtime {

namespace {

/** Stream indices for the per-job RNG derivation. */
constexpr std::uint64_t kChipStream = 0;
constexpr std::uint64_t kExecStream = 1;

} // namespace

JobScheduler::JobScheduler(SchedulerConfig config, MachinePool &pool_,
                           ProgramCache &cache_)
    : cfg(config), pool(pool_), cache(cache_)
{
    if (cfg.workers == 0)
        fatal("JobScheduler needs at least one worker");
    if (cfg.queueCapacity == 0)
        fatal("JobScheduler needs a positive queue capacity");
    if (!cfg.startPaused)
        start();
}

JobScheduler::~JobScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stop = true;
        // Jobs still queued will never run: fail them so awaiters
        // unblock with a diagnosable result.
        for (JobId id : queue) {
            Entry &e = entries[id];
            e.jobStatus = JobStatus::Failed;
            e.result.error = "scheduler shut down before the job ran";
            ++counters.failed;
        }
        queue.clear();
    }
    cvWork.notify_all();
    cvSpace.notify_all();
    cvDone.notify_all();
    for (auto &w : workers)
        w.join();
}

void
JobScheduler::start()
{
    std::lock_guard<std::mutex> lock(mu);
    if (started)
        return;
    started = true;
    for (unsigned i = 0; i < cfg.workers; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

JobId
JobScheduler::enqueueLocked(JobSpec &&spec)
{
    JobId id = nextId++;
    Entry e;
    e.key = configKey(spec.machine);
    e.spec = std::move(spec);
    entries.emplace(id, std::move(e));
    queue.push_back(id);
    counters.queueHighWater =
        std::max(counters.queueHighWater, queue.size());
    ++counters.submitted;
    return id;
}

JobId
JobScheduler::submit(JobSpec spec)
{
    std::unique_lock<std::mutex> lock(mu);
    cvSpace.wait(lock, [this] {
        return stop || queue.size() < cfg.queueCapacity;
    });
    if (stop)
        fatal("submit on a stopped scheduler");
    JobId id = enqueueLocked(std::move(spec));
    lock.unlock();
    cvWork.notify_one();
    return id;
}

std::optional<JobId>
JobScheduler::trySubmit(JobSpec spec)
{
    std::unique_lock<std::mutex> lock(mu);
    if (stop || queue.size() >= cfg.queueCapacity) {
        ++counters.rejected;
        return std::nullopt;
    }
    JobId id = enqueueLocked(std::move(spec));
    lock.unlock();
    cvWork.notify_one();
    return id;
}

JobStatus
JobScheduler::status(JobId id) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("unknown job id ", id);
    return it->second.jobStatus;
}

std::optional<JobResult>
JobScheduler::poll(JobId id) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("unknown job id ", id);
    const Entry &e = it->second;
    if (e.jobStatus == JobStatus::Done ||
        e.jobStatus == JobStatus::Failed)
        return e.result;
    return std::nullopt;
}

JobResult
JobScheduler::await(JobId id)
{
    std::unique_lock<std::mutex> lock(mu);
    if (entries.find(id) == entries.end())
        fatal("unknown job id ", id);
    // Re-resolve per wake-up: bounded retention may erase the entry
    // while we are blocked (it finished, then aged out).
    cvDone.wait(lock, [&] {
        auto it = entries.find(id);
        return it == entries.end() ||
               it->second.jobStatus == JobStatus::Done ||
               it->second.jobStatus == JobStatus::Failed;
    });
    auto it = entries.find(id);
    if (it == entries.end())
        fatal("job ", id, " finished but its result aged out of the ",
              "bounded retention before await could read it");
    return it->second.result;
}

void
JobScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    cvDone.wait(lock,
                [this] { return queue.empty() && inFlight == 0; });
}

JobScheduler::Stats
JobScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

void
JobScheduler::finishLocked(JobId id, JobResult &&result)
{
    Entry &e = entries.at(id);
    bool failed = result.failed();
    e.result = std::move(result);
    e.jobStatus = failed ? JobStatus::Failed : JobStatus::Done;
    e.spec = JobSpec{}; // free the program/source copies
    if (failed)
        ++counters.failed;
    else
        ++counters.completed;
    // Bounded retention: a long-lived service must not accumulate one
    // result per job forever. Oldest finished results age out; an
    // await/poll on an aged-out id reports an unknown job.
    finishedOrder.push_back(id);
    while (finishedOrder.size() > cfg.maxRetainedResults) {
        entries.erase(finishedOrder.front());
        finishedOrder.pop_front();
    }
}

JobResult
JobScheduler::runJob(const JobSpec &spec, core::QumaMachine &machine)
{
    JobResult r;
    try {
        machine.reset(Rng::derive(spec.seed, kChipStream),
                      Rng::derive(spec.seed, kExecStream));
        // Always (re)configure collection: a pooled machine may carry
        // the previous job's bin count, and determinism requires the
        // collector state to depend on this spec alone.
        machine.configureDataCollection(spec.bins ? spec.bins : 1);
        if (spec.program)
            machine.loadProgram(*spec.program);
        else
            machine.loadProgram(*cache.assemble(spec.assembly));
        r.run = machine.run(spec.maxCycles);
        r.averages = machine.dataCollector().averages();
        r.bitAverages = machine.dataCollector().bitAverages();
        r.sampleCount = machine.dataCollector().sampleCount();
    } catch (const std::exception &ex) {
        r = JobResult{};
        r.error = ex.what();
    }
    return r;
}

void
JobScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cvWork.wait(lock, [this] { return stop || !queue.empty(); });
        if (stop)
            return;

        JobId id = queue.front();
        queue.pop_front();
        ++inFlight;
        Entry &entry = entries.at(id);
        entry.jobStatus = JobStatus::Running;
        JobSpec spec = std::move(entry.spec);
        std::string key = entry.key;
        lock.unlock();
        cvSpace.notify_one();

        MachinePool::Lease lease;
        try {
            lease = pool.acquireKeyed(key, spec.machine);
        } catch (const std::exception &ex) {
            // Machine construction rejected the config: fail THIS job;
            // letting the exception leave the thread would terminate
            // the whole service.
            JobResult r;
            r.error = std::string("machine unavailable: ") + ex.what();
            lock.lock();
            finishLocked(id, std::move(r));
            --inFlight;
            cvDone.notify_all();
            continue;
        }
        std::size_t ranOnLease = 0;
        for (;;) {
            JobResult result = runJob(spec, lease.machine());
            ++ranOnLease;

            lock.lock();
            finishLocked(id, std::move(result));
            --inFlight;
            cvDone.notify_all();

            // Lease batching: run the next same-config job without a
            // pool round-trip.
            if (!stop && !queue.empty() &&
                ranOnLease < cfg.leaseBatchLimit &&
                entries.at(queue.front()).key == key) {
                id = queue.front();
                queue.pop_front();
                ++inFlight;
                Entry &next = entries.at(id);
                next.jobStatus = JobStatus::Running;
                spec = std::move(next.spec);
                ++counters.batchedJobs;
                lock.unlock();
                cvSpace.notify_one();
                continue;
            }
            break;
        }
        // Still holding the lock from the loop exit; release the
        // lease outside it (reset + pool hand-back take the pool
        // mutex, not ours).
        lock.unlock();
        lease.release();
        lock.lock();
    }
}

} // namespace quma::runtime
