/**
 * @file
 * The unit of work of the concurrent experiment runtime: one job is
 * one host-PC session of the paper's §8 flow (upload calibration,
 * load a program, run, collect averages), described as data so it can
 * be queued, sharded onto a pooled machine, and executed by any
 * worker.
 *
 * Determinism contract: a job's result is a pure function of its
 * JobSpec. The runtime derives the chip-noise and stall-injection RNG
 * streams from the job seed (Rng::derive), resets the pooled machine
 * before running, and never shares mutable state between jobs -- so
 * the same spec produces the same JobResult regardless of worker
 * count, scheduling order, or which pooled machine it lands on.
 */

#ifndef QUMA_RUNTIME_JOB_HH
#define QUMA_RUNTIME_JOB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "quma/machine.hh"

namespace quma::runtime {

using JobId = std::uint64_t;

struct JobSpec
{
    /** Human-readable label (diagnostics only; not part of results). */
    std::string name;

    /**
     * QuMIS/QIS assembly source. Compiled through the ProgramCache,
     * so repeated jobs with identical source skip the assembler.
     */
    std::string assembly;
    /** Pre-assembled program; bypasses the cache when set. */
    std::optional<isa::Program> program;

    /** Machine configuration; shards the pool (seeds are ignored --
     *  the job seed below replaces them). */
    core::MachineConfig machine;

    /** Data-collection bins K (0 = leave unconfigured). */
    std::size_t bins = 0;

    /** Job seed; chip and exec RNG streams are derived from it. */
    std::uint64_t seed = 0x5eed;

    /** Run budget in cycles. */
    Cycle maxCycles = 2'000'000'000ULL;
};

enum class JobStatus { Queued, Running, Done, Failed };

struct JobResult
{
    core::RunResult run;
    /** Per-bin ensemble averages (data collection unit). */
    std::vector<double> averages;
    std::vector<double> bitAverages;
    std::size_t sampleCount = 0;
    /** Non-empty when the job failed; the other fields are empty. */
    std::string error;

    bool failed() const { return !error.empty(); }

    bool operator==(const JobResult &) const = default;
};

/**
 * Shard key of a machine configuration: two configs with the same key
 * are interchangeable hardware as far as a job is concerned (same
 * qubits, routing, delays, queue depths, error injections). Seeds are
 * deliberately excluded -- jobs reseed the machine they run on.
 */
std::string configKey(const core::MachineConfig &config);

} // namespace quma::runtime

#endif // QUMA_RUNTIME_JOB_HH
