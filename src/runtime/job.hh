/**
 * @file
 * The unit of work of the concurrent experiment runtime: one job is
 * one host-PC session of the paper's §8 flow (upload calibration,
 * load a program, run, collect averages), described as data so it can
 * be queued, sharded onto a pooled machine, and executed by any
 * worker.
 *
 * Determinism contract: a job's result is a pure function of its
 * JobSpec. The runtime derives the chip-noise and stall-injection RNG
 * streams from the job seed (Rng::derive), resets the pooled machine
 * before running, and never shares mutable state between jobs -- so
 * the same spec produces the same JobResult regardless of worker
 * count, scheduling order, or which pooled machine it lands on.
 */

#ifndef QUMA_RUNTIME_JOB_HH
#define QUMA_RUNTIME_JOB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "quma/machine.hh"

namespace quma::runtime {

using JobId = std::uint64_t;

/**
 * Scheduling class of a job. Higher classes are drained first; aging
 * (SchedulerConfig::agingQuantum) promotes long-waiting jobs one
 * class step per quantum of newer submissions, so a backlog of Batch
 * work is overtaken by High jobs without ever being starved by them.
 */
enum class JobPriority : std::uint8_t
{
    Batch = 0,
    Normal = 1,
    High = 2,
};

/**
 * Experiment fan-out policy: sweeps with at least this many averaging
 * rounds are worth round-structured (shardable) execution; below it
 * the per-round machine reset/reload overhead outweighs what the
 * extra parallelism can recover.
 */
inline constexpr std::size_t kShardableRounds = 16;

/**
 * The experiments' shared eligibility rule for round-structured
 * execution: an explicit shard request (>= 2) always opts in; auto
 * (0) opts in for large sweeps; 1 forces the legacy opaque mode.
 */
inline constexpr bool
wantsRoundStructured(std::size_t shards_requested, std::size_t rounds)
{
    return shards_requested >= 2 ||
           (shards_requested == 0 && rounds >= kShardableRounds);
}

/** A contiguous range of averaging rounds assigned to one shard. */
struct RoundRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/**
 * Balanced contiguous partition of `rounds` into at most `shards`
 * ranges, clamped so every shard keeps at least
 * `min_rounds_per_shard` rounds (and never more shards than rounds).
 * shards == 0 requests one shard. The partition is a pure function of
 * its arguments -- the deterministic-merge contract depends on the
 * round->shard assignment being reproducible.
 */
std::vector<RoundRange> partitionRounds(std::size_t rounds,
                                        std::size_t shards,
                                        std::size_t min_rounds_per_shard);

struct JobSpec
{
    /** Human-readable label (diagnostics only; not part of results). */
    std::string name;

    /**
     * QuMIS/QIS assembly source. Compiled through the ProgramCache,
     * so repeated jobs with identical source skip the assembler.
     */
    std::string assembly;
    /** Pre-assembled program; bypasses the cache when set. */
    std::optional<isa::Program> program;

    /** Machine configuration; shards the pool (seeds are ignored --
     *  the job seed below replaces them). */
    core::MachineConfig machine;

    /** Data-collection bins K (0 = leave unconfigured). */
    std::size_t bins = 0;

    /** Job seed; chip and exec RNG streams are derived from it. */
    std::uint64_t seed = 0x5eed;

    /** Run budget in cycles (per round for round-structured jobs). */
    Cycle maxCycles = 2'000'000'000ULL;

    /**
     * Averaging rounds N. 0 = OPAQUE job: the program (which may
     * contain its own averaging loop) runs once, on one machine, with
     * one pair of job-level RNG streams. When N > 0 the job is
     * ROUND-STRUCTURED: assembly/program must be the one-round body
     * (QuantumProgram repetitions = 1), and the runtime executes it N
     * times, deriving each round's RNG streams from (seed, round) --
     * see runtime/keys.hh -- and merging the per-round collector sums
     * in round order. Only round-structured jobs can be sharded.
     */
    std::size_t rounds = 0;

    /**
     * Requested shard count for a round-structured job: the scheduler
     * splits the N rounds into this many contiguous ranges and runs
     * them as parallel tasks on pooled machines. 0 = auto (one shard
     * per worker); 1 = a single shard. Always clamped by
     * minRoundsPerShard. The merged result is bit-identical for every
     * shard count.
     */
    std::size_t shards = 1;
    /** Smallest round range worth a pool lease (clamps `shards`). */
    std::size_t minRoundsPerShard = 8;

    /** Scheduling class (see JobPriority). */
    JobPriority priority = JobPriority::Normal;
};

enum class JobStatus { Queued, Running, Done, Failed };

struct JobResult
{
    core::RunResult run;
    /** Per-bin ensemble averages (data collection unit). */
    std::vector<double> averages;
    std::vector<double> bitAverages;
    std::size_t sampleCount = 0;
    /** Non-empty when the job failed; the other fields are empty. */
    std::string error;

    bool failed() const { return !error.empty(); }

    bool operator==(const JobResult &) const = default;
};

/**
 * Shard key of a machine configuration: two configs with the same key
 * are interchangeable hardware as far as a job is concerned (same
 * qubits, routing, delays, queue depths, error injections). Seeds are
 * deliberately excluded -- jobs reseed the machine they run on.
 */
std::string configKey(const core::MachineConfig &config);

} // namespace quma::runtime

#endif // QUMA_RUNTIME_JOB_HH
