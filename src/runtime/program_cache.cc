#include "runtime/program_cache.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "runtime/keys.hh"

namespace quma::runtime {

namespace {

std::string
lutKey(const awg::CalibrationParams &p)
{
    std::ostringstream os;
    for (double v : {p.pulseNs, p.sigmaNs, p.ssbHz, p.rabiRadPerAmpNs,
                     p.rateHz, p.amplitudeError, p.msmtPulseNs,
                     p.czPulseNs})
        keys::appendBits(os, v);
    return os.str();
}

} // namespace

ProgramCache::ProgramCache(std::size_t max_programs,
                           std::size_t max_luts)
    : maxPrograms(max_programs ? max_programs : 1),
      maxLuts(max_luts ? max_luts : 1)
{
}

std::shared_ptr<const isa::Program>
ProgramCache::assemble(const std::string &source)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = programs.find(source);
        if (it != programs.end()) {
            ++counters.programHits;
            ms.hits.inc();
            return it->second;
        }
        ++counters.programMisses;
        ms.misses.inc();
    }

    // Assemble outside the lock: compiles of distinct sources run in
    // parallel. A racing duplicate assembles twice and the results
    // are identical, so either insert is correct.
    isa::Assembler assembler;
    auto program =
        std::make_shared<const isa::Program>(assembler.assemble(source));

    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = programs.emplace(source, program);
    if (inserted) {
        programOrder.push_back(source);
        while (programOrder.size() > maxPrograms) {
            programs.erase(programOrder.front());
            programOrder.pop_front();
            ++counters.programEvictions;
            ms.evictions.inc();
        }
    }
    return it->second;
}

std::shared_ptr<const std::map<Codeword, awg::StoredPulse>>
ProgramCache::lut(const awg::CalibrationParams &params)
{
    std::string key = lutKey(params);
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = luts.find(key);
        if (it != luts.end()) {
            ++counters.lutHits;
            ms.lutHits.inc();
            return it->second;
        }
        ++counters.lutMisses;
        ms.lutMisses.inc();
    }

    auto entries =
        std::make_shared<const std::map<Codeword, awg::StoredPulse>>(
            awg::buildStandardLutEntries(params));

    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = luts.emplace(key, entries);
    if (inserted) {
        lutOrder.push_back(key);
        while (lutOrder.size() > maxLuts) {
            luts.erase(lutOrder.front());
            lutOrder.pop_front();
            ++counters.lutEvictions;
            ms.lutEvictions.inc();
        }
    }
    return it->second;
}

core::QumaMachine::LutProvider
ProgramCache::lutProvider()
{
    return [this](const awg::CalibrationParams &params) {
        return lut(params);
    };
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

std::size_t
ProgramCache::programCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return programs.size();
}

std::size_t
ProgramCache::lutCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return luts.size();
}

void
ProgramCache::bindMetrics(metrics::MetricsRegistry &registry)
{
    ms.hits = registry.counter(
        "quma_cache_program_hits_total",
        "assemble() calls served from the program layer.");
    ms.misses = registry.counter(
        "quma_cache_program_misses_total",
        "assemble() calls that ran the assembler.");
    ms.evictions = registry.counter(
        "quma_cache_program_evictions_total",
        "Programs aged out of the bounded program layer (FIFO).");
    ms.lutHits = registry.counter(
        "quma_cache_lut_hits_total",
        "Calibration uploads served from the LUT layer.");
    ms.lutMisses = registry.counter(
        "quma_cache_lut_misses_total",
        "Calibration uploads that re-rendered the waveform tables.");
    ms.lutEvictions = registry.counter(
        "quma_cache_lut_evictions_total",
        "LUT sets aged out of the bounded LUT layer (FIFO).");
    registry.gaugeFn("quma_cache_programs_resident",
                     "Programs currently held by the program layer.",
                     {}, [this] {
                         return static_cast<double>(programCount());
                     });
    registry.gaugeFn(
        "quma_cache_luts_resident",
        "LUT sets currently held by the calibration layer.", {},
        [this] { return static_cast<double>(lutCount()); });
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    programs.clear();
    programOrder.clear();
    luts.clear();
    lutOrder.clear();
    counters = Stats{};
}

} // namespace quma::runtime
