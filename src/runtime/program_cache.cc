#include "runtime/program_cache.hh"

#include <sstream>

#include "isa/assembler.hh"
#include "runtime/keys.hh"

namespace quma::runtime {

namespace {

std::string
lutKey(const awg::CalibrationParams &p)
{
    std::ostringstream os;
    for (double v : {p.pulseNs, p.sigmaNs, p.ssbHz, p.rabiRadPerAmpNs,
                     p.rateHz, p.amplitudeError, p.msmtPulseNs,
                     p.czPulseNs})
        keys::appendBits(os, v);
    return os.str();
}

} // namespace

ProgramCache::ProgramCache(std::size_t max_programs,
                           std::size_t max_luts)
    : maxPrograms(max_programs ? max_programs : 1),
      maxLuts(max_luts ? max_luts : 1)
{
}

std::shared_ptr<const isa::Program>
ProgramCache::assemble(const std::string &source)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = programs.find(source);
        if (it != programs.end()) {
            ++counters.programHits;
            return it->second;
        }
        ++counters.programMisses;
    }

    // Assemble outside the lock: compiles of distinct sources run in
    // parallel. A racing duplicate assembles twice and the results
    // are identical, so either insert is correct.
    isa::Assembler assembler;
    auto program =
        std::make_shared<const isa::Program>(assembler.assemble(source));

    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = programs.emplace(source, program);
    if (inserted) {
        programOrder.push_back(source);
        while (programOrder.size() > maxPrograms) {
            programs.erase(programOrder.front());
            programOrder.pop_front();
            ++counters.programEvictions;
        }
    }
    return it->second;
}

std::shared_ptr<const std::map<Codeword, awg::StoredPulse>>
ProgramCache::lut(const awg::CalibrationParams &params)
{
    std::string key = lutKey(params);
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = luts.find(key);
        if (it != luts.end()) {
            ++counters.lutHits;
            return it->second;
        }
        ++counters.lutMisses;
    }

    auto entries =
        std::make_shared<const std::map<Codeword, awg::StoredPulse>>(
            awg::buildStandardLutEntries(params));

    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = luts.emplace(key, entries);
    if (inserted) {
        lutOrder.push_back(key);
        while (lutOrder.size() > maxLuts) {
            luts.erase(lutOrder.front());
            lutOrder.pop_front();
        }
    }
    return it->second;
}

core::QumaMachine::LutProvider
ProgramCache::lutProvider()
{
    return [this](const awg::CalibrationParams &params) {
        return lut(params);
    };
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    programs.clear();
    programOrder.clear();
    luts.clear();
    lutOrder.clear();
    counters = Stats{};
}

} // namespace quma::runtime
