#include "runtime/machine_pool.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace quma::runtime {

MachinePool::MachinePool(std::size_t max_machines, ProgramCache *cache)
    : maxMachines(max_machines ? max_machines : 1), lutCache(cache)
{
}

MachinePool::Lease::Lease(Lease &&other) noexcept
    : owner(other.owner), shardKey(std::move(other.shardKey)),
      m(std::move(other.m))
{
    other.owner = nullptr;
}

MachinePool::Lease &
MachinePool::Lease::operator=(Lease &&other) noexcept
{
    if (this != &other) {
        release();
        owner = other.owner;
        shardKey = std::move(other.shardKey);
        m = std::move(other.m);
        other.owner = nullptr;
    }
    return *this;
}

MachinePool::Lease::~Lease()
{
    release();
}

void
MachinePool::Lease::release()
{
    if (owner && m)
        owner->give_back(shardKey, std::move(m));
    owner = nullptr;
    m.reset();
}

MachinePool::Lease
MachinePool::acquire(const core::MachineConfig &config)
{
    return acquireKeyed(configKey(config), config);
}

MachinePool::Lease
MachinePool::acquireKeyed(const std::string &key,
                          const core::MachineConfig &config,
                          double *blocked_seconds)
{
    if (blocked_seconds)
        *blocked_seconds = 0.0;
    double waited = 0.0;
    // Declared before the lock so an evicted machine's (non-trivial)
    // teardown runs after the mutex is released.
    std::unique_ptr<core::QumaMachine> evicted;
    std::unique_lock<std::mutex> lock(mu);
    ++counters.acquisitions;
    ms.acquisitions.inc();
    for (;;) {
        auto it = idle.find(key);
        if (it != idle.end() && !it->second.empty()) {
            std::unique_ptr<core::QumaMachine> m =
                std::move(it->second.front());
            it->second.pop_front();
            if (it->second.empty())
                idle.erase(it);
            auto pos =
                std::find(idleOrder.begin(), idleOrder.end(), key);
            quma_assert(pos != idleOrder.end(),
                        "idle-order bookkeeping out of sync");
            idleOrder.erase(pos);
            ++counters.reuseHits;
            ms.reuseHits.inc();
            ++leased;
            if (blocked_seconds)
                *blocked_seconds = waited;
            ms.leaseWait.observe(waited);
            return Lease(this, key, std::move(m));
        }
        if (totalMachines < maxMachines) {
            // Reserve the slot, construct outside the lock.
            ++totalMachines;
            ++leased;
            break;
        }
        if (!idleOrder.empty()) {
            // Full of machines, none match: evict the machine that
            // has been idle longest to make room for this config.
            std::string victim = idleOrder.front();
            idleOrder.pop_front();
            auto vit = idle.find(victim);
            quma_assert(vit != idle.end() && !vit->second.empty(),
                        "idle-order bookkeeping out of sync");
            evicted = std::move(vit->second.front());
            vit->second.pop_front();
            if (vit->second.empty())
                idle.erase(vit);
            --totalMachines;
            ++counters.evictions;
            ms.evictions.inc();
            continue;
        }
        auto waitStart = std::chrono::steady_clock::now();
        cv.wait(lock);
        waited += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - waitStart)
                      .count();
    }
    ++counters.machinesCreated;
    if (blocked_seconds)
        *blocked_seconds = waited;
    ms.leaseWait.observe(waited);
    lock.unlock();

    try {
        auto m = std::make_unique<core::QumaMachine>(config);
        m->uploadStandardCalibration(
            lutCache ? lutCache->lutProvider()
                     : core::QumaMachine::LutProvider{});
        // The metric counts only constructions that survived (the
        // exported counter is monotonic and cannot mirror the
        // Stats rollback in the catch below).
        ms.machinesCreated.inc();
        return Lease(this, key, std::move(m));
    } catch (...) {
        std::lock_guard<std::mutex> relock(mu);
        --totalMachines;
        --leased;
        --counters.machinesCreated;
        cv.notify_one();
        throw;
    }
}

void
MachinePool::give_back(const std::string &key,
                       std::unique_ptr<core::QumaMachine> machine)
{
    // Re-arm outside the lock: reset cost must not serialize workers.
    machine->reset();
    ms.machineResets.inc();
    {
        std::lock_guard<std::mutex> lock(mu);
        ++counters.machineResets;
        idle[key].push_back(std::move(machine));
        idleOrder.push_back(key);
        --leased;
    }
    cv.notify_one();
}

void
MachinePool::bindMetrics(metrics::MetricsRegistry &registry)
{
    ms.acquisitions = registry.counter(
        "quma_pool_acquisitions_total",
        "Machine lease requests (reuse hits + constructions).");
    ms.reuseHits = registry.counter(
        "quma_pool_reuse_hits_total",
        "Lease requests served by an idle machine (no construction).");
    ms.machinesCreated = registry.counter(
        "quma_pool_machines_created_total",
        "Machines constructed, calibration upload included.");
    ms.evictions = registry.counter(
        "quma_pool_evictions_total",
        "Idle machines destroyed to make room for another config.");
    ms.machineResets = registry.counter(
        "quma_pool_machine_resets_total",
        "QumaMachine::reset() calls on lease hand-back.");
    // Sub-millisecond buckets: an uncongested pool hands leases back
    // in microseconds, and the interesting signal is the onset of
    // blocking, not its exact depth.
    ms.leaseWait = registry.histogram(
        "quma_pool_lease_wait_seconds",
        "Time acquire spent blocked on a fully leased pool.",
        {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
         0.05, 0.1, 0.25, 0.5, 1.0});
    registry.gaugeFn("quma_pool_machines_idle",
                     "Idle machines currently held by the pool.", {},
                     [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(totalMachines -
                                                    leased);
                     });
    registry.gaugeFn("quma_pool_machines_leased",
                     "Machines currently leased out to workers.", {},
                     [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(leased);
                     });
    registry.gaugeFn(
        "quma_pool_capacity",
        "Pool capacity: the leased + idle machine bound.", {},
        [this] { return static_cast<double>(maxMachines); });
}

MachinePool::Stats
MachinePool::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s = counters;
    s.idleMachines = totalMachines - leased;
    s.leasedMachines = leased;
    return s;
}

} // namespace quma::runtime
