#include "runtime/machine_pool.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace quma::runtime {

MachinePool::MachinePool(std::size_t max_machines, ProgramCache *cache)
    : maxMachines(max_machines ? max_machines : 1), lutCache(cache)
{
}

MachinePool::Lease::Lease(Lease &&other) noexcept
    : owner(other.owner), shardKey(std::move(other.shardKey)),
      m(std::move(other.m))
{
    other.owner = nullptr;
}

MachinePool::Lease &
MachinePool::Lease::operator=(Lease &&other) noexcept
{
    if (this != &other) {
        release();
        owner = other.owner;
        shardKey = std::move(other.shardKey);
        m = std::move(other.m);
        other.owner = nullptr;
    }
    return *this;
}

MachinePool::Lease::~Lease()
{
    release();
}

void
MachinePool::Lease::release()
{
    if (owner && m)
        owner->give_back(shardKey, std::move(m));
    owner = nullptr;
    m.reset();
}

MachinePool::Lease
MachinePool::acquire(const core::MachineConfig &config)
{
    return acquireKeyed(configKey(config), config);
}

MachinePool::Lease
MachinePool::acquireKeyed(const std::string &key,
                          const core::MachineConfig &config,
                          double *blocked_seconds)
{
    if (blocked_seconds)
        *blocked_seconds = 0.0;
    // Declared before the lock so an evicted machine's (non-trivial)
    // teardown runs after the mutex is released.
    std::unique_ptr<core::QumaMachine> evicted;
    std::unique_lock<std::mutex> lock(mu);
    ++counters.acquisitions;
    for (;;) {
        auto it = idle.find(key);
        if (it != idle.end() && !it->second.empty()) {
            std::unique_ptr<core::QumaMachine> m =
                std::move(it->second.front());
            it->second.pop_front();
            if (it->second.empty())
                idle.erase(it);
            auto pos =
                std::find(idleOrder.begin(), idleOrder.end(), key);
            quma_assert(pos != idleOrder.end(),
                        "idle-order bookkeeping out of sync");
            idleOrder.erase(pos);
            ++counters.reuseHits;
            ++leased;
            return Lease(this, key, std::move(m));
        }
        if (totalMachines < maxMachines) {
            // Reserve the slot, construct outside the lock.
            ++totalMachines;
            ++leased;
            break;
        }
        if (!idleOrder.empty()) {
            // Full of machines, none match: evict the machine that
            // has been idle longest to make room for this config.
            std::string victim = idleOrder.front();
            idleOrder.pop_front();
            auto vit = idle.find(victim);
            quma_assert(vit != idle.end() && !vit->second.empty(),
                        "idle-order bookkeeping out of sync");
            evicted = std::move(vit->second.front());
            vit->second.pop_front();
            if (vit->second.empty())
                idle.erase(vit);
            --totalMachines;
            ++counters.evictions;
            continue;
        }
        auto waitStart = std::chrono::steady_clock::now();
        cv.wait(lock);
        if (blocked_seconds)
            *blocked_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - waitStart)
                    .count();
    }
    ++counters.machinesCreated;
    lock.unlock();

    try {
        auto m = std::make_unique<core::QumaMachine>(config);
        m->uploadStandardCalibration(
            lutCache ? lutCache->lutProvider()
                     : core::QumaMachine::LutProvider{});
        return Lease(this, key, std::move(m));
    } catch (...) {
        std::lock_guard<std::mutex> relock(mu);
        --totalMachines;
        --leased;
        --counters.machinesCreated;
        cv.notify_one();
        throw;
    }
}

void
MachinePool::give_back(const std::string &key,
                       std::unique_ptr<core::QumaMachine> machine)
{
    // Re-arm outside the lock: reset cost must not serialize workers.
    machine->reset();
    {
        std::lock_guard<std::mutex> lock(mu);
        idle[key].push_back(std::move(machine));
        idleOrder.push_back(key);
        --leased;
    }
    cv.notify_one();
}

MachinePool::Stats
MachinePool::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s = counters;
    s.idleMachines = totalMachines - leased;
    s.leasedMachines = leased;
    return s;
}

} // namespace quma::runtime
