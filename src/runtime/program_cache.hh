/**
 * @file
 * Compiled-program and calibration cache.
 *
 * Two memoization layers sit between job submission and a pooled
 * machine:
 *
 *  - the PROGRAM layer maps assembly source text to the assembled
 *    isa::Program, so a sweep that submits the same (or few distinct)
 *    programs pays the assembler once;
 *  - the LUT layer maps calibration parameters to the rendered
 *    Table 1 waveform entries, so calibrating the Nth pooled machine
 *    with the same qubit parameters copies stored samples instead of
 *    re-rendering envelopes and SSB modulation.
 *
 * Both layers are bounded (FIFO eviction) and thread-safe: every
 * scheduler worker shares one cache.
 */

#ifndef QUMA_RUNTIME_PROGRAM_CACHE_HH
#define QUMA_RUNTIME_PROGRAM_CACHE_HH

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "awg/calibration.hh"
#include "common/metrics.hh"
#include "isa/program.hh"
#include "quma/machine.hh"

namespace quma::runtime {

class ProgramCache
{
  public:
    struct Stats
    {
        std::size_t programHits = 0;
        std::size_t programMisses = 0;
        std::size_t programEvictions = 0;
        std::size_t lutHits = 0;
        std::size_t lutMisses = 0;
        std::size_t lutEvictions = 0;
    };

    explicit ProgramCache(std::size_t max_programs = 256,
                          std::size_t max_luts = 64);

    /** Assemble `source`, memoized on the exact source text. */
    std::shared_ptr<const isa::Program>
    assemble(const std::string &source);

    /** Rendered Table 1 LUT entries, memoized on the parameters. */
    std::shared_ptr<const std::map<Codeword, awg::StoredPulse>>
    lut(const awg::CalibrationParams &params);

    /** Adapter handing the LUT layer to uploadStandardCalibration. */
    core::QumaMachine::LutProvider lutProvider();

    Stats stats() const;
    void clear();

    /** Programs currently resident in the program layer. */
    std::size_t programCount() const;
    /** LUT sets currently resident in the calibration layer. */
    std::size_t lutCount() const;

    /**
     * Register this cache's series with `registry` (quma_cache_*
     * family). The cache must outlive the registry's last render:
     * gauge callbacks read live cache state.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    mutable std::mutex mu;
    std::size_t maxPrograms;
    std::size_t maxLuts;
    std::unordered_map<std::string, std::shared_ptr<const isa::Program>>
        programs;
    std::deque<std::string> programOrder;
    std::unordered_map<
        std::string,
        std::shared_ptr<const std::map<Codeword, awg::StoredPulse>>>
        luts;
    std::deque<std::string> lutOrder;
    Stats counters;

    /** Metric handles; default-constructed (no-op) until bound. */
    struct Instruments
    {
        metrics::Counter hits;
        metrics::Counter misses;
        metrics::Counter evictions;
        metrics::Counter lutHits;
        metrics::Counter lutMisses;
        metrics::Counter lutEvictions;
    };
    Instruments ms;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_PROGRAM_CACHE_HH
