/**
 * @file
 * Compiled-program and calibration cache.
 *
 * Two memoization layers sit between job submission and a pooled
 * machine:
 *
 *  - the PROGRAM layer maps assembly source text to the assembled
 *    isa::Program, so a sweep that submits the same (or few distinct)
 *    programs pays the assembler once;
 *  - the LUT layer maps calibration parameters to the rendered
 *    Table 1 waveform entries, so calibrating the Nth pooled machine
 *    with the same qubit parameters copies stored samples instead of
 *    re-rendering envelopes and SSB modulation.
 *
 * Both layers are bounded (FIFO eviction) and thread-safe: every
 * scheduler worker shares one cache.
 */

#ifndef QUMA_RUNTIME_PROGRAM_CACHE_HH
#define QUMA_RUNTIME_PROGRAM_CACHE_HH

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "awg/calibration.hh"
#include "isa/program.hh"
#include "quma/machine.hh"

namespace quma::runtime {

class ProgramCache
{
  public:
    struct Stats
    {
        std::size_t programHits = 0;
        std::size_t programMisses = 0;
        std::size_t programEvictions = 0;
        std::size_t lutHits = 0;
        std::size_t lutMisses = 0;
    };

    explicit ProgramCache(std::size_t max_programs = 256,
                          std::size_t max_luts = 64);

    /** Assemble `source`, memoized on the exact source text. */
    std::shared_ptr<const isa::Program>
    assemble(const std::string &source);

    /** Rendered Table 1 LUT entries, memoized on the parameters. */
    std::shared_ptr<const std::map<Codeword, awg::StoredPulse>>
    lut(const awg::CalibrationParams &params);

    /** Adapter handing the LUT layer to uploadStandardCalibration. */
    core::QumaMachine::LutProvider lutProvider();

    Stats stats() const;
    void clear();

  private:
    mutable std::mutex mu;
    std::size_t maxPrograms;
    std::size_t maxLuts;
    std::unordered_map<std::string, std::shared_ptr<const isa::Program>>
        programs;
    std::deque<std::string> programOrder;
    std::unordered_map<
        std::string,
        std::shared_ptr<const std::map<Codeword, awg::StoredPulse>>>
        luts;
    std::deque<std::string> lutOrder;
    Stats counters;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_PROGRAM_CACHE_HH
