/**
 * @file
 * The job scheduler: a prioritised task queue drained by worker
 * threads, with shot-level sharding and stats-driven admission.
 *
 * SCHEDULING. Each queued task carries its job's priority class and
 * submission sequence number. Workers always pop the task with the
 * highest EFFECTIVE priority -- the class plus one step per
 * `agingQuantum` newer submissions the task has waited through --
 * breaking ties oldest-first. High jobs therefore overtake a backlog
 * of Normal/Batch work, while aging guarantees the backlog is never
 * starved by a continuous stream of fresh High jobs.
 *
 * SHARDING. An opaque job (JobSpec::rounds == 0) is one task. A
 * round-structured job is split by partitionRounds() into contiguous
 * round ranges, one task per shard, which run in parallel on pooled
 * machines; the worker finishing the last shard merges the per-round
 * collector sums in global round order. Per-round RNG derivation
 * (runtime/keys.hh) plus the order-preserving merge make the merged
 * result bit-identical for every shard count and worker count.
 *
 * BATCHING. After a task, while the worker still holds its machine
 * lease, it runs the next BEST task immediately if that task needs
 * the same machine configuration -- the common case when a sweep (or
 * a sharded job) fans out into many same-shaped tasks.
 *
 * NOTIFICATION. subscribe(id, cb) registers a one-shot completion
 * callback, delivered by a dedicated notifier thread in completion
 * order, outside the scheduler mutex. This is the push primitive the
 * network serving layer streams results with: a finished job's
 * JobResult frame leaves the server the moment the merge completes,
 * with no awaitFor polling loop holding a thread per pending job.
 *
 * WORK STEALING. A slow shard would otherwise gate its job's merge
 * while other workers idle. With workSteal enabled, the executing
 * worker claims its shard's rounds one at a time (contiguously, under
 * the scheduler mutex) and an idle worker may SPLIT the largest
 * in-flight shard: the tail half of its unclaimed rounds becomes a
 * new shard the thief runs immediately. Because every round derives
 * its RNG streams from (seed, round) and the merge walks partials in
 * round order, stealing changes WHO runs a round but never WHAT it
 * computes -- merged results stay bit-identical with stealing on or
 * off, at any worker count.
 *
 * ADMISSION. Executed jobs sample QumaMachine::stats(): a run whose
 * timing event queues rejected a push (producer backpressure; deep
 * queues alone are healthy) or silently dropped stale events counts
 * as saturated, and an EWMA of that
 * signal drives trySubmit's effective queue bound. While the machines report saturation the scheduler
 * stops accepting work it could only queue (adding depth would add
 * latency, not throughput); the configured queueCapacity remains the
 * hard ceiling, and blocking submit() always uses it.
 */

#ifndef QUMA_RUNTIME_SCHEDULER_HH
#define QUMA_RUNTIME_SCHEDULER_HH

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.hh"
#include "runtime/job.hh"
#include "runtime/machine_pool.hh"
#include "runtime/program_cache.hh"
#include "runtime/trace.hh"

namespace quma::runtime {

/**
 * JobResult::error of a job cancelled while still queued. A named
 * constant because the journal layer (runtime/journal.hh) keys off
 * it: cancellations journal as Cancelled (must NOT be recovered).
 */
inline constexpr const char *kCancelledJobError =
    "cancelled before execution";
/**
 * JobResult::error of a queued job failed by scheduler shutdown. The
 * journal layer treats completions carrying this error as NOT
 * completed -- the work never ran, and recovery must bring it back.
 */
inline constexpr const char *kShutdownJobError =
    "scheduler shut down before the job ran";

struct SchedulerConfig
{
    unsigned workers = 2;
    /**
     * Hard queue bound, counted in TASKS (an S-way sharded job holds
     * S slots). submit blocks at the bound (a multi-shard job may
     * transiently overshoot it by shards-1 slots so its shards enter
     * atomically); trySubmit rejects at the stats-driven effective
     * bound, which never exceeds this.
     */
    std::size_t queueCapacity = 64;
    /**
     * Do not spawn workers yet; start() does. Lets tests (and staged
     * deployments) fill the bounded queue before draining begins.
     */
    bool startPaused = false;
    /** Max same-config tasks executed on one pool lease. */
    std::size_t leaseBatchLimit = 8;
    /**
     * Finished JobResults retained for poll/await. When exceeded the
     * oldest finished results age out and their ids report unknown.
     */
    std::size_t maxRetainedResults = 65536;
    /**
     * Aging: a waiting task gains one priority step per this many
     * newer submissions (0 disables aging). Keeps low classes from
     * starving under a continuous high-priority stream; large enough
     * by default that a burst-submitted backlog does not immediately
     * tie with fresh High work.
     */
    std::size_t agingQuantum = 64;
    /** Enable machine-stats-driven admission for trySubmit. */
    bool adaptiveAdmission = true;
    /** Saturation EWMA above this tightens the effective bound. */
    double saturationThreshold = 0.5;
    /** Effective bound while congested, as a queueCapacity fraction
     *  (floored at the worker count). */
    double congestedQueueFraction = 0.25;
    /** EWMA smoothing of the per-run saturation samples. */
    double saturationAlpha = 0.25;
    /**
     * Second admission signal: workers sample how long each pool
     * acquisition blocked waiting for a machine, and an EWMA of those
     * waits above this threshold (seconds) tightens trySubmit's
     * effective bound exactly like queue saturation does. Jobs
     * waiting on machines mean pool capacity -- not queue depth -- is
     * the bottleneck, so adding depth would add latency only.
     */
    double poolWaitThresholdSeconds = 0.02;
    /** EWMA smoothing of the per-acquisition pool-wait samples. */
    double poolWaitAlpha = 0.25;
    /**
     * Completions remembered by finishedIds(), newest-N ring. Bounds
     * the completion-order observable separately from result
     * retention so a long-lived server never grows it without limit.
     */
    std::size_t finishedHistoryLimit = 1024;
    /**
     * Job-lifecycle trace recorder (not owned; must outlive the
     * scheduler). Null disables tracing entirely; a non-null but
     * DISABLED recorder costs one relaxed load per lifecycle point
     * -- the default ExperimentService wiring.
     */
    JobTraceRecorder *trace = nullptr;
    /**
     * Let idle workers split the remaining round range of a running
     * shard (see WORK STEALING above). Results are bit-identical
     * either way; off trades tail-latency rebalancing for
     * strictly lock-free round execution inside a shard.
     */
    bool workSteal = true;
    /**
     * A shard is a steal victim only while it still has at least
     * this many unclaimed rounds (floored at 2 so the victim always
     * keeps one and the thief always gets one).
     */
    std::size_t minStealRounds = 4;
    /**
     * Minimum spacing between progress notifications per job (see
     * subscribeProgress). The first completed round after a
     * subscription notifies immediately; later rounds are coalesced
     * to at most one notification per interval, plus a final
     * unthrottled one when the job's last round completes. Zero
     * notifies on every completed round (tests).
     */
    std::chrono::milliseconds progressInterval{50};
};

class JobScheduler
{
  public:
    /**
     * Submit-to-finish latency summary of one priority class, over a
     * sliding window of the most recent completions (percentiles) and
     * the whole scheduler lifetime (count, max). All in seconds.
     */
    struct LatencyDigest
    {
        std::size_t count = 0;
        double p50 = 0.0;
        double p95 = 0.0;
        double max = 0.0;
    };

    struct Stats
    {
        std::size_t submitted = 0;
        std::size_t rejected = 0;
        std::size_t completed = 0;
        std::size_t failed = 0;
        /** Jobs cancelled while still queued (counted in failed). */
        std::size_t cancelled = 0;
        std::size_t queueHighWater = 0;
        /** Tasks that reused the previous task's lease (batching). */
        std::size_t batchedJobs = 0;
        /** Jobs split into more than one shard. */
        std::size_t shardedJobs = 0;
        /** Shard tasks executed (incl. single-shard round jobs). */
        std::size_t shardsExecuted = 0;
        /** Runs whose machine reported queue saturation. */
        std::size_t saturatedRuns = 0;
        /** Shards created by stealing a running shard's tail. */
        std::size_t shardsStolen = 0;
        /** Rounds handed to thieves by those steals. */
        std::size_t roundsStolen = 0;
        /** Event-wheel dispatches summed over executed runs. */
        std::size_t eventsDispatched = 0;
        /** Highest event-wheel occupancy any run reached. */
        std::size_t wheelHighWater = 0;
        /** Stale timing-queue drops summed over executed runs. */
        std::size_t staleEventDrops = 0;
        /** trySubmit rejections below the hard bound (admission). */
        std::size_t admissionSoftRejects = 0;
        /** Progress notifications queued to subscribers (not
         *  serialized into StatsFrame; a serving-side observable). */
        std::size_t progressNotifications = 0;
        /** Saturation EWMA at the time of the snapshot. */
        double machineSaturation = 0.0;
        /** Pool-acquisition wait EWMA (seconds) at the snapshot. */
        double poolWaitEwmaSeconds = 0.0;
        /** Submit->finish latency per priority class, indexed by
         *  the JobPriority value (Batch, Normal, High). */
        std::array<LatencyDigest, 3> latency{};
    };

    JobScheduler(SchedulerConfig config, MachinePool &pool,
                 ProgramCache &cache);
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /** Spawn the worker threads (idempotent). */
    void start();

    /** Enqueue a job; blocks while the queue is full. */
    JobId submit(JobSpec spec);
    /** Enqueue a job; nullopt when the (effective) bound is hit. */
    std::optional<JobId> trySubmit(JobSpec spec);
    /**
     * submit() that gives up after `timeout` if the queue stays at
     * the HARD bound (admission is not consulted, exactly like
     * submit). The serving layer loops on this so a shutdown can
     * interrupt a remote submit blocked behind a full queue; the
     * spec is only copied on a successful enqueue, so retries are
     * free.
     */
    std::optional<JobId> submitFor(const JobSpec &spec,
                                   std::chrono::milliseconds timeout);

    JobStatus status(JobId id) const;
    /** The result once the job finished, nullopt while in flight. */
    std::optional<JobResult> poll(JobId id) const;
    /** Block until the job finishes and return its result. */
    JobResult await(JobId id);
    /**
     * await() with a deadline: nullopt while the job is still in
     * flight after `timeout`. Unknown ids fatal like await(). The
     * serving layer loops on this so a shutdown can interrupt a
     * connection thread parked on a slow job.
     */
    std::optional<JobResult>
    awaitFor(JobId id, std::chrono::milliseconds timeout);
    /** Block until every submitted job has finished. */
    void drain();

    /**
     * Cancel a job that has not started running: its queued tasks are
     * removed and the job finishes as Failed with a "cancelled"
     * error, unblocking awaiters. Returns false (and does nothing)
     * once any part of the job is running or it already finished --
     * in-flight machine time is never interrupted. The serving layer
     * uses this to drop the queued work of a disconnected client.
     */
    bool cancel(JobId id);

    /**
     * One-shot completion callback: invoked with the job's id and
     * final result once the job finishes (Done or Failed, including
     * cancellation). Subscribing to an already-finished job delivers
     * immediately. The result arrives as a shared_ptr so a consumer
     * can hand it to another thread (e.g. a connection's writer, for
     * off-notifier-thread encoding) without copying the payload.
     * See subscribe() for the threading contract.
     */
    using CompletionCallback =
        std::function<void(JobId, std::shared_ptr<const JobResult>)>;

    /**
     * Register `callback` to fire on the job's completion -- the
     * push-notification primitive the serving layer builds result
     * streaming on, replacing awaitFor polling loops.
     *
     * Threading contract: callbacks run on the scheduler's dedicated
     * notifier thread, one at a time, in completion order (for an
     * already-finished job, in subscription order), never under the
     * scheduler mutex -- so a callback may call back into the
     * scheduler, but must not block for long (it would delay every
     * later notification; expensive per-result work belongs on the
     * consumer's own thread, which the shared_ptr makes cheap to
     * arrange). Multiple subscriptions per job are allowed. Unknown
     * ids fatal(), exactly like await(). Destruction of the
     * scheduler delivers every pending notification (shutdown-failed
     * jobs included) before the destructor returns.
     */
    void subscribe(JobId id, CompletionCallback callback);

    /**
     * Repeating progress callback: (job, roundsDone, roundsTotal)
     * snapshots taken under the scheduler mutex, so successive
     * deliveries for one job are monotonically non-decreasing --
     * work stealing moves unclaimed rounds between shards but never
     * un-completes one. roundsTotal is the spec's round count.
     */
    using ProgressCallback =
        std::function<void(JobId, std::size_t, std::size_t)>;

    /**
     * Register `callback` for round-completion progress on a
     * round-structured job, rate-limited by
     * SchedulerConfig::progressInterval. Unlike subscribe() this is
     * BEST-EFFORT and not one-shot: callbacks fire zero or more
     * times (an opaque or already-finished job never notifies; the
     * completion push, not a 100% notification, is the terminal
     * signal) and ride the same notifier thread in queue order --
     * every progress notification for a job is delivered before its
     * completion notification. Unknown ids are ignored rather than
     * fatal: the serving layer subscribes in a race with bounded
     * retention. Subscriptions end with the job.
     */
    void subscribeProgress(JobId id, ProgressCallback callback);

    Stats stats() const;

    /**
     * Register this scheduler's metric families with `registry`:
     * lifecycle counters (quma_jobs_*_total), point-in-time gauges
     * (queue depth, in-flight, effective capacity, admission EWMAs)
     * and the per-priority submit->finish latency histogram
     * quma_job_latency_seconds. Counter/histogram updates ride the
     * existing increment sites at a few relaxed atomics each; gauges
     * are callback series evaluated at scrape time. The scheduler
     * must outlive the registry's last render. Idempotent (handles
     * re-bind to the same cells).
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

    /** Tasks currently queued (the quma_queue_depth gauge). */
    std::size_t queueDepth() const;

    /**
     * Ids of finished jobs in completion order, oldest first -- a
     * ring of the last finishedHistoryLimit completions, bounded
     * independently of result retention. Diagnostics and tests: this
     * is how priority-ordering behaviour is observed.
     */
    std::vector<JobId> finishedIds() const;

    /**
     * The task bound trySubmit currently admits against: the full
     * queueCapacity while the pooled machines keep up, tightened to
     * congestedQueueFraction of it (floored at the worker count)
     * while their queue-saturation EWMA exceeds the threshold.
     */
    std::size_t effectiveQueueCapacity() const;

  private:
    /** Partial result of one shard: everything the deterministic
     *  merge needs, kept in round order. */
    struct ShardPartial
    {
        RoundRange range;
        /** Per-round per-bin collector sums, row-major. */
        std::vector<double> roundSums;
        std::vector<double> roundBitSums;
        /** Per-bin sample counts, summed over the shard's rounds. */
        std::vector<std::size_t> binCounts;
        std::vector<std::size_t> bitBinCounts;
        std::size_t samples = 0;
        core::RunResult run;
        std::string error;
    };

    /**
     * Live claim state of one shard (work stealing). The executing
     * worker claims rounds by advancing `cursor`; a thief shrinks
     * `end` and appends the stolen tail as a new shard. All mutation
     * happens under the scheduler mutex, so claimed ranges stay
     * contiguous by construction.
     */
    struct ShardProgress
    {
        std::size_t cursor = 0;
        std::size_t end = 0;
        /** A shard is stealable only while a worker is executing it
         *  (queued shards are picked up whole from the queue). */
        bool running = false;
    };

    struct Entry
    {
        std::shared_ptr<const JobSpec> spec;
        std::string key;
        JobStatus jobStatus = JobStatus::Queued;
        JobResult result;
        JobPriority priority = JobPriority::Normal;
        /** Submission sequence number (aging reference point). */
        std::size_t seq = 0;
        /** Submission instant (latency tracking reference point). */
        std::chrono::steady_clock::time_point submittedAt;
        /** Round ranges per shard; empty for opaque jobs. Stolen
         *  shards are appended, so ranges are not sorted -- the
         *  merge orders partials by range.begin. */
        std::vector<RoundRange> shardRanges;
        std::vector<ShardPartial> partials;
        /** Parallel to shardRanges (work-stealing claim state). */
        std::vector<ShardProgress> progress;
        std::size_t shardsRemaining = 0;
        /** Rounds completed across every shard, stolen ranges
         *  included -- the per-shard claim windows cannot serve
         *  here because delivery zeroes them. Mutated under mu
         *  only, so progress snapshots are monotonic per job. */
        std::size_t roundsDone = 0;
        /** Last progress-notification instant (rate limiting);
         *  epoch = never notified, so the first round after a
         *  subscription notifies immediately. */
        std::chrono::steady_clock::time_point lastProgressAt{};
    };

    /** One queued unit of work: a whole opaque job or one shard. */
    struct Task
    {
        JobId id = 0;
        std::uint32_t shard = 0;
    };

    /** One queued completion OR progress push: a completion carries
     *  the callback plus a private copy of the result (retention may
     *  evict the entry before the notifier thread gets to it); a
     *  progress push carries the progress callback and a
     *  (roundsDone, roundsTotal) snapshot instead. */
    struct Notification
    {
        JobId id = 0;
        std::shared_ptr<const JobResult> result;
        CompletionCallback callback;
        ProgressCallback progress;
        std::size_t roundsDone = 0;
        std::size_t roundsTotal = 0;
    };

    /** Machine-sampled signals aggregated over one task's runs. */
    struct RunSample
    {
        bool saturated = false;
        std::size_t eventsDispatched = 0;
        std::size_t wheelHighWater = 0;
        std::size_t staleDrops = 0;

        void
        absorb(const core::MachineStats &s, bool machine_saturated)
        {
            saturated = saturated || machine_saturated;
            eventsDispatched += s.wheel.dispatched;
            wheelHighWater = std::max(wheelHighWater, s.wheel.highWater);
            staleDrops += s.queues.totalStaleDropped();
        }
    };

    void workerLoop();
    void notifierLoop();
    /** Move the job's subscriptions into the notifier queue. */
    void queueNotificationsLocked(JobId id, const JobResult &result);
    /** Count completed rounds and maybe queue progress pushes. */
    void noteRoundsDoneLocked(JobId id, Entry &entry,
                              std::size_t rounds = 1);
    /** Queue a progress snapshot for every subscriber (rate-limited
     *  unless `force` -- the final 100% push is forced). */
    void queueProgressLocked(JobId id, Entry &entry, bool force);
    JobResult runJob(const JobSpec &spec, core::QumaMachine &machine,
                     RunSample &sample);
    ShardPartial runShard(const JobSpec &spec,
                          core::QumaMachine &machine, JobId id,
                          std::uint32_t shard, RoundRange range,
                          RunSample &sample);
    /** Steal the tail half of the best victim shard, appending it as
     *  a new shard of its job; nullopt when nothing is stealable. */
    std::optional<Task> stealLocked();
    bool stealableLocked() const;
    /** Fold one task's machine samples into counters and EWMAs. */
    void noteRunLocked(const RunSample &sample);
    JobId enqueueLocked(JobSpec &&spec);
    /** record_latency = false for jobs that never executed
     *  (cancellations must not pollute the latency digests). */
    void finishLocked(JobId id, JobResult &&result,
                      bool record_latency = true);
    void deliverShardLocked(JobId id, std::uint32_t shard,
                            ShardPartial &&partial);
    void mergeShardsLocked(JobId id);
    /** Index of the highest-effective-priority queued task. */
    std::size_t pickBestLocked() const;
    long effectivePriorityLocked(const Entry &entry) const;
    void noteSaturationLocked(bool saturated);
    void notePoolWaitLocked(double seconds);
    void noteLatencyLocked(const Entry &entry);
    LatencyDigest latencyDigestLocked(std::size_t cls) const;
    std::size_t effectiveCapacityLocked() const;

    /** Exported-metric handles, no-ops until bindMetrics(). The
     *  names mirror Stats; see docs/observability.md for the
     *  catalogue. */
    struct Instruments
    {
        metrics::Counter submitted;
        metrics::Counter rejected;
        metrics::Counter admissionSoftRejects;
        metrics::Counter completed;
        metrics::Counter failed;
        metrics::Counter cancelled;
        metrics::Counter batchedJobs;
        metrics::Counter shardedJobs;
        metrics::Counter shardsExecuted;
        metrics::Counter saturatedRuns;
        metrics::Counter shardsStolen;
        metrics::Counter roundsStolen;
        metrics::Counter eventsDispatched;
        /** Submit->finish latency, one series per priority class. */
        std::array<metrics::Histogram, 3> latency;
    };

    /** tracer->record guarded by the null check at every site. */
    void traceRecord(JobId id, TracePhase phase,
                     std::uint32_t shard = 0) const
    {
        if (tracer)
            tracer->record(id, phase, shard);
    }

    const SchedulerConfig cfg;
    MachinePool &pool;
    ProgramCache &cache;
    JobTraceRecorder *const tracer;
    Instruments ms;

    mutable std::mutex mu;
    std::condition_variable cvWork;
    std::condition_variable cvSpace;
    std::condition_variable cvDone;
    std::deque<Task> queue;
    std::unordered_map<JobId, Entry> entries;
    /** Jobs with shards currently executing -- the steal scan's
     *  candidate set, so idle workers never walk all entries. */
    std::unordered_set<JobId> activeSharded;
    /** Finished ids, oldest first (drives bounded result retention). */
    std::deque<JobId> finishedOrder;
    /** Completion-order observable, a ring of the newest
     *  finishedHistoryLimit ids (independent of retention). */
    std::deque<JobId> finishedHistory;
    JobId nextId = 1;
    std::size_t inFlight = 0;
    bool stop = false;
    bool started = false;
    Stats counters;
    /** EWMA of machine queue saturation over recent runs. */
    double saturationEwma = 0.0;
    /** EWMA of pool-acquisition waits (seconds). */
    double poolWaitEwma = 0.0;
    /** Sliding windows of submit->finish latencies per class. */
    std::array<std::vector<double>, 3> latencyWindow;
    std::array<std::size_t, 3> latencyWindowNext{};
    std::array<std::size_t, 3> latencyCount{};
    std::array<double, 3> latencyMax{};
    /** Completion subscriptions still waiting for their job. */
    std::unordered_map<JobId, std::vector<CompletionCallback>>
        subscriptions;
    /** Progress subscriptions of still-running jobs (NOT one-shot;
     *  erased when the job finishes). */
    std::unordered_map<JobId, std::vector<ProgressCallback>>
        progressSubs;
    /** Live progress-subscription count: lets the non-stealing
     *  round loop skip the mutex entirely when nobody listens. */
    std::atomic<std::size_t> progressSubCount{0};
    /** Fired-but-undelivered notifications, completion order. */
    std::deque<Notification> notifyQueue;
    std::condition_variable cvNotify;
    /** Set (after the workers are joined) to end the notifier. */
    bool notifierStop = false;
    std::vector<std::thread> workers;
    std::thread notifier;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_SCHEDULER_HH
