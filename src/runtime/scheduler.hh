/**
 * @file
 * The job scheduler: a prioritised task queue drained by worker
 * threads, with shot-level sharding and stats-driven admission.
 *
 * SCHEDULING. Each queued task carries its job's priority class and
 * submission sequence number. Workers always pop the task with the
 * highest EFFECTIVE priority -- the class plus one step per
 * `agingQuantum` newer submissions the task has waited through --
 * breaking ties oldest-first. High jobs therefore overtake a backlog
 * of Normal/Batch work, while aging guarantees the backlog is never
 * starved by a continuous stream of fresh High jobs.
 *
 * SHARDING. An opaque job (JobSpec::rounds == 0) is one task. A
 * round-structured job is split by partitionRounds() into contiguous
 * round ranges, one task per shard, which run in parallel on pooled
 * machines; the worker finishing the last shard merges the per-round
 * collector sums in global round order. Per-round RNG derivation
 * (runtime/keys.hh) plus the order-preserving merge make the merged
 * result bit-identical for every shard count and worker count.
 *
 * BATCHING. After a task, while the worker still holds its machine
 * lease, it runs the next BEST task immediately if that task needs
 * the same machine configuration -- the common case when a sweep (or
 * a sharded job) fans out into many same-shaped tasks.
 *
 * ADMISSION. Executed jobs sample QumaMachine::stats(): a run whose
 * timing event queues rejected a push (producer backpressure; deep
 * queues alone are healthy) counts as saturated, and an EWMA of that
 * signal drives trySubmit's effective queue bound. While the machines report saturation the scheduler
 * stops accepting work it could only queue (adding depth would add
 * latency, not throughput); the configured queueCapacity remains the
 * hard ceiling, and blocking submit() always uses it.
 */

#ifndef QUMA_RUNTIME_SCHEDULER_HH
#define QUMA_RUNTIME_SCHEDULER_HH

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/job.hh"
#include "runtime/machine_pool.hh"
#include "runtime/program_cache.hh"

namespace quma::runtime {

struct SchedulerConfig
{
    unsigned workers = 2;
    /**
     * Hard queue bound, counted in TASKS (an S-way sharded job holds
     * S slots). submit blocks at the bound (a multi-shard job may
     * transiently overshoot it by shards-1 slots so its shards enter
     * atomically); trySubmit rejects at the stats-driven effective
     * bound, which never exceeds this.
     */
    std::size_t queueCapacity = 64;
    /**
     * Do not spawn workers yet; start() does. Lets tests (and staged
     * deployments) fill the bounded queue before draining begins.
     */
    bool startPaused = false;
    /** Max same-config tasks executed on one pool lease. */
    std::size_t leaseBatchLimit = 8;
    /**
     * Finished JobResults retained for poll/await. When exceeded the
     * oldest finished results age out and their ids report unknown.
     */
    std::size_t maxRetainedResults = 65536;
    /**
     * Aging: a waiting task gains one priority step per this many
     * newer submissions (0 disables aging). Keeps low classes from
     * starving under a continuous high-priority stream; large enough
     * by default that a burst-submitted backlog does not immediately
     * tie with fresh High work.
     */
    std::size_t agingQuantum = 64;
    /** Enable machine-stats-driven admission for trySubmit. */
    bool adaptiveAdmission = true;
    /** Saturation EWMA above this tightens the effective bound. */
    double saturationThreshold = 0.5;
    /** Effective bound while congested, as a queueCapacity fraction
     *  (floored at the worker count). */
    double congestedQueueFraction = 0.25;
    /** EWMA smoothing of the per-run saturation samples. */
    double saturationAlpha = 0.25;
};

class JobScheduler
{
  public:
    struct Stats
    {
        std::size_t submitted = 0;
        std::size_t rejected = 0;
        std::size_t completed = 0;
        std::size_t failed = 0;
        std::size_t queueHighWater = 0;
        /** Tasks that reused the previous task's lease (batching). */
        std::size_t batchedJobs = 0;
        /** Jobs split into more than one shard. */
        std::size_t shardedJobs = 0;
        /** Shard tasks executed (incl. single-shard round jobs). */
        std::size_t shardsExecuted = 0;
        /** Runs whose machine reported queue saturation. */
        std::size_t saturatedRuns = 0;
        /** trySubmit rejections below the hard bound (admission). */
        std::size_t admissionSoftRejects = 0;
        /** Saturation EWMA at the time of the snapshot. */
        double machineSaturation = 0.0;
    };

    JobScheduler(SchedulerConfig config, MachinePool &pool,
                 ProgramCache &cache);
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /** Spawn the worker threads (idempotent). */
    void start();

    /** Enqueue a job; blocks while the queue is full. */
    JobId submit(JobSpec spec);
    /** Enqueue a job; nullopt when the (effective) bound is hit. */
    std::optional<JobId> trySubmit(JobSpec spec);

    JobStatus status(JobId id) const;
    /** The result once the job finished, nullopt while in flight. */
    std::optional<JobResult> poll(JobId id) const;
    /** Block until the job finishes and return its result. */
    JobResult await(JobId id);
    /** Block until every submitted job has finished. */
    void drain();

    Stats stats() const;

    /**
     * Ids of finished jobs in completion order, oldest first (the
     * bounded retention window). Diagnostics and tests: this is how
     * priority-ordering behaviour is observed.
     */
    std::vector<JobId> finishedIds() const;

    /**
     * The task bound trySubmit currently admits against: the full
     * queueCapacity while the pooled machines keep up, tightened to
     * congestedQueueFraction of it (floored at the worker count)
     * while their queue-saturation EWMA exceeds the threshold.
     */
    std::size_t effectiveQueueCapacity() const;

  private:
    /** Partial result of one shard: everything the deterministic
     *  merge needs, kept in round order. */
    struct ShardPartial
    {
        RoundRange range;
        /** Per-round per-bin collector sums, row-major. */
        std::vector<double> roundSums;
        std::vector<double> roundBitSums;
        /** Per-bin sample counts, summed over the shard's rounds. */
        std::vector<std::size_t> binCounts;
        std::vector<std::size_t> bitBinCounts;
        std::size_t samples = 0;
        core::RunResult run;
        std::string error;
    };

    struct Entry
    {
        std::shared_ptr<const JobSpec> spec;
        std::string key;
        JobStatus jobStatus = JobStatus::Queued;
        JobResult result;
        JobPriority priority = JobPriority::Normal;
        /** Submission sequence number (aging reference point). */
        std::size_t seq = 0;
        /** Round ranges per shard; empty for opaque jobs. */
        std::vector<RoundRange> shardRanges;
        std::vector<ShardPartial> partials;
        std::size_t shardsRemaining = 0;
    };

    /** One queued unit of work: a whole opaque job or one shard. */
    struct Task
    {
        JobId id = 0;
        std::uint32_t shard = 0;
    };

    void workerLoop();
    JobResult runJob(const JobSpec &spec, core::QumaMachine &machine,
                     bool &saturated);
    ShardPartial runShard(const JobSpec &spec,
                          core::QumaMachine &machine, RoundRange range,
                          bool &saturated);
    JobId enqueueLocked(JobSpec &&spec);
    void finishLocked(JobId id, JobResult &&result);
    void deliverShardLocked(JobId id, std::uint32_t shard,
                            ShardPartial &&partial);
    void mergeShardsLocked(JobId id);
    /** Index of the highest-effective-priority queued task. */
    std::size_t pickBestLocked() const;
    long effectivePriorityLocked(const Entry &entry) const;
    void noteSaturationLocked(bool saturated);
    std::size_t effectiveCapacityLocked() const;

    const SchedulerConfig cfg;
    MachinePool &pool;
    ProgramCache &cache;

    mutable std::mutex mu;
    std::condition_variable cvWork;
    std::condition_variable cvSpace;
    std::condition_variable cvDone;
    std::deque<Task> queue;
    std::unordered_map<JobId, Entry> entries;
    /** Finished ids, oldest first (bounded result retention). */
    std::deque<JobId> finishedOrder;
    JobId nextId = 1;
    std::size_t inFlight = 0;
    bool stop = false;
    bool started = false;
    Stats counters;
    /** EWMA of machine queue saturation over recent runs. */
    double saturationEwma = 0.0;
    std::vector<std::thread> workers;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_SCHEDULER_HH
