/**
 * @file
 * The job scheduler: a bounded job queue drained by worker threads.
 *
 * Each worker pops a job, leases a machine of the job's configuration
 * from the pool, and executes the paper's host flow (reset + reseed,
 * configure collection, load the cached program, run, collect). While
 * it still holds the lease, the worker batches: if the next queued
 * job needs the same machine configuration it runs immediately on the
 * same lease, skipping a pool round-trip -- the common case when a
 * sweep fans out into many same-shaped jobs.
 *
 * Determinism: job results are a pure function of the JobSpec (see
 * job.hh), so the number of workers and the interleaving of the queue
 * change only throughput, never results. The determinism test runs
 * the same job set under 1, 2 and 8 workers and requires identical
 * aggregated results.
 */

#ifndef QUMA_RUNTIME_SCHEDULER_HH
#define QUMA_RUNTIME_SCHEDULER_HH

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/job.hh"
#include "runtime/machine_pool.hh"
#include "runtime/program_cache.hh"

namespace quma::runtime {

struct SchedulerConfig
{
    unsigned workers = 2;
    /** Bounded queue depth; submit blocks (trySubmit rejects) when
     *  this many jobs are waiting. */
    std::size_t queueCapacity = 64;
    /**
     * Do not spawn workers yet; start() does. Lets tests (and staged
     * deployments) fill the bounded queue before draining begins.
     */
    bool startPaused = false;
    /** Max same-config jobs executed on one pool lease. */
    std::size_t leaseBatchLimit = 8;
    /**
     * Finished JobResults retained for poll/await. When exceeded the
     * oldest finished results age out and their ids report unknown.
     */
    std::size_t maxRetainedResults = 65536;
};

class JobScheduler
{
  public:
    struct Stats
    {
        std::size_t submitted = 0;
        std::size_t rejected = 0;
        std::size_t completed = 0;
        std::size_t failed = 0;
        std::size_t queueHighWater = 0;
        /** Jobs that reused the previous job's lease (batching). */
        std::size_t batchedJobs = 0;
    };

    JobScheduler(SchedulerConfig config, MachinePool &pool,
                 ProgramCache &cache);
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /** Spawn the worker threads (idempotent). */
    void start();

    /** Enqueue a job; blocks while the queue is full. */
    JobId submit(JobSpec spec);
    /** Enqueue a job; nullopt when the queue is full. */
    std::optional<JobId> trySubmit(JobSpec spec);

    JobStatus status(JobId id) const;
    /** The result once the job finished, nullopt while in flight. */
    std::optional<JobResult> poll(JobId id) const;
    /** Block until the job finishes and return its result. */
    JobResult await(JobId id);
    /** Block until every submitted job has finished. */
    void drain();

    Stats stats() const;

  private:
    struct Entry
    {
        JobSpec spec;
        std::string key;
        JobStatus jobStatus = JobStatus::Queued;
        JobResult result;
    };

    void workerLoop();
    JobResult runJob(const JobSpec &spec, core::QumaMachine &machine);
    JobId enqueueLocked(JobSpec &&spec);
    void finishLocked(JobId id, JobResult &&result);

    const SchedulerConfig cfg;
    MachinePool &pool;
    ProgramCache &cache;

    mutable std::mutex mu;
    std::condition_variable cvWork;
    std::condition_variable cvSpace;
    std::condition_variable cvDone;
    std::deque<JobId> queue;
    std::unordered_map<JobId, Entry> entries;
    /** Finished ids, oldest first (bounded result retention). */
    std::deque<JobId> finishedOrder;
    JobId nextId = 1;
    std::size_t inFlight = 0;
    bool stop = false;
    bool started = false;
    Stats counters;
    std::vector<std::thread> workers;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_SCHEDULER_HH
