#include "runtime/service.hh"

namespace quma::runtime {

namespace {

SchedulerConfig
schedulerConfigOf(const ServiceConfig &cfg)
{
    SchedulerConfig sc;
    sc.workers = cfg.workers;
    sc.queueCapacity = cfg.queueCapacity;
    sc.startPaused = cfg.startPaused;
    sc.leaseBatchLimit = cfg.leaseBatchLimit;
    sc.maxRetainedResults = cfg.maxRetainedResults;
    sc.agingQuantum = cfg.agingQuantum;
    sc.adaptiveAdmission = cfg.adaptiveAdmission;
    sc.saturationThreshold = cfg.saturationThreshold;
    sc.congestedQueueFraction = cfg.congestedQueueFraction;
    sc.saturationAlpha = cfg.saturationAlpha;
    sc.poolWaitThresholdSeconds = cfg.poolWaitThresholdSeconds;
    sc.poolWaitAlpha = cfg.poolWaitAlpha;
    sc.finishedHistoryLimit = cfg.finishedHistoryLimit;
    return sc;
}

} // namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : cacheStore(config.cachedPrograms, config.cachedLuts),
      poolStore(config.poolCapacity ? config.poolCapacity
                                    : config.workers + 2,
                &cacheStore),
      sched(schedulerConfigOf(config), poolStore, cacheStore)
{
}

std::vector<JobResult>
ExperimentService::awaitAll(const std::vector<JobId> &ids)
{
    std::vector<JobResult> out;
    out.reserve(ids.size());
    for (JobId id : ids)
        out.push_back(await(id));
    return out;
}

} // namespace quma::runtime
