#include "runtime/service.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hh"

namespace quma::runtime {

namespace {

/**
 * Open the journal for appending, with the recovery report in hand:
 *  - a foreign (wrong-magic) file is refused outright -- appending
 *    would neither clobber the operator's file nor ever be
 *    recoverable, so durability would silently not exist;
 *  - a damaged tail is truncated back to the valid prefix first, so
 *    new records extend readable data instead of hiding behind
 *    garbage (a second restart would otherwise re-run retired work).
 */
/**
 * Recovery-time compaction: once the retired records (everything
 * recovery did NOT return as pending) reach the configured trigger,
 * rewrite the journal to its live suffix before reopening it. A
 * compacted file also subsumes tail-truncation: the rewrite drops
 * the damage along with the retired records.
 */
CompactionReport
maybeCompact(const ServiceConfig &cfg, const RecoveryReport &rec)
{
    if (cfg.journalPath.empty() || cfg.journalCompactMinRetired == 0 ||
        !rec.magicValid)
        return {};
    const std::size_t retired =
        rec.recordsScanned - rec.pending.size();
    if (retired < cfg.journalCompactMinRetired)
        return {};
    return compactJournal(cfg.journalPath, rec);
}

std::unique_ptr<JobJournal>
openJournal(const ServiceConfig &cfg, const RecoveryReport &rec,
            const CompactionReport &compacted)
{
    if (cfg.journalPath.empty())
        return nullptr;
    if (rec.journalExisted && !rec.magicValid)
        fatal("journal: '" + cfg.journalPath +
              "' exists but is not a journal file; refusing to "
              "append to it");
    if (!compacted.performed && rec.corruptRecords > 0 &&
        rec.magicValid &&
        ::truncate(cfg.journalPath.c_str(),
                   static_cast<off_t>(rec.validPrefixBytes)) != 0)
        warn("journal: cannot truncate damaged tail of '" +
             cfg.journalPath + "': " + std::strerror(errno));
    return std::make_unique<JobJournal>(
        JournalConfig{cfg.journalPath, cfg.journalFsync});
}

SchedulerConfig
schedulerConfigOf(const ServiceConfig &cfg, JobTraceRecorder *trace)
{
    SchedulerConfig sc;
    sc.trace = trace;
    sc.workers = cfg.workers;
    sc.queueCapacity = cfg.queueCapacity;
    sc.startPaused = cfg.startPaused;
    sc.leaseBatchLimit = cfg.leaseBatchLimit;
    sc.maxRetainedResults = cfg.maxRetainedResults;
    sc.agingQuantum = cfg.agingQuantum;
    sc.adaptiveAdmission = cfg.adaptiveAdmission;
    sc.saturationThreshold = cfg.saturationThreshold;
    sc.congestedQueueFraction = cfg.congestedQueueFraction;
    sc.saturationAlpha = cfg.saturationAlpha;
    sc.poolWaitThresholdSeconds = cfg.poolWaitThresholdSeconds;
    sc.poolWaitAlpha = cfg.poolWaitAlpha;
    sc.workSteal = cfg.workSteal;
    sc.minStealRounds = cfg.minStealRounds;
    sc.progressInterval = cfg.progressInterval;
    sc.finishedHistoryLimit = cfg.finishedHistoryLimit;
    return sc;
}

} // namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : cacheStore(config.cachedPrograms, config.cachedLuts),
      poolStore(config.poolCapacity ? config.poolCapacity
                                    : config.workers + 2,
                &cacheStore),
      traceStore(config.traceCapacity),
      recoveryReport(config.journalPath.empty()
                         ? RecoveryReport{}
                         : recoverJournal(config.journalPath)),
      compactionReport(maybeCompact(config, recoveryReport)),
      journalStore(openJournal(config, recoveryReport,
                               compactionReport)),
      sched(schedulerConfigOf(config, &traceStore), poolStore,
            cacheStore),
      instanceNameStore(config.instanceName)
{
    // Re-drive what the crashed process never finished. One atomic
    // Resubmitted record per job retires the stale pending entry and
    // opens the fresh id, so a second crash recovers exactly once.
    for (const RecoveredJob &job : recoveryReport.pending) {
        auto encoded = JobJournal::encodeSpec(job.spec);
        const JobId id = sched.submit(job.spec);
        if (encoded)
            journalStore->appendResubmitted(job.journalId, id, *encoded);
        subscribeJournal(id);
        recoveredIdsStore.push_back(id);
    }
}

ExperimentService::~ExperimentService()
{
    // Close the journal BEFORE the scheduler destructor fails the
    // still-queued jobs: their shutdown notifications must not mark
    // pending work completed on disk. An undrained destruction
    // therefore journals exactly like a crash.
    if (journalStore)
        journalStore->close();
}

JobId
ExperimentService::submit(JobSpec spec)
{
    if (!journalStore)
        return sched.submit(std::move(spec));
    // Encode before submit consumes the spec; append after submit
    // assigns the id. With FsyncPolicy::Always the append blocks
    // until durable, so a returned id is a crash-safe promise.
    auto encoded = JobJournal::encodeSpec(spec);
    const JobId id = sched.submit(std::move(spec));
    if (encoded) {
        journalStore->appendSubmitted(id, *encoded);
        subscribeJournal(id);
    }
    return id;
}

std::optional<JobId>
ExperimentService::submitFor(const JobSpec &spec,
                             std::chrono::milliseconds timeout)
{
    std::optional<JobId> id = sched.submitFor(spec, timeout);
    if (id && journalStore) {
        if (auto encoded = JobJournal::encodeSpec(spec)) {
            journalStore->appendSubmitted(*id, *encoded);
            subscribeJournal(*id);
        }
    }
    return id;
}

std::optional<JobId>
ExperimentService::trySubmit(JobSpec spec)
{
    if (!journalStore)
        return sched.trySubmit(std::move(spec));
    auto encoded = JobJournal::encodeSpec(spec);
    std::optional<JobId> id = sched.trySubmit(std::move(spec));
    if (id && encoded) {
        journalStore->appendSubmitted(*id, *encoded);
        subscribeJournal(*id);
    }
    return id;
}

void
ExperimentService::subscribeJournal(JobId id)
{
    sched.subscribe(id, [this](JobId done,
                               std::shared_ptr<const JobResult> r) {
        // Shutdown failures mean the job never ran: leave it pending
        // on disk so the next process recovers it. (The journal is
        // already closed by then -- see ~ExperimentService -- this
        // check is belt and braces for callback/destructor races.)
        if (r->error == kShutdownJobError)
            return;
        if (r->error == kCancelledJobError)
            journalStore->appendCancelled(done);
        else
            journalStore->appendCompleted(done, r->failed());
    });
}

ServiceStats
ExperimentService::stats() const
{
    ServiceStats s;
    s.scheduler = sched.stats();
    s.pool = poolStore.stats();
    s.cache = cacheStore.stats();
    s.effectiveQueueCapacity = sched.effectiveQueueCapacity();
    return s;
}

void
ExperimentService::bindMetrics(metrics::MetricsRegistry &registry)
{
    cacheStore.bindMetrics(registry);
    poolStore.bindMetrics(registry);
    sched.bindMetrics(registry);
    registry.gaugeFn("quma_trace_events",
                     "Job-lifecycle trace events currently buffered.",
                     {}, [this] {
                         return static_cast<double>(
                             traceStore.eventCount());
                     });
    registry.counterFn(
        "quma_trace_events_dropped_total",
        "Trace events lost to the bounded capture buffer.", {},
        [this] { return static_cast<double>(traceStore.dropped()); });
    if (journalStore) {
        journalStore->bindMetrics(registry);
        // Recovery ran once, at construction: constant series that
        // let an operator see a restart recovered (or hit damage)
        // from the scrape alone.
        registry.counterFn("quma_journal_records_corrupt_total",
                           "Damaged journal records found by "
                           "recovery (valid prefix was kept).",
                           {}, [this] {
                               return static_cast<double>(
                                   recoveryReport.corruptRecords);
                           });
        registry.counterFn("quma_recovery_records_scanned_total",
                           "Journal records scanned by recovery at "
                           "startup.",
                           {}, [this] {
                               return static_cast<double>(
                                   recoveryReport.recordsScanned);
                           });
        registry.counterFn("quma_recovery_jobs_recovered_total",
                           "Un-completed jobs recovery re-submitted "
                           "at startup.",
                           {}, [this] {
                               return static_cast<double>(
                                   recoveredIdsStore.size());
                           });
    }
}

std::vector<JobResult>
ExperimentService::awaitAll(const std::vector<JobId> &ids)
{
    std::vector<JobResult> out;
    out.reserve(ids.size());
    for (JobId id : ids)
        out.push_back(await(id));
    return out;
}

} // namespace quma::runtime
