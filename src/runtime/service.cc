#include "runtime/service.hh"

namespace quma::runtime {

namespace {

SchedulerConfig
schedulerConfigOf(const ServiceConfig &cfg, JobTraceRecorder *trace)
{
    SchedulerConfig sc;
    sc.trace = trace;
    sc.workers = cfg.workers;
    sc.queueCapacity = cfg.queueCapacity;
    sc.startPaused = cfg.startPaused;
    sc.leaseBatchLimit = cfg.leaseBatchLimit;
    sc.maxRetainedResults = cfg.maxRetainedResults;
    sc.agingQuantum = cfg.agingQuantum;
    sc.adaptiveAdmission = cfg.adaptiveAdmission;
    sc.saturationThreshold = cfg.saturationThreshold;
    sc.congestedQueueFraction = cfg.congestedQueueFraction;
    sc.saturationAlpha = cfg.saturationAlpha;
    sc.poolWaitThresholdSeconds = cfg.poolWaitThresholdSeconds;
    sc.poolWaitAlpha = cfg.poolWaitAlpha;
    sc.workSteal = cfg.workSteal;
    sc.minStealRounds = cfg.minStealRounds;
    sc.finishedHistoryLimit = cfg.finishedHistoryLimit;
    return sc;
}

} // namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : cacheStore(config.cachedPrograms, config.cachedLuts),
      poolStore(config.poolCapacity ? config.poolCapacity
                                    : config.workers + 2,
                &cacheStore),
      traceStore(config.traceCapacity),
      sched(schedulerConfigOf(config, &traceStore), poolStore,
            cacheStore)
{
}

ServiceStats
ExperimentService::stats() const
{
    ServiceStats s;
    s.scheduler = sched.stats();
    s.pool = poolStore.stats();
    s.cache = cacheStore.stats();
    s.effectiveQueueCapacity = sched.effectiveQueueCapacity();
    return s;
}

void
ExperimentService::bindMetrics(metrics::MetricsRegistry &registry)
{
    cacheStore.bindMetrics(registry);
    poolStore.bindMetrics(registry);
    sched.bindMetrics(registry);
    registry.gaugeFn("quma_trace_events",
                     "Job-lifecycle trace events currently buffered.",
                     {}, [this] {
                         return static_cast<double>(
                             traceStore.eventCount());
                     });
    registry.counterFn(
        "quma_trace_events_dropped_total",
        "Trace events lost to the bounded capture buffer.", {},
        [this] { return static_cast<double>(traceStore.dropped()); });
}

std::vector<JobResult>
ExperimentService::awaitAll(const std::vector<JobId> &ids)
{
    std::vector<JobResult> out;
    out.reserve(ids.size());
    for (JobId id : ids)
        out.push_back(await(id));
    return out;
}

} // namespace quma::runtime
