/**
 * @file
 * A bounded pool of reusable QumaMachine instances, sharded by
 * machine configuration.
 *
 * Constructing a machine (density matrix, AWG boards, calibration
 * rendering) is orders of magnitude more expensive than
 * QumaMachine::reset(), so the pool keeps finished machines idle and
 * hands them back out to the next job with a matching configuration
 * key (runtime::configKey). When every slot is occupied by a
 * different configuration, the least-recently-idled foreign machine
 * is evicted to make room; when all machines are leased out, acquire
 * blocks until one returns.
 *
 * Calibration is uploaded once per machine at construction through
 * the shared ProgramCache's LUT layer and preserved across resets.
 */

#ifndef QUMA_RUNTIME_MACHINE_POOL_HH
#define QUMA_RUNTIME_MACHINE_POOL_HH

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/metrics.hh"
#include "quma/machine.hh"
#include "runtime/job.hh"
#include "runtime/program_cache.hh"

namespace quma::runtime {

class MachinePool
{
  public:
    struct Stats
    {
        std::size_t machinesCreated = 0;
        std::size_t acquisitions = 0;
        /** Acquisitions served by an idle machine (no construction). */
        std::size_t reuseHits = 0;
        /** Idle machines destroyed to make room for another config. */
        std::size_t evictions = 0;
        /** QumaMachine::reset() calls on lease hand-back. */
        std::size_t machineResets = 0;
        std::size_t idleMachines = 0;
        std::size_t leasedMachines = 0;
    };

    /**
     * @param max_machines pool capacity (leased + idle)
     * @param cache shared calibration cache; may be null (each
     *        machine then renders its own LUTs)
     */
    explicit MachinePool(std::size_t max_machines = 8,
                         ProgramCache *cache = nullptr);

    /** RAII lease: returns the machine to the pool on destruction. */
    class Lease
    {
      public:
        Lease() = default;
        Lease(Lease &&other) noexcept;
        Lease &operator=(Lease &&other) noexcept;
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease();

        core::QumaMachine &machine() { return *m; }
        bool valid() const { return m != nullptr; }
        /** Return the machine early (idempotent). */
        void release();

      private:
        friend class MachinePool;
        Lease(MachinePool *pool, std::string key,
              std::unique_ptr<core::QumaMachine> machine)
            : owner(pool), shardKey(std::move(key)), m(std::move(machine))
        {
        }

        MachinePool *owner = nullptr;
        std::string shardKey;
        std::unique_ptr<core::QumaMachine> m;
    };

    /**
     * Lease a machine matching `config` (creating or evicting as
     * needed); blocks while the pool is fully leased out.
     */
    Lease acquire(const core::MachineConfig &config);

    /**
     * acquire() when the shard key is already known (scheduler).
     * When `blocked_seconds` is given it receives the time this call
     * spent BLOCKED waiting for a machine to come back -- not time
     * spent constructing a new one, so a cold pool does not read as
     * congestion (the scheduler's pool-wait admission signal).
     */
    Lease acquireKeyed(const std::string &key,
                       const core::MachineConfig &config,
                       double *blocked_seconds = nullptr);

    std::size_t capacity() const { return maxMachines; }
    Stats stats() const;

    /**
     * Register this pool's series with `registry` (quma_pool_*
     * family). The pool must outlive the registry's last render:
     * gauge callbacks read live pool state.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    void give_back(const std::string &key,
                   std::unique_ptr<core::QumaMachine> machine);

    const std::size_t maxMachines;
    ProgramCache *lutCache;

    mutable std::mutex mu;
    std::condition_variable cv;
    /** Idle machines per shard key. */
    std::unordered_map<std::string,
                       std::deque<std::unique_ptr<core::QumaMachine>>>
        idle;
    /** Shard keys with idle machines, oldest-idled first (eviction). */
    std::deque<std::string> idleOrder;
    std::size_t totalMachines = 0;
    std::size_t leased = 0;
    Stats counters;

    /** Metric handles; default-constructed (no-op) until bound. */
    struct Instruments
    {
        metrics::Counter acquisitions;
        metrics::Counter reuseHits;
        metrics::Counter machinesCreated;
        metrics::Counter evictions;
        metrics::Counter machineResets;
        metrics::Histogram leaseWait;
    };
    Instruments ms;
};

} // namespace quma::runtime

#endif // QUMA_RUNTIME_MACHINE_POOL_HH
