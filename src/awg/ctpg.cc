#include "awg/ctpg.hh"

#include "common/logging.hh"

namespace quma::awg {

Ctpg::Ctpg(CtpgConfig config)
    : cfg(config),
      dac(config.dacBits, config.dacFullScale, kAwgSampleRateHz)
{}

void
Ctpg::trigger(Codeword cw, Cycle td, QubitMask mask)
{
    if (!memory.contains(cw))
        fatal("CTPG triggered with codeword ", cw,
              " but no pulse is uploaded at that index");
    pending.push(Pending{td + cfg.delayCycles, cw, mask, orderCounter++});
}

std::optional<Cycle>
Ctpg::nextEventCycle() const
{
    if (pending.empty())
        return std::nullopt;
    return pending.top().emitCycle;
}

void
Ctpg::advanceTo(Cycle now)
{
    while (!pending.empty() && pending.top().emitCycle <= now) {
        Pending p = pending.top();
        pending.pop();
        const StoredPulse &stored = memory.lookup(p.cw);

        signal::DrivePulse pulse;
        pulse.t0Ns = cyclesToNs(p.emitCycle);
        pulse.i = dac.render(stored.i);
        pulse.q = dac.render(stored.q);
        pulse.ssbHz = cfg.ssbHz;
        pulse.carrierHz = cfg.carrierHz;
        ++emitted;
        if (pulseSink)
            pulseSink(pulse, p.cw, p.mask);
    }
}

void
Ctpg::reset()
{
    pending = {};
    orderCounter = 0;
    emitted = 0;
}

} // namespace quma::awg
