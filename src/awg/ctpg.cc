#include "awg/ctpg.hh"

#include "common/logging.hh"

namespace quma::awg {

Ctpg::Ctpg(CtpgConfig config)
    : cfg(config),
      dac(config.dacBits, config.dacFullScale, kAwgSampleRateHz)
{}

void
Ctpg::trigger(Codeword cw, Cycle td, QubitMask mask)
{
    if (!memory.contains(cw))
        fatal("CTPG triggered with codeword ", cw,
              " but no pulse is uploaded at that index");
    pending.push(Pending{td + cfg.delayCycles, cw, mask, orderCounter++});
}

std::optional<Cycle>
Ctpg::nextEventCycle() const
{
    if (pending.empty())
        return std::nullopt;
    return pending.top().emitCycle;
}

const Ctpg::Rendered &
Ctpg::rendered(Codeword cw)
{
    if (renderCacheVersion != memory.version()) {
        renderCache.clear();
        renderCacheVersion = memory.version();
    }
    auto it = renderCache.find(cw);
    if (it == renderCache.end()) {
        const StoredPulse &stored = memory.lookup(cw);
        it = renderCache
                 .emplace(cw, Rendered{dac.render(stored.i),
                                       dac.render(stored.q)})
                 .first;
    }
    return it->second;
}

void
Ctpg::advanceTo(Cycle now)
{
    while (!pending.empty() && pending.top().emitCycle <= now) {
        Pending p = pending.top();
        pending.pop();
        const Rendered &r = rendered(p.cw);

        // The emitted pulse is assembled in a reused member so the
        // sample copies land in already-sized vectors: steady-state
        // triggers perform no heap allocation.
        emitPulse.t0Ns = cyclesToNs(p.emitCycle);
        emitPulse.i = r.i;
        emitPulse.q = r.q;
        emitPulse.ssbHz = cfg.ssbHz;
        emitPulse.carrierHz = cfg.carrierHz;
        ++emitted;
        if (pulseSink)
            pulseSink(emitPulse, p.cw, p.mask);
    }
}

void
Ctpg::reset()
{
    pending = {};
    orderCounter = 0;
    emitted = 0;
}

} // namespace quma::awg
