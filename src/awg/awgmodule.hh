/**
 * @file
 * One AWG board of the quantum control box (paper §7.1): a
 * micro-operation unit feeding a codeword-triggered pulse generation
 * unit with a two-channel (I/Q) DAC output.
 */

#ifndef QUMA_AWG_AWGMODULE_HH
#define QUMA_AWG_AWGMODULE_HH

#include <optional>

#include "awg/ctpg.hh"
#include "awg/uopunit.hh"

namespace quma::awg {

struct AwgConfig
{
    /** Qubits whose drive line this AWG's output is wired to. */
    QubitMask servedQubits = 0x1;
    /** u-op unit fixed delay Delta in cycles. */
    Cycle uopDelayCycles = 2;
    CtpgConfig ctpg;
};

class AwgModule
{
  public:
    AwgModule(AwgConfig config, microcode::UopSequenceTable seq_table);

    const AwgConfig &config() const { return cfg; }
    QubitMask servedQubits() const { return cfg.servedQubits; }

    WaveMemory &waveMemory() { return ctpgUnit.waveMemory(); }
    const WaveMemory &waveMemory() const { return ctpgUnit.waveMemory(); }
    UopUnit &uopUnit() { return uop; }
    Ctpg &ctpg() { return ctpgUnit; }

    /** Pulses leaving the board go to this sink. */
    void setPulseSink(Ctpg::PulseSink sink);

    /** Observer for codeword triggers entering the CTPG (tracing). */
    using TriggerObserver =
        std::function<void(Codeword, Cycle, QubitMask)>;
    void setTriggerObserver(TriggerObserver observer)
    {
        triggerObserver = std::move(observer);
    }

    /** A pulse-queue event fired by the timing controller. */
    void fireUop(std::uint8_t uop, Cycle td, QubitMask mask);

    std::optional<Cycle> nextEventCycle() const;
    void advanceTo(Cycle now);

    /**
     * Drop all in-flight micro-operations and pulses. The wave memory
     * (uploaded LUT) is preserved: re-arming a pooled machine must not
     * force a recalibration.
     */
    void reset();

  private:
    AwgConfig cfg;
    UopUnit uop;
    Ctpg ctpgUnit;
    TriggerObserver triggerObserver;
};

} // namespace quma::awg

#endif // QUMA_AWG_AWGMODULE_HH
