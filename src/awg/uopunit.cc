#include "awg/uopunit.hh"

#include "common/logging.hh"

namespace quma::awg {

UopUnit::UopUnit(microcode::UopSequenceTable table, Cycle delay_cycles)
    : seqTable(std::move(table)), delta(delay_cycles)
{}

void
UopUnit::fire(std::uint8_t uop, Cycle td, QubitMask mask)
{
    const auto &seq = seqTable.sequenceFor(uop);
    Cycle offset = 0;
    for (const auto &entry : seq) {
        offset += entry.delta;
        pending.push(
            Pending{td + delta + offset, entry.codeword, mask,
                    orderCounter++});
    }
}

std::optional<Cycle>
UopUnit::nextEventCycle() const
{
    if (pending.empty())
        return std::nullopt;
    return pending.top().cycle;
}

void
UopUnit::advanceTo(Cycle now)
{
    while (!pending.empty() && pending.top().cycle <= now) {
        Pending p = pending.top();
        pending.pop();
        ++emitted;
        if (sink_)
            sink_(p.cw, p.cycle, p.mask);
    }
}

void
UopUnit::reset()
{
    pending = {};
    orderCounter = 0;
    emitted = 0;
}

} // namespace quma::awg
