/**
 * @file
 * Pulse calibration: builds the Table 1 lookup-table content.
 *
 * Mirrors the experimental flow of paper §8: "Prior to the
 * experiment, the qubit pulses are calibrated and uploaded into
 * control box AWG 2." Given the qubit's Rabi gain, each rotation's
 * envelope amplitude is chosen so the integrated drive produces the
 * target angle, and the I/Q samples (including the fixed SSB
 * modulation) are rendered once and stored.
 */

#ifndef QUMA_AWG_CALIBRATION_HH
#define QUMA_AWG_CALIBRATION_HH

#include "awg/wavememory.hh"

namespace quma::awg {

struct CalibrationParams
{
    /** Single-qubit gate pulse duration (ns); paper: 20 ns. */
    double pulseNs = 20.0;
    /** Gaussian sigma (ns); defaults to pulseNs / 4 when 0. */
    double sigmaNs = 0.0;
    /** SSB modulation frequency (Hz); paper: -50 MHz. */
    double ssbHz = -50.0e6;
    /** Qubit Rabi gain (rad per amplitude*ns). */
    double rabiRadPerAmpNs = 0.0;
    /** AWG sample rate (Hz). */
    double rateHz = kAwgSampleRateHz;
    /**
     * Fractional amplitude miscalibration applied to every gate
     * pulse (0 = perfect). Used to inject the AllXY error
     * signatures of paper §4.1.
     */
    double amplitudeError = 0.0;
    /** Measurement pulse duration stored at the MSMT codeword (ns). */
    double msmtPulseNs = 1500.0;
    /** Flux (CZ) pulse duration (ns); paper: ~40 ns. */
    double czPulseNs = 40.0;
};

/**
 * Build the standard single-qubit lookup table (paper Table 1):
 *
 *   cw 0: I      cw 1: Rx(pi)    cw 2: Rx(pi/2)   cw 3: Rx(-pi/2)
 *   cw 4: Ry(pi) cw 5: Ry(pi/2)  cw 6: Ry(-pi/2)  cw 7: MSMT
 *   cw 8: CZ (flux)
 *
 * The calibrated amplitude for angle theta satisfies
 * |theta| = rabiRadPerAmpNs * amplitude * unitArea; negative angles
 * flip the envelope sign; y rotations use a 90-degree envelope
 * phase.
 */
void buildStandardLut(WaveMemory &memory, const CalibrationParams &params);

/** The lookup-table content of buildStandardLut as a value: rendering
 * is by far the most expensive part of a calibration upload, so
 * callers that calibrate many machines with identical parameters (the
 * runtime's program cache) render once and re-upload the entries. */
std::map<Codeword, StoredPulse>
buildStandardLutEntries(const CalibrationParams &params);

/** Upload pre-rendered entries (from buildStandardLutEntries). */
void uploadLut(WaveMemory &memory,
               const std::map<Codeword, StoredPulse> &entries);

/** The calibrated amplitude for a rotation by theta radians. */
double calibratedAmplitude(const CalibrationParams &params, double theta);

} // namespace quma::awg

#endif // QUMA_AWG_CALIBRATION_HH
