/**
 * @file
 * The wave memory of a codeword-triggered pulse generation unit.
 *
 * Organised as a lookup table: each entry, indexed by a codeword,
 * holds the I/Q sample amplitudes of ONE primitive pulse (paper
 * §5.1.1, Table 1). Uploading primitives instead of full experiment
 * waveforms is the paper's central memory argument: the AllXY
 * experiment needs 7 stored pulses (420 bytes) instead of 21 two-gate
 * waveforms (2520 bytes).
 */

#ifndef QUMA_AWG_WAVEMEMORY_HH
#define QUMA_AWG_WAVEMEMORY_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace quma::awg {

/** One lookup-table entry: a stored I/Q pulse. */
struct StoredPulse
{
    std::string name;
    std::vector<double> i;
    std::vector<double> q;
    /** Sample rate the samples were generated at (Hz). */
    double rateHz = kAwgSampleRateHz;
};

class WaveMemory
{
  public:
    /** Upload (or replace) the pulse at a codeword index. */
    void upload(Codeword cw, StoredPulse pulse);

    bool contains(Codeword cw) const;
    const StoredPulse &lookup(Codeword cw) const;

    std::size_t entryCount() const { return table.size(); }

    /** All populated codewords in ascending order. */
    std::vector<Codeword> codewords() const;

    /**
     * Memory footprint in bytes with the paper's accounting:
     * samples (I and Q) times the vertical resolution, default
     * 12 bits (1.5 bytes) per sample.
     */
    std::size_t memoryBytes(unsigned bits = kSampleResolutionBits) const;

    void
    clear()
    {
        table.clear();
        ++ver;
    }

    /**
     * Monotonic content version, bumped by every upload()/clear().
     * Consumers caching derived data (the CTPG's rendered pulses) use
     * it to detect staleness without comparing samples.
     */
    std::uint64_t version() const { return ver; }

  private:
    std::map<Codeword, StoredPulse> table;
    std::uint64_t ver = 0;
};

} // namespace quma::awg

#endif // QUMA_AWG_WAVEMEMORY_HH
