/**
 * @file
 * Codeword-triggered pulse generation unit (paper §5.1.1).
 *
 * On receiving a codeword trigger the unit plays the stored pulse at
 * that lookup-table index through its DACs after a FIXED delay (80 ns
 * in the implemented control box). The fixed delay is what lets the
 * upper digital layers compose pulses purely by trigger timing.
 */

#ifndef QUMA_AWG_CTPG_HH
#define QUMA_AWG_CTPG_HH

#include <functional>
#include <optional>
#include <queue>

#include "awg/wavememory.hh"
#include "signal/converters.hh"
#include "signal/pulse.hh"

namespace quma::awg {

/** Static configuration of one CTPG channel pair. */
struct CtpgConfig
{
    /** Trigger-to-output latency in cycles (80 ns / 5 ns = 16). */
    Cycle delayCycles = kCtpgDelayCycles;
    /** Upconversion carrier of the attached microwave source (Hz). */
    double carrierHz = 6.516e9;
    /** SSB frequency baked into the stored samples (Hz). */
    double ssbHz = -50.0e6;
    /** DAC resolution (paper: 14-bit DACs in each AWG). */
    unsigned dacBits = 14;
    /** DAC full-scale amplitude. */
    double dacFullScale = 1.0;
};

class Ctpg
{
  public:
    /**
     * Emitted pulse callback: the rendered analog pulse plus the
     * codeword and the qubit mask the trigger carried (simulation
     * plumbing so the machine can route the pulse to the chip).
     */
    using PulseSink = std::function<void(const signal::DrivePulse &,
                                         Codeword, QubitMask)>;

    explicit Ctpg(CtpgConfig config = {});

    const CtpgConfig &config() const { return cfg; }
    WaveMemory &waveMemory() { return memory; }
    const WaveMemory &waveMemory() const { return memory; }

    void setPulseSink(PulseSink sink) { pulseSink = std::move(sink); }

    /** Receive a codeword trigger at TD cycle `td`. */
    void trigger(Codeword cw, Cycle td, QubitMask mask);

    /** Cycle of the next pending pulse emission, if any. */
    std::optional<Cycle> nextEventCycle() const;

    /** Emit every pulse due at or before `now`. */
    void advanceTo(Cycle now);

    /** Number of pulses emitted so far. */
    std::size_t pulsesEmitted() const { return emitted; }

    /** Drop pending emissions and zero the counters (machine re-arm). */
    void reset();

  private:
    struct Pending
    {
        Cycle emitCycle;
        Codeword cw;
        QubitMask mask;
        std::uint64_t order; // FIFO tie-break for equal cycles

        bool
        operator>(const Pending &other) const
        {
            if (emitCycle != other.emitCycle)
                return emitCycle > other.emitCycle;
            return order > other.order;
        }
    };

    /** DAC-rendered I/Q of one stored pulse (immutable per upload). */
    struct Rendered
    {
        signal::Waveform i;
        signal::Waveform q;
    };

    /** Rendered pulse for a codeword, re-rendering only after uploads. */
    const Rendered &rendered(Codeword cw);

    CtpgConfig cfg;
    WaveMemory memory;
    signal::Dac dac;
    PulseSink pulseSink;
    /**
     * Render cache: stored samples and the DAC transfer function are
     * fixed between uploads, so each codeword is quantised once per
     * wave-memory version instead of on every trigger (the AllXY hot
     * loop fires thousands of triggers against a 7-entry LUT).
     */
    std::map<Codeword, Rendered> renderCache;
    std::uint64_t renderCacheVersion = 0;
    /**
     * Reused emission record: sinks receive it by const reference and
     * must not retain it past the callback (they don't -- the machine
     * routes it straight into the chip model).
     */
    signal::DrivePulse emitPulse;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
        pending;
    std::uint64_t orderCounter = 0;
    std::size_t emitted = 0;
};

} // namespace quma::awg

#endif // QUMA_AWG_CTPG_HH
