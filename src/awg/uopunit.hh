/**
 * @file
 * Micro-operation unit (paper §5.3.2).
 *
 * Translates each fired micro-operation into its stored codeword
 * sequence Seq_i = ([0, cw0]; [dt1, cw1]; ...), emitting the
 * codeword triggers at exact cycle offsets after a fixed unit delay.
 * This is where commonly-used operations that have no primitive pulse
 * (Z rotations, Hadamard) get emulated from primitives.
 */

#ifndef QUMA_AWG_UOPUNIT_HH
#define QUMA_AWG_UOPUNIT_HH

#include <functional>
#include <optional>
#include <queue>

#include "common/types.hh"
#include "microcode/seqtable.hh"

namespace quma::awg {

class UopUnit
{
  public:
    /** Codeword trigger output: (codeword, TD cycle, qubit mask). */
    using TriggerSink =
        std::function<void(Codeword, Cycle, QubitMask)>;

    /**
     * @param table the uploaded sequence table
     * @param delay_cycles the unit's fixed delay Delta (paper Table 5)
     */
    explicit UopUnit(microcode::UopSequenceTable table,
                     Cycle delay_cycles = 2);

    Cycle delayCycles() const { return delta; }
    const microcode::UopSequenceTable &table() const { return seqTable; }

    void setTriggerSink(TriggerSink sink) { sink_ = std::move(sink); }

    /** A micro-operation fired from the pulse queue at TD cycle td. */
    void fire(std::uint8_t uop, Cycle td, QubitMask mask);

    std::optional<Cycle> nextEventCycle() const;
    void advanceTo(Cycle now);

    std::size_t triggersEmitted() const { return emitted; }

    /** Drop pending triggers and zero the counters (machine re-arm). */
    void reset();

  private:
    struct Pending
    {
        Cycle cycle;
        Codeword cw;
        QubitMask mask;
        std::uint64_t order;

        bool
        operator>(const Pending &other) const
        {
            if (cycle != other.cycle)
                return cycle > other.cycle;
            return order > other.order;
        }
    };

    microcode::UopSequenceTable seqTable;
    Cycle delta;
    TriggerSink sink_;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
        pending;
    std::uint64_t orderCounter = 0;
    std::size_t emitted = 0;
};

} // namespace quma::awg

#endif // QUMA_AWG_UOPUNIT_HH
