#include "awg/wavememory.hh"

#include "common/logging.hh"

namespace quma::awg {

void
WaveMemory::upload(Codeword cw, StoredPulse pulse)
{
    if (pulse.i.size() != pulse.q.size())
        fatal("stored pulse '", pulse.name, "' has mismatched I/Q sizes");
    table[cw] = std::move(pulse);
    ++ver;
}

bool
WaveMemory::contains(Codeword cw) const
{
    return table.count(cw) != 0;
}

const StoredPulse &
WaveMemory::lookup(Codeword cw) const
{
    auto it = table.find(cw);
    if (it == table.end())
        fatal("wave memory has no pulse at codeword ", cw);
    return it->second;
}

std::vector<Codeword>
WaveMemory::codewords() const
{
    std::vector<Codeword> out;
    out.reserve(table.size());
    for (const auto &[cw, pulse] : table)
        out.push_back(cw);
    return out;
}

std::size_t
WaveMemory::memoryBytes(unsigned bits) const
{
    std::size_t total_samples = 0;
    for (const auto &[cw, pulse] : table)
        total_samples += pulse.i.size() + pulse.q.size();
    return (total_samples * bits + 7) / 8;
}

} // namespace quma::awg
