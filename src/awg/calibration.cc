#include "awg/calibration.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "isa/nametable.hh"
#include "signal/envelope.hh"
#include "signal/modulation.hh"

namespace quma::awg {

double
calibratedAmplitude(const CalibrationParams &params, double theta)
{
    if (params.rabiRadPerAmpNs <= 0)
        fatal("calibration needs a positive Rabi gain");
    signal::Envelope unit =
        signal::Envelope::gaussian(params.pulseNs, 1.0, params.sigmaNs);
    double unit_area = unit.area();
    double amp = theta / (params.rabiRadPerAmpNs * unit_area);
    return amp * (1.0 + params.amplitudeError);
}

namespace {

StoredPulse
renderGatePulse(const CalibrationParams &params, const std::string &name,
                double theta, double phase)
{
    StoredPulse out;
    out.name = name;
    out.rateHz = params.rateHz;
    double amp = calibratedAmplitude(params, theta);
    signal::Envelope env = signal::Envelope::gaussian(
        params.pulseNs, amp, params.sigmaNs);
    signal::Waveform base(env.sample(params.rateHz), params.rateHz);
    // Samples are tau-local: the SSB phase reference is the pulse
    // start. The carrier phase a pulse actually gets is then set by
    // its trigger time, which is the timing sensitivity the paper
    // exploits and AllXY detects.
    auto [i, q] = signal::ssbModulate(base, params.ssbHz, 0.0, phase);
    out.i = i.samples();
    out.q = q.samples();
    return out;
}

} // namespace

std::map<Codeword, StoredPulse>
buildStandardLutEntries(const CalibrationParams &params)
{
    namespace u = isa::uops;
    const double pi = std::numbers::pi;
    std::map<Codeword, StoredPulse> entries;

    // Identity: a zero pulse of one gate duration keeps the timing
    // grid uniform.
    {
        StoredPulse idle;
        idle.name = "I";
        idle.rateHz = params.rateHz;
        signal::Envelope env = signal::Envelope::zero(params.pulseNs);
        idle.i = env.sample(params.rateHz);
        idle.q = env.sample(params.rateHz);
        entries.emplace(u::I, std::move(idle));
    }
    entries.emplace(u::X180, renderGatePulse(params, "X180", pi, 0.0));
    entries.emplace(u::X90, renderGatePulse(params, "X90", pi / 2, 0.0));
    entries.emplace(u::Xm90,
                    renderGatePulse(params, "Xm90", -pi / 2, 0.0));
    entries.emplace(u::Y180, renderGatePulse(params, "Y180", pi, pi / 2));
    entries.emplace(u::Y90,
                    renderGatePulse(params, "Y90", pi / 2, pi / 2));
    entries.emplace(u::Ym90,
                    renderGatePulse(params, "Ym90", -pi / 2, pi / 2));

    // Measurement pulse envelope (the master controller normally
    // gates a dedicated source; the entry keeps Table 1 complete).
    {
        StoredPulse msmt;
        msmt.name = "MSMT";
        msmt.rateHz = params.rateHz;
        signal::Envelope env =
            signal::Envelope::square(params.msmtPulseNs, 1.0);
        msmt.i = env.sample(params.rateHz);
        msmt.q.assign(msmt.i.size(), 0.0);
        entries.emplace(u::Msmt, std::move(msmt));
    }
    // Flux pulse for the CZ gate (applied via the flux-bias line).
    {
        StoredPulse cz;
        cz.name = "CZ";
        cz.rateHz = params.rateHz;
        signal::Envelope env =
            signal::Envelope::square(params.czPulseNs, 1.0);
        cz.i = env.sample(params.rateHz);
        cz.q.assign(cz.i.size(), 0.0);
        entries.emplace(u::Cz, std::move(cz));
    }
    return entries;
}

void
uploadLut(WaveMemory &memory,
          const std::map<Codeword, StoredPulse> &entries)
{
    for (const auto &[cw, pulse] : entries)
        memory.upload(cw, pulse);
}

void
buildStandardLut(WaveMemory &memory, const CalibrationParams &params)
{
    uploadLut(memory, buildStandardLutEntries(params));
}

} // namespace quma::awg
