#include "awg/awgmodule.hh"

#include <algorithm>

namespace quma::awg {

AwgModule::AwgModule(AwgConfig config,
                     microcode::UopSequenceTable seq_table)
    : cfg(config), uop(std::move(seq_table), config.uopDelayCycles),
      ctpgUnit(config.ctpg)
{
    // Codeword triggers produced by the u-op unit feed the CTPG.
    uop.setTriggerSink([this](Codeword cw, Cycle td, QubitMask mask) {
        if (triggerObserver)
            triggerObserver(cw, td, mask);
        ctpgUnit.trigger(cw, td, mask);
    });
}

void
AwgModule::setPulseSink(Ctpg::PulseSink sink)
{
    ctpgUnit.setPulseSink(std::move(sink));
}

void
AwgModule::fireUop(std::uint8_t uop_id, Cycle td, QubitMask mask)
{
    // The mask is routing metadata carried through to the emitted
    // pulse; the QMB already routed the event here, and flux (CZ)
    // pulses legitimately span qubits served by other boards.
    uop.fire(uop_id, td, mask);
}

std::optional<Cycle>
AwgModule::nextEventCycle() const
{
    auto a = uop.nextEventCycle();
    auto b = ctpgUnit.nextEventCycle();
    if (!a)
        return b;
    if (!b)
        return a;
    return std::min(*a, *b);
}

void
AwgModule::advanceTo(Cycle now)
{
    // The u-op unit may schedule triggers due at `now`; run it first
    // so the CTPG sees them in this same advance.
    uop.advanceTo(now);
    ctpgUnit.advanceTo(now);
}

void
AwgModule::reset()
{
    uop.reset();
    ctpgUnit.reset();
}

} // namespace quma::awg
