#include "qsim/statevector.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::qsim {

StateVector::StateVector(unsigned num_qubits) : nq(num_qubits)
{
    if (num_qubits == 0 || num_qubits > 24)
        fatal("StateVector supports 1..24 qubits, got ", num_qubits);
    amp.assign(std::size_t{1} << num_qubits, Complex{0, 0});
    amp[0] = 1;
}

void
StateVector::apply1(unsigned q, const Mat2 &u)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < amp.size(); base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            std::size_t i0 = base + off;
            std::size_t i1 = i0 + stride;
            Complex a0 = amp[i0], a1 = amp[i1];
            amp[i0] = u[0] * a0 + u[1] * a1;
            amp[i1] = u[2] * a0 + u[3] * a1;
        }
    }
}

void
StateVector::apply2(unsigned q_high, unsigned q_low, const Mat4 &u)
{
    quma_assert(q_high < nq && q_low < nq && q_high != q_low,
                "bad two-qubit operand");
    std::size_t sh = std::size_t{1} << q_high;
    std::size_t sl = std::size_t{1} << q_low;
    for (std::size_t i = 0; i < amp.size(); ++i) {
        if ((i & sh) || (i & sl))
            continue;
        std::size_t idx[4] = {i, i | sl, i | sh, i | sh | sl};
        Complex v[4];
        for (int k = 0; k < 4; ++k)
            v[k] = amp[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Complex acc{0, 0};
            for (int c = 0; c < 4; ++c)
                acc += u[r * 4 + c] * v[c];
            amp[idx[r]] = acc;
        }
    }
}

double
StateVector::probabilityOne(unsigned q) const
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    double p = 0;
    for (std::size_t i = 0; i < amp.size(); ++i)
        if (i & mask)
            p += std::norm(amp[i]);
    return p;
}

void
StateVector::project(unsigned q, bool outcome)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    double norm = 0;
    for (std::size_t i = 0; i < amp.size(); ++i) {
        bool one = (i & mask) != 0;
        if (one != outcome)
            amp[i] = 0;
        else
            norm += std::norm(amp[i]);
    }
    if (norm <= 0)
        fatal("project: outcome has zero probability");
    double scale = 1.0 / std::sqrt(norm);
    for (auto &a : amp)
        a *= scale;
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    quma_assert(nq == other.nq, "fidelityWith: size mismatch");
    Complex inner{0, 0};
    for (std::size_t i = 0; i < amp.size(); ++i)
        inner += std::conj(amp[i]) * other.amp[i];
    return std::norm(inner);
}

bool
StateVector::approxEqual(const StateVector &other, double tol) const
{
    if (nq != other.nq)
        return false;
    return fidelityWith(other) > 1.0 - tol;
}

void
StateVector::reset()
{
    std::fill(amp.begin(), amp.end(), Complex{0, 0});
    amp[0] = 1;
}

} // namespace quma::qsim
