#include "qsim/density.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::qsim {

namespace {

/**
 * Visit every (row-pair x column-pair) 2x2 block of qubit q's
 * stride-blocked layout: fn(row0, row1, c0, c1) with row pointers into
 * `data` and paired column indices. row0/c0 carry bit q clear, row1/c1
 * carry it set; the inner loop walks columns contiguously. Inlined, so
 * the single-qubit kernels share one copy of the index arithmetic
 * without losing the fused sweep.
 */
template <typename BlockFn>
inline void
forEachBlock1(Complex *data, std::size_t n, std::size_t stride,
              BlockFn &&fn)
{
    for (std::size_t rb = 0; rb < n; rb += 2 * stride) {
        for (std::size_t ro = 0; ro < stride; ++ro) {
            Complex *row0 = data + (rb + ro) * n;
            Complex *row1 = row0 + stride * n;
            for (std::size_t cb = 0; cb < n; cb += 2 * stride) {
                for (std::size_t c0 = cb; c0 < cb + stride; ++c0)
                    fn(row0, row1, c0, c0 + stride);
            }
        }
    }
}

} // namespace

DensityMatrix::DensityMatrix(unsigned num_qubits) : nq(num_qubits)
{
    if (num_qubits == 0 || num_qubits > 12)
        fatal("DensityMatrix supports 1..12 qubits, got ", num_qubits);
    n = std::size_t{1} << num_qubits;
    rho.assign(n * n, Complex{0, 0});
    rho[0] = 1;
}

void
DensityMatrix::apply1(unsigned q, const Mat2 &u)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t stride = std::size_t{1} << q;
    Mat2 ud = adjoint(u);

    // Fused conjugation U rho U+: each (row-pair x column-pair) 2x2
    // block transforms independently, so one in-place row-major sweep
    // replaces the separate left- and right-multiply passes.
    forEachBlock1(rho.data(), n, stride,
                  [&u, &ud](Complex *row0, Complex *row1, std::size_t c0,
                            std::size_t c1) {
                      Complex m00 = row0[c0], m01 = row0[c1];
                      Complex m10 = row1[c0], m11 = row1[c1];
                      Complex t00 = u[0] * m00 + u[1] * m10;
                      Complex t01 = u[0] * m01 + u[1] * m11;
                      Complex t10 = u[2] * m00 + u[3] * m10;
                      Complex t11 = u[2] * m01 + u[3] * m11;
                      row0[c0] = t00 * ud[0] + t01 * ud[2];
                      row0[c1] = t00 * ud[1] + t01 * ud[3];
                      row1[c0] = t10 * ud[0] + t11 * ud[2];
                      row1[c1] = t10 * ud[1] + t11 * ud[3];
                  });
}

void
DensityMatrix::apply2(unsigned q_high, unsigned q_low, const Mat4 &u)
{
    quma_assert(q_high < nq && q_low < nq && q_high != q_low,
                "bad two-qubit operand");
    std::size_t sh = std::size_t{1} << q_high;
    std::size_t sl = std::size_t{1} << q_low;
    Mat4 ud = adjoint(u);

    // Fused U rho U+ on 4x4 blocks (row quad x column quad), one pass.
    for (std::size_t i = 0; i < n; ++i) {
        if ((i & sh) || (i & sl))
            continue;
        std::size_t ridx[4] = {i, i | sl, i | sh, i | sh | sl};
        for (std::size_t j = 0; j < n; ++j) {
            if ((j & sh) || (j & sl))
                continue;
            std::size_t cidx[4] = {j, j | sl, j | sh, j | sh | sl};
            Complex m[16], t[16];
            for (int r = 0; r < 4; ++r)
                for (int c = 0; c < 4; ++c)
                    m[r * 4 + c] = rho[ridx[r] * n + cidx[c]];
            // t = U m
            for (int r = 0; r < 4; ++r) {
                for (int c = 0; c < 4; ++c) {
                    Complex acc{0, 0};
                    for (int k = 0; k < 4; ++k)
                        acc += u[r * 4 + k] * m[k * 4 + c];
                    t[r * 4 + c] = acc;
                }
            }
            // rho block = t U+
            for (int r = 0; r < 4; ++r) {
                for (int c = 0; c < 4; ++c) {
                    Complex acc{0, 0};
                    for (int k = 0; k < 4; ++k)
                        acc += t[r * 4 + k] * ud[k * 4 + c];
                    rho[ridx[r] * n + cidx[c]] = acc;
                }
            }
        }
    }
}

void
DensityMatrix::applyKraus1(unsigned q, const std::vector<Mat2> &kraus)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t stride = std::size_t{1} << q;
    scratch.assign(n * n, Complex{0, 0});
    for (const Mat2 &k : kraus) {
        Mat2 kd = adjoint(k);
        // scratch += K rho K+, fused per 2x2 block; no temporary
        // matrices, and the accumulator persists across calls.
        const Complex *src = rho.data();
        Complex *dst = scratch.data();
        forEachBlock1(rho.data(), n, stride,
                      [&k, &kd, src, dst](Complex *row0, Complex *row1,
                                          std::size_t c0, std::size_t c1) {
                          Complex *out0 = dst + (row0 - src);
                          Complex *out1 = dst + (row1 - src);
                          Complex m00 = row0[c0], m01 = row0[c1];
                          Complex m10 = row1[c0], m11 = row1[c1];
                          Complex t00 = k[0] * m00 + k[1] * m10;
                          Complex t01 = k[0] * m01 + k[1] * m11;
                          Complex t10 = k[2] * m00 + k[3] * m10;
                          Complex t11 = k[2] * m01 + k[3] * m11;
                          out0[c0] += t00 * kd[0] + t01 * kd[2];
                          out0[c1] += t00 * kd[1] + t01 * kd[3];
                          out1[c0] += t10 * kd[0] + t11 * kd[2];
                          out1[c1] += t10 * kd[1] + t11 * kd[3];
                      });
    }
    rho.swap(scratch);
}

void
DensityMatrix::applyDiag1(unsigned q, Complex d0, Complex d1)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    Complex c0 = std::conj(d0), c1 = std::conj(d1);
    for (std::size_t r = 0; r < n; ++r) {
        Complex dr = (r & mask) ? d1 : d0;
        Complex f0 = dr * c0, f1 = dr * c1;
        Complex *row = rho.data() + r * n;
        // Columns alternate between the two factors in runs of
        // 2^q; walk the row contiguously.
        for (std::size_t cb = 0; cb < n; cb += 2 * mask) {
            for (std::size_t c = cb; c < cb + mask; ++c) {
                row[c] *= f0;
                row[c + mask] *= f1;
            }
        }
    }
}

void
DensityMatrix::applyRz(unsigned q, double theta)
{
    applyDiag1(q, std::polar(1.0, -theta / 2.0),
               std::polar(1.0, theta / 2.0));
}

void
DensityMatrix::applyCzPhase(unsigned q_a, unsigned q_b)
{
    quma_assert(q_a < nq && q_b < nq && q_a != q_b, "bad CZ operands");
    std::size_t both = (std::size_t{1} << q_a) | (std::size_t{1} << q_b);
    for (std::size_t r = 0; r < n; ++r) {
        bool rBoth = (r & both) == both;
        Complex *row = rho.data() + r * n;
        for (std::size_t c = 0; c < n; ++c) {
            if (rBoth != ((c & both) == both))
                row[c] = -row[c];
        }
    }
}

void
DensityMatrix::applyIdle(unsigned q, double gamma, double lambda,
                         double phase)
{
    quma_assert(q < nq, "qubit index out of range");
    quma_assert(gamma >= 0 && gamma <= 1 && lambda >= 0 && lambda <= 1,
                "idle parameters out of range");
    std::size_t stride = std::size_t{1} << q;
    double keep = 1.0 - gamma;
    double coh = std::sqrt(keep) * std::sqrt(1.0 - lambda);
    // Coherence factor for the (0,1) element; the (1,0) element takes
    // the conjugate. phase follows the rz(theta) convention: rho_01
    // picks up exp(-i*theta).
    Complex up = coh * Complex{std::cos(phase), -std::sin(phase)};
    Complex down = std::conj(up);
    forEachBlock1(rho.data(), n, stride,
                  [gamma, keep, up, down](Complex *row0, Complex *row1,
                                          std::size_t c0, std::size_t c1) {
                      Complex m11 = row1[c1];
                      row0[c0] += gamma * m11;
                      row1[c1] = keep * m11;
                      row0[c1] *= up;
                      row1[c0] *= down;
                  });
}

double
DensityMatrix::probabilityOne(unsigned q) const
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    double p = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (i & mask)
            p += rho[i * n + i].real();
    return p;
}

void
DensityMatrix::project(unsigned q, bool outcome)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    double norm = 0;
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            bool rOne = (r & mask) != 0;
            bool cOne = (c & mask) != 0;
            if (rOne != outcome || cOne != outcome)
                rho[r * n + c] = 0;
        }
        if (((r & mask) != 0) == outcome)
            norm += rho[r * n + r].real();
    }
    if (norm <= 1e-15)
        fatal("project: outcome has (near) zero probability");
    double scale = 1.0 / norm;
    for (auto &v : rho)
        v *= scale;
}

double
DensityMatrix::trace() const
{
    double t = 0;
    for (std::size_t i = 0; i < n; ++i)
        t += rho[i * n + i].real();
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij rho_ij * rho_ji = sum_ij |rho_ij|^2 (Hermitian).
    double p = 0;
    for (const auto &v : rho)
        p += std::norm(v);
    return p;
}

double
DensityMatrix::fidelityWithPure(const std::vector<Complex> &psi) const
{
    quma_assert(psi.size() == n, "fidelityWithPure: dimension mismatch");
    Complex acc{0, 0};
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            acc += std::conj(psi[r]) * rho[r * n + c] * psi[c];
    return acc.real();
}

void
DensityMatrix::reset()
{
    std::fill(rho.begin(), rho.end(), Complex{0, 0});
    rho[0] = 1;
}

void
DensityMatrix::resetQubit(unsigned q)
{
    quma_assert(q < nq, "qubit index out of range");
    // Trace out q and re-prepare |0>: the |1> population folds onto
    // |0> and every element touching |1> on either side vanishes.
    // Closed form of the channel {|0><0|, |0><1|}; no Kraus matrices.
    std::size_t stride = std::size_t{1} << q;
    forEachBlock1(rho.data(), n, stride,
                  [](Complex *row0, Complex *row1, std::size_t c0,
                     std::size_t c1) {
                      row0[c0] += row1[c1];
                      row0[c1] = 0;
                      row1[c0] = 0;
                      row1[c1] = 0;
                  });
}

} // namespace quma::qsim
