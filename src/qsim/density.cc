#include "qsim/density.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::qsim {

DensityMatrix::DensityMatrix(unsigned num_qubits) : nq(num_qubits)
{
    if (num_qubits == 0 || num_qubits > 12)
        fatal("DensityMatrix supports 1..12 qubits, got ", num_qubits);
    n = std::size_t{1} << num_qubits;
    rho.assign(n * n, Complex{0, 0});
    rho[0] = 1;
}

void
DensityMatrix::apply1(unsigned q, const Mat2 &u)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t stride = std::size_t{1} << q;

    // Left multiply: rows.
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                std::size_t r0 = base + off;
                std::size_t r1 = r0 + stride;
                Complex a0 = rho[r0 * n + c], a1 = rho[r1 * n + c];
                rho[r0 * n + c] = u[0] * a0 + u[1] * a1;
                rho[r1 * n + c] = u[2] * a0 + u[3] * a1;
            }
        }
    }
    // Right multiply by U+: columns.
    Mat2 ud = adjoint(u);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                std::size_t c0 = base + off;
                std::size_t c1 = c0 + stride;
                Complex a0 = rho[r * n + c0], a1 = rho[r * n + c1];
                rho[r * n + c0] = a0 * ud[0] + a1 * ud[2];
                rho[r * n + c1] = a0 * ud[1] + a1 * ud[3];
            }
        }
    }
}

void
DensityMatrix::apply2(unsigned q_high, unsigned q_low, const Mat4 &u)
{
    quma_assert(q_high < nq && q_low < nq && q_high != q_low,
                "bad two-qubit operand");
    std::size_t sh = std::size_t{1} << q_high;
    std::size_t sl = std::size_t{1} << q_low;

    // Left multiply on rows.
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
            if ((i & sh) || (i & sl))
                continue;
            std::size_t idx[4] = {i, i | sl, i | sh, i | sh | sl};
            Complex v[4];
            for (int k = 0; k < 4; ++k)
                v[k] = rho[idx[k] * n + c];
            for (int r = 0; r < 4; ++r) {
                Complex acc{0, 0};
                for (int k = 0; k < 4; ++k)
                    acc += u[r * 4 + k] * v[k];
                rho[idx[r] * n + c] = acc;
            }
        }
    }
    // Right multiply by U+ on columns.
    Mat4 ud = adjoint(u);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
            if ((i & sh) || (i & sl))
                continue;
            std::size_t idx[4] = {i, i | sl, i | sh, i | sh | sl};
            Complex v[4];
            for (int k = 0; k < 4; ++k)
                v[k] = rho[r * n + idx[k]];
            for (int c = 0; c < 4; ++c) {
                Complex acc{0, 0};
                for (int k = 0; k < 4; ++k)
                    acc += v[k] * ud[k * 4 + c];
                rho[r * n + idx[c]] = acc;
            }
        }
    }
}

void
DensityMatrix::leftMultiply1(unsigned q, const Mat2 &m,
                             std::vector<Complex> &out) const
{
    std::size_t stride = std::size_t{1} << q;
    out = rho;
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t base = 0; base < n; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                std::size_t r0 = base + off;
                std::size_t r1 = r0 + stride;
                Complex a0 = rho[r0 * n + c], a1 = rho[r1 * n + c];
                out[r0 * n + c] = m[0] * a0 + m[1] * a1;
                out[r1 * n + c] = m[2] * a0 + m[3] * a1;
            }
        }
    }
}

void
DensityMatrix::applyKraus1(unsigned q, const std::vector<Mat2> &kraus)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t stride = std::size_t{1} << q;
    std::vector<Complex> acc(n * n, Complex{0, 0});
    std::vector<Complex> tmp;
    for (const Mat2 &k : kraus) {
        // tmp = K rho
        leftMultiply1(q, k, tmp);
        // acc += tmp * K+
        Mat2 kd = adjoint(k);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t base = 0; base < n; base += 2 * stride) {
                for (std::size_t off = 0; off < stride; ++off) {
                    std::size_t c0 = base + off;
                    std::size_t c1 = c0 + stride;
                    Complex a0 = tmp[r * n + c0], a1 = tmp[r * n + c1];
                    acc[r * n + c0] += a0 * kd[0] + a1 * kd[2];
                    acc[r * n + c1] += a0 * kd[1] + a1 * kd[3];
                }
            }
        }
    }
    rho = std::move(acc);
}

double
DensityMatrix::probabilityOne(unsigned q) const
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    double p = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (i & mask)
            p += rho[i * n + i].real();
    return p;
}

void
DensityMatrix::project(unsigned q, bool outcome)
{
    quma_assert(q < nq, "qubit index out of range");
    std::size_t mask = std::size_t{1} << q;
    double norm = 0;
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            bool rOne = (r & mask) != 0;
            bool cOne = (c & mask) != 0;
            if (rOne != outcome || cOne != outcome)
                rho[r * n + c] = 0;
        }
        if (((r & mask) != 0) == outcome)
            norm += rho[r * n + r].real();
    }
    if (norm <= 1e-15)
        fatal("project: outcome has (near) zero probability");
    double scale = 1.0 / norm;
    for (auto &v : rho)
        v *= scale;
}

double
DensityMatrix::trace() const
{
    double t = 0;
    for (std::size_t i = 0; i < n; ++i)
        t += rho[i * n + i].real();
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij rho_ij * rho_ji = sum_ij |rho_ij|^2 (Hermitian).
    double p = 0;
    for (const auto &v : rho)
        p += std::norm(v);
    return p;
}

double
DensityMatrix::fidelityWithPure(const std::vector<Complex> &psi) const
{
    quma_assert(psi.size() == n, "fidelityWithPure: dimension mismatch");
    Complex acc{0, 0};
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            acc += std::conj(psi[r]) * rho[r * n + c] * psi[c];
    return acc.real();
}

void
DensityMatrix::reset()
{
    std::fill(rho.begin(), rho.end(), Complex{0, 0});
    rho[0] = 1;
}

void
DensityMatrix::resetQubit(unsigned q)
{
    // Trace out q and re-prepare |0>: equivalent to measuring and
    // discarding, then flipping 1 -> 0. Implemented as the channel
    // with Kraus ops |0><0| and |0><1|.
    applyKraus1(q, {Mat2{Complex{1, 0}, {0, 0}, {0, 0}, {0, 0}},
                    Mat2{Complex{0, 0}, {1, 0}, {0, 0}, {0, 0}}});
}

} // namespace quma::qsim
