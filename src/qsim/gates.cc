#include "qsim/gates.hh"

#include <cmath>

namespace quma::qsim {

Mat2
matmul(const Mat2 &a, const Mat2 &b)
{
    Mat2 out{};
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            for (int k = 0; k < 2; ++k)
                out[r * 2 + c] += a[r * 2 + k] * b[k * 2 + c];
    return out;
}

Mat4
matmul(const Mat4 &a, const Mat4 &b)
{
    Mat4 out{};
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            for (int k = 0; k < 4; ++k)
                out[r * 4 + c] += a[r * 4 + k] * b[k * 4 + c];
    return out;
}

Mat2
adjoint(const Mat2 &a)
{
    Mat2 out{};
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            out[c * 2 + r] = std::conj(a[r * 2 + c]);
    return out;
}

Mat4
adjoint(const Mat4 &a)
{
    Mat4 out{};
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            out[c * 4 + r] = std::conj(a[r * 4 + c]);
    return out;
}

Mat4
kron(const Mat2 &a, const Mat2 &b)
{
    Mat4 out{};
    for (int ar = 0; ar < 2; ++ar)
        for (int ac = 0; ac < 2; ++ac)
            for (int br = 0; br < 2; ++br)
                for (int bc = 0; bc < 2; ++bc)
                    out[(ar * 2 + br) * 4 + (ac * 2 + bc)] =
                        a[ar * 2 + ac] * b[br * 2 + bc];
    return out;
}

namespace {

template <typename Mat>
bool
equalUpToPhaseImpl(const Mat &a, const Mat &b, double tol)
{
    // Find the largest-magnitude element of b to anchor the phase.
    std::size_t anchor = 0;
    double best = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (std::abs(b[i]) > best) {
            best = std::abs(b[i]);
            anchor = i;
        }
    }
    if (best < tol) {
        // b is (numerically) zero; a must be too.
        for (auto &v : a)
            if (std::abs(v) > tol)
                return false;
        return true;
    }
    if (std::abs(a[anchor]) < tol)
        return false;
    Complex phase = a[anchor] / b[anchor];
    phase /= std::abs(phase);
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::abs(a[i] - phase * b[i]) > tol)
            return false;
    return true;
}

} // namespace

bool
equalUpToPhase(const Mat2 &a, const Mat2 &b, double tol)
{
    return equalUpToPhaseImpl(a, b, tol);
}

bool
equalUpToPhase(const Mat4 &a, const Mat4 &b, double tol)
{
    return equalUpToPhaseImpl(a, b, tol);
}

bool
isUnitary(const Mat2 &u, double tol)
{
    Mat2 p = matmul(u, adjoint(u));
    Mat2 eye = gates::identity();
    for (int i = 0; i < 4; ++i)
        if (std::abs(p[i] - eye[i]) > tol)
            return false;
    return true;
}

namespace gates {

Mat2
identity()
{
    return {Complex{1, 0}, {0, 0}, {0, 0}, {1, 0}};
}

Mat2
pauliX()
{
    return {Complex{0, 0}, {1, 0}, {1, 0}, {0, 0}};
}

Mat2
pauliY()
{
    return {Complex{0, 0}, {0, -1}, {0, 1}, {0, 0}};
}

Mat2
pauliZ()
{
    return {Complex{1, 0}, {0, 0}, {0, 0}, {-1, 0}};
}

Mat2
hadamard()
{
    double s = 1.0 / std::sqrt(2.0);
    return {Complex{s, 0}, {s, 0}, {s, 0}, {-s, 0}};
}

Mat2
rx(double theta)
{
    double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return {Complex{c, 0}, {0, -s}, {0, -s}, {c, 0}};
}

Mat2
ry(double theta)
{
    double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return {Complex{c, 0}, {-s, 0}, {s, 0}, {c, 0}};
}

Mat2
rz(double theta)
{
    double c = std::cos(theta / 2), s = std::sin(theta / 2);
    return {Complex{c, -s}, {0, 0}, {0, 0}, {c, s}};
}

Mat2
raxis(double phi, double theta)
{
    double c = std::cos(theta / 2), s = std::sin(theta / 2);
    // -i sin(theta/2) (cos(phi) X + sin(phi) Y)
    Complex offDiag01 = Complex{0, -s} *
                        Complex{std::cos(phi), -std::sin(phi)};
    Complex offDiag10 = Complex{0, -s} *
                        Complex{std::cos(phi), std::sin(phi)};
    return {Complex{c, 0}, offDiag01, offDiag10, Complex{c, 0}};
}

Mat4
identity4()
{
    Mat4 out{};
    for (int i = 0; i < 4; ++i)
        out[i * 4 + i] = 1;
    return out;
}

Mat4
cz()
{
    Mat4 out = identity4();
    out[15] = -1;
    return out;
}

Mat4
cnot()
{
    Mat4 out{};
    out[0 * 4 + 0] = 1;
    out[1 * 4 + 1] = 1;
    out[2 * 4 + 3] = 1;
    out[3 * 4 + 2] = 1;
    return out;
}

Mat4
swap()
{
    Mat4 out{};
    out[0 * 4 + 0] = 1;
    out[1 * 4 + 2] = 1;
    out[2 * 4 + 1] = 1;
    out[3 * 4 + 3] = 1;
    return out;
}

} // namespace gates

} // namespace quma::qsim
