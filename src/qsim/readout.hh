/**
 * @file
 * Dispersive readout signal model.
 *
 * A measurement pulse probes the readout resonator; the transmitted
 * feedline signal is demodulated to an intermediate frequency (40 MHz
 * in the paper's setup) and digitised. The complex amplitude of the IF
 * tone depends on the qubit state; additive Gaussian noise and T1
 * decay during the readout window give a realistic readout fidelity
 * below one.
 */

#ifndef QUMA_QSIM_READOUT_HH
#define QUMA_QSIM_READOUT_HH

#include <complex>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "signal/waveform.hh"

namespace quma::qsim {

/** State-dependent IF response of one qubit's readout resonator. */
struct ReadoutParams
{
    /** Complex IF amplitude when the qubit is in |0>. */
    std::complex<double> c0{1.0, 0.0};
    /** Complex IF amplitude when the qubit is in |1>. */
    std::complex<double> c1{-1.0, 0.0};
    /** Std-dev of additive Gaussian noise per ADC sample. */
    double noiseSigma = 4.0;
    /** Intermediate (demodulated) frequency in Hz. */
    double ifHz = 40.0e6;
    /** ADC sampling rate for the digitised trace. */
    double adcRateHz = kAdcSampleRateHz;
};

/** A digitised readout trace plus ground-truth bookkeeping. */
struct ReadoutTrace
{
    /** IF trace as seen by the master controller's ADC. */
    signal::Waveform trace;
    /** True qubit state at the start of the readout window. */
    bool initialOne = false;
    /** True qubit state at the end of the window (after T1 decay). */
    bool finalOne = false;
    /** Decay instant within the window (ns from start), or -1. */
    double decayAtNs = -1.0;
};

/**
 * Generate the digitised IF trace for one readout of one qubit.
 *
 * If the qubit starts in |1> it may decay during the window with the
 * exponential statistics of the supplied T1; the trace switches from
 * the |1> response to the |0> response at the decay instant.
 *
 * The additive noise is drawn in one batched pass (the whole
 * window's gaussians up front, then a vectorizable add) -- the RNG
 * stream and draw order are identical to a per-sample loop, so the
 * trace is bit-identical either way. `noise_scratch`, when given,
 * holds the batch buffer so repeated readouts on one chip stay
 * allocation-free.
 */
ReadoutTrace simulateReadout(const ReadoutParams &params, bool initial_one,
                             TimeNs duration_ns, double t1_ns, Rng &rng,
                             std::vector<double> *noise_scratch = nullptr);

} // namespace quma::qsim

#endif // QUMA_QSIM_READOUT_HH
