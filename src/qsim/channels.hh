/**
 * @file
 * Decoherence channels as Kraus-operator sets.
 */

#ifndef QUMA_QSIM_CHANNELS_HH
#define QUMA_QSIM_CHANNELS_HH

#include <vector>

#include "qsim/gates.hh"

namespace quma::qsim {

/**
 * Amplitude damping with decay probability gamma: relaxation |1> -> |0>
 * with probability gamma, coherence scaled by sqrt(1 - gamma).
 */
std::vector<Mat2> amplitudeDamping(double gamma);

/**
 * Phase damping with parameter lambda: coherence scaled by
 * sqrt(1 - lambda), populations untouched.
 */
std::vector<Mat2> phaseDamping(double lambda);

/**
 * Depolarising channel with error probability p (X, Y, Z each with
 * probability p / 3).
 */
std::vector<Mat2> depolarizing(double p);

/**
 * Free evolution for dt_ns given T1 and T2 (both ns): amplitude
 * damping with gamma = 1 - exp(-dt/T1) composed with pure dephasing so
 * that coherences decay as exp(-dt/T2). Requires T2 <= 2 * T1.
 */
std::vector<Mat2> idleChannel(double dt_ns, double t1_ns, double t2_ns);

/** Pure-dephasing time from T1/T2: 1/Tphi = 1/T2 - 1/(2 T1). */
double pureDephasingTime(double t1_ns, double t2_ns);

} // namespace quma::qsim

#endif // QUMA_QSIM_CHANNELS_HH
