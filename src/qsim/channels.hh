/**
 * @file
 * Decoherence channels as Kraus-operator sets.
 */

#ifndef QUMA_QSIM_CHANNELS_HH
#define QUMA_QSIM_CHANNELS_HH

#include <vector>

#include "qsim/gates.hh"

namespace quma::qsim {

/**
 * Amplitude damping with decay probability gamma: relaxation |1> -> |0>
 * with probability gamma, coherence scaled by sqrt(1 - gamma).
 */
std::vector<Mat2> amplitudeDamping(double gamma);

/**
 * Phase damping with parameter lambda: coherence scaled by
 * sqrt(1 - lambda), populations untouched.
 */
std::vector<Mat2> phaseDamping(double lambda);

/**
 * Depolarising channel with error probability p (X, Y, Z each with
 * probability p / 3).
 */
std::vector<Mat2> depolarizing(double p);

/**
 * Scalar parameters of the free-evolution channel: amplitude damping
 * probability gamma and pure-dephasing parameter lambda. These feed
 * the closed-form DensityMatrix::applyIdle fast path directly; the
 * Kraus form below is the generic reference built from the same
 * numbers.
 */
struct IdleChannelParams
{
    double gamma = 0.0;
    double lambda = 0.0;
};

/**
 * Parameters of free evolution for dt_ns given T1 and T2 (both ns):
 * gamma = 1 - exp(-dt/T1), and lambda chosen so coherences decay as
 * exp(-dt/T2). Requires T2 <= 2 * T1.
 */
IdleChannelParams idleChannelParams(double dt_ns, double t1_ns,
                                    double t2_ns);

/**
 * Free evolution for dt_ns given T1 and T2 (both ns) as a Kraus set:
 * amplitude damping composed with pure dephasing (see
 * idleChannelParams). Generic reference path; the simulator's hot loop
 * uses DensityMatrix::applyIdle with idleChannelParams instead.
 */
std::vector<Mat2> idleChannel(double dt_ns, double t1_ns, double t2_ns);

/** Pure-dephasing time from T1/T2: 1/Tphi = 1/T2 - 1/(2 T1). */
double pureDephasingTime(double t1_ns, double t2_ns);

} // namespace quma::qsim

#endif // QUMA_QSIM_CHANNELS_HH
