#include "qsim/transmon.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "qsim/channels.hh"
#include "signal/envelope.hh"
#include "signal/phasor.hh"

namespace quma::qsim {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
} // namespace

TransmonChip::TransmonChip(std::vector<TransmonParams> qubit_params,
                           std::uint64_t seed)
    : params(std::move(qubit_params)),
      roundDetuningHz(params.size(), 0.0),
      busyUntilNs(params.size(), 0),
      rho(params.empty() ? 1 : static_cast<unsigned>(params.size())),
      random(seed)
{
    if (params.empty())
        fatal("TransmonChip needs at least one qubit");
    for (auto &p : params) {
        if (p.rabiRadPerAmpNs == 0.0)
            p.rabiRadPerAmpNs = standardRabiGain();
        if (p.t2Ns > 2.0 * p.t1Ns)
            fatal("TransmonChip: T2 must be <= 2 * T1");
    }
}

const TransmonParams &
TransmonChip::qubitParams(unsigned q) const
{
    quma_assert(q < params.size(), "qubit index out of range");
    return params[q];
}

void
TransmonChip::reseed(std::uint64_t seed)
{
    random.reseed(seed);
    rho.reset();
    nowNs = 0;
    for (std::size_t q = 0; q < params.size(); ++q) {
        busyUntilNs[q] = 0;
        roundDetuningHz[q] = 0.0;
    }
}

void
TransmonChip::newRound()
{
    rho.reset();
    nowNs = 0;
    for (std::size_t q = 0; q < params.size(); ++q) {
        busyUntilNs[q] = 0;
        double sigma = params[q].quasiStaticDetuningSigmaHz;
        roundDetuningHz[q] = sigma > 0 ? random.gaussian(0.0, sigma) : 0.0;
    }
}

void
TransmonChip::idleEvolve(TimeNs from_ns, TimeNs to_ns)
{
    if (to_ns <= from_ns)
        return;
    for (unsigned q = 0; q < params.size(); ++q) {
        // The portion of the interval inside the qubit's readout
        // window is already accounted for by the sampled trace.
        TimeNs start = std::max(from_ns, busyUntilNs[q]);
        if (start >= to_ns)
            continue;
        double dt = static_cast<double>(to_ns - start);
        // Closed-form T1/T2 update fused with the quasi-static
        // detuning frame rotation: one allocation-free sweep instead
        // of a generic Kraus application plus an rz conjugation.
        IdleChannelParams icp =
            idleChannelParams(dt, params[q].t1Ns, params[q].t2Ns);
        double det = roundDetuningHz[q];
        rho.applyIdle(q, icp.gamma, icp.lambda,
                      kTwoPi * det * dt * 1e-9);
    }
}

void
TransmonChip::advanceTo(TimeNs t_ns)
{
    if (t_ns < nowNs)
        fatal("TransmonChip::advanceTo: time moved backwards (now ",
              nowNs, " ns, requested ", t_ns, " ns)");
    idleEvolve(nowNs, t_ns);
    nowNs = t_ns;
}

void
TransmonChip::advanceAtLeast(TimeNs t_ns)
{
    if (t_ns > nowNs)
        advanceTo(t_ns);
}

void
TransmonChip::applyDrive(unsigned q, const signal::DrivePulse &pulse)
{
    quma_assert(q < params.size(), "qubit index out of range");
    quma_assert(pulse.i.size() == pulse.q.size(),
                "DrivePulse I/Q length mismatch");

    auto dur = static_cast<TimeNs>(std::llround(pulse.durationNs()));
    TimeNs mid = pulse.t0Ns + dur / 2;
    advanceAtLeast(mid);

    // Demodulate the complex baseband against the qubit's rotating
    // frame. The frame offset from the carrier includes this round's
    // quasi-static detuning.
    const TransmonParams &p = params[q];
    double f_rot = (p.freqHz + roundDetuningHz[q]) - pulse.carrierHz;
    double dt_ns = 1e9 / pulse.i.rateHz();
    // Incremental phasor over the uniform sample grid: one complex
    // multiply per sample instead of a sincos. The frame rotates at
    // -f_rot relative to the baseband samples.
    signal::Phasor ph = signal::gridPhasor(
        -f_rot, static_cast<double>(pulse.t0Ns), dt_ns);
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t k = 0; k < pulse.i.size(); ++k) {
        acc += std::complex<double>{pulse.i[k], pulse.q[k]} * ph.value();
        ph.advance();
    }
    acc *= dt_ns;

    double theta = p.rabiRadPerAmpNs * std::abs(acc);
    if (theta > 1e-12) {
        double phi = std::arg(acc);
        rho.apply1(q, gates::raxis(phi, theta));
    }
    advanceAtLeast(pulse.t0Ns + dur);
}

void
TransmonChip::applyCz(unsigned a, unsigned b, TimeNs t0_ns,
                      TimeNs duration_ns)
{
    quma_assert(a < params.size() && b < params.size() && a != b,
                "bad CZ operands");
    advanceAtLeast(t0_ns + duration_ns / 2);
    // CZ is diagonal: an O(n^2) sign sweep, not a 4x4 conjugation.
    rho.applyCzPhase(a, b);
    advanceAtLeast(t0_ns + duration_ns);
}

ReadoutTrace
TransmonChip::measure(unsigned q, TimeNs t0_ns, TimeNs duration_ns)
{
    quma_assert(q < params.size(), "qubit index out of range");
    if (t0_ns < busyUntilNs[q])
        fatal("overlapping readout on qubit ", q, ": window at ", t0_ns,
              " ns starts before the previous one ends (",
              busyUntilNs[q], " ns)");
    advanceAtLeast(t0_ns);

    double p1 = rho.probabilityOne(q);
    bool outcome = random.bernoulli(std::clamp(p1, 0.0, 1.0));
    rho.project(q, outcome);

    const TransmonParams &p = params[q];
    ReadoutTrace trace = simulateReadout(p.readout, outcome, duration_ns,
                                         p.t1Ns, random, &noiseScratch);

    // The measured qubit's state at the end of the window is decided
    // by the sampled trace (T1 decay included); decoherence inside
    // the window is suppressed via busyUntilNs so it is not applied
    // twice. Other qubits idle normally as time advances.
    if (trace.initialOne && !trace.finalOne)
        rho.resetQubit(q);
    busyUntilNs[q] = t0_ns + duration_ns;

    // Quasi-static noise decorrelates between shots: redraw the slow
    // frequency offset after each readout (measurements delimit
    // experiment shots in a continuous run).
    double sigma = p.quasiStaticDetuningSigmaHz;
    if (sigma > 0)
        roundDetuningHz[q] = random.gaussian(0.0, sigma);
    return trace;
}

double
TransmonChip::probabilityOne(unsigned q) const
{
    return rho.probabilityOne(q);
}

double
standardRabiGain(double pulse_ns)
{
    signal::Envelope env = signal::Envelope::gaussian(pulse_ns, 1.0);
    double area = env.area();
    quma_assert(area > 0, "degenerate calibration envelope");
    return std::numbers::pi / area;
}

TransmonParams
paperQubitParams()
{
    TransmonParams p;
    p.freqHz = 6.466e9;
    p.resonatorHz = 6.850e9;
    p.t1Ns = 30000.0;
    p.t2Ns = 25000.0;
    p.quasiStaticDetuningSigmaHz = 0.0;
    p.rabiRadPerAmpNs = standardRabiGain();
    p.readout.c0 = {30.0, 0.0};
    p.readout.c1 = {-30.0, 0.0};
    p.readout.noiseSigma = 150.0;
    p.readout.ifHz = 40.0e6;
    return p;
}

} // namespace quma::qsim
