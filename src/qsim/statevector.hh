/**
 * @file
 * Pure-state simulator for unitary circuit checks.
 *
 * The density-matrix simulator (density.hh) is the one wired into the
 * transmon model because it captures decoherence exactly; the state
 * vector is the cheap tool for verifying gate decompositions
 * (e.g. that the CNOT microprogram of paper Algorithm 2 equals CNOT).
 */

#ifndef QUMA_QSIM_STATEVECTOR_HH
#define QUMA_QSIM_STATEVECTOR_HH

#include <vector>

#include "qsim/gates.hh"

namespace quma::qsim {

class StateVector
{
  public:
    /** Initialise n qubits to |0...0>. */
    explicit StateVector(unsigned num_qubits);

    unsigned numQubits() const { return nq; }
    std::size_t dim() const { return amp.size(); }

    const Complex &amplitude(std::size_t basis) const { return amp[basis]; }

    /** Apply a single-qubit unitary to qubit q. */
    void apply1(unsigned q, const Mat2 &u);

    /**
     * Apply a two-qubit unitary; q_high indexes the more significant
     * bit of the 4x4 matrix's basis ordering.
     */
    void apply2(unsigned q_high, unsigned q_low, const Mat4 &u);

    /** Probability of measuring qubit q as 1. */
    double probabilityOne(unsigned q) const;

    /** Project qubit q onto the given outcome and renormalise. */
    void project(unsigned q, bool outcome);

    /** |<this|other>|^2. */
    double fidelityWith(const StateVector &other) const;

    /** Global-phase-insensitive equality check. */
    bool approxEqual(const StateVector &other, double tol = 1e-9) const;

    /** Reset to |0...0>. */
    void reset();

  private:
    unsigned nq;
    std::vector<Complex> amp;
};

} // namespace quma::qsim

#endif // QUMA_QSIM_STATEVECTOR_HH
