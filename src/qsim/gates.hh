/**
 * @file
 * Single- and two-qubit gate matrices and small dense linear algebra.
 *
 * Conventions: computational basis {|0>, |1>}; rotations follow
 * R_n(theta) = exp(-i * theta / 2 * (n . sigma)); an equatorial-axis
 * rotation at azimuthal angle phi is
 * R_phi(theta) = cos(theta/2) I - i sin(theta/2)(cos(phi) X + sin(phi) Y),
 * so phi = 0 is an x rotation and phi = pi/2 a y rotation.
 */

#ifndef QUMA_QSIM_GATES_HH
#define QUMA_QSIM_GATES_HH

#include <array>
#include <complex>

namespace quma::qsim {

using Complex = std::complex<double>;

/** 2x2 complex matrix, row-major. */
using Mat2 = std::array<Complex, 4>;
/** 4x4 complex matrix, row-major. */
using Mat4 = std::array<Complex, 16>;

/** Matrix product a * b. */
Mat2 matmul(const Mat2 &a, const Mat2 &b);
Mat4 matmul(const Mat4 &a, const Mat4 &b);

/** Conjugate transpose. */
Mat2 adjoint(const Mat2 &a);
Mat4 adjoint(const Mat4 &a);

/** Kronecker product a (x) b: qubit of a is the more significant bit. */
Mat4 kron(const Mat2 &a, const Mat2 &b);

/**
 * True when a and b are equal up to a global phase, element-wise to
 * within tol.
 */
bool equalUpToPhase(const Mat2 &a, const Mat2 &b, double tol = 1e-9);
bool equalUpToPhase(const Mat4 &a, const Mat4 &b, double tol = 1e-9);

/** True when u * adjoint(u) is the identity to within tol. */
bool isUnitary(const Mat2 &u, double tol = 1e-9);

namespace gates {

Mat2 identity();
Mat2 pauliX();
Mat2 pauliY();
Mat2 pauliZ();
Mat2 hadamard();

/** Rotation about the x axis by theta. */
Mat2 rx(double theta);
/** Rotation about the y axis by theta. */
Mat2 ry(double theta);
/** Rotation about the z axis by theta. */
Mat2 rz(double theta);

/** Rotation by theta about the equatorial axis at azimuth phi. */
Mat2 raxis(double phi, double theta);

Mat4 identity4();
/** Controlled-phase: |11> picks up a minus sign. */
Mat4 cz();
/** Controlled-NOT with the more significant qubit as control. */
Mat4 cnot();
Mat4 swap();

} // namespace gates

} // namespace quma::qsim

#endif // QUMA_QSIM_GATES_HH
