/**
 * @file
 * Density-matrix simulator with Kraus-channel support.
 *
 * This is the physics backend of the transmon model: it captures
 * amplitude damping (T1) and dephasing (T2) exactly, which the
 * coherence-time experiments (T1, Ramsey, echo) and the readout error
 * model rely on.
 *
 * Every shot of every experiment funnels through these kernels, so the
 * hot entry points (apply1, apply2, applyKraus1, applyIdle and the
 * diagonal fast paths) are written as fused, in-place, row-major block
 * sweeps that perform no heap allocation on the steady-state path; see
 * src/qsim/README.md for the kernel design notes.
 */

#ifndef QUMA_QSIM_DENSITY_HH
#define QUMA_QSIM_DENSITY_HH

#include <vector>

#include "qsim/gates.hh"

namespace quma::qsim {

class DensityMatrix
{
  public:
    /** Initialise n qubits to |0...0><0...0|. */
    explicit DensityMatrix(unsigned num_qubits);

    unsigned numQubits() const { return nq; }
    std::size_t dim() const { return n; }

    Complex element(std::size_t r, std::size_t c) const
    {
        return rho[r * n + c];
    }

    /** Apply a single-qubit unitary to qubit q: rho -> U rho U+. */
    void apply1(unsigned q, const Mat2 &u);

    /** Apply a two-qubit unitary (q_high = more significant bit). */
    void apply2(unsigned q_high, unsigned q_low, const Mat4 &u);

    /** Apply a single-qubit channel given by Kraus operators. */
    void applyKraus1(unsigned q, const std::vector<Mat2> &kraus);

    /**
     * Apply the diagonal unitary diag(d0, d1) on qubit q:
     * rho_ij -> d_{i_q} rho_ij conj(d_{j_q}). A single O(n^2) sweep,
     * no matrix conjugation.
     */
    void applyDiag1(unsigned q, Complex d0, Complex d1);

    /** Fast path for rz(theta): applyDiag1 with the rz eigenvalues. */
    void applyRz(unsigned q, double theta);

    /**
     * Fast path for CZ between two qubits: rho_ij flips sign where
     * exactly one of i, j has both qubit bits set. O(n^2), no 4x4
     * conjugation.
     */
    void applyCzPhase(unsigned q_a, unsigned q_b);

    /**
     * Closed-form idle (T1/T2) evolution on qubit q: amplitude damping
     * with decay probability gamma composed with pure dephasing with
     * parameter lambda, optionally fused with a frame rotation
     * rz(phase) (quasi-static detuning). Element-wise on each 2x2
     * block -- no Kraus matrices, no temporaries:
     *
     *   rho_00 += gamma * rho_11          rho_11 *= (1 - gamma)
     *   rho_01 *= sqrt(1-gamma) * sqrt(1-lambda) * exp(-i*phase)
     *   rho_10 *= sqrt(1-gamma) * sqrt(1-lambda) * exp(+i*phase)
     *
     * Equivalent (to rounding) to applyKraus1(idleChannel(...)) then
     * applyRz(phase); see tests/test_qsim_kernels.cc.
     */
    void applyIdle(unsigned q, double gamma, double lambda,
                   double phase = 0.0);

    /** Probability that measuring qubit q yields 1. */
    double probabilityOne(unsigned q) const;

    /** Project qubit q onto outcome and renormalise. */
    void project(unsigned q, bool outcome);

    /** Trace of the matrix (should be 1). */
    double trace() const;

    /** Purity Tr(rho^2); 1 for pure states. */
    double purity() const;

    /** Fidelity <psi|rho|psi> against a pure state given as amplitudes. */
    double fidelityWithPure(const std::vector<Complex> &psi) const;

    /** Reset every qubit to |0>. */
    void reset();

    /** Force qubit q to |0> (used for active reset modelling). */
    void resetQubit(unsigned q);

  private:
    unsigned nq;
    std::size_t n;
    std::vector<Complex> rho;
    /**
     * Persistent accumulator for applyKraus1; sized n*n on first use
     * and reused (swapped with rho) so no per-call allocation remains.
     */
    std::vector<Complex> scratch;
};

} // namespace quma::qsim

#endif // QUMA_QSIM_DENSITY_HH
