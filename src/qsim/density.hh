/**
 * @file
 * Density-matrix simulator with Kraus-channel support.
 *
 * This is the physics backend of the transmon model: it captures
 * amplitude damping (T1) and dephasing (T2) exactly, which the
 * coherence-time experiments (T1, Ramsey, echo) and the readout error
 * model rely on.
 */

#ifndef QUMA_QSIM_DENSITY_HH
#define QUMA_QSIM_DENSITY_HH

#include <vector>

#include "qsim/gates.hh"

namespace quma::qsim {

class DensityMatrix
{
  public:
    /** Initialise n qubits to |0...0><0...0|. */
    explicit DensityMatrix(unsigned num_qubits);

    unsigned numQubits() const { return nq; }
    std::size_t dim() const { return n; }

    Complex element(std::size_t r, std::size_t c) const
    {
        return rho[r * n + c];
    }

    /** Apply a single-qubit unitary to qubit q: rho -> U rho U+. */
    void apply1(unsigned q, const Mat2 &u);

    /** Apply a two-qubit unitary (q_high = more significant bit). */
    void apply2(unsigned q_high, unsigned q_low, const Mat4 &u);

    /** Apply a single-qubit channel given by Kraus operators. */
    void applyKraus1(unsigned q, const std::vector<Mat2> &kraus);

    /** Probability that measuring qubit q yields 1. */
    double probabilityOne(unsigned q) const;

    /** Project qubit q onto outcome and renormalise. */
    void project(unsigned q, bool outcome);

    /** Trace of the matrix (should be 1). */
    double trace() const;

    /** Purity Tr(rho^2); 1 for pure states. */
    double purity() const;

    /** Fidelity <psi|rho|psi> against a pure state given as amplitudes. */
    double fidelityWithPure(const std::vector<Complex> &psi) const;

    /** Reset every qubit to |0>. */
    void reset();

    /** Force qubit q to |0> (used for active reset modelling). */
    void resetQubit(unsigned q);

  private:
    /** rho -> M(row side) with M acting on bit q of the row index. */
    void leftMultiply1(unsigned q, const Mat2 &m,
                       std::vector<Complex> &out) const;

    unsigned nq;
    std::size_t n;
    std::vector<Complex> rho;
};

} // namespace quma::qsim

#endif // QUMA_QSIM_DENSITY_HH
