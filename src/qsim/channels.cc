#include "qsim/channels.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::qsim {

std::vector<Mat2>
amplitudeDamping(double gamma)
{
    if (gamma < 0 || gamma > 1)
        fatal("amplitudeDamping: gamma must be in [0, 1], got ", gamma);
    double s = std::sqrt(1.0 - gamma);
    double g = std::sqrt(gamma);
    return {Mat2{Complex{1, 0}, {0, 0}, {0, 0}, {s, 0}},
            Mat2{Complex{0, 0}, {g, 0}, {0, 0}, {0, 0}}};
}

std::vector<Mat2>
phaseDamping(double lambda)
{
    if (lambda < 0 || lambda > 1)
        fatal("phaseDamping: lambda must be in [0, 1], got ", lambda);
    double s = std::sqrt(1.0 - lambda);
    double l = std::sqrt(lambda);
    return {Mat2{Complex{1, 0}, {0, 0}, {0, 0}, {s, 0}},
            Mat2{Complex{0, 0}, {0, 0}, {0, 0}, {l, 0}}};
}

std::vector<Mat2>
depolarizing(double p)
{
    if (p < 0 || p > 1)
        fatal("depolarizing: p must be in [0, 1], got ", p);
    double s0 = std::sqrt(1.0 - p);
    double s1 = std::sqrt(p / 3.0);
    std::vector<Mat2> kraus;
    Mat2 eye = gates::identity();
    Mat2 x = gates::pauliX();
    Mat2 y = gates::pauliY();
    Mat2 z = gates::pauliZ();
    for (auto &v : eye)
        v *= s0;
    for (auto &v : x)
        v *= s1;
    for (auto &v : y)
        v *= s1;
    for (auto &v : z)
        v *= s1;
    kraus.push_back(eye);
    kraus.push_back(x);
    kraus.push_back(y);
    kraus.push_back(z);
    return kraus;
}

double
pureDephasingTime(double t1_ns, double t2_ns)
{
    if (t1_ns <= 0 || t2_ns <= 0)
        fatal("coherence times must be positive");
    double inv = 1.0 / t2_ns - 0.5 / t1_ns;
    if (inv < -1e-12)
        fatal("idleChannel requires T2 <= 2 * T1 (T1 = ", t1_ns,
              " ns, T2 = ", t2_ns, " ns)");
    if (inv <= 0)
        return 0.0; // No pure dephasing: T2 at the 2*T1 limit.
    return 1.0 / inv;
}

IdleChannelParams
idleChannelParams(double dt_ns, double t1_ns, double t2_ns)
{
    if (dt_ns < 0)
        fatal("idleChannel: negative duration");
    IdleChannelParams p;
    p.gamma = 1.0 - std::exp(-dt_ns / t1_ns);
    double tphi = pureDephasingTime(t1_ns, t2_ns);
    if (tphi > 0)
        p.lambda = 1.0 - std::exp(-2.0 * dt_ns / tphi);
    return p;
}

std::vector<Mat2>
idleChannel(double dt_ns, double t1_ns, double t2_ns)
{
    IdleChannelParams icp = idleChannelParams(dt_ns, t1_ns, t2_ns);

    // Compose amplitude damping then phase damping: products of the
    // two Kraus families form a valid Kraus set of the composition.
    auto ad = amplitudeDamping(icp.gamma);
    auto pd = phaseDamping(icp.lambda);
    std::vector<Mat2> out;
    for (const auto &p : pd)
        for (const auto &a : ad)
            out.push_back(matmul(p, a));
    return out;
}

} // namespace quma::qsim
