/**
 * @file
 * Pulse-level transmon chip model.
 *
 * This stands in for the 10-transmon device of the paper's Figure 8.
 * Control fidelity is what matters for validating the
 * microarchitecture, so the model keeps exactly the sensitivities the
 * paper discusses:
 *
 *  - the rotation ANGLE is set by the integrated pulse envelope
 *    (amplitude errors show up as under/over-rotation);
 *  - the rotation AXIS is set by the SSB carrier phase at the global
 *    pulse start time (a 5 ns timing slip with 50 MHz SSB turns an x
 *    rotation into a y rotation, paper section 4.2.3);
 *  - detuned drives rotate less far and about a shifted axis;
 *  - idle periods decohere with T1 / T2;
 *  - readout includes additive noise and T1 decay during the window.
 */

#ifndef QUMA_QSIM_TRANSMON_HH
#define QUMA_QSIM_TRANSMON_HH

#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "qsim/density.hh"
#include "qsim/readout.hh"
#include "signal/pulse.hh"

namespace quma::qsim {

/** Static calibration data for one transmon. */
struct TransmonParams
{
    /** Qubit transition frequency (Hz); paper qubit 2: 6.466 GHz. */
    double freqHz = 6.466e9;
    /** Readout resonator fundamental (Hz); paper: 6.850 GHz. */
    double resonatorHz = 6.850e9;
    /** Relaxation time (ns). */
    double t1Ns = 30000.0;
    /** Markovian (echo) coherence time (ns); must be <= 2 * T1. */
    double t2Ns = 25000.0;
    /**
     * Std-dev (Hz) of a quasi-static per-round frequency offset.
     * Models low-frequency flux/charge noise: shortens the Ramsey
     * (T2*) decay but is refocused by an echo.
     */
    double quasiStaticDetuningSigmaHz = 0.0;
    /** Rotation angle per unit integrated envelope (rad / (amp * ns)). */
    double rabiRadPerAmpNs = 0.0;
    /** Readout response. */
    ReadoutParams readout;
};

/**
 * The quantum processor: a register of transmons behind a feedline.
 *
 * Simulated qubits are indexed 0..n-1; an experiment that addresses
 * the paper's "qubit 2" maps it to one of these slots at machine
 * configuration time.
 */
class TransmonChip
{
  public:
    TransmonChip(std::vector<TransmonParams> qubit_params,
                 std::uint64_t seed = 0x9b1d);

    unsigned numQubits() const
    {
        return static_cast<unsigned>(params.size());
    }
    const TransmonParams &qubitParams(unsigned q) const;

    /** Current simulation time (ns). */
    TimeNs now() const { return nowNs; }

    /**
     * Begin a new experiment round: reset all qubits to |0>, rewind
     * the clock and draw fresh quasi-static detunings.
     */
    void newRound();

    /**
     * Return the chip to its freshly-constructed state with the given
     * noise seed: all qubits in |0>, clock at zero, and the RNG
     * rewound so a subsequent run reproduces a fresh chip bit for
     * bit. Unlike newRound() this does NOT draw detunings (the next
     * newRound() performs the first draw, exactly as after
     * construction).
     */
    void reseed(std::uint64_t seed);

    /** Advance to an absolute time, applying idle decoherence. */
    void advanceTo(TimeNs t_ns);

    /** advanceTo that tolerates t_ns already being in the past. */
    void advanceAtLeast(TimeNs t_ns);

    /**
     * Apply a microwave drive pulse to qubit q. The pulse's I/Q
     * samples are interpreted in the qubit's rotating frame relative
     * to the pulse's carrier; time is the global simulation time.
     */
    void applyDrive(unsigned q, const signal::DrivePulse &pulse);

    /**
     * Apply a two-qubit CZ between qubits a and b (idealised flux
     * pulse of the given duration).
     */
    void applyCz(unsigned a, unsigned b, TimeNs t0_ns, TimeNs duration_ns);

    /**
     * Measure qubit q with a readout window starting at t0 lasting
     * duration_ns. Projects the qubit, simulates T1 decay during the
     * window, and returns the digitised IF trace.
     */
    ReadoutTrace measure(unsigned q, TimeNs t0_ns, TimeNs duration_ns);

    /** Probability of |1> right now (diagnostic; not a measurement). */
    double probabilityOne(unsigned q) const;

    /** Direct access for tests and fast-path experiments. */
    DensityMatrix &state() { return rho; }
    const DensityMatrix &state() const { return rho; }

    Rng &rng() { return random; }

  private:
    void idleEvolve(TimeNs from_ns, TimeNs to_ns);

    std::vector<TransmonParams> params;
    std::vector<double> roundDetuningHz;
    /**
     * End of each qubit's most recent readout window: its evolution
     * during the window is captured by the sampled trace, so idle
     * decoherence is suppressed until this time.
     */
    std::vector<TimeNs> busyUntilNs;
    DensityMatrix rho;
    Rng random;
    TimeNs nowNs = 0;
    /** Batched readout-noise buffer, reused across measurements so
     *  the per-shot readout path stays allocation-free. */
    std::vector<double> noiseScratch;
};

/**
 * Default calibration: rabiRadPerAmpNs chosen so a unit-amplitude
 * 20 ns Gaussian (sigma 5 ns) rotates by pi.
 */
double standardRabiGain(double pulse_ns = 20.0);

/** Parameters mirroring the paper's measured qubit (qubit 2). */
TransmonParams paperQubitParams();

} // namespace quma::qsim

#endif // QUMA_QSIM_TRANSMON_HH
