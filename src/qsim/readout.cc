#include "qsim/readout.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "signal/phasor.hh"

namespace quma::qsim {

ReadoutTrace
simulateReadout(const ReadoutParams &params, bool initial_one,
                TimeNs duration_ns, double t1_ns, Rng &rng,
                std::vector<double> *noise_scratch)
{
    if (duration_ns <= 0)
        fatal("simulateReadout: non-positive duration");

    ReadoutTrace out;
    out.initialOne = initial_one;
    out.finalOne = initial_one;

    double decay_ns = -1.0;
    if (initial_one && t1_ns > 0) {
        // Exponential decay time; only matters if inside the window.
        double u = rng.uniform();
        double t = -t1_ns * std::log(1.0 - u);
        if (t < static_cast<double>(duration_ns)) {
            decay_ns = t;
            out.finalOne = false;
        }
    }
    out.decayAtNs = decay_ns;

    double dt_ns = 1e9 / params.adcRateHz;
    auto n = static_cast<std::size_t>(
        std::floor(static_cast<double>(duration_ns) / dt_ns));
    std::vector<double> samples(n);

    // The whole window's noise in one batched pass. Draw order is
    // exactly the per-sample loop's (one standard normal per sample,
    // in sample order), so the trace is bit-identical -- but the
    // ziggurat runs as a tight loop and the tone/add loops below
    // carry no RNG data dependency.
    std::vector<double> local;
    std::vector<double> &noise = noise_scratch ? *noise_scratch : local;
    noise.resize(n);
    rng.fillStandardNormal(noise.data(), n);

    // IF tone via an incremental phasor: the per-sample value is
    // Re(c * exp(i*arg)), one complex multiply instead of a sincos.
    signal::Phasor ph = signal::gridPhasor(params.ifHz, 0.0, dt_ns);
    for (std::size_t k = 0; k < n; ++k) {
        double t_ns = (static_cast<double>(k) + 0.5) * dt_ns;
        bool one = initial_one && (decay_ns < 0 || t_ns < decay_ns);
        std::complex<double> c = one ? params.c1 : params.c0;
        samples[k] = c.real() * ph.cosine() - c.imag() * ph.sine();
        ph.advance();
    }
    // Vectorizable: no phasor recurrence, no RNG call, just FMA.
    const double sigma = params.noiseSigma;
    for (std::size_t k = 0; k < n; ++k)
        samples[k] += sigma * noise[k];
    out.trace = signal::Waveform(std::move(samples), params.adcRateHz);
    return out;
}

} // namespace quma::qsim
