#include "experiments/allxy.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace quma::experiments {

const std::array<AllxyPair, 21> &
allxyPairs()
{
    // Paper Figure 9 labels: upper case = pi rotation, lower case =
    // pi/2 rotation; first letter is the first gate.
    static const std::array<AllxyPair, 21> pairs = {{
        {"II", "I", "I", 0.0},
        {"XX", "X180", "X180", 0.0},
        {"YY", "Y180", "Y180", 0.0},
        {"XY", "X180", "Y180", 0.0},
        {"YX", "Y180", "X180", 0.0},
        {"xI", "X90", "I", 0.5},
        {"yI", "Y90", "I", 0.5},
        {"xy", "X90", "Y90", 0.5},
        {"yx", "Y90", "X90", 0.5},
        {"xY", "X90", "Y180", 0.5},
        {"yX", "Y90", "X180", 0.5},
        {"Xy", "X180", "Y90", 0.5},
        {"Yx", "Y180", "X90", 0.5},
        {"xX", "X90", "X180", 0.5},
        {"Xx", "X180", "X90", 0.5},
        {"yY", "Y90", "Y180", 0.5},
        {"Yy", "Y180", "Y90", 0.5},
        {"XI", "X180", "I", 1.0},
        {"YI", "Y180", "I", 1.0},
        {"xx", "X90", "X90", 1.0},
        {"yy", "Y90", "Y90", 1.0},
    }};
    return pairs;
}

std::vector<double>
idealAllxySignature()
{
    std::vector<double> out;
    out.reserve(42);
    for (const auto &p : allxyPairs()) {
        out.push_back(p.ideal);
        out.push_back(p.ideal);
    }
    return out;
}

compiler::QuantumProgram
buildAllxyProgram(std::size_t rounds, unsigned qubit)
{
    compiler::QuantumProgram prog("allxy", qubit + 1, rounds);
    compiler::Kernel &k = prog.newKernel("allxy_round");
    for (const auto &pair : allxyPairs()) {
        // Each combination is measured twice (paper §8) to separate
        // systematic errors from low signal-to-noise by eye.
        for (int rep = 0; rep < 2; ++rep) {
            k.init();
            k.gate(pair.first, qubit);
            k.gate(pair.second, qubit);
            k.measure(qubit, 7);
        }
    }
    return prog;
}

core::MachineConfig
allxyMachineConfig(const AllxyConfig &config)
{
    core::MachineConfig mc;
    mc.qubits.assign(config.qubit + 1, config.qubitParams);
    mc.amplitudeError = config.amplitudeError;
    mc.carrierDetuningHz = config.detuningHz;
    if (config.interPulseSkewCycles > 0)
        mc.gateWaitCycles = 4 + config.interPulseSkewCycles;
    mc.exec.stallInjection = config.stallInjection;
    mc.exec.seed = config.seed;
    mc.chipSeed = config.seed ^ 0x517e;
    return mc;
}

std::vector<double>
rescaleAllxy(const std::vector<double> &raw)
{
    quma_assert(raw.size() == 42, "AllXY expects 42 points");
    double s0 = (raw[0] + raw[1]) / 2.0;
    double s1 = (raw[34] + raw[35] + raw[36] + raw[37]) / 4.0;
    if (std::abs(s1 - s0) < 1e-12)
        fatal("AllXY calibration points coincide; readout is broken");
    std::vector<double> out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        out[i] = (raw[i] - s0) / (s1 - s0);
    return out;
}

namespace {

AllxyResult
finishAllxy(std::vector<double> raw, core::RunResult run)
{
    AllxyResult result;
    result.run = run;
    result.rawS = std::move(raw);
    result.fidelity = rescaleAllxy(result.rawS);
    result.ideal = idealAllxySignature();
    result.deviation = meanAbsDeviation(result.fidelity, result.ideal);
    for (const auto &p : allxyPairs()) {
        result.labels.push_back(p.label);
        result.labels.push_back(p.label);
    }
    return result;
}

/** Run budget for `rounds` averaging rounds (1 = one-round body). */
Cycle
allxyBudget(std::size_t rounds)
{
    return static_cast<Cycle>(rounds) * 42 * 45000 + 1'000'000;
}

} // namespace

AllxyResult
runAllxy(const AllxyConfig &config)
{
    core::QumaMachine machine(allxyMachineConfig(config));
    machine.uploadStandardCalibration();
    machine.configureDataCollection(42);

    compiler::CompilerOptions opts;
    opts.useQisGates = config.useQisGates;
    machine.loadProgram(
        buildAllxyProgram(config.rounds, config.qubit).compile(opts));

    core::RunResult run = machine.run(allxyBudget(config.rounds));
    return finishAllxy(machine.dataCollector().averages(), run);
}

runtime::JobSpec
allxyJob(const AllxyConfig &config)
{
    compiler::CompilerOptions opts;
    opts.useQisGates = config.useQisGates;
    runtime::JobSpec job;
    job.name = "allxy";
    job.machine = allxyMachineConfig(config);
    job.bins = 42;
    job.seed = config.seed;
    // An explicit shard request (>= 2) or a large auto sweep ships
    // the ONE-round body and lets the runtime drive (and shard) the
    // averaging loop; small auto sweeps keep the loop in the
    // program, where the per-round reset overhead of the
    // round-structured path is not worth paying.
    if (runtime::wantsRoundStructured(config.shards, config.rounds)) {
        job.assembly =
            buildAllxyProgram(1, config.qubit).compileToAssembly(opts);
        job.rounds = config.rounds;
        job.shards = config.shards;
        job.maxCycles = allxyBudget(1); // per round
    } else {
        job.assembly = buildAllxyProgram(config.rounds, config.qubit)
                           .compileToAssembly(opts);
        job.maxCycles = allxyBudget(config.rounds);
    }
    return job;
}

AllxyResult
runAllxy(const AllxyConfig &config,
         runtime::IExperimentBackend &backend)
{
    runtime::JobResult r = backend.runSync(allxyJob(config));
    if (r.failed())
        fatal("AllXY job failed: ", r.error);
    return finishAllxy(std::move(r.averages), r.run);
}

} // namespace quma::experiments
