#include "experiments/coherence.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace quma::experiments {

CoherenceConfig
CoherenceConfig::withLinearSweep(TimeNs max_ns, unsigned points)
{
    if (points < 3)
        fatal("sweep needs at least three points");
    CoherenceConfig cfg;
    for (unsigned i = 0; i < points; ++i) {
        TimeNs t = max_ns * (i + 1) / points;
        // Snap to 8 cycles (two SSB periods at -50 MHz) so every
        // pulse stays on the 20 ns carrier-phase grid, including the
        // echo's half-delays. Off-grid delays would rotate the later
        // pulses' axes by the SSB phase -- real physics, but not
        // what a coherence sweep wants.
        Cycle c = nsToCycles(t);
        c = ((c + 7) / 8) * 8;
        cfg.delaysCycles.push_back(c);
    }
    return cfg;
}

namespace {

enum class Sequence { T1, Ramsey, Echo, Cpmg };

struct SweepOutput
{
    std::vector<double> delaysNs;
    std::vector<double> population;
    core::RunResult run;
};

/** Emit one sweep point's gate sequence (measure excluded). */
void
emitSequence(compiler::Kernel &k, const CoherenceConfig &config,
             Sequence seq, unsigned n_pi, Cycle delay)
{
    switch (seq) {
      case Sequence::T1:
        k.gate("X180", config.qubit);
        k.wait(delay);
        break;
      case Sequence::Ramsey:
        k.gate("X90", config.qubit);
        k.wait(delay);
        k.gate("X90", config.qubit);
        break;
      case Sequence::Echo: {
        // X90 - tau/2 - X180 - tau/2 - Xm90: the net rotation is
        // Rx(pi), so a perfectly refocused qubit ends in |1>.
        Cycle half = std::max<Cycle>(1, delay / 2);
        k.gate("X90", config.qubit);
        k.wait(half);
        k.gate("X180", config.qubit);
        k.wait(half);
        k.gate("Xm90", config.qubit);
        break;
      }
      case Sequence::Cpmg: {
        // n_pi refocusing pulses at tau/(2n), 3*tau/(2n), ...;
        // gaps snapped to the 20 ns SSB grid.
        Cycle gap = std::max<Cycle>(4, delay / n_pi);
        gap = (gap / 4) * 4;
        Cycle half = std::max<Cycle>(4, gap / 2);
        half = ((half + 3) / 4) * 4;
        k.gate("X90", config.qubit);
        for (unsigned p = 0; p < n_pi; ++p) {
            k.wait(p == 0 ? half : gap);
            k.gate("X180", config.qubit);
        }
        k.wait(half);
        // Close so the error-free net rotation is Rx(pi).
        k.gate(n_pi % 2 == 0 ? "X90" : "Xm90", config.qubit);
        break;
      }
    }
}

/** Append the |0> / fresh |1> calibration points. */
void
emitCalibrationPoints(compiler::Kernel &k, unsigned qubit)
{
    k.init();
    k.measure(qubit, 7);
    k.init();
    k.gate("X180", qubit);
    k.measure(qubit, 7);
}

core::MachineConfig
sweepMachineConfig(const CoherenceConfig &config)
{
    core::MachineConfig mc;
    mc.qubits.assign(config.qubit + 1, config.qubitParams);
    mc.carrierDetuningHz = config.artificialDetuningHz;
    mc.exec.seed = config.seed;
    mc.chipSeed = config.seed ^ 0x7a3;
    return mc;
}

double
rescalePoint(double raw, double s0, double s1)
{
    if (std::abs(s1 - s0) < 1e-12)
        fatal("coherence calibration points coincide");
    return (raw - s0) / (s1 - s0);
}

SweepOutput
runSweep(const CoherenceConfig &config, Sequence seq,
         unsigned n_pi = 1)
{
    if (config.delaysCycles.empty())
        fatal("coherence sweep needs at least one delay");

    compiler::QuantumProgram prog("coherence", config.qubit + 1,
                                  config.rounds);
    compiler::Kernel &k = prog.newKernel("sweep");
    for (Cycle delay : config.delaysCycles) {
        k.init();
        emitSequence(k, config, seq, n_pi, delay);
        k.measure(config.qubit, 7);
    }
    // Calibration points: |0> reference and freshly-prepared |1>.
    emitCalibrationPoints(k, config.qubit);

    core::QumaMachine machine(sweepMachineConfig(config));
    machine.uploadStandardCalibration();
    std::size_t bins = config.delaysCycles.size() + 2;
    machine.configureDataCollection(bins);
    machine.loadProgram(prog.compile());

    SweepOutput out;
    // Budget: rounds * (points * (init + delay) + slack).
    Cycle maxDelay = 0;
    for (Cycle d : config.delaysCycles)
        maxDelay = std::max(maxDelay, d);
    Cycle budget = static_cast<Cycle>(config.rounds) * bins *
                       (41000 + maxDelay) +
                   1'000'000;
    out.run = machine.run(budget);

    auto raw = machine.dataCollector().averages();
    double s0 = raw[bins - 2];
    double s1 = raw[bins - 1];
    for (std::size_t i = 0; i < config.delaysCycles.size(); ++i) {
        out.delaysNs.push_back(
            static_cast<double>(cyclesToNs(config.delaysCycles[i])));
        out.population.push_back(rescalePoint(raw[i], s0, s1));
    }
    return out;
}

/**
 * Service-routed sweep: one job per delay point, each a three-bin
 * program (the point plus both calibration points), submitted as one
 * batch -- a remote backend pipelines the burst over its single
 * connection -- and awaited together.
 */
SweepOutput
runSweepJobs(const CoherenceConfig &config, Sequence seq, unsigned n_pi,
             runtime::IExperimentBackend &backend)
{
    if (config.delaysCycles.empty())
        fatal("coherence sweep needs at least one delay");

    std::vector<runtime::JobSpec> specs;
    specs.reserve(config.delaysCycles.size());
    core::MachineConfig mc = sweepMachineConfig(config);
    // Explicit shard requests and large auto sweeps request
    // sharding: the point program carries only one round and the
    // runtime fans the averaging rounds out across pooled machines
    // (bit-identical to any other shard count).
    bool roundStructured =
        runtime::wantsRoundStructured(config.shards, config.rounds);
    for (std::size_t i = 0; i < config.delaysCycles.size(); ++i) {
        Cycle delay = config.delaysCycles[i];
        compiler::QuantumProgram prog(
            "coherence_pt", config.qubit + 1,
            roundStructured ? 1 : config.rounds);
        compiler::Kernel &k = prog.newKernel("point");
        k.init();
        emitSequence(k, config, seq, n_pi, delay);
        k.measure(config.qubit, 7);
        emitCalibrationPoints(k, config.qubit);

        runtime::JobSpec job;
        job.name = "coherence_pt";
        job.assembly = prog.compileToAssembly();
        job.machine = mc;
        job.bins = 3;
        job.seed = Rng::derive(config.seed, i);
        job.maxCycles =
            static_cast<Cycle>(roundStructured ? 1 : config.rounds) *
                3 * (41000 + delay) +
            1'000'000;
        if (roundStructured) {
            job.rounds = config.rounds;
            job.shards = config.shards;
        }
        specs.push_back(std::move(job));
    }
    std::vector<runtime::JobId> ids =
        backend.submitAll(std::move(specs));

    SweepOutput out;
    std::vector<runtime::JobResult> results = backend.awaitAll(ids);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const runtime::JobResult &r = results[i];
        if (r.failed())
            fatal("coherence sweep point ", i, " failed: ", r.error);
        out.delaysNs.push_back(
            static_cast<double>(cyclesToNs(config.delaysCycles[i])));
        out.population.push_back(
            rescalePoint(r.averages[0], r.averages[1], r.averages[2]));
        // Aggregate the per-point runs into one sweep-level summary.
        out.run.accumulate(r.run, i == 0);
    }
    return out;
}

} // namespace

DecayResult
runT1(const CoherenceConfig &config)
{
    SweepOutput s = runSweep(config, Sequence::T1);
    DecayResult r;
    r.delaysNs = std::move(s.delaysNs);
    r.population = std::move(s.population);
    r.run = s.run;
    r.fit = expDecayFit(r.delaysNs, r.population);
    return r;
}

RamseyResult
runRamsey(const CoherenceConfig &config)
{
    if (config.artificialDetuningHz <= 0)
        fatal("Ramsey needs a positive artificial detuning");
    SweepOutput s = runSweep(config, Sequence::Ramsey);
    RamseyResult r;
    r.delaysNs = std::move(s.delaysNs);
    r.population = std::move(s.population);
    r.run = s.run;
    // Frequencies are per-nanosecond in the fit (delays are in ns).
    r.fit = dampedCosineFit(r.delaysNs, r.population,
                            config.artificialDetuningHz * 1e-9);
    return r;
}

DecayResult
runEcho(const CoherenceConfig &config)
{
    SweepOutput s = runSweep(config, Sequence::Echo);
    DecayResult r;
    r.delaysNs = std::move(s.delaysNs);
    r.population = std::move(s.population);
    r.run = s.run;
    // The refocused state reads |1>; contrast decays toward 1/2.
    r.fit = expDecayFit(r.delaysNs, r.population);
    return r;
}

DecayResult
runCpmg(const CoherenceConfig &config, unsigned n_pi)
{
    if (n_pi == 0)
        fatal("CPMG needs at least one refocusing pulse");
    SweepOutput s = runSweep(config, Sequence::Cpmg, n_pi);
    DecayResult r;
    r.delaysNs = std::move(s.delaysNs);
    r.population = std::move(s.population);
    r.run = s.run;
    r.fit = expDecayFit(r.delaysNs, r.population);
    return r;
}

namespace {

DecayResult
decayFromSweep(SweepOutput s)
{
    DecayResult r;
    r.delaysNs = std::move(s.delaysNs);
    r.population = std::move(s.population);
    r.run = s.run;
    r.fit = expDecayFit(r.delaysNs, r.population);
    return r;
}

} // namespace

DecayResult
runT1(const CoherenceConfig &config,
      runtime::IExperimentBackend &backend)
{
    return decayFromSweep(
        runSweepJobs(config, Sequence::T1, 1, backend));
}

RamseyResult
runRamsey(const CoherenceConfig &config,
          runtime::IExperimentBackend &backend)
{
    if (config.artificialDetuningHz <= 0)
        fatal("Ramsey needs a positive artificial detuning");
    SweepOutput s = runSweepJobs(config, Sequence::Ramsey, 1, backend);
    RamseyResult r;
    r.delaysNs = std::move(s.delaysNs);
    r.population = std::move(s.population);
    r.run = s.run;
    r.fit = dampedCosineFit(r.delaysNs, r.population,
                            config.artificialDetuningHz * 1e-9);
    return r;
}

DecayResult
runEcho(const CoherenceConfig &config,
        runtime::IExperimentBackend &backend)
{
    return decayFromSweep(
        runSweepJobs(config, Sequence::Echo, 1, backend));
}

DecayResult
runCpmg(const CoherenceConfig &config, unsigned n_pi,
        runtime::IExperimentBackend &backend)
{
    if (n_pi == 0)
        fatal("CPMG needs at least one refocusing pulse");
    return decayFromSweep(
        runSweepJobs(config, Sequence::Cpmg, n_pi, backend));
}

} // namespace quma::experiments
