/**
 * @file
 * The single-qubit Clifford group, decomposed over the primitive
 * pulse set of Table 1.
 *
 * The 24 elements are generated at startup by breadth-first search
 * over products of {X180, X90, X-90, Y180, Y90, Y-90}: every element
 * is reached within three primitives (average 44/24 ~ 1.83 gates per
 * Clifford, marginally below the 1.875 of conventional fixed
 * decomposition tables because BFS decompositions are minimal). The
 * table is self-verifying: closure, inverses and the composition
 * table are computed from the matrices, not hard-coded.
 */

#ifndef QUMA_EXPERIMENTS_CLIFFORD_HH
#define QUMA_EXPERIMENTS_CLIFFORD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "qsim/gates.hh"

namespace quma::experiments {

/** One Clifford element. */
struct Clifford
{
    qsim::Mat2 matrix;
    /** Primitive micro-operation ids, in temporal order. */
    std::vector<std::uint8_t> gates;
    /** Primitive gate names, in temporal order. */
    std::vector<std::string> gateNames;
};

class CliffordGroup
{
  public:
    /** The group over the standard primitive set (built once). */
    static const CliffordGroup &instance();

    std::size_t size() const { return elements.size(); }
    const Clifford &element(std::size_t i) const;

    /** Index of the product c_a * c_b (c_b applied first). */
    std::size_t compose(std::size_t a, std::size_t b) const;

    /** Index of the inverse element. */
    std::size_t inverseOf(std::size_t i) const;

    /** Index of the identity element. */
    std::size_t identityIndex() const { return identity; }

    /** Find the element equal (up to phase) to a matrix, or npos. */
    std::size_t find(const qsim::Mat2 &u) const;

    /** Average number of primitive gates per element. */
    double averageGateCount() const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    CliffordGroup();

    std::vector<Clifford> elements;
    std::vector<std::vector<std::size_t>> composeTable;
    std::vector<std::size_t> inverseTable;
    std::size_t identity = 0;
};

} // namespace quma::experiments

#endif // QUMA_EXPERIMENTS_CLIFFORD_HH
