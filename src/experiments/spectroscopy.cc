#include "experiments/spectroscopy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "compiler/codegen.hh"

namespace quma::experiments {

SpectroscopyConfig
SpectroscopyConfig::withLinearSweep(double span_hz, unsigned points)
{
    if (points < 5)
        fatal("spectroscopy sweep needs at least five points");
    SpectroscopyConfig cfg;
    for (unsigned i = 0; i < points; ++i) {
        double f = -span_hz / 2 +
                   span_hz * static_cast<double>(i) / (points - 1);
        cfg.detuningsHz.push_back(f);
    }
    return cfg;
}

SpectroscopyResult
runSpectroscopy(const SpectroscopyConfig &config)
{
    if (config.detuningsHz.empty())
        fatal("spectroscopy needs at least one detuning");

    SpectroscopyResult result;
    result.detuningsHz = config.detuningsHz;

    for (double det : config.detuningsHz) {
        core::MachineConfig mc;
        mc.qubits.assign(config.qubit + 1, config.qubitParams);
        mc.carrierDetuningHz = det;
        mc.exec.seed = config.seed;
        mc.chipSeed = config.seed ^ static_cast<std::uint64_t>(
                                        std::llround(std::abs(det)));

        core::QumaMachine machine(mc);
        machine.uploadStandardCalibration();
        machine.configureDataCollection(1);

        compiler::QuantumProgram prog("spectroscopy",
                                      config.qubit + 1,
                                      config.rounds);
        compiler::Kernel &k = prog.newKernel("probe");
        k.init();
        // A comb of pi pulses: on resonance the odd count leaves the
        // qubit excited; off resonance each pulse under-rotates and
        // the axes decohere across the comb, washing the signal out.
        for (unsigned p = 0; p < config.combPulses; ++p)
            k.gate("X180", config.qubit);
        k.measure(config.qubit, 7);
        machine.loadProgram(prog.compile());
        machine.run(static_cast<Cycle>(config.rounds) * 50000 +
                    1'000'000);

        const auto &cal = machine.mdu(config.qubit).calibration();
        double raw = machine.dataCollector().averages()[0];
        result.population.push_back((raw - cal.s0) /
                                    (cal.s1 - cal.s0));
    }

    // Peak and width from the sampled response.
    std::size_t best = 0;
    for (std::size_t i = 1; i < result.population.size(); ++i)
        if (result.population[i] > result.population[best])
            best = i;
    result.peakHz = result.detuningsHz[best];

    double half = result.population[best] / 2.0;
    double lo = result.detuningsHz.front();
    double hi = result.detuningsHz.back();
    for (std::size_t i = best; i-- > 0;) {
        if (result.population[i] < half) {
            lo = result.detuningsHz[i];
            break;
        }
    }
    for (std::size_t i = best + 1; i < result.population.size(); ++i) {
        if (result.population[i] < half) {
            hi = result.detuningsHz[i];
            break;
        }
    }
    result.fwhmHz = hi - lo;
    return result;
}

} // namespace quma::experiments
