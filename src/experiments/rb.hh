/**
 * @file
 * Single-qubit randomized benchmarking (paper §8, reference [60]).
 *
 * For each sequence length m, k random Clifford sequences are drawn;
 * each is followed by the recovery Clifford that inverts the net
 * operation, so an error-free run returns the qubit to |0>. The
 * survival probability decays as A * p^m + B; the average error per
 * Clifford is r = (1 - p) / 2 and the error per primitive gate is
 * r / 1.875 (average primitives per Clifford).
 */

#ifndef QUMA_EXPERIMENTS_RB_HH
#define QUMA_EXPERIMENTS_RB_HH

#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "experiments/clifford.hh"
#include "compiler/codegen.hh"
#include "quma/machine.hh"
#include "runtime/backend.hh"

namespace quma::experiments {

struct RbConfig
{
    /** Sequence lengths (number of random Cliffords before recovery). */
    std::vector<unsigned> lengths{2, 4, 8, 16, 32, 64};
    /** Random sequences per length. */
    unsigned seedsPerLength = 4;
    /** Averaging rounds per sequence. */
    std::size_t rounds = 128;
    unsigned qubit = 0;
    std::uint64_t seed = 0x4b;
    qsim::TransmonParams qubitParams = qsim::paperQubitParams();
    /**
     * Shard request for the service-routed variant: 0 = auto (each
     * length job of a large run becomes round-structured and splits
     * one shard per worker), 1 = whole-program length jobs, k >= 2 =
     * k shards per length. See runtime::JobSpec::shards.
     */
    std::size_t shards = 0;
};

struct RbResult
{
    std::vector<unsigned> lengths;
    /** Mean survival probability (rescaled) per length. */
    std::vector<double> survival;
    ExpFit fit;
    /** Depolarising parameter p per Clifford. */
    double p = 0.0;
    /** Average error per Clifford r = (1 - p) / 2. */
    double errorPerClifford = 0.0;
    /** Average error per primitive gate. */
    double errorPerGate = 0.0;
    core::RunResult run;
};

/** Run randomized benchmarking through the full microarchitecture. */
RbResult runRb(const RbConfig &config);

/**
 * Service-routed RB: every sequence length becomes its own runtime
 * job (its random sequences plus calibration points), so the lengths
 * run in parallel across the machine pool. Length index i draws its
 * sequences from Rng::derive(config.seed, i) and its job (noise) seed
 * from Rng::derive(config.seed, 0x1000 + i), making the result
 * deterministic in config.seed and the worker count irrelevant --
 * though the drawn sequences differ from the sequential variant,
 * which consumes one RNG across all lengths.
 */
RbResult runRb(const RbConfig &config,
               runtime::IExperimentBackend &backend);

/**
 * Draw one random sequence of `length` Cliffords plus its recovery,
 * returning primitive gate names in temporal order.
 */
std::vector<std::string> drawRbSequence(unsigned length, Rng &rng);

} // namespace quma::experiments

#endif // QUMA_EXPERIMENTS_RB_HH
