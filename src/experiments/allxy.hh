/**
 * @file
 * The AllXY gate-characterisation experiment (paper §4.1, §8,
 * Figure 9).
 *
 * 21 pairs of back-to-back single-qubit gates, each measured twice
 * (42 points) and averaged over N rounds. Ideally the first 5 pairs
 * return the qubit to |0>, the next 12 leave it on the equator
 * (fidelity 1/2) and the last 4 drive it to |1> -- the "staircase".
 * Different pulse errors (amplitude, detuning, timing) produce
 * distinct deviations from the staircase, which is why the
 * experiment validates both the pulses and the microarchitecture's
 * timing.
 */

#ifndef QUMA_EXPERIMENTS_ALLXY_HH
#define QUMA_EXPERIMENTS_ALLXY_HH

#include <array>
#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "quma/machine.hh"
#include "runtime/backend.hh"

namespace quma::experiments {

/** One AllXY gate pair with its Figure 9 label. */
struct AllxyPair
{
    std::string label;
    std::string first;
    std::string second;
    /** Ideal |1>-state fidelity after the pair. */
    double ideal;
};

/** The 21 pairs in the paper's order. */
const std::array<AllxyPair, 21> &allxyPairs();

/** The ideal 42-point staircase (each pair doubled). */
std::vector<double> idealAllxySignature();

struct AllxyConfig
{
    /** Averaging rounds N (paper: 25600). */
    std::size_t rounds = 512;
    /** Simulated qubit index to drive. */
    unsigned qubit = 0;
    /** Fractional pulse amplitude miscalibration to inject. */
    double amplitudeError = 0.0;
    /** Drive-carrier detuning from the qubit (Hz) to inject. */
    double detuningHz = 0.0;
    /**
     * Extra cycles of spacing between the two gates of each pair:
     * one cycle delays the SECOND pulse by the paper's 5 ns, which
     * under the -50 MHz SSB rotates its axis by 90 degrees relative
     * to the first (x becomes y) and visibly distorts the staircase.
     */
    Cycle interPulseSkewCycles = 0;
    /** Emit QIS-level gates (true) or raw QuMIS (false). */
    bool useQisGates = true;
    /** Enable random stall injection in the execution controller. */
    bool stallInjection = true;
    std::uint64_t seed = 0x5eed;
    qsim::TransmonParams qubitParams = qsim::paperQubitParams();
    /**
     * Shard request for the service-routed variant: 0 = auto (large
     * sweeps become round-structured jobs the runtime splits one
     * shard per worker), 1 = keep the whole averaging loop in one
     * program on one machine, k >= 2 = ask for k shards. The result
     * of a round-structured job is bit-identical for every shard and
     * worker count (see runtime/README.md).
     */
    std::size_t shards = 0;
};

struct AllxyResult
{
    /** 42 point labels (pairs doubled). */
    std::vector<std::string> labels;
    /** Averaged integration results per point (data collector). */
    std::vector<double> rawS;
    /** Readout-error-corrected fidelity per point (Figure 9). */
    std::vector<double> fidelity;
    std::vector<double> ideal;
    /** Mean absolute deviation from the ideal staircase. */
    double deviation = 0.0;
    core::RunResult run;
};

/** Build the AllXY program for the given round count. */
compiler::QuantumProgram buildAllxyProgram(std::size_t rounds,
                                           unsigned qubit);

/** Machine configuration implementing an AllxyConfig. */
core::MachineConfig allxyMachineConfig(const AllxyConfig &config);

/** Run AllXY end to end through the full microarchitecture. */
AllxyResult runAllxy(const AllxyConfig &config);

/**
 * Run AllXY as a runtime job on any experiment backend -- the local
 * ExperimentService or a remote QumaClient. Results are
 * deterministic in config.seed (the job derives its RNG streams from
 * it), independent of worker count, pool state, or which side of a
 * wire the runtime sits on.
 */
AllxyResult runAllxy(const AllxyConfig &config,
                     runtime::IExperimentBackend &backend);

/** The JobSpec runAllxy(config, backend) submits (one AllXY run). */
runtime::JobSpec allxyJob(const AllxyConfig &config);

/**
 * Rescale raw averages into fidelity using the calibration points
 * (paper §8): points 0-1 (II) give the |0> reference; points 34-37
 * (XI, YI) give the |1> reference.
 */
std::vector<double> rescaleAllxy(const std::vector<double> &raw);

} // namespace quma::experiments

#endif // QUMA_EXPERIMENTS_ALLXY_HH
