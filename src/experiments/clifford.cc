#include "experiments/clifford.hh"

#include <cmath>
#include <complex>
#include <deque>
#include <map>
#include <numbers>

#include "common/logging.hh"
#include "isa/nametable.hh"

namespace quma::experiments {

namespace {

using qsim::Mat2;

/**
 * Canonical string key of a unitary up to global phase: rotate the
 * phase so the largest-magnitude element is real positive, then
 * round entries.
 */
std::string
canonicalKey(const Mat2 &u)
{
    // Anchor the global phase on the FIRST element whose magnitude
    // is within tolerance of the maximum; a strict arg-max would
    // pick different (equivalent) anchors for matrices that differ
    // only by numerical noise.
    double best = 0;
    for (const auto &v : u)
        best = std::max(best, std::abs(v));
    std::size_t anchor = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        if (std::abs(u[i]) > best - 1e-6) {
            anchor = i;
            break;
        }
    }
    std::complex<double> phase = u[anchor] / std::abs(u[anchor]);
    char buf[128];
    std::string key;
    for (std::size_t i = 0; i < 4; ++i) {
        std::complex<double> v = u[i] / phase;
        double re = v.real(), im = v.imag();
        // Flush tiny values so "-0.0000" never leaks into the key.
        if (std::abs(re) < 1e-4)
            re = 0.0;
        if (std::abs(im) < 1e-4)
            im = 0.0;
        std::snprintf(buf, sizeof(buf), "%.4f,%.4f;", re, im);
        key += buf;
    }
    return key;
}

} // namespace

CliffordGroup::CliffordGroup()
{
    namespace u = isa::uops;
    const double pi = std::numbers::pi;
    struct Primitive
    {
        std::uint8_t id;
        std::string name;
        Mat2 m;
    };
    const std::vector<Primitive> prims = {
        {u::X180, "X180", qsim::gates::rx(pi)},
        {u::X90, "X90", qsim::gates::rx(pi / 2)},
        {u::Xm90, "Xm90", qsim::gates::rx(-pi / 2)},
        {u::Y180, "Y180", qsim::gates::ry(pi)},
        {u::Y90, "Y90", qsim::gates::ry(pi / 2)},
        {u::Ym90, "Ym90", qsim::gates::ry(-pi / 2)},
    };

    std::map<std::string, std::size_t> seen;
    std::deque<std::size_t> frontier;

    Clifford id;
    id.matrix = qsim::gates::identity();
    elements.push_back(id);
    seen[canonicalKey(id.matrix)] = 0;
    frontier.push_back(0);
    identity = 0;

    // BFS guarantees minimal decompositions (in primitive count).
    while (!frontier.empty()) {
        std::size_t cur = frontier.front();
        frontier.pop_front();
        for (const auto &p : prims) {
            // New element = p applied AFTER the current sequence.
            Mat2 m = qsim::matmul(p.m, elements[cur].matrix);
            std::string key = canonicalKey(m);
            if (seen.count(key))
                continue;
            Clifford c;
            c.matrix = m;
            c.gates = elements[cur].gates;
            c.gates.push_back(p.id);
            c.gateNames = elements[cur].gateNames;
            c.gateNames.push_back(p.name);
            seen[key] = elements.size();
            frontier.push_back(elements.size());
            elements.push_back(std::move(c));
        }
    }
    if (elements.size() != 24)
        panic("single-qubit Clifford BFS found ", elements.size(),
              " elements, expected 24");

    // Composition and inverse tables from the matrices.
    composeTable.assign(24, std::vector<std::size_t>(24, npos));
    inverseTable.assign(24, npos);
    for (std::size_t a = 0; a < 24; ++a) {
        for (std::size_t b = 0; b < 24; ++b) {
            Mat2 m = qsim::matmul(elements[a].matrix,
                                  elements[b].matrix);
            std::size_t idx = find(m);
            if (idx == npos)
                panic("Clifford group not closed under composition");
            composeTable[a][b] = idx;
            if (idx == identity && inverseTable[a] == npos)
                inverseTable[a] = b;
        }
    }
    for (std::size_t a = 0; a < 24; ++a)
        if (inverseTable[a] == npos)
            panic("Clifford element ", a, " has no inverse");
}

const CliffordGroup &
CliffordGroup::instance()
{
    static CliffordGroup group;
    return group;
}

const Clifford &
CliffordGroup::element(std::size_t i) const
{
    quma_assert(i < elements.size(), "Clifford index out of range");
    return elements[i];
}

std::size_t
CliffordGroup::compose(std::size_t a, std::size_t b) const
{
    quma_assert(a < 24 && b < 24, "Clifford index out of range");
    return composeTable[a][b];
}

std::size_t
CliffordGroup::inverseOf(std::size_t i) const
{
    quma_assert(i < 24, "Clifford index out of range");
    return inverseTable[i];
}

std::size_t
CliffordGroup::find(const qsim::Mat2 &u) const
{
    for (std::size_t i = 0; i < elements.size(); ++i)
        if (qsim::equalUpToPhase(elements[i].matrix, u, 1e-6))
            return i;
    return npos;
}

double
CliffordGroup::averageGateCount() const
{
    double total = 0;
    for (const auto &c : elements)
        total += static_cast<double>(c.gates.size());
    return total / static_cast<double>(elements.size());
}

} // namespace quma::experiments
