/**
 * @file
 * Qubit spectroscopy: sweep the drive-carrier detuning and locate
 * the qubit transition from the excitation peak. This is the first
 * step of the tune-up flow that precedes the paper's calibrated
 * experiments (find f_Q, then Rabi for amplitude, then AllXY to
 * verify).
 *
 * Each sweep point reprograms the microwave source frequency and
 * runs a saturation sequence through the full machine, so the
 * experiment also exercises reconfiguration (new machine, same LUT).
 */

#ifndef QUMA_EXPERIMENTS_SPECTROSCOPY_HH
#define QUMA_EXPERIMENTS_SPECTROSCOPY_HH

#include <vector>

#include "quma/machine.hh"

namespace quma::experiments {

struct SpectroscopyConfig
{
    /** Detunings (Hz) to probe around the calibrated carrier. */
    std::vector<double> detuningsHz;
    /** Averaging rounds per point. */
    std::size_t rounds = 128;
    /** Pulses in the saturation comb per shot. */
    unsigned combPulses = 3;
    unsigned qubit = 0;
    std::uint64_t seed = 0x57ec;
    qsim::TransmonParams qubitParams = qsim::paperQubitParams();

    static SpectroscopyConfig withLinearSweep(double span_hz,
                                              unsigned points);
};

struct SpectroscopyResult
{
    std::vector<double> detuningsHz;
    /** Excited-state population per detuning. */
    std::vector<double> population;
    /** Detuning of the response maximum (Hz). */
    double peakHz = 0.0;
    /** Full width at half maximum estimate (Hz). */
    double fwhmHz = 0.0;
};

SpectroscopyResult runSpectroscopy(const SpectroscopyConfig &config);

} // namespace quma::experiments

#endif // QUMA_EXPERIMENTS_SPECTROSCOPY_HH
