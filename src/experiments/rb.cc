#include "experiments/rb.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::experiments {

std::vector<std::string>
drawRbSequence(unsigned length, Rng &rng)
{
    const CliffordGroup &group = CliffordGroup::instance();
    std::vector<std::string> gates;
    std::size_t net = group.identityIndex();
    for (unsigned i = 0; i < length; ++i) {
        auto c = static_cast<std::size_t>(
            rng.uniformInt(0, group.size() - 1));
        // Net operation: this Clifford is applied AFTER what came
        // before.
        net = group.compose(c, net);
        for (const auto &name : group.element(c).gateNames)
            gates.push_back(name);
    }
    std::size_t recovery = group.inverseOf(net);
    for (const auto &name : group.element(recovery).gateNames)
        gates.push_back(name);
    return gates;
}

RbResult
runRb(const RbConfig &config)
{
    if (config.lengths.empty())
        fatal("RB needs at least one sequence length");

    Rng rng(config.seed);
    compiler::QuantumProgram prog("rb", config.qubit + 1,
                                  config.rounds);
    compiler::Kernel &k = prog.newKernel("rb_sequences");
    std::size_t bins = 0;
    for (unsigned m : config.lengths) {
        for (unsigned s = 0; s < config.seedsPerLength; ++s) {
            k.init();
            for (const auto &gate : drawRbSequence(m, rng))
                k.gate(gate, config.qubit);
            k.measure(config.qubit, 7);
            ++bins;
        }
    }
    // Calibration points for rescaling.
    k.init();
    k.measure(config.qubit, 7);
    k.init();
    k.gate("X180", config.qubit);
    k.measure(config.qubit, 7);
    bins += 2;

    core::MachineConfig mc;
    mc.qubits.assign(config.qubit + 1, config.qubitParams);
    mc.exec.seed = config.seed;
    mc.chipSeed = config.seed ^ 0xfeed;
    // Long gate stretches: deepen the queues so the pipeline can
    // keep ahead of dense pulse trains.
    mc.timing.pulseQueueCapacity = 256;
    mc.timing.timingQueueCapacity = 256;
    mc.qmbDepth = 64;

    core::QumaMachine machine(mc);
    machine.uploadStandardCalibration();
    machine.configureDataCollection(bins);
    machine.loadProgram(prog.compile());

    RbResult result;
    unsigned maxLen = 0;
    for (unsigned m : config.lengths)
        maxLen = std::max(maxLen, m);
    Cycle budget = static_cast<Cycle>(config.rounds) * bins *
                       (41000 + static_cast<Cycle>(maxLen) * 32) +
                   1'000'000;
    result.run = machine.run(budget);

    auto raw = machine.dataCollector().averages();
    double s0 = raw[bins - 2];
    double s1 = raw[bins - 1];
    if (std::abs(s1 - s0) < 1e-12)
        fatal("RB calibration points coincide");

    // Survival = probability of ending in |0> = 1 - rescaled signal.
    std::vector<double> x;
    std::size_t bin = 0;
    for (unsigned m : config.lengths) {
        double acc = 0;
        for (unsigned s = 0; s < config.seedsPerLength; ++s, ++bin)
            acc += 1.0 - (raw[bin] - s0) / (s1 - s0);
        result.lengths.push_back(m);
        result.survival.push_back(acc / config.seedsPerLength);
        x.push_back(static_cast<double>(m));
    }

    result.fit = expDecayFit(x, result.survival);
    result.p = std::exp(-1.0 / result.fit.tau);
    result.errorPerClifford = (1.0 - result.p) / 2.0;
    double avgGates = CliffordGroup::instance().averageGateCount();
    result.errorPerGate = result.errorPerClifford / avgGates;
    return result;
}

RbResult
runRb(const RbConfig &config, runtime::IExperimentBackend &backend)
{
    if (config.lengths.empty())
        fatal("RB needs at least one sequence length");

    core::MachineConfig mc;
    mc.qubits.assign(config.qubit + 1, config.qubitParams);
    mc.timing.pulseQueueCapacity = 256;
    mc.timing.timingQueueCapacity = 256;
    mc.qmbDepth = 64;

    // One job per sequence length: its random sequences plus the two
    // calibration points, drawn from a length-local RNG stream.
    // Explicit shard requests and large auto runs request sharding:
    // the program carries one round and the runtime fans the
    // averaging rounds out across pooled machines. The whole sweep
    // is submitted as ONE batch: a remote backend pipelines it over
    // its single connection (~1 submit round-trip instead of one per
    // length), a local service just loops.
    bool roundStructured =
        runtime::wantsRoundStructured(config.shards, config.rounds);
    std::vector<runtime::JobSpec> specs;
    specs.reserve(config.lengths.size());
    for (std::size_t li = 0; li < config.lengths.size(); ++li) {
        unsigned m = config.lengths[li];
        Rng rng(Rng::derive(config.seed, li));
        compiler::QuantumProgram prog(
            "rb_len", config.qubit + 1,
            roundStructured ? 1 : config.rounds);
        compiler::Kernel &k = prog.newKernel("rb_sequences");
        for (unsigned s = 0; s < config.seedsPerLength; ++s) {
            k.init();
            for (const auto &gate : drawRbSequence(m, rng))
                k.gate(gate, config.qubit);
            k.measure(config.qubit, 7);
        }
        k.init();
        k.measure(config.qubit, 7);
        k.init();
        k.gate("X180", config.qubit);
        k.measure(config.qubit, 7);
        std::size_t bins = config.seedsPerLength + 2;

        runtime::JobSpec job;
        job.name = "rb_len";
        job.assembly = prog.compileToAssembly();
        job.machine = mc;
        job.bins = bins;
        job.seed = Rng::derive(config.seed, 0x1000 + li);
        job.maxCycles =
            static_cast<Cycle>(roundStructured ? 1 : config.rounds) *
                bins * (41000 + static_cast<Cycle>(m) * 32) +
            1'000'000;
        if (roundStructured) {
            job.rounds = config.rounds;
            job.shards = config.shards;
        }
        specs.push_back(std::move(job));
    }
    std::vector<runtime::JobId> ids =
        backend.submitAll(std::move(specs));

    RbResult result;
    std::vector<double> x;
    std::vector<runtime::JobResult> results = backend.awaitAll(ids);
    for (std::size_t li = 0; li < results.size(); ++li) {
        const runtime::JobResult &r = results[li];
        if (r.failed())
            fatal("RB length job ", li, " failed: ", r.error);
        std::size_t bins = config.seedsPerLength + 2;
        double s0 = r.averages[bins - 2];
        double s1 = r.averages[bins - 1];
        if (std::abs(s1 - s0) < 1e-12)
            fatal("RB calibration points coincide");
        double acc = 0;
        for (unsigned s = 0; s < config.seedsPerLength; ++s)
            acc += 1.0 - (r.averages[s] - s0) / (s1 - s0);
        result.lengths.push_back(config.lengths[li]);
        result.survival.push_back(acc / config.seedsPerLength);
        x.push_back(static_cast<double>(config.lengths[li]));

        result.run.accumulate(r.run, li == 0);
    }

    result.fit = expDecayFit(x, result.survival);
    result.p = std::exp(-1.0 / result.fit.tau);
    result.errorPerClifford = (1.0 - result.p) / 2.0;
    double avgGates = CliffordGroup::instance().averageGateCount();
    result.errorPerGate = result.errorPerClifford / avgGates;
    return result;
}

} // namespace quma::experiments
