/**
 * @file
 * Rabi amplitude calibration: sweep the drive amplitude, measure the
 * excited-state population, and fit the Rabi oscillation to locate
 * the pi-pulse amplitude. Each sweep point re-uploads the lookup
 * table -- exactly the recalibration flow the codeword scheme makes
 * cheap (7 pulses) and the conventional waveform method makes
 * expensive (every waveform).
 */

#ifndef QUMA_EXPERIMENTS_RABI_HH
#define QUMA_EXPERIMENTS_RABI_HH

#include <vector>

#include "common/stats.hh"
#include "compiler/codegen.hh"
#include "quma/machine.hh"

namespace quma::experiments {

struct RabiConfig
{
    /** Amplitude scale factors relative to the calibrated pi pulse. */
    std::vector<double> amplitudeScales;
    std::size_t rounds = 256;
    unsigned qubit = 0;
    std::uint64_t seed = 0x4ab1;
    qsim::TransmonParams qubitParams = qsim::paperQubitParams();

    static RabiConfig withLinearSweep(double max_scale, unsigned points);
};

struct RabiResult
{
    std::vector<double> amplitudeScales;
    std::vector<double> population;
    /** Fitted oscillation (frequency in cycles per unit scale). */
    DampedCosineFit fit;
    /** Amplitude scale that realises a pi rotation. */
    double piAmplitude = 0.0;
};

RabiResult runRabi(const RabiConfig &config);

} // namespace quma::experiments

#endif // QUMA_EXPERIMENTS_RABI_HH
