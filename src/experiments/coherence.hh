/**
 * @file
 * Coherence-time experiments (paper §8): T1 relaxation, T2* Ramsey
 * and T2 echo, all executed through the full microarchitecture with
 * register-programmed delays (the runtime-computed timing the
 * QNopReg/Wait machinery exists for).
 */

#ifndef QUMA_EXPERIMENTS_COHERENCE_HH
#define QUMA_EXPERIMENTS_COHERENCE_HH

#include <vector>

#include "common/stats.hh"
#include "compiler/codegen.hh"
#include "quma/machine.hh"
#include "runtime/backend.hh"

namespace quma::experiments {

struct CoherenceConfig
{
    /** Delay sweep in cycles (total free-evolution time per point). */
    std::vector<Cycle> delaysCycles;
    /** Averaging rounds per sweep point. */
    std::size_t rounds = 256;
    unsigned qubit = 0;
    /**
     * Artificial detuning for Ramsey fringes (Hz). Implemented
     * physically: the drive carrier is offset, so the second pi/2
     * pulse's axis precesses at this rate relative to the qubit.
     */
    double artificialDetuningHz = 0.0;
    std::uint64_t seed = 0xc0ffee;
    qsim::TransmonParams qubitParams = qsim::paperQubitParams();
    /**
     * Shard request for the service-routed variants: 0 = auto (each
     * sweep-point job of a large sweep becomes round-structured and
     * splits one shard per worker), 1 = whole-program points, k >= 2
     * = k shards per point. See runtime::JobSpec::shards.
     */
    std::size_t shards = 0;

    /** A reasonable default sweep out to max_ns. */
    static CoherenceConfig withLinearSweep(TimeNs max_ns,
                                           unsigned points);
};

struct DecayResult
{
    std::vector<double> delaysNs;
    /** Measured |1> fidelity (readout-rescaled) per delay. */
    std::vector<double> population;
    ExpFit fit;
    core::RunResult run;
};

struct RamseyResult
{
    std::vector<double> delaysNs;
    std::vector<double> population;
    DampedCosineFit fit;
    core::RunResult run;
};

/** X180 - wait(tau) - measure: exponential T1 decay. */
DecayResult runT1(const CoherenceConfig &config);

/** X90 - wait(tau) - X90 - measure: detuned fringe with T2* decay. */
RamseyResult runRamsey(const CoherenceConfig &config);

/** X90 - tau/2 - X180 - tau/2 - Xm90: echo refocuses slow noise. */
DecayResult runEcho(const CoherenceConfig &config);

/**
 * CPMG echo train: X90, then n_pi equally spaced X180 refocusing
 * pulses across tau, then the closing pi/2 chosen so an error-free
 * run ends in |1>. n_pi = 1 reduces to the Hahn echo. Against the
 * model's quasi-static (shot-correlated) noise, any n_pi refocuses
 * fully and the decay is set by the Markovian T2 -- itself a tested
 * physics statement.
 */
DecayResult runCpmg(const CoherenceConfig &config, unsigned n_pi);

/**
 * Service-routed variants: every delay of the sweep becomes its own
 * runtime job (one single-point program plus its two calibration
 * points), so the points execute in parallel across the machine pool
 * and the per-point machines are pulled from one shard. Results are
 * deterministic in config.seed: point i derives its RNG streams from
 * Rng::derive(config.seed, i), independent of worker count. Note the
 * noise realisation therefore differs from the sequential variant
 * (one machine, one stream) while the physics and fits agree.
 */
DecayResult runT1(const CoherenceConfig &config,
                  runtime::IExperimentBackend &backend);
RamseyResult runRamsey(const CoherenceConfig &config,
                       runtime::IExperimentBackend &backend);
DecayResult runEcho(const CoherenceConfig &config,
                    runtime::IExperimentBackend &backend);
DecayResult runCpmg(const CoherenceConfig &config, unsigned n_pi,
                    runtime::IExperimentBackend &backend);

} // namespace quma::experiments

#endif // QUMA_EXPERIMENTS_COHERENCE_HH
