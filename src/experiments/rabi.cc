#include "experiments/rabi.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::experiments {

RabiConfig
RabiConfig::withLinearSweep(double max_scale, unsigned points)
{
    if (points < 4)
        fatal("Rabi sweep needs at least four points");
    RabiConfig cfg;
    for (unsigned i = 0; i < points; ++i)
        cfg.amplitudeScales.push_back(max_scale * (i + 1) / points);
    return cfg;
}

RabiResult
runRabi(const RabiConfig &config)
{
    if (config.amplitudeScales.empty())
        fatal("Rabi sweep needs at least one amplitude");

    RabiResult result;
    result.amplitudeScales = config.amplitudeScales;

    // One machine per sweep point: changing the pulse amplitude means
    // recalibrating and re-uploading the lookup table, as in the lab.
    for (double scale : config.amplitudeScales) {
        core::MachineConfig mc;
        mc.qubits.assign(config.qubit + 1, config.qubitParams);
        mc.amplitudeError = scale - 1.0;
        mc.exec.seed = config.seed;
        mc.chipSeed = config.seed ^ std::hash<double>{}(scale);

        core::QumaMachine machine(mc);
        machine.uploadStandardCalibration();
        machine.configureDataCollection(3);

        compiler::QuantumProgram prog("rabi", config.qubit + 1,
                                      config.rounds);
        compiler::Kernel &k = prog.newKernel("rabi_point");
        k.init();
        k.gate("X180", config.qubit); // scaled by amplitudeError
        k.measure(config.qubit, 7);
        // Calibration: |0> reference and an unscaled |1> is not
        // available (all pulses scale), so rescale against the
        // readout expectations instead.
        machine.loadProgram(prog.compile());
        machine.run(static_cast<Cycle>(config.rounds) * 50000 +
                    1'000'000);

        auto raw = machine.dataCollector().averages();
        const auto &cal = machine.mdu(config.qubit).calibration();
        double pop = (raw[0] - cal.s0) / (cal.s1 - cal.s0);
        result.population.push_back(pop);
    }

    // Rabi oscillation: P1(a) = (1 - cos(pi * a)) / 2, frequency
    // 0.5 per unit amplitude scale.
    result.fit = dampedCosineFit(result.amplitudeScales,
                                 result.population, 0.5);
    result.piAmplitude = 1.0 / (2.0 * result.fit.frequency);
    return result;
}

} // namespace quma::experiments
