#include "net/replay.hh"

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/server.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "runtime/service.hh"

namespace quma::net {

namespace {

/** A decoded captured frame: header + payload view. */
struct SplitFrame
{
    FrameHeader header;
    std::vector<std::uint8_t> payload;
};

std::optional<SplitFrame>
splitFrame(const std::vector<std::uint8_t> &frame)
{
    if (frame.size() < kFrameHeaderBytes)
        return std::nullopt;
    try {
        SplitFrame out;
        // Captures recorded by an older (v3) server must stay
        // replayable: accept every compatible version, exactly like
        // the live server's reader.
        checkFramePrefixCompat(frame.data());
        out.header = decodeFrameHeaderUnchecked(frame.data());
        if (frame.size() != kFrameHeaderBytes + out.header.length)
            return std::nullopt;
        out.payload.assign(frame.begin() + kFrameHeaderBytes,
                           frame.end());
        return out;
    }
    catch (const WireError &) {
        return std::nullopt;
    }
}

/** Replies routed by requestId, shared with the reader thread. */
struct ReplyRouter
{
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::uint64_t,
                       std::pair<MsgType, std::vector<std::uint8_t>>>
        replies;
    bool eof = false;

    /** Block (bounded by `deadline`) for the reply to `rid`;
     *  nullptr on timeout/EOF-without-it. The returned pointer stays
     *  valid: unordered_map references survive later inserts. */
    const std::pair<MsgType, std::vector<std::uint8_t>> *
    awaitReply(std::uint64_t rid,
               std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_until(lock, deadline, [&] {
            return replies.count(rid) > 0 || eof;
        });
        auto it = replies.find(rid);
        return it == replies.end() ? nullptr : &it->second;
    }
};

/** Patch the single-u64 payload of an id-bearing request in place. */
void
patchRequestId(std::vector<std::uint8_t> &frame, std::uint64_t id)
{
    for (std::size_t i = 0; i < 8; ++i)
        frame[kFrameHeaderBytes + i] =
            static_cast<std::uint8_t>(id >> (8 * i));
}

} // namespace

ReplayReport
replayCapture(const CaptureFile &capture, const ReplayOptions &options)
{
    if (!capture.valid)
        throw WireError("replay: not a capture file");

    ReplayReport report;
    report.corruptRecords = capture.corruptRecords;

    // Pass 1 -- index the CAPTURED replies: every reply by its
    // requestId, and the submit correlation oldId -> submit rid that
    // the id remapping pivots on.
    std::unordered_map<std::uint64_t,
                       std::pair<MsgType, std::vector<std::uint8_t>>>
        captured;
    std::unordered_map<std::uint64_t, std::uint64_t> submitRidOfOldId;
    for (const CapturedFrame &f : capture.frames) {
        if (f.inbound)
            continue;
        std::optional<SplitFrame> sf = splitFrame(f.frame);
        if (!sf)
            continue; // torn/foreign outbound record: not comparable
        const std::uint64_t rid = sf->header.requestId;
        if (sf->header.type == MsgType::SubmitReply &&
            sf->payload.size() == 8) {
            Reader r(sf->payload);
            submitRidOfOldId[r.u64()] = rid;
        } else if (sf->header.type == MsgType::TrySubmitReply &&
                   sf->payload.size() == 9) {
            Reader r(sf->payload);
            if (r.boolean())
                submitRidOfOldId[r.u64()] = rid;
        }
        captured.emplace(rid,
                         std::make_pair(sf->header.type,
                                        std::move(sf->payload)));
    }

    // Validate the inbound stream BEFORE booting anything: an
    // unusable capture throws here, where no thread needs unwinding.
    for (const CapturedFrame &f : capture.frames)
        if (f.inbound && !splitFrame(f.frame))
            throw WireError("replay: undecodable inbound frame");

    // The fresh universe the capture is re-driven against.
    runtime::ServiceConfig sc;
    sc.workers = options.workers;
    sc.queueCapacity = options.queueCapacity;
    runtime::ExperimentService service(sc);
    auto listener = std::make_unique<LoopbackListener>();
    LoopbackListener *accept_side = listener.get();
    QumaServer server(service, std::move(listener));
    std::unique_ptr<ByteStream> stream = accept_side->connect();

    ReplyRouter router;
    std::thread reader([&] {
        try {
            for (;;) {
                std::uint8_t header[kFrameHeaderBytes];
                if (!stream->recvAll(header, kFrameHeaderBytes))
                    break;
                // Replies mirror the replayed frames' version (the
                // server answers a v3 request in v3), so the reader
                // accepts every compatible version too.
                checkFramePrefixCompat(header);
                FrameHeader fh = decodeFrameHeaderUnchecked(header);
                std::vector<std::uint8_t> payload(fh.length);
                if (fh.length > 0 &&
                    !stream->recvAll(payload.data(), payload.size()))
                    break;
                {
                    std::lock_guard<std::mutex> lock(router.mu);
                    router.replies[fh.requestId] = {fh.type,
                                                    std::move(payload)};
                }
                router.cv.notify_all();
            }
        }
        catch (const std::exception &) {
            // Dead stream: fall through to the EOF signal.
        }
        {
            std::lock_guard<std::mutex> lock(router.mu);
            router.eof = true;
        }
        router.cv.notify_all();
    });

    const auto deadline =
        std::chrono::steady_clock::now() + options.timeout;

    // Resolve a captured job id to its replayed counterpart, blocking
    // until the replayed Submit/TrySubmit reply carries it (exactly
    // the data dependency the original client had).
    auto newIdOf =
        [&](std::uint64_t old_id) -> std::optional<std::uint64_t> {
        auto rit = submitRidOfOldId.find(old_id);
        if (rit == submitRidOfOldId.end())
            return std::nullopt; // id from outside this session
        const auto *reply = router.awaitReply(rit->second, deadline);
        if (!reply)
            return std::nullopt;
        try {
            Reader r(reply->second);
            if (reply->first == MsgType::SubmitReply)
                return r.u64();
            if (reply->first == MsgType::TrySubmitReply)
                return r.boolean()
                           ? std::optional<std::uint64_t>(r.u64())
                           : std::nullopt;
        }
        catch (const WireError &) {
        }
        return std::nullopt;
    };

    // Pass 2 -- re-drive the inbound stream in its wire order.
    for (const CapturedFrame &f : capture.frames) {
        if (!f.inbound)
            continue;
        std::optional<SplitFrame> sf = splitFrame(f.frame);
        if (!sf)
            continue; // unreachable: pre-validated above
        std::vector<std::uint8_t> frame = f.frame;
        switch (sf->header.type) {
        case MsgType::StatusRequest:
        case MsgType::PollRequest:
        case MsgType::AwaitRequest:
        case MsgType::CancelRequest: {
            if (sf->payload.size() != 8)
                break; // malformed in capture too: send verbatim
            Reader r(sf->payload);
            const std::uint64_t old_id = r.u64();
            std::optional<std::uint64_t> new_id = newIdOf(old_id);
            if (new_id) {
                patchRequestId(frame, *new_id);
            } else if (submitRidOfOldId.count(old_id)) {
                // The id was born in this session but the replayed
                // submit produced none: nothing meaningful to send.
                report.mismatches.push_back(
                    {sf->header.requestId,
                     "job id " + std::to_string(old_id) +
                         " did not remap (replayed submit failed)"});
                continue;
            }
            break;
        }
        default:
            break; // Submit/TrySubmit/Stats travel verbatim
        }
        try {
            stream->sendAll(frame.data(), frame.size());
            ++report.framesSent;
        }
        catch (const std::exception &ex) {
            // Replayed server tore the connection down: report (the
            // missing awaits surface as timeouts) instead of
            // unwinding past the live reader thread.
            report.mismatches.push_back(
                {sf->header.requestId,
                 std::string("send failed: ") + ex.what()});
            break;
        }
    }

    // Pass 3 -- the actual diff: every captured AwaitReply must come
    // back byte-identical. (Status/Poll/Stats replies are snapshots
    // of a race; see the header.)
    for (const auto &[rid, reply] : captured) {
        if (reply.first != MsgType::AwaitReply)
            continue;
        ++report.awaitedResults;
        const auto *replayed = router.awaitReply(rid, deadline);
        if (!replayed) {
            ++report.timedOut;
            continue;
        }
        if (replayed->first != MsgType::AwaitReply) {
            report.mismatches.push_back(
                {rid, "replayed reply type " +
                          std::to_string(static_cast<std::uint16_t>(
                              replayed->first)) +
                          " where AwaitReply was captured"});
            continue;
        }
        if (replayed->second != reply.second) {
            report.mismatches.push_back(
                {rid,
                 "AwaitReply payload differs (" +
                     std::to_string(reply.second.size()) +
                     " captured vs " +
                     std::to_string(replayed->second.size()) +
                     " replayed bytes)"});
            continue;
        }
        ++report.matchedResults;
    }

    stream->close();
    reader.join();
    server.stop();
    return report;
}

} // namespace quma::net
