/**
 * @file
 * Connection capture: a byte-exact recording of one served
 * connection's wire traffic, in the journal's record container.
 *
 * When QumaServer runs with ServerConfig::captureDir set, every
 * accepted connection gets its own capture file
 * (`conn-<N>.qcap`, N = accept sequence number) holding the
 * connection's frames as length+CRC records (the same container the
 * job journal uses -- see runtime/journal.hh): record type Inbound
 * for each fully-received request frame, Outbound for each fully-sent
 * reply frame, payload = the raw frame bytes, header included.
 *
 * ORDERING. Records of one direction appear in that direction's wire
 * order. ACROSS directions the interleaving reflects when each side's
 * thread reached the capture hook, which is racy by nature (the
 * reader and writer are separate threads) -- consumers must not read
 * cross-direction order as a protocol statement. Replay
 * (net/replay.hh) only needs per-direction order plus the requestId
 * correlation the protocol already carries.
 *
 * A `kill -9` mid-write leaves a torn final record; readCapture()
 * tolerates it exactly like journal recovery does -- the valid prefix
 * is returned and the damage counted.
 */

#ifndef QUMA_NET_CAPTURE_HH
#define QUMA_NET_CAPTURE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace quma::net {

/** Capture file magic (8 bytes; same container as the journal). */
inline constexpr std::string_view kCaptureMagic = "QUMACAP1";

/** Capture record types (u16 on disk; wire-frozen). */
enum class CaptureRecordType : std::uint16_t
{
    /** A request frame the server fully received. */
    Inbound = 1,
    /** A reply frame the server fully sent. */
    Outbound = 2,
};

/** One captured frame: direction + the raw frame bytes. */
struct CapturedFrame
{
    bool inbound = false;
    std::vector<std::uint8_t> frame;
};

/** A parsed capture file (the valid prefix of one, after damage). */
struct CaptureFile
{
    std::vector<CapturedFrame> frames;
    /** Torn/corrupt tail records dropped by the scan. */
    std::size_t corruptRecords = 0;
    /** False when the file is missing, empty or not a capture. */
    bool valid = false;

    std::size_t
    inboundCount() const
    {
        std::size_t n = 0;
        for (const CapturedFrame &f : frames)
            n += f.inbound ? 1 : 0;
        return n;
    }
};

/** Read (never throws) the capture file at `path`. */
CaptureFile readCapture(const std::string &path);

/**
 * The write side: one file, appended to by the connection's reader
 * (inbound) and writer (outbound) threads, serialized by a mutex.
 * Writes are unbuffered so a killed process loses at most the record
 * being written -- a torn tail the reader tolerates, not a silently
 * shorter session.
 */
class CaptureWriter
{
  public:
    /** Creates/truncates `path` and stamps the magic; fatal() when
     *  the path cannot be opened. */
    explicit CaptureWriter(const std::string &path);
    ~CaptureWriter();

    CaptureWriter(const CaptureWriter &) = delete;
    CaptureWriter &operator=(const CaptureWriter &) = delete;

    void record(CaptureRecordType direction,
                const std::uint8_t *frame, std::size_t size);

  private:
    std::mutex mu;
    int fd = -1;
};

} // namespace quma::net

#endif // QUMA_NET_CAPTURE_HH
