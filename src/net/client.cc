#include "net/client.hh"

#include <algorithm>
#include <cstdio>
#include <random>

#include "common/logging.hh"
#include "runtime/trace.hh"

namespace quma::net {

namespace {

/** A fresh non-zero trace id per client instance (0 = "no trace"
 *  on the wire, so it is never handed out). */
std::uint64_t
randomTraceId()
{
    std::random_device rd;
    const std::uint64_t v =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    return v ? v : 1;
}

} // namespace

QumaClient::QumaClient(std::unique_ptr<ByteStream> stream_,
                       double link_bytes_per_second)
    : stream(std::move(stream_)), meter(link_bytes_per_second),
      traceIdValue(randomTraceId())
{
    if (!stream)
        fatal("QumaClient needs a connected stream");
    reader = std::thread([this] { readerLoop(); });
}

QumaClient::QumaClient(const std::string &host, std::uint16_t port)
    : QumaClient(tcpConnect(host, port))
{
}

QumaClient::~QumaClient()
{
    disconnect();
    if (reader.joinable())
        reader.join();
}

void
QumaClient::disconnect()
{
    // Deliberately NOT under mu: close() is what unblocks the reader
    // thread's recv (which then fails every parked request), and
    // ByteStream::close is thread-safe and idempotent. The stream
    // pointer itself is never reseated after construction.
    stream->close();
}

core::LinkStats
QumaClient::linkStats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return meter.stats();
}

std::uint64_t
QumaClient::clientNowNanos() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void
QumaClient::noteSubmitSent(std::uint64_t rid, std::uint64_t span_id,
                           std::uint64_t nanos)
{
    if (!spansEnabled.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(spanMu);
    ClientSpan span;
    span.spanId = span_id;
    span.submitNanos = nanos;
    pendingSpans[rid] = span;
}

void
QumaClient::noteSubmitAcked(std::uint64_t rid, runtime::JobId id)
{
    if (!spansEnabled.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(spanMu);
    auto it = pendingSpans.find(rid);
    if (it == pendingSpans.end())
        return;
    ClientSpan span = it->second;
    pendingSpans.erase(it);
    span.job = id;
    span.ackNanos = clientNowNanos();
    ackedSpans[id] = span;
}

void
QumaClient::noteResultDecoded(runtime::JobId id)
{
    if (!spansEnabled.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(spanMu);
    auto it = ackedSpans.find(id);
    if (it != ackedSpans.end() && it->second.resultNanos == 0)
        it->second.resultNanos = clientNowNanos();
}

std::vector<QumaClient::ClientSpan>
QumaClient::spans() const
{
    std::lock_guard<std::mutex> lock(spanMu);
    std::vector<ClientSpan> out;
    out.reserve(ackedSpans.size() + pendingSpans.size());
    for (const auto &[id, span] : ackedSpans)
        out.push_back(span);
    for (const auto &[rid, span] : pendingSpans)
        out.push_back(span);
    return out;
}

void
QumaClient::failAllLocked(const std::string &why)
{
    readerDown = true;
    readerFailure = why;
    for (auto &[rid, slot] : slots) {
        if (slot.ready)
            continue; // a real reply already landed; let it be read
        slot.ready = true;
        slot.failure = why;
    }
    cvSlots.notify_all();
}

void
QumaClient::readerLoop()
{
    try {
        for (;;) {
            std::uint8_t header[kFrameHeaderBytes];
            if (!stream->recvAll(header, sizeof(header)))
                throw WireError("server hung up");
            FrameHeader fh = decodeFrameHeader(header);
            std::vector<std::uint8_t> body(fh.length);
            if (fh.length > 0 &&
                !stream->recvAll(body.data(), body.size()))
                throw WireError("connection closed mid-frame");

            if (fh.type == MsgType::ProgressFrame) {
                // Server-push progress: routed by the await's
                // requestId, BEFORE the unsolicited-reply check --
                // a ProgressFrame answers no request 1:1, so one
                // landing after its await finished (or for an
                // await without a callback) just evaporates.
                std::shared_ptr<const ProgressFn> handler;
                {
                    std::lock_guard<std::mutex> lock(mu);
                    meter.record(sizeof(header) + body.size(),
                                 false);
                    auto it = progressHandlers.find(fh.requestId);
                    if (it != progressHandlers.end())
                        handler = it->second;
                }
                if (!handler)
                    continue;
                Reader r(body);
                ProgressFrameData p = decodeProgressFrame(r);
                r.expectEnd();
                try {
                    // Outside mu: the callback may call back into
                    // this client without deadlock.
                    (*handler)(p.job, p.roundsDone, p.roundsTotal);
                } catch (const std::exception &ex) {
                    warn("progress callback threw: ", ex.what());
                }
                continue;
            }

            std::lock_guard<std::mutex> lock(mu);
            meter.record(sizeof(header) + body.size(), false);
            ms.repliesReceived.inc();
            if (fh.requestId == kConnectionRequestId) {
                // A frame answering no request is the server talking
                // about the CONNECTION (version mismatch and kin):
                // nothing on it can be trusted further.
                std::string why = "connection-level server error";
                if (fh.type == MsgType::ErrorReply) {
                    try {
                        Reader r(body);
                        ErrorFrame e = decodeErrorFrame(r);
                        why = "server: " + e.message;
                    } catch (const std::exception &) {
                    }
                }
                failAllLocked(why);
                return;
            }
            auto it = slots.find(fh.requestId);
            if (it == slots.end()) {
                // A reply nobody asked for: the demux contract is
                // broken, and with it every routing guarantee.
                failAllLocked("unsolicited reply for request id " +
                              std::to_string(fh.requestId));
                return;
            }
            if (it->second.abandoned) {
                // Its batch call unwound; the reply has no reader.
                slots.erase(it);
                continue;
            }
            it->second.ready = true;
            it->second.type = fh.type;
            it->second.payload = std::move(body);
            it->second.seq = ++arrivalSeq;
            cvSlots.notify_all();
        }
    } catch (const std::exception &ex) {
        std::lock_guard<std::mutex> lock(mu);
        failAllLocked(ex.what());
    }
}

void
QumaClient::abandonSlots(const std::uint64_t *rids,
                         std::size_t count) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < count; ++i) {
        auto it = slots.find(rids[i]);
        if (it == slots.end())
            continue;
        if (it->second.ready)
            slots.erase(it);
        else
            it->second.abandoned = true;
    }
}

std::uint64_t
QumaClient::sendRequest(MsgType type, const Writer &payload) const
{
    std::uint64_t rid;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (readerDown)
            throw WireError("connection is down: " + readerFailure);
        rid = nextRequestId++;
        slots.emplace(rid, Slot{});
    }
    std::vector<std::uint8_t> frame = sealFrame(type, rid, payload);
    try {
        // Frames from concurrent callers must not interleave; only
        // the byte write is serialized, never a round-trip.
        std::lock_guard<std::mutex> lock(sendMu);
        stream->sendAll(frame.data(), frame.size());
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        slots.erase(rid);
        throw;
    }
    std::lock_guard<std::mutex> lock(mu);
    meter.record(frame.size(), true);
    ms.requestsSent.inc();
    return rid;
}

void
QumaClient::bindMetrics(metrics::MetricsRegistry &registry)
{
    ms.requestsSent = registry.counter(
        "quma_client_requests_sent_total",
        "Request frames put on the wire by this client.");
    ms.repliesReceived = registry.counter(
        "quma_client_replies_received_total",
        "Reply frames routed by this client's reader.");
    registry.gaugeFn("quma_client_inflight_requests",
                     "Requests awaiting their reply slot.", {},
                     [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(slots.size());
                     });
    registry.counterFn("quma_client_link_bytes_total",
                       "Wire traffic of this connection.",
                       {{"direction", "up"}}, [this] {
                           std::lock_guard<std::mutex> lock(mu);
                           return static_cast<double>(
                               meter.stats().bytesUp);
                       });
    registry.counterFn("quma_client_link_bytes_total",
                       "Wire traffic of this connection.",
                       {{"direction", "down"}}, [this] {
                           std::lock_guard<std::mutex> lock(mu);
                           return static_cast<double>(
                               meter.stats().bytesDown);
                       });
}

std::vector<std::uint8_t>
QumaClient::consumeSlotLocked(std::uint64_t request_id,
                              MsgType expected_reply) const
{
    auto it = slots.find(request_id);
    quma_assert(it != slots.end() && it->second.ready,
                "consuming an unfulfilled slot");
    Slot slot = std::move(it->second);
    slots.erase(it);
    if (!slot.failure.empty())
        throw WireError(slot.failure);
    if (slot.type == MsgType::ErrorReply) {
        Reader r(slot.payload);
        ErrorFrame e = decodeErrorFrame(r);
        r.expectEnd();
        // Unknown ids mirror the local scheduler's fatal(); every
        // other server-side failure is a wire-level error.
        if (e.code == WireErrorCode::UnknownJob)
            fatal("remote: ", e.message);
        throw WireError("server error " +
                        std::to_string(
                            static_cast<std::uint16_t>(e.code)) +
                        ": " + e.message);
    }
    if (slot.type != expected_reply)
        throw WireError("unexpected reply type " +
                        std::to_string(static_cast<std::uint16_t>(
                            slot.type)));
    return std::move(slot.payload);
}

std::vector<std::uint8_t>
QumaClient::waitReply(std::uint64_t request_id,
                      MsgType expected_reply) const
{
    std::unique_lock<std::mutex> lock(mu);
    cvSlots.wait(lock, [&] {
        auto it = slots.find(request_id);
        return it != slots.end() && it->second.ready;
    });
    return consumeSlotLocked(request_id, expected_reply);
}

std::vector<std::uint8_t>
QumaClient::roundTrip(MsgType request, const Writer &payload,
                      MsgType expected_reply) const
{
    return waitReply(sendRequest(request, payload), expected_reply);
}

runtime::JobId
QumaClient::submit(runtime::JobSpec spec)
{
    Writer w;
    encodeJobSpec(w, spec);
    // v4: the trace context rides AFTER the spec, so the spec codec
    // (shared with the server's journal) stays format-stable.
    const std::uint64_t spanId = nextSpanId.fetch_add(1) + 1;
    encodeTraceContext(w, TraceContext{traceIdValue, spanId});
    const std::uint64_t t0 = clientNowNanos();
    const std::uint64_t rid =
        sendRequest(MsgType::SubmitRequest, w);
    noteSubmitSent(rid, spanId, t0);
    std::vector<std::uint8_t> body =
        waitReply(rid, MsgType::SubmitReply);
    Reader r(body);
    runtime::JobId id = r.u64();
    r.expectEnd();
    noteSubmitAcked(rid, id);
    return id;
}

std::vector<runtime::JobId>
QumaClient::submitAll(std::vector<runtime::JobSpec> specs)
{
    // Phase 1: every spec leaves on the wire, no reads in between --
    // the whole sweep is in the server's reader before the first
    // acknowledgement travels back.
    std::vector<std::uint64_t> rids;
    rids.reserve(specs.size());
    for (const runtime::JobSpec &spec : specs) {
        Writer w;
        encodeJobSpec(w, spec);
        const std::uint64_t spanId = nextSpanId.fetch_add(1) + 1;
        encodeTraceContext(w, TraceContext{traceIdValue, spanId});
        const std::uint64_t t0 = clientNowNanos();
        const std::uint64_t rid =
            sendRequest(MsgType::SubmitRequest, w);
        noteSubmitSent(rid, spanId, t0);
        rids.push_back(rid);
    }
    // Phase 2: collect the ids (replies arrive in server order,
    // routing by requestId makes the order irrelevant). If one
    // submit fails, the siblings' slots must not leak: abandon
    // whatever was not collected yet before rethrowing.
    std::vector<runtime::JobId> ids;
    ids.reserve(rids.size());
    for (std::size_t i = 0; i < rids.size(); ++i) {
        try {
            std::vector<std::uint8_t> body =
                waitReply(rids[i], MsgType::SubmitReply);
            Reader r(body);
            ids.push_back(r.u64());
            r.expectEnd();
            noteSubmitAcked(rids[i], ids.back());
        } catch (...) {
            abandonSlots(rids.data() + i + 1, rids.size() - i - 1);
            throw;
        }
    }
    return ids;
}

std::optional<runtime::JobId>
QumaClient::trySubmit(runtime::JobSpec spec)
{
    Writer w;
    encodeJobSpec(w, spec);
    const std::uint64_t spanId = nextSpanId.fetch_add(1) + 1;
    encodeTraceContext(w, TraceContext{traceIdValue, spanId});
    const std::uint64_t t0 = clientNowNanos();
    const std::uint64_t rid =
        sendRequest(MsgType::TrySubmitRequest, w);
    noteSubmitSent(rid, spanId, t0);
    std::vector<std::uint8_t> body =
        waitReply(rid, MsgType::TrySubmitReply);
    Reader r(body);
    bool accepted = r.boolean();
    runtime::JobId id = r.u64();
    r.expectEnd();
    if (!accepted) {
        // Rejected: drop the half-open span, nothing ran.
        std::lock_guard<std::mutex> lock(spanMu);
        pendingSpans.erase(rid);
        return std::nullopt;
    }
    noteSubmitAcked(rid, id);
    return id;
}

runtime::JobStatus
QumaClient::status(runtime::JobId id) const
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::StatusRequest, w, MsgType::StatusReply);
    Reader r(body);
    std::uint8_t st = r.u8();
    r.expectEnd();
    if (st > static_cast<std::uint8_t>(runtime::JobStatus::Failed))
        throw WireError("unknown job status " + std::to_string(st));
    return static_cast<runtime::JobStatus>(st);
}

std::optional<runtime::JobResult>
QumaClient::poll(runtime::JobId id) const
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::PollRequest, w, MsgType::PollReply);
    Reader r(body);
    bool has = r.boolean();
    if (!has) {
        r.expectEnd();
        return std::nullopt;
    }
    runtime::JobResult result = decodeJobResult(r);
    r.expectEnd();
    return result;
}

runtime::JobResult
QumaClient::await(runtime::JobId id)
{
    Writer w;
    w.u64(id);
    // The reply is PUSHED by the server when the job completes; this
    // call just parks on the promise slot (other callers' requests
    // keep flowing on the connection meanwhile).
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::AwaitRequest, w, MsgType::AwaitReply);
    Reader r(body);
    runtime::JobResult result = decodeJobResult(r);
    r.expectEnd();
    noteResultDecoded(id);
    return result;
}

std::vector<runtime::JobResult>
QumaClient::awaitAll(const std::vector<runtime::JobId> &ids)
{
    // All awaits go out up front; the server streams each result as
    // its job finishes, and the slots buffer whatever completes
    // before this loop reaches it. Waiting in argument order adds no
    // wall-clock: the LAST job gates the total either way.
    std::vector<std::uint64_t> rids;
    rids.reserve(ids.size());
    for (runtime::JobId id : ids) {
        Writer w;
        w.u64(id);
        rids.push_back(sendRequest(MsgType::AwaitRequest, w));
    }
    std::vector<runtime::JobResult> out;
    out.reserve(rids.size());
    for (std::size_t i = 0; i < rids.size(); ++i) {
        try {
            std::vector<std::uint8_t> body =
                waitReply(rids[i], MsgType::AwaitReply);
            Reader r(body);
            out.push_back(decodeJobResult(r));
            r.expectEnd();
            noteResultDecoded(ids[i]);
        } catch (...) {
            // One await failed (e.g. an aged-out id fataling):
            // late pushes for the rest must not leak in the slot
            // map for the client's lifetime.
            abandonSlots(rids.data() + i + 1, rids.size() - i - 1);
            throw;
        }
    }
    return out;
}

void
QumaClient::awaitStreaming(
    const std::vector<runtime::JobId> &ids,
    const std::function<void(runtime::JobId, runtime::JobResult)>
        &deliver,
    const ProgressFn &progress)
{
    if (!deliver)
        fatal("awaitStreaming needs a delivery callback");
    // One shared handler for the whole sweep; registered per await
    // requestId so the reader can route ProgressFrames to it.
    std::shared_ptr<const ProgressFn> progressShared =
        progress ? std::make_shared<const ProgressFn>(progress)
                 : nullptr;
    // Arrival watermark taken BEFORE the requests leave: any reply
    // to them bumps arrivalSeq past it. The wait predicate is then
    // O(1) -- "has anything arrived since my last scan" -- instead
    // of re-scanning every pending id on every reader wakeup (which
    // would make a large sweep O(N^2) under the demux mutex).
    std::uint64_t scannedThrough;
    {
        std::lock_guard<std::mutex> lock(mu);
        scannedThrough = arrivalSeq;
    }
    std::unordered_map<std::uint64_t, runtime::JobId> pending;
    pending.reserve(ids.size());
    for (runtime::JobId id : ids) {
        Writer w;
        w.u64(id);
        const std::uint64_t rid =
            sendRequest(MsgType::AwaitRequest, w);
        if (progressShared) {
            // Registered after the request leaves: a push racing
            // this window is dropped by the reader, which is fine
            // under the best-effort progress contract.
            std::lock_guard<std::mutex> lock(mu);
            progressHandlers.emplace(rid, progressShared);
        }
        pending.emplace(rid, id);
    }
    // On any throw below (error reply, decode failure, a throwing
    // deliver callback), the outstanding awaits must not leak.
    struct AbandonPending
    {
        const QumaClient *client;
        std::unordered_map<std::uint64_t, runtime::JobId> *pending;
        ~AbandonPending()
        {
            if (pending->empty())
                return;
            std::vector<std::uint64_t> rids;
            rids.reserve(pending->size());
            for (const auto &[rid, id] : *pending)
                rids.push_back(rid);
            {
                // Late ProgressFrames for the unwound awaits must
                // not invoke a dead callback; without a handler the
                // reader drops them silently.
                std::lock_guard<std::mutex> lock(client->mu);
                for (std::uint64_t rid : rids)
                    client->progressHandlers.erase(rid);
            }
            client->abandonSlots(rids.data(), rids.size());
        }
    } abandonGuard{this, &pending};
    while (!pending.empty()) {
        // Collect every slot the reader has fulfilled, then deliver
        // OUTSIDE the mutex (the callback may call back into this
        // client -- poll another id, read stats -- without deadlock).
        struct Arrived
        {
            std::uint64_t seq;
            runtime::JobId id;
            std::vector<std::uint8_t> body;
        };
        std::vector<Arrived> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            // readerDown covers failure fulfilment, which marks
            // slots ready without an arrival (failAllLocked).
            cvSlots.wait(lock, [&] {
                return arrivalSeq > scannedThrough || readerDown;
            });
            scannedThrough = arrivalSeq;
            for (auto it = pending.begin(); it != pending.end();) {
                auto slot = slots.find(it->first);
                if (slot == slots.end() || !slot->second.ready) {
                    ++it;
                    continue;
                }
                std::uint64_t seq = slot->second.seq;
                batch.push_back(
                    {seq, it->second,
                     consumeSlotLocked(it->first,
                                       MsgType::AwaitReply)});
                // Terminal reply consumed: any later ProgressFrame
                // under this rid is late by definition and drops.
                progressHandlers.erase(it->first);
                it = pending.erase(it);
            }
        }
        // Deliver in ARRIVAL order: the server pushes each result
        // the moment its job completes, so this is completion order.
        std::sort(batch.begin(), batch.end(),
                  [](const Arrived &a, const Arrived &b) {
                      return a.seq < b.seq;
                  });
        for (Arrived &a : batch) {
            Reader r(a.body);
            runtime::JobResult result = decodeJobResult(r);
            r.expectEnd();
            noteResultDecoded(a.id);
            deliver(a.id, std::move(result));
        }
    }
}

std::vector<std::pair<runtime::JobId, runtime::JobResult>>
QumaClient::awaitMany(const std::vector<runtime::JobId> &ids,
                      const ProgressFn &progress)
{
    std::vector<std::pair<runtime::JobId, runtime::JobResult>> out;
    out.reserve(ids.size());
    awaitStreaming(
        ids,
        [&out](runtime::JobId id, runtime::JobResult result) {
            out.emplace_back(id, std::move(result));
        },
        progress);
    return out;
}

bool
QumaClient::cancel(runtime::JobId id)
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::CancelRequest, w, MsgType::CancelReply);
    Reader r(body);
    bool ok = r.boolean();
    r.expectEnd();
    return ok;
}

StatsFrame
QumaClient::stats()
{
    Writer w;
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::StatsRequest, w, MsgType::StatsReply);
    Reader r(body);
    StatsFrame stats = decodeStatsFrame(r);
    r.expectEnd();
    return stats;
}

std::int64_t
QumaClient::clockSync()
{
    // Classic midpoint alignment: bracket one round trip with the
    // client clock and assume the server sampled halfway through.
    // The estimate's error is bounded by half the RTT asymmetry --
    // microseconds on loopback, and spans/events here are rendered
    // at microsecond granularity anyway.
    const std::uint64_t t0 = clientNowNanos();
    Writer w;
    std::vector<std::uint8_t> body = roundTrip(
        MsgType::ClockSyncRequest, w, MsgType::ClockSyncReply);
    const std::uint64_t t1 = clientNowNanos();
    Reader r(body);
    ClockSyncFrame f = decodeClockSyncFrame(r);
    r.expectEnd();
    return static_cast<std::int64_t>(f.serverNanos) -
           static_cast<std::int64_t>((t0 + t1) / 2);
}

std::string
QumaClient::mergedChromeTrace()
{
    // server_nanos ~= client_nanos + offset, so shifting server
    // events by -offset lands them on the CLIENT timebase the spans
    // below already use.
    const std::int64_t offset = clockSync();
    Writer w;
    std::vector<std::uint8_t> body = roundTrip(
        MsgType::TraceDumpRequest, w, MsgType::TraceDumpReply);
    Reader r(body);
    TraceDumpFrame dump = decodeTraceDumpFrame(r);
    r.expectEnd();

    std::unordered_map<runtime::JobId, std::uint64_t> serverIds(
        dump.traceIds.begin(), dump.traceIds.end());
    std::string out = "{\"traceEvents\":[";
    // pid 1: the server's lifecycle events, clock-shifted.
    std::string server = runtime::renderChromeEvents(
        dump.events, serverIds, -offset, 1);
    out += server;
    bool first = server.empty();
    auto emit = [&out, &first](const char *text) {
        if (!first)
            out += ',';
        first = false;
        out += text;
    };
    // pid 2: this client's spans, already on the client timebase.
    char line[320];
    for (const ClientSpan &s : spans()) {
        const std::uint64_t end =
            s.resultNanos ? s.resultNanos : s.ackNanos;
        if (end > s.submitNanos) {
            std::snprintf(
                line, sizeof line,
                "{\"name\":\"job %llu %s\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":2,"
                "\"tid\":%llu,\"args\":{\"job\":%llu,"
                "\"span\":%llu,\"traceId\":\"%016llx\"}}",
                static_cast<unsigned long long>(s.job),
                s.resultNanos ? "round trip" : "submit (pending)",
                static_cast<double>(s.submitNanos) / 1e3,
                static_cast<double>(end - s.submitNanos) / 1e3,
                static_cast<unsigned long long>(s.job),
                static_cast<unsigned long long>(s.job),
                static_cast<unsigned long long>(s.spanId),
                static_cast<unsigned long long>(traceIdValue));
            emit(line);
        }
        if (s.ackNanos > 0) {
            std::snprintf(
                line, sizeof line,
                "{\"name\":\"submit acked\",\"ph\":\"i\","
                "\"ts\":%.3f,\"pid\":2,\"tid\":%llu,\"s\":\"t\","
                "\"args\":{\"job\":%llu,\"span\":%llu,"
                "\"traceId\":\"%016llx\"}}",
                static_cast<double>(s.ackNanos) / 1e3,
                static_cast<unsigned long long>(s.job),
                static_cast<unsigned long long>(s.job),
                static_cast<unsigned long long>(s.spanId),
                static_cast<unsigned long long>(traceIdValue));
            emit(line);
        }
    }
    out += "]}";
    return out;
}

} // namespace quma::net
