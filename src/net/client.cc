#include "net/client.hh"

#include "common/logging.hh"

namespace quma::net {

QumaClient::QumaClient(std::unique_ptr<ByteStream> stream_,
                       double link_bytes_per_second)
    : stream(std::move(stream_)), meter(link_bytes_per_second)
{
    if (!stream)
        fatal("QumaClient needs a connected stream");
}

QumaClient::QumaClient(const std::string &host, std::uint16_t port)
    : QumaClient(tcpConnect(host, port))
{
}

QumaClient::~QumaClient()
{
    disconnect();
}

void
QumaClient::disconnect()
{
    // Deliberately NOT under mu: a roundTrip blocked in recv holds
    // the mutex, and this close() is exactly what unblocks it.
    // ByteStream::close is thread-safe and idempotent, and the
    // stream pointer itself is never reseated after construction.
    stream->close();
}

core::LinkStats
QumaClient::linkStats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return meter.stats();
}

std::vector<std::uint8_t>
QumaClient::roundTrip(MsgType request, const Writer &payload,
                      MsgType expected_reply) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::uint8_t> frame = sealFrame(request, payload);
    stream->sendAll(frame.data(), frame.size());
    meter.record(frame.size(), true);

    std::uint8_t header[kFrameHeaderBytes];
    if (!stream->recvAll(header, sizeof(header)))
        throw WireError("server hung up before replying");
    FrameHeader fh = decodeFrameHeader(header);
    std::vector<std::uint8_t> body(fh.length);
    if (fh.length > 0 && !stream->recvAll(body.data(), body.size()))
        throw WireError("connection closed mid-frame");
    meter.record(sizeof(header) + body.size(), false);

    if (fh.type == MsgType::ErrorReply) {
        Reader r(body);
        ErrorFrame e = decodeErrorFrame(r);
        r.expectEnd();
        // Unknown ids mirror the local scheduler's fatal(); every
        // other server-side failure is a wire-level error.
        if (e.code == WireErrorCode::UnknownJob)
            fatal("remote: ", e.message);
        throw WireError("server error " +
                        std::to_string(
                            static_cast<std::uint16_t>(e.code)) +
                        ": " + e.message);
    }
    if (fh.type != expected_reply)
        throw WireError("unexpected reply type " +
                        std::to_string(
                            static_cast<std::uint16_t>(fh.type)));
    return body;
}

runtime::JobId
QumaClient::submit(runtime::JobSpec spec)
{
    Writer w;
    encodeJobSpec(w, spec);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::SubmitRequest, w, MsgType::SubmitReply);
    Reader r(body);
    runtime::JobId id = r.u64();
    r.expectEnd();
    return id;
}

std::optional<runtime::JobId>
QumaClient::trySubmit(runtime::JobSpec spec)
{
    Writer w;
    encodeJobSpec(w, spec);
    std::vector<std::uint8_t> body = roundTrip(
        MsgType::TrySubmitRequest, w, MsgType::TrySubmitReply);
    Reader r(body);
    bool accepted = r.boolean();
    runtime::JobId id = r.u64();
    r.expectEnd();
    if (!accepted)
        return std::nullopt;
    return id;
}

runtime::JobStatus
QumaClient::status(runtime::JobId id) const
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::StatusRequest, w, MsgType::StatusReply);
    Reader r(body);
    std::uint8_t st = r.u8();
    r.expectEnd();
    if (st > static_cast<std::uint8_t>(runtime::JobStatus::Failed))
        throw WireError("unknown job status " + std::to_string(st));
    return static_cast<runtime::JobStatus>(st);
}

std::optional<runtime::JobResult>
QumaClient::poll(runtime::JobId id) const
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::PollRequest, w, MsgType::PollReply);
    Reader r(body);
    bool has = r.boolean();
    if (!has) {
        r.expectEnd();
        return std::nullopt;
    }
    runtime::JobResult result = decodeJobResult(r);
    r.expectEnd();
    return result;
}

runtime::JobResult
QumaClient::await(runtime::JobId id)
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::AwaitRequest, w, MsgType::AwaitReply);
    Reader r(body);
    runtime::JobResult result = decodeJobResult(r);
    r.expectEnd();
    return result;
}

bool
QumaClient::cancel(runtime::JobId id)
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::CancelRequest, w, MsgType::CancelReply);
    Reader r(body);
    bool ok = r.boolean();
    r.expectEnd();
    return ok;
}

StatsFrame
QumaClient::stats()
{
    Writer w;
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::StatsRequest, w, MsgType::StatsReply);
    Reader r(body);
    StatsFrame stats = decodeStatsFrame(r);
    r.expectEnd();
    return stats;
}

} // namespace quma::net
