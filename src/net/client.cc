#include "net/client.hh"

#include <algorithm>

#include "common/logging.hh"

namespace quma::net {

QumaClient::QumaClient(std::unique_ptr<ByteStream> stream_,
                       double link_bytes_per_second)
    : stream(std::move(stream_)), meter(link_bytes_per_second)
{
    if (!stream)
        fatal("QumaClient needs a connected stream");
    reader = std::thread([this] { readerLoop(); });
}

QumaClient::QumaClient(const std::string &host, std::uint16_t port)
    : QumaClient(tcpConnect(host, port))
{
}

QumaClient::~QumaClient()
{
    disconnect();
    if (reader.joinable())
        reader.join();
}

void
QumaClient::disconnect()
{
    // Deliberately NOT under mu: close() is what unblocks the reader
    // thread's recv (which then fails every parked request), and
    // ByteStream::close is thread-safe and idempotent. The stream
    // pointer itself is never reseated after construction.
    stream->close();
}

core::LinkStats
QumaClient::linkStats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return meter.stats();
}

void
QumaClient::failAllLocked(const std::string &why)
{
    readerDown = true;
    readerFailure = why;
    for (auto &[rid, slot] : slots) {
        if (slot.ready)
            continue; // a real reply already landed; let it be read
        slot.ready = true;
        slot.failure = why;
    }
    cvSlots.notify_all();
}

void
QumaClient::readerLoop()
{
    try {
        for (;;) {
            std::uint8_t header[kFrameHeaderBytes];
            if (!stream->recvAll(header, sizeof(header)))
                throw WireError("server hung up");
            FrameHeader fh = decodeFrameHeader(header);
            std::vector<std::uint8_t> body(fh.length);
            if (fh.length > 0 &&
                !stream->recvAll(body.data(), body.size()))
                throw WireError("connection closed mid-frame");

            std::lock_guard<std::mutex> lock(mu);
            meter.record(sizeof(header) + body.size(), false);
            ms.repliesReceived.inc();
            if (fh.requestId == kConnectionRequestId) {
                // A frame answering no request is the server talking
                // about the CONNECTION (version mismatch and kin):
                // nothing on it can be trusted further.
                std::string why = "connection-level server error";
                if (fh.type == MsgType::ErrorReply) {
                    try {
                        Reader r(body);
                        ErrorFrame e = decodeErrorFrame(r);
                        why = "server: " + e.message;
                    } catch (const std::exception &) {
                    }
                }
                failAllLocked(why);
                return;
            }
            auto it = slots.find(fh.requestId);
            if (it == slots.end()) {
                // A reply nobody asked for: the demux contract is
                // broken, and with it every routing guarantee.
                failAllLocked("unsolicited reply for request id " +
                              std::to_string(fh.requestId));
                return;
            }
            if (it->second.abandoned) {
                // Its batch call unwound; the reply has no reader.
                slots.erase(it);
                continue;
            }
            it->second.ready = true;
            it->second.type = fh.type;
            it->second.payload = std::move(body);
            it->second.seq = ++arrivalSeq;
            cvSlots.notify_all();
        }
    } catch (const std::exception &ex) {
        std::lock_guard<std::mutex> lock(mu);
        failAllLocked(ex.what());
    }
}

void
QumaClient::abandonSlots(const std::uint64_t *rids,
                         std::size_t count) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < count; ++i) {
        auto it = slots.find(rids[i]);
        if (it == slots.end())
            continue;
        if (it->second.ready)
            slots.erase(it);
        else
            it->second.abandoned = true;
    }
}

std::uint64_t
QumaClient::sendRequest(MsgType type, const Writer &payload) const
{
    std::uint64_t rid;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (readerDown)
            throw WireError("connection is down: " + readerFailure);
        rid = nextRequestId++;
        slots.emplace(rid, Slot{});
    }
    std::vector<std::uint8_t> frame = sealFrame(type, rid, payload);
    try {
        // Frames from concurrent callers must not interleave; only
        // the byte write is serialized, never a round-trip.
        std::lock_guard<std::mutex> lock(sendMu);
        stream->sendAll(frame.data(), frame.size());
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        slots.erase(rid);
        throw;
    }
    std::lock_guard<std::mutex> lock(mu);
    meter.record(frame.size(), true);
    ms.requestsSent.inc();
    return rid;
}

void
QumaClient::bindMetrics(metrics::MetricsRegistry &registry)
{
    ms.requestsSent = registry.counter(
        "quma_client_requests_sent_total",
        "Request frames put on the wire by this client.");
    ms.repliesReceived = registry.counter(
        "quma_client_replies_received_total",
        "Reply frames routed by this client's reader.");
    registry.gaugeFn("quma_client_inflight_requests",
                     "Requests awaiting their reply slot.", {},
                     [this] {
                         std::lock_guard<std::mutex> lock(mu);
                         return static_cast<double>(slots.size());
                     });
    registry.counterFn("quma_client_link_bytes_total",
                       "Wire traffic of this connection.",
                       {{"direction", "up"}}, [this] {
                           std::lock_guard<std::mutex> lock(mu);
                           return static_cast<double>(
                               meter.stats().bytesUp);
                       });
    registry.counterFn("quma_client_link_bytes_total",
                       "Wire traffic of this connection.",
                       {{"direction", "down"}}, [this] {
                           std::lock_guard<std::mutex> lock(mu);
                           return static_cast<double>(
                               meter.stats().bytesDown);
                       });
}

std::vector<std::uint8_t>
QumaClient::consumeSlotLocked(std::uint64_t request_id,
                              MsgType expected_reply) const
{
    auto it = slots.find(request_id);
    quma_assert(it != slots.end() && it->second.ready,
                "consuming an unfulfilled slot");
    Slot slot = std::move(it->second);
    slots.erase(it);
    if (!slot.failure.empty())
        throw WireError(slot.failure);
    if (slot.type == MsgType::ErrorReply) {
        Reader r(slot.payload);
        ErrorFrame e = decodeErrorFrame(r);
        r.expectEnd();
        // Unknown ids mirror the local scheduler's fatal(); every
        // other server-side failure is a wire-level error.
        if (e.code == WireErrorCode::UnknownJob)
            fatal("remote: ", e.message);
        throw WireError("server error " +
                        std::to_string(
                            static_cast<std::uint16_t>(e.code)) +
                        ": " + e.message);
    }
    if (slot.type != expected_reply)
        throw WireError("unexpected reply type " +
                        std::to_string(static_cast<std::uint16_t>(
                            slot.type)));
    return std::move(slot.payload);
}

std::vector<std::uint8_t>
QumaClient::waitReply(std::uint64_t request_id,
                      MsgType expected_reply) const
{
    std::unique_lock<std::mutex> lock(mu);
    cvSlots.wait(lock, [&] {
        auto it = slots.find(request_id);
        return it != slots.end() && it->second.ready;
    });
    return consumeSlotLocked(request_id, expected_reply);
}

std::vector<std::uint8_t>
QumaClient::roundTrip(MsgType request, const Writer &payload,
                      MsgType expected_reply) const
{
    return waitReply(sendRequest(request, payload), expected_reply);
}

runtime::JobId
QumaClient::submit(runtime::JobSpec spec)
{
    Writer w;
    encodeJobSpec(w, spec);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::SubmitRequest, w, MsgType::SubmitReply);
    Reader r(body);
    runtime::JobId id = r.u64();
    r.expectEnd();
    return id;
}

std::vector<runtime::JobId>
QumaClient::submitAll(std::vector<runtime::JobSpec> specs)
{
    // Phase 1: every spec leaves on the wire, no reads in between --
    // the whole sweep is in the server's reader before the first
    // acknowledgement travels back.
    std::vector<std::uint64_t> rids;
    rids.reserve(specs.size());
    for (const runtime::JobSpec &spec : specs) {
        Writer w;
        encodeJobSpec(w, spec);
        rids.push_back(sendRequest(MsgType::SubmitRequest, w));
    }
    // Phase 2: collect the ids (replies arrive in server order,
    // routing by requestId makes the order irrelevant). If one
    // submit fails, the siblings' slots must not leak: abandon
    // whatever was not collected yet before rethrowing.
    std::vector<runtime::JobId> ids;
    ids.reserve(rids.size());
    for (std::size_t i = 0; i < rids.size(); ++i) {
        try {
            std::vector<std::uint8_t> body =
                waitReply(rids[i], MsgType::SubmitReply);
            Reader r(body);
            ids.push_back(r.u64());
            r.expectEnd();
        } catch (...) {
            abandonSlots(rids.data() + i + 1, rids.size() - i - 1);
            throw;
        }
    }
    return ids;
}

std::optional<runtime::JobId>
QumaClient::trySubmit(runtime::JobSpec spec)
{
    Writer w;
    encodeJobSpec(w, spec);
    std::vector<std::uint8_t> body = roundTrip(
        MsgType::TrySubmitRequest, w, MsgType::TrySubmitReply);
    Reader r(body);
    bool accepted = r.boolean();
    runtime::JobId id = r.u64();
    r.expectEnd();
    if (!accepted)
        return std::nullopt;
    return id;
}

runtime::JobStatus
QumaClient::status(runtime::JobId id) const
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::StatusRequest, w, MsgType::StatusReply);
    Reader r(body);
    std::uint8_t st = r.u8();
    r.expectEnd();
    if (st > static_cast<std::uint8_t>(runtime::JobStatus::Failed))
        throw WireError("unknown job status " + std::to_string(st));
    return static_cast<runtime::JobStatus>(st);
}

std::optional<runtime::JobResult>
QumaClient::poll(runtime::JobId id) const
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::PollRequest, w, MsgType::PollReply);
    Reader r(body);
    bool has = r.boolean();
    if (!has) {
        r.expectEnd();
        return std::nullopt;
    }
    runtime::JobResult result = decodeJobResult(r);
    r.expectEnd();
    return result;
}

runtime::JobResult
QumaClient::await(runtime::JobId id)
{
    Writer w;
    w.u64(id);
    // The reply is PUSHED by the server when the job completes; this
    // call just parks on the promise slot (other callers' requests
    // keep flowing on the connection meanwhile).
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::AwaitRequest, w, MsgType::AwaitReply);
    Reader r(body);
    runtime::JobResult result = decodeJobResult(r);
    r.expectEnd();
    return result;
}

std::vector<runtime::JobResult>
QumaClient::awaitAll(const std::vector<runtime::JobId> &ids)
{
    // All awaits go out up front; the server streams each result as
    // its job finishes, and the slots buffer whatever completes
    // before this loop reaches it. Waiting in argument order adds no
    // wall-clock: the LAST job gates the total either way.
    std::vector<std::uint64_t> rids;
    rids.reserve(ids.size());
    for (runtime::JobId id : ids) {
        Writer w;
        w.u64(id);
        rids.push_back(sendRequest(MsgType::AwaitRequest, w));
    }
    std::vector<runtime::JobResult> out;
    out.reserve(rids.size());
    for (std::size_t i = 0; i < rids.size(); ++i) {
        try {
            std::vector<std::uint8_t> body =
                waitReply(rids[i], MsgType::AwaitReply);
            Reader r(body);
            out.push_back(decodeJobResult(r));
            r.expectEnd();
        } catch (...) {
            // One await failed (e.g. an aged-out id fataling):
            // late pushes for the rest must not leak in the slot
            // map for the client's lifetime.
            abandonSlots(rids.data() + i + 1, rids.size() - i - 1);
            throw;
        }
    }
    return out;
}

void
QumaClient::awaitStreaming(
    const std::vector<runtime::JobId> &ids,
    const std::function<void(runtime::JobId, runtime::JobResult)>
        &deliver)
{
    if (!deliver)
        fatal("awaitStreaming needs a delivery callback");
    // Arrival watermark taken BEFORE the requests leave: any reply
    // to them bumps arrivalSeq past it. The wait predicate is then
    // O(1) -- "has anything arrived since my last scan" -- instead
    // of re-scanning every pending id on every reader wakeup (which
    // would make a large sweep O(N^2) under the demux mutex).
    std::uint64_t scannedThrough;
    {
        std::lock_guard<std::mutex> lock(mu);
        scannedThrough = arrivalSeq;
    }
    std::unordered_map<std::uint64_t, runtime::JobId> pending;
    pending.reserve(ids.size());
    for (runtime::JobId id : ids) {
        Writer w;
        w.u64(id);
        pending.emplace(sendRequest(MsgType::AwaitRequest, w), id);
    }
    // On any throw below (error reply, decode failure, a throwing
    // deliver callback), the outstanding awaits must not leak.
    struct AbandonPending
    {
        const QumaClient *client;
        std::unordered_map<std::uint64_t, runtime::JobId> *pending;
        ~AbandonPending()
        {
            if (pending->empty())
                return;
            std::vector<std::uint64_t> rids;
            rids.reserve(pending->size());
            for (const auto &[rid, id] : *pending)
                rids.push_back(rid);
            client->abandonSlots(rids.data(), rids.size());
        }
    } abandonGuard{this, &pending};
    while (!pending.empty()) {
        // Collect every slot the reader has fulfilled, then deliver
        // OUTSIDE the mutex (the callback may call back into this
        // client -- poll another id, read stats -- without deadlock).
        struct Arrived
        {
            std::uint64_t seq;
            runtime::JobId id;
            std::vector<std::uint8_t> body;
        };
        std::vector<Arrived> batch;
        {
            std::unique_lock<std::mutex> lock(mu);
            // readerDown covers failure fulfilment, which marks
            // slots ready without an arrival (failAllLocked).
            cvSlots.wait(lock, [&] {
                return arrivalSeq > scannedThrough || readerDown;
            });
            scannedThrough = arrivalSeq;
            for (auto it = pending.begin(); it != pending.end();) {
                auto slot = slots.find(it->first);
                if (slot == slots.end() || !slot->second.ready) {
                    ++it;
                    continue;
                }
                std::uint64_t seq = slot->second.seq;
                batch.push_back(
                    {seq, it->second,
                     consumeSlotLocked(it->first,
                                       MsgType::AwaitReply)});
                it = pending.erase(it);
            }
        }
        // Deliver in ARRIVAL order: the server pushes each result
        // the moment its job completes, so this is completion order.
        std::sort(batch.begin(), batch.end(),
                  [](const Arrived &a, const Arrived &b) {
                      return a.seq < b.seq;
                  });
        for (Arrived &a : batch) {
            Reader r(a.body);
            runtime::JobResult result = decodeJobResult(r);
            r.expectEnd();
            deliver(a.id, std::move(result));
        }
    }
}

std::vector<std::pair<runtime::JobId, runtime::JobResult>>
QumaClient::awaitMany(const std::vector<runtime::JobId> &ids)
{
    std::vector<std::pair<runtime::JobId, runtime::JobResult>> out;
    out.reserve(ids.size());
    awaitStreaming(ids,
                   [&out](runtime::JobId id,
                          runtime::JobResult result) {
                       out.emplace_back(id, std::move(result));
                   });
    return out;
}

bool
QumaClient::cancel(runtime::JobId id)
{
    Writer w;
    w.u64(id);
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::CancelRequest, w, MsgType::CancelReply);
    Reader r(body);
    bool ok = r.boolean();
    r.expectEnd();
    return ok;
}

StatsFrame
QumaClient::stats()
{
    Writer w;
    std::vector<std::uint8_t> body =
        roundTrip(MsgType::StatsRequest, w, MsgType::StatsReply);
    Reader r(body);
    StatsFrame stats = decodeStatsFrame(r);
    r.expectEnd();
    return stats;
}

} // namespace quma::net
