#include "net/server.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>

#include "common/logging.hh"

namespace quma::net {

namespace {

/**
 * Thrown when a liveness probe finds the client gone mid-request.
 * Deliberately NOT a std::exception: it must fly through the
 * per-request error-reply catches straight to the connection's
 * disconnect handling (there is nobody left to send a reply to).
 */
struct ConnectionLost
{
};

} // namespace

// --- Outbox -----------------------------------------------------------------

bool
QumaServer::Outbox::push(OutFrame entry)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (closed)
            return false;
        if (frames.size() >= limit) {
            // Slow-consumer overflow: the peer requests but never
            // reads. Close (dropping the backlog) -- the writer's
            // pop sees it and tears the stream down, which wakes
            // the reader into the disconnect handling.
            closed = true;
            frames.clear();
            cv.notify_all();
            return false;
        }
        frames.push_back(std::move(entry));
    }
    // notify_all: the cv is shared by the writer's pop AND a
    // teardown drainFor; waking only one could park the writer
    // behind a drain waiter and stall (then drop) this frame.
    cv.notify_all();
    return true;
}

std::optional<QumaServer::OutFrame>
QumaServer::Outbox::pop()
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return closed || !frames.empty(); });
    if (closed)
        return std::nullopt;
    OutFrame entry = std::move(frames.front());
    frames.pop_front();
    sending = true;
    return entry;
}

void
QumaServer::Outbox::sent()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        sending = false;
    }
    // Wake a drainFor() waiter watching the queue empty out.
    cv.notify_all();
}

void
QumaServer::Outbox::drainFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, timeout, [this] {
        return closed || (frames.empty() && !sending);
    });
}

void
QumaServer::Outbox::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
        frames.clear();
    }
    cv.notify_all();
}

// --- ConnState --------------------------------------------------------------

void
QumaServer::ConnState::noteSubmitted(runtime::JobId id)
{
    std::lock_guard<std::mutex> lock(mu);
    submitted.insert(id);
}

void
QumaServer::ConnState::noteDelivered(runtime::JobId id)
{
    std::lock_guard<std::mutex> lock(mu);
    submitted.erase(id);
}

bool
QumaServer::ConnState::owns(runtime::JobId id)
{
    std::lock_guard<std::mutex> lock(mu);
    return submitted.count(id) > 0;
}

std::vector<runtime::JobId>
QumaServer::ConnState::takeSubmitted()
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<runtime::JobId> ids(submitted.begin(),
                                    submitted.end());
    submitted.clear();
    return ids;
}

void
QumaServer::ConnState::closeStream()
{
    std::lock_guard<std::mutex> lock(mu);
    if (stream)
        stream->close();
}

// --- QumaServer -------------------------------------------------------------

QumaServer::QumaServer(runtime::ExperimentService &service_,
                       std::unique_ptr<Listener> listener_,
                       ServerConfig config)
    : service(service_), listener(std::move(listener_)), cfg(config),
      meter(cfg.linkBytesPerSecond)
{
    if (!listener)
        fatal("QumaServer needs a listener");
    if (!cfg.captureDir.empty() &&
        ::mkdir(cfg.captureDir.c_str(), 0755) != 0 &&
        errno != EEXIST)
        fatal("capture: cannot create directory '", cfg.captureDir,
              "': ", std::strerror(errno));
    acceptor = std::thread([this] { acceptLoop(); });
}

QumaServer::~QumaServer()
{
    stop();
}

void
QumaServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped)
            return;
        stopped = true;
    }
    // Unblock the accept loop, then every connection: closing the
    // stream unblocks the reader's recv, closing the outbox unblocks
    // the writer's pop.
    listener->close();
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto &conn : connections) {
            conn->stream->close();
            conn->state->outbox.close();
        }
    }
    // Join the acceptor first: after it no new connection can start.
    if (acceptor.joinable())
        acceptor.join();
    // Deterministic teardown: every serving thread is joined before
    // stop() returns -- nothing detached survives the server.
    reapConnections(/*join_all=*/true);
}

QumaServer::Stats
QumaServer::stats() const
{
    // ONE lock acquisition covers the whole snapshot: counters, the
    // live connections' streamed counts (atomics -- no per-connection
    // mutex nests in here) and the meter all sit behind mu, so the
    // fields of the returned Stats are mutually consistent.
    std::lock_guard<std::mutex> lock(mu);
    Stats s = counters;
    // counters only absorbs a connection's streamed count when it
    // ends (and zeroes it there); live connections contribute here,
    // so a long-lived client's pushes are visible mid-session.
    for (const auto &conn : connections) {
        s.resultsStreamed +=
            conn->state->streamed.load(std::memory_order_relaxed);
        s.progressFramesPushed +=
            conn->state->progressPushed.load(
                std::memory_order_relaxed);
    }
    s.link = meter.stats();
    return s;
}

std::size_t
QumaServer::queuedReplyFrames() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::size_t depth = 0;
    // mu -> outbox.mu nests only here and never in reverse (outbox
    // operations elsewhere run without the server mutex held).
    for (const auto &conn : connections) {
        Outbox &box = conn->state->outbox;
        std::lock_guard<std::mutex> block(box.mu);
        depth += box.frames.size();
    }
    return depth;
}

void
QumaServer::bindMetrics(metrics::MetricsRegistry &registry)
{
    registry.counterFn(
        "quma_server_connections_accepted_total",
        "Connections accepted by the serving listener.", {}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            return static_cast<double>(counters.connectionsAccepted);
        });
    registry.gaugeFn(
        "quma_server_connections_active",
        "Connections currently being served.", {}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            return static_cast<double>(counters.connectionsActive);
        });
    registry.counterFn(
        "quma_server_requests_served_total",
        "Request frames fully received and dispatched.", {}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            return static_cast<double>(counters.requestsServed);
        });
    static constexpr const char *kTypeNames[10] = {
        "other", "submit",     "try_submit", "status", "poll",
        "await", "stats",      "cancel",     "clock_sync",
        "trace_dump"};
    for (std::size_t t = 0; t < std::size(kTypeNames); ++t)
        registry.counterFn(
            "quma_server_requests_total",
            "Requests served, by wire frame type.",
            {{"type", kTypeNames[t]}}, [this, t] {
                std::lock_guard<std::mutex> lock(mu);
                return static_cast<double>(counters.requestsByType[t]);
            });
    registry.counterFn(
        "quma_server_errors_returned_total",
        "Requests answered with an ErrorReply frame.", {}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            return static_cast<double>(counters.errorsReturned);
        });
    registry.counterFn(
        "quma_server_disconnect_cancelled_jobs_total",
        "Queued jobs cancelled because their client vanished.", {},
        [this] {
            std::lock_guard<std::mutex> lock(mu);
            return static_cast<double>(
                counters.jobsCancelledOnDisconnect);
        });
    registry.counterFn(
        "quma_server_results_streamed_total",
        "AwaitReply frames pushed by completion subscriptions.", {},
        [this] {
            return static_cast<double>(stats().resultsStreamed);
        });
    registry.counterFn(
        "quma_server_progress_frames_total",
        "ProgressFrame pushes delivered to v4 peers.", {}, [this] {
            return static_cast<double>(stats().progressFramesPushed);
        });
    registry.gaugeFn(
        "quma_server_outbox_frames",
        "Reply frames queued across live connections' outboxes.", {},
        [this] { return static_cast<double>(queuedReplyFrames()); });
    registry.counterFn("quma_link_bytes_total",
                       "Wire traffic through the serving link meter.",
                       {{"direction", "up"}}, [this] {
                           std::lock_guard<std::mutex> lock(mu);
                           return static_cast<double>(
                               meter.stats().bytesUp);
                       });
    registry.counterFn("quma_link_bytes_total",
                       "Wire traffic through the serving link meter.",
                       {{"direction", "down"}}, [this] {
                           std::lock_guard<std::mutex> lock(mu);
                           return static_cast<double>(
                               meter.stats().bytesDown);
                       });
    registry.counterFn(
        "quma_link_seconds_total",
        "Modeled transfer time at the configured link rate.",
        {{"direction", "up"}}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            return meter.stats().secondsUp;
        });
    registry.counterFn(
        "quma_link_seconds_total",
        "Modeled transfer time at the configured link rate.",
        {{"direction", "down"}}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            return meter.stats().secondsDown;
        });
}

bool
QumaServer::stopping() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stopped;
}

void
QumaServer::reapConnections(bool join_all)
{
    // Joining can briefly block (a finishing reader still cancelling
    // jobs), so never join while holding mu: move the candidates out
    // first.
    std::vector<std::unique_ptr<Connection>> reaped;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto split = std::partition(
            connections.begin(), connections.end(),
            [join_all](const std::unique_ptr<Connection> &c) {
                return !join_all && !c->finished;
            });
        for (auto it = split; it != connections.end(); ++it)
            reaped.push_back(std::move(*it));
        connections.erase(split, connections.end());
    }
    for (auto &conn : reaped)
        if (conn->reader.joinable())
            conn->reader.join();
}

void
QumaServer::acceptLoop()
{
    for (;;) {
        std::unique_ptr<ByteStream> stream = listener->accept();
        if (!stream)
            return;
        // Reclaim connections whose reader already finished, so a
        // long-lived server's tracking stays proportional to the
        // LIVE connection count, not the historical one.
        reapConnections(/*join_all=*/false);
        std::lock_guard<std::mutex> lock(mu);
        if (stopped) {
            stream->close();
            return;
        }
        auto conn = std::make_unique<Connection>();
        conn->stream = std::move(stream);
        conn->state = std::make_shared<ConnState>();
        conn->state->outbox.limit = cfg.maxQueuedReplyFrames;
        if (!cfg.captureDir.empty()) {
            // Named by the accept sequence number: captures line up
            // with quma_server_connections_accepted_total and never
            // collide across a server's lifetime.
            const std::string path =
                cfg.captureDir + "/conn-" +
                std::to_string(counters.connectionsAccepted + 1) +
                ".qcap";
            try {
                conn->state->capture =
                    std::make_shared<CaptureWriter>(path);
            } catch (const FatalError &ex) {
                // Serve without the recording rather than refusing
                // the client: capture is a diagnostic aid.
                warn("capture disabled for connection: ", ex.what());
            }
        }
        Connection *raw = conn.get();
        ++counters.connectionsAccepted;
        ++counters.connectionsActive;
        try {
            conn->reader =
                std::thread([this, raw] { serveConnection(*raw); });
        } catch (const std::exception &ex) {
            // Thread exhaustion must not strand the active count or
            // terminate the acceptor; drop just this connection and
            // keep serving.
            warn("serving thread spawn failed: ", ex.what());
            --counters.connectionsActive;
            continue;
        }
        connections.push_back(std::move(conn));
    }
}

void
QumaServer::writerLoop(ByteStream &stream, ConnState &state)
{
    while (std::optional<OutFrame> entry = state.outbox.pop()) {
        try {
            if (entry->result) {
                // Deferred streamed result: encode HERE, on this
                // connection's own thread, so the scheduler's one
                // notifier thread never serializes every
                // connection's wire encoding behind one core.
                Writer w;
                encodeJobResult(w, *entry->result);
                entry->frame = sealFrame(
                    MsgType::AwaitReply, entry->requestId, w,
                    state.peerVersion.load(
                        std::memory_order_relaxed));
                entry->result.reset();
            }
            stream.sendAll(entry->frame.data(),
                           entry->frame.size());
        } catch (const std::exception &) {
            // Dead peer: stop writing and wake the reader (its recv
            // sees the closed stream), which runs the disconnect
            // handling.
            state.outbox.sent();
            state.outbox.close();
            stream.close();
            return;
        }
        state.outbox.sent();
        if (state.capture)
            state.capture->record(CaptureRecordType::Outbound,
                                  entry->frame.data(),
                                  entry->frame.size());
        std::lock_guard<std::mutex> lock(mu);
        meter.record(entry->frame.size(), false);
    }
    // Closed outbox (teardown, or slow-consumer overflow): make sure
    // the reader is not left parked in recv on a connection nobody
    // will write to again. Idempotent on the normal teardown path.
    stream.close();
}

void
QumaServer::serveConnection(Connection &conn)
{
    ByteStream &stream = *conn.stream;
    ConnState &state = *conn.state;
    {
        // Publish the stream for the overflow teardown hook.
        std::lock_guard<std::mutex> lock(state.mu);
        state.stream = &stream;
    }
    // The writer is owned (and joined) by this reader thread; the
    // outbox is the only coupling between them.
    std::thread writer([this, &stream, &state] {
        writerLoop(stream, state);
    });
    try {
        while (serveRequest(stream, conn.state)) {
        }
    } catch (const ConnectionLost &) {
        // Liveness probe saw the client go: straight to cleanup.
    } catch (const std::exception &) {
        // Dead or misbehaving peer: fall through to the disconnect
        // handling. The connection is gone either way.
    }
    // Let the writer flush farewell frames (a VersionMismatch or
    // Shutdown error the peer should still see) -- bounded, because
    // the peer may be gone -- then close: outbox first (ends the
    // writer's pop), stream second (unblocks a wedged sendAll).
    state.outbox.drainFor(std::chrono::milliseconds(500));
    state.outbox.close();
    stream.close();
    writer.join();
    {
        // The stream is about to die with this connection: no late
        // pusher may touch it through the hook anymore.
        std::lock_guard<std::mutex> lock(state.mu);
        state.stream = nullptr;
    }

    // Cancel the connection's undelivered queued jobs: the only
    // party that could read their results just vanished. Running
    // work is never interrupted (cancel refuses it); a job whose
    // result was already streamed is no longer in the set.
    std::size_t cancelled = 0;
    for (runtime::JobId id : state.takeSubmitted())
        if (service.scheduler().cancel(id))
            ++cancelled;

    std::lock_guard<std::mutex> lock(mu);
    counters.jobsCancelledOnDisconnect += cancelled;
    // Absorb (and zero) the streamed count so stats() -- which also
    // sums live connections -- never counts a finished-but-unreaped
    // connection twice.
    counters.resultsStreamed +=
        state.streamed.exchange(0, std::memory_order_relaxed);
    counters.progressFramesPushed +=
        state.progressPushed.exchange(0, std::memory_order_relaxed);
    --counters.connectionsActive;
    conn.finished = true;
}

void
QumaServer::queueFrame(ConnState &state, MsgType type,
                       std::uint64_t request_id, const Writer &payload)
{
    if (!state.outbox.push(
            {sealFrame(type, request_id, payload,
                       state.peerVersion.load(
                           std::memory_order_relaxed)),
             nullptr, 0})) {
        // Closed -- normal teardown, or a slow-consumer overflow
        // that just closed it. Closing the stream (idempotent)
        // guarantees the wedged writer and the reader both unblock
        // into the disconnect handling either way.
        state.closeStream();
    }
}

void
QumaServer::queueError(ConnState &state, std::uint64_t request_id,
                       WireErrorCode code, const std::string &message)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        ++counters.errorsReturned;
    }
    Writer w;
    encodeErrorFrame(w, ErrorFrame{code, message});
    queueFrame(state, MsgType::ErrorReply, request_id, w);
}

bool
QumaServer::serveRequest(ByteStream &stream,
                         const std::shared_ptr<ConnState> &state)
{
    // Read the version-independent prefix FIRST: a legacy v1 frame
    // can be shorter than the v2 header (a 12-byte StatsRequest has
    // no payload at all), and blocking for v2-header bytes the peer
    // will never send would hang both ends instead of diagnosing.
    std::uint8_t header[kFrameHeaderBytes];
    if (!stream.recvAll(header, kFrameHeaderPrefixBytes))
        return false; // clean EOF between frames
    try {
        // v3 and v4 share the byte-identical header layout, so one
        // compat check both validates the prefix and tells this
        // connection which dialect to speak back (replies are sealed
        // at the peer's version; v4-only extras are withheld from v3
        // peers).
        state->peerVersion.store(checkFramePrefixCompat(header),
                                 std::memory_order_relaxed);
    } catch (const WireVersionError &ex) {
        // A legacy (or future) peer: its framing is foreign -- v1
        // frames have no requestId at all -- so this connection
        // cannot be served, but the bytes read are enough to know
        // WHY. Tell the peer on the connection-level id, then hang
        // up (the writer flushes the outbox before the reader's
        // close drops the stream).
        queueError(*state, kConnectionRequestId,
                   WireErrorCode::VersionMismatch, ex.what());
        return false;
    }
    // A compatible version: the rest of the header is on the way.
    if (!stream.recvAll(header + kFrameHeaderPrefixBytes,
                        kFrameHeaderBytes - kFrameHeaderPrefixBytes))
        throw WireError("connection closed mid-header");
    FrameHeader fh = decodeFrameHeaderUnchecked(header);
    std::vector<std::uint8_t> payload(fh.length);
    if (fh.length > 0 &&
        !stream.recvAll(payload.data(), payload.size()))
        throw WireError("connection closed mid-frame");
    if (state->capture) {
        // Record only FULLY received frames (header + payload), so a
        // capture replays cleanly: a request torn by a dying client
        // was never served and must not be re-driven either.
        std::vector<std::uint8_t> frame(header,
                                        header + sizeof(header));
        frame.insert(frame.end(), payload.begin(), payload.end());
        state->capture->record(CaptureRecordType::Inbound,
                               frame.data(), frame.size());
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        meter.record(sizeof(header) + payload.size(), true);
        ++counters.requestsServed;
        auto type = static_cast<std::size_t>(fh.type);
        ++counters
              .requestsByType[type < counters.requestsByType.size()
                                  ? type
                                  : 0];
    }

    Reader r(payload);
    try {
        return dispatchRequest(stream, state, fh, r);
    } catch (const WireError &ex) {
        // The frame itself was fully received -- framing is intact,
        // only this payload was malformed. That is the client's bug:
        // answer it and keep the connection (tearing it down would
        // also cancel the client's other queued jobs).
        queueError(*state, fh.requestId, WireErrorCode::BadRequest,
                   ex.what());
        return true;
    }
}

bool
QumaServer::dispatchRequest(ByteStream &stream,
                            const std::shared_ptr<ConnState> &state,
                            const FrameHeader &header, Reader &r)
{
    // How long a blocking submit may hold the reader before it
    // rechecks stop(): bounds shutdown latency without polling hot.
    constexpr std::chrono::milliseconds kStopCheck{50};
    const std::uint64_t rid = header.requestId;

    switch (header.type) {
    case MsgType::SubmitRequest: {
        runtime::JobSpec spec = decodeJobSpec(r);
        // v4 appends the client's trace context AFTER the spec, so
        // decodeJobSpec (and with it the journal record format)
        // stays byte-identical to v3.
        TraceContext tc;
        if (state->peerVersion.load(std::memory_order_relaxed) >= 4)
            tc = decodeTraceContext(r);
        r.expectEnd();
        try {
            std::optional<runtime::JobId> id;
            // Interruptible submit: a queue that stays at the hard
            // bound must not wedge stop() -- or a vanished client's
            // disconnect handling -- behind this thread. This is the
            // one deliberately blocking request: backpressure from a
            // full queue is supposed to slow the pipelining client
            // down.
            while (!(id = service.submitFor(spec, kStopCheck))) {
                if (stopping()) {
                    queueError(*state, rid, WireErrorCode::Shutdown,
                               "server stopping");
                    return false;
                }
                if (!stream.peerAlive())
                    throw ConnectionLost{};
            }
            state->noteSubmitted(*id);
            // Tie the server-side lifecycle events to the client's
            // trace, so one merged dump shows both sides. No-op
            // while tracing is off.
            if (tc.traceId != 0)
                service.trace().setTraceId(*id, tc.traceId);
            Writer w;
            w.u64(*id);
            queueFrame(*state, MsgType::SubmitReply, rid, w);
            // (ConnectionLost is not a std::exception by design: it
            // flies past the handler below to the disconnect path.)
        } catch (const std::exception &ex) {
            queueError(*state, rid, WireErrorCode::Internal,
                       ex.what());
        }
        return true;
    }
    case MsgType::TrySubmitRequest: {
        runtime::JobSpec spec = decodeJobSpec(r);
        TraceContext tc;
        if (state->peerVersion.load(std::memory_order_relaxed) >= 4)
            tc = decodeTraceContext(r);
        r.expectEnd();
        try {
            std::optional<runtime::JobId> id =
                service.trySubmit(std::move(spec));
            if (id) {
                state->noteSubmitted(*id);
                if (tc.traceId != 0)
                    service.trace().setTraceId(*id, tc.traceId);
            }
            Writer w;
            w.boolean(id.has_value());
            w.u64(id.value_or(0));
            queueFrame(*state, MsgType::TrySubmitReply, rid, w);
        } catch (const std::exception &ex) {
            queueError(*state, rid, WireErrorCode::Internal,
                       ex.what());
        }
        return true;
    }
    case MsgType::StatusRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        try {
            runtime::JobStatus st = service.status(id);
            Writer w;
            w.u8(static_cast<std::uint8_t>(st));
            queueFrame(*state, MsgType::StatusReply, rid, w);
        } catch (const std::exception &ex) {
            queueError(*state, rid, WireErrorCode::UnknownJob,
                       ex.what());
        }
        return true;
    }
    case MsgType::PollRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        try {
            std::optional<runtime::JobResult> result =
                service.poll(id);
            Writer w;
            w.boolean(result.has_value());
            if (result)
                encodeJobResult(w, *result);
            queueFrame(*state, MsgType::PollReply, rid, w);
            // Result delivered: nothing left for disconnect-cancel
            // to protect, and the per-connection id tracking must
            // not grow for the lifetime of a busy connection.
            if (result)
                state->noteDelivered(id);
        } catch (const std::exception &ex) {
            // Unknown to the scheduler (likely aged out of result
            // retention): dead weight in the tracking set too.
            state->noteDelivered(id);
            queueError(*state, rid, WireErrorCode::UnknownJob,
                       ex.what());
        }
        return true;
    }
    case MsgType::AwaitRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        try {
            // The streaming path: no blocking, no polling. The
            // completion callback runs on the scheduler's notifier
            // thread and holds the connection state WEAKLY -- if the
            // connection is gone by the time the job finishes, the
            // push finds a closed outbox (or nothing at all) and
            // evaporates without touching the server.
            std::weak_ptr<ConnState> weak = state;
            if (state->peerVersion.load(std::memory_order_relaxed) >=
                4) {
                // v4 peers also get rate-limited progress pushes
                // under the await's requestId. Best-effort by
                // contract (an already-finished job simply gets
                // none), and sealed frames -- not deferred entries
                // -- because a progress payload is three u64s:
                // encoding on the notifier thread is cheaper than a
                // writer-side deferral round trip.
                service.scheduler().subscribeProgress(
                    id, [weak, rid](runtime::JobId job,
                                    std::size_t done,
                                    std::size_t total) {
                        std::shared_ptr<ConnState> st = weak.lock();
                        if (!st)
                            return;
                        Writer w;
                        encodeProgressFrame(
                            w, ProgressFrameData{job, done, total});
                        if (st->outbox.push(
                                {sealFrame(
                                     MsgType::ProgressFrame, rid, w,
                                     st->peerVersion.load(
                                         std::memory_order_relaxed)),
                                 nullptr, 0}))
                            st->progressPushed.fetch_add(
                                1, std::memory_order_relaxed);
                        else
                            // Dead or overflowed connection: the
                            // push evaporated; unwedge its threads
                            // (idempotent).
                            st->closeStream();
                    });
            }
            service.scheduler().subscribe(
                id,
                [weak, rid, id](
                    runtime::JobId,
                    std::shared_ptr<const runtime::JobResult>
                        result) {
                    std::shared_ptr<ConnState> st = weak.lock();
                    if (!st)
                        return;
                    // Hand the shared result straight to the
                    // connection's writer (which encodes it): the
                    // notifier thread stays cheap no matter how
                    // large the result or how many connections
                    // stream concurrently.
                    if (st->outbox.push(
                            {{}, std::move(result), rid})) {
                        {
                            std::lock_guard<std::mutex> lock(st->mu);
                            st->submitted.erase(id);
                        }
                        st->streamed.fetch_add(
                            1, std::memory_order_relaxed);
                    } else {
                        // Dead or overflowed connection: make sure
                        // its threads unwedge (idempotent; no-op
                        // once the reader cleared the hook).
                        st->closeStream();
                    }
                });
        } catch (const std::exception &ex) {
            state->noteDelivered(id); // unknown/aged out: dead weight
            queueError(*state, rid, WireErrorCode::UnknownJob,
                       ex.what());
        }
        return true;
    }
    case MsgType::ClockSyncRequest: {
        r.expectEnd();
        // The clock-alignment handshake: the client brackets this
        // round trip with its own steady clock and maps the reply
        // onto the midpoint (docs/observability.md). Answered inline
        // on the reader, so queueing delay stays out of the sample.
        Writer w;
        encodeClockSyncFrame(
            w, ClockSyncFrame{service.trace().nowNanos()});
        queueFrame(*state, MsgType::ClockSyncReply, rid, w);
        return true;
    }
    case MsgType::TraceDumpRequest: {
        r.expectEnd();
        // On-demand trace dump: raw events (server timebase), the
        // job->traceId associations, and the drop count. Raw rather
        // than rendered JSON so the client can clock-shift and merge
        // with its own spans.
        TraceDumpFrame dump;
        dump.events = service.trace().events();
        dump.traceIds = service.trace().traceIdPairs();
        dump.dropped = service.trace().dropped();
        Writer w;
        encodeTraceDumpFrame(w, dump);
        queueFrame(*state, MsgType::TraceDumpReply, rid, w);
        return true;
    }
    case MsgType::StatsRequest: {
        r.expectEnd();
        StatsFrame stats;
        stats.scheduler = service.scheduler().stats();
        stats.pool = service.pool().stats();
        stats.cache = service.cache().stats();
        stats.effectiveQueueCapacity =
            service.scheduler().effectiveQueueCapacity();
        Writer w;
        encodeStatsFrame(w, stats);
        queueFrame(*state, MsgType::StatsReply, rid, w);
        return true;
    }
    case MsgType::CancelRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        // Ownership check: a connection may only cancel jobs it
        // submitted itself -- ids are a guessable global sequence,
        // and cancelling another client's queued work would corrupt
        // that client's awaits.
        bool ok = state->owns(id) && service.scheduler().cancel(id);
        if (ok)
            state->noteDelivered(id);
        Writer w;
        w.boolean(ok);
        queueFrame(*state, MsgType::CancelReply, rid, w);
        return true;
    }
    default:
        // A reply type arriving as a request is a protocol
        // violation; tell the peer and keep the connection (the
        // framing is still intact).
        queueError(*state, rid, WireErrorCode::BadRequest,
                   "frame type " +
                       std::to_string(static_cast<std::uint16_t>(
                           header.type)) +
                       " is not a request");
        return true;
    }
}

} // namespace quma::net
