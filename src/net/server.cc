#include "net/server.hh"

#include "common/logging.hh"

namespace quma::net {

namespace {

/**
 * Thrown when a liveness probe finds the client gone mid-request.
 * Deliberately NOT a std::exception: it must fly through the
 * per-request error-reply catches straight to the connection's
 * disconnect handling (there is nobody left to send a reply to).
 */
struct ConnectionLost
{
};

} // namespace

QumaServer::QumaServer(runtime::ExperimentService &service_,
                       std::unique_ptr<Listener> listener_,
                       ServerConfig config)
    : service(service_), listener(std::move(listener_)), cfg(config),
      meter(cfg.linkBytesPerSecond)
{
    if (!listener)
        fatal("QumaServer needs a listener");
    acceptor = std::thread([this] { acceptLoop(); });
}

QumaServer::~QumaServer()
{
    stop();
}

void
QumaServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped)
            return;
        stopped = true;
    }
    // Unblock the accept loop, then every serving thread's recv.
    listener->close();
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto &conn : connections)
            conn->close();
    }
    // Join the acceptor first: after it no new connection can start.
    if (acceptor.joinable())
        acceptor.join();
    // Serving threads are detached and self-reap; wait for the last
    // one to drain (each signals under mu, so none touches this
    // object after the predicate turns true).
    std::unique_lock<std::mutex> lock(mu);
    cvDrained.wait(lock,
                   [this] { return counters.connectionsActive == 0; });
}

QumaServer::Stats
QumaServer::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s = counters;
    s.link = meter.stats();
    return s;
}

void
QumaServer::acceptLoop()
{
    for (;;) {
        std::unique_ptr<ByteStream> stream = listener->accept();
        if (!stream)
            return;
        ByteStream *raw = stream.get();
        std::lock_guard<std::mutex> lock(mu);
        if (stopped) {
            stream->close();
            return;
        }
        connections.push_back(std::move(stream));
        ++counters.connectionsAccepted;
        ++counters.connectionsActive;
        // Detached: the thread reclaims its own connection state on
        // exit; stop() waits for connectionsActive to drain.
        try {
            std::thread([this, raw] { serveConnection(raw); })
                .detach();
        } catch (const std::exception &ex) {
            // Thread exhaustion must not strand the active count
            // (stop() waits on it) or terminate the acceptor; drop
            // just this connection and keep serving.
            warn("serving thread spawn failed: ", ex.what());
            std::erase_if(
                connections,
                [raw](const std::unique_ptr<ByteStream> &c) {
                    return c.get() == raw;
                });
            --counters.connectionsActive;
        }
    }
}

bool
QumaServer::stopping() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stopped;
}

void
QumaServer::serveConnection(ByteStream *stream)
{
    std::unordered_set<runtime::JobId> submitted;
    try {
        while (serveRequest(*stream, submitted)) {
        }
    } catch (const ConnectionLost &) {
        // Liveness probe saw the client go: straight to cleanup.
    } catch (const std::exception &) {
        // Dead or misbehaving peer: fall through to the disconnect
        // handling. The connection is gone either way.
    }
    stream->close();

    // Cancel the connection's queued-but-unstarted jobs: the only
    // party that could read their results just vanished. Running
    // work is never interrupted (cancel refuses it).
    std::size_t cancelled = 0;
    for (runtime::JobId id : submitted)
        if (service.scheduler().cancel(id))
            ++cancelled;

    // Reclaim this connection's stream (closing the fd) instead of
    // letting dead entries pile up until shutdown. Notify while
    // still holding the lock: stop()'s wait can then only return
    // after this thread is done touching the server.
    std::lock_guard<std::mutex> lock(mu);
    std::erase_if(connections,
                  [stream](const std::unique_ptr<ByteStream> &c) {
                      return c.get() == stream;
                  });
    counters.jobsCancelledOnDisconnect += cancelled;
    --counters.connectionsActive;
    cvDrained.notify_all();
}

void
QumaServer::sendFrame(ByteStream &stream, MsgType type,
                      const Writer &payload)
{
    std::vector<std::uint8_t> frame = sealFrame(type, payload);
    {
        std::lock_guard<std::mutex> lock(mu);
        meter.record(frame.size(), false);
    }
    stream.sendAll(frame.data(), frame.size());
}

void
QumaServer::sendError(ByteStream &stream, WireErrorCode code,
                      const std::string &message)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        ++counters.errorsReturned;
    }
    Writer w;
    encodeErrorFrame(w, ErrorFrame{code, message});
    sendFrame(stream, MsgType::ErrorReply, w);
}

bool
QumaServer::serveRequest(ByteStream &stream,
                         std::unordered_set<runtime::JobId> &submitted)
{
    std::uint8_t header[kFrameHeaderBytes];
    if (!stream.recvAll(header, sizeof(header)))
        return false; // clean EOF between frames
    FrameHeader fh = decodeFrameHeader(header);
    std::vector<std::uint8_t> payload(fh.length);
    if (fh.length > 0 &&
        !stream.recvAll(payload.data(), payload.size()))
        throw WireError("connection closed mid-frame");
    {
        std::lock_guard<std::mutex> lock(mu);
        meter.record(sizeof(header) + payload.size(), true);
        ++counters.requestsServed;
    }

    Reader r(payload);
    try {
        return dispatchRequest(stream, fh.type, r, submitted);
    } catch (const WireError &ex) {
        // The frame itself was fully received -- framing is intact,
        // only this payload was malformed. That is the client's bug:
        // answer it and keep the connection (tearing it down would
        // also cancel the client's other queued jobs). If the
        // ErrorReply cannot be sent the peer is dead and THAT
        // exception propagates to the disconnect handling.
        sendError(stream, WireErrorCode::BadRequest, ex.what());
        return true;
    }
}

bool
QumaServer::dispatchRequest(ByteStream &stream, MsgType type,
                            Reader &r,
                            std::unordered_set<runtime::JobId> &submitted)
{
    // How long a blocking scheduler call may hold this thread before
    // it rechecks stop(): bounds shutdown latency without polling
    // hot (completions still wake the wait immediately).
    constexpr std::chrono::milliseconds kStopCheck{50};

    switch (type) {
    case MsgType::SubmitRequest: {
        runtime::JobSpec spec = decodeJobSpec(r);
        r.expectEnd();
        try {
            std::optional<runtime::JobId> id;
            // Interruptible submit: a queue that stays at the hard
            // bound must not wedge stop() -- or a vanished client's
            // disconnect handling -- behind this thread.
            while (!(id = service.scheduler().submitFor(
                         spec, kStopCheck))) {
                if (stopping()) {
                    sendError(stream, WireErrorCode::Shutdown,
                              "server stopping");
                    return false;
                }
                if (!stream.peerAlive())
                    throw ConnectionLost{};
            }
            submitted.insert(*id);
            Writer w;
            w.u64(*id);
            sendFrame(stream, MsgType::SubmitReply, w);
        } catch (const std::exception &ex) {
            sendError(stream, WireErrorCode::Internal, ex.what());
        }
        return true;
    }
    case MsgType::TrySubmitRequest: {
        runtime::JobSpec spec = decodeJobSpec(r);
        r.expectEnd();
        try {
            std::optional<runtime::JobId> id =
                service.trySubmit(std::move(spec));
            if (id)
                submitted.insert(*id);
            Writer w;
            w.boolean(id.has_value());
            w.u64(id.value_or(0));
            sendFrame(stream, MsgType::TrySubmitReply, w);
        } catch (const std::exception &ex) {
            sendError(stream, WireErrorCode::Internal, ex.what());
        }
        return true;
    }
    case MsgType::StatusRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        try {
            runtime::JobStatus st = service.status(id);
            Writer w;
            w.u8(static_cast<std::uint8_t>(st));
            sendFrame(stream, MsgType::StatusReply, w);
        } catch (const std::exception &ex) {
            sendError(stream, WireErrorCode::UnknownJob, ex.what());
        }
        return true;
    }
    case MsgType::PollRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        try {
            std::optional<runtime::JobResult> result =
                service.poll(id);
            Writer w;
            w.boolean(result.has_value());
            if (result)
                encodeJobResult(w, *result);
            sendFrame(stream, MsgType::PollReply, w);
            // Result delivered: nothing left for disconnect-cancel
            // to protect, and the per-connection id tracking must
            // not grow for the lifetime of a busy connection.
            if (result)
                submitted.erase(id);
        } catch (const std::exception &ex) {
            // Unknown to the scheduler (likely aged out of result
            // retention): dead weight in the tracking set too.
            submitted.erase(id);
            sendError(stream, WireErrorCode::UnknownJob, ex.what());
        }
        return true;
    }
    case MsgType::AwaitRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        try {
            // Blocks this connection's thread only; other clients
            // are served by their own threads meanwhile. The bounded
            // wait keeps stop() from wedging behind a slow job.
            std::optional<runtime::JobResult> result;
            while (!(result = service.scheduler().awaitFor(
                         id, kStopCheck))) {
                if (stopping()) {
                    sendError(stream, WireErrorCode::Shutdown,
                              "server stopping");
                    return false;
                }
                // Detect a hung-up client from inside the wait:
                // otherwise its disconnect (and the cancellation of
                // its queued jobs) would stall until this job ends.
                if (!stream.peerAlive())
                    throw ConnectionLost{};
            }
            Writer w;
            encodeJobResult(w, *result);
            sendFrame(stream, MsgType::AwaitReply, w);
            submitted.erase(id); // delivered; see PollRequest
        } catch (const std::exception &ex) {
            submitted.erase(id); // unknown/aged out: dead weight
            sendError(stream, WireErrorCode::UnknownJob, ex.what());
        }
        return true;
    }
    case MsgType::StatsRequest: {
        r.expectEnd();
        StatsFrame stats;
        stats.scheduler = service.scheduler().stats();
        stats.pool = service.pool().stats();
        stats.effectiveQueueCapacity =
            service.scheduler().effectiveQueueCapacity();
        Writer w;
        encodeStatsFrame(w, stats);
        sendFrame(stream, MsgType::StatsReply, w);
        return true;
    }
    case MsgType::CancelRequest: {
        runtime::JobId id = r.u64();
        r.expectEnd();
        // Ownership check: a connection may only cancel jobs it
        // submitted itself -- ids are a guessable global sequence,
        // and cancelling another client's queued work would corrupt
        // that client's awaits.
        bool ok = submitted.count(id) > 0 &&
                  service.scheduler().cancel(id);
        if (ok)
            submitted.erase(id);
        Writer w;
        w.boolean(ok);
        sendFrame(stream, MsgType::CancelReply, w);
        return true;
    }
    default:
        // A reply type arriving as a request is a protocol
        // violation; tell the peer and keep the connection (the
        // framing is still intact).
        sendError(stream, WireErrorCode::BadRequest,
                  "frame type " +
                      std::to_string(
                          static_cast<std::uint16_t>(type)) +
                      " is not a request");
        return true;
    }
}

} // namespace quma::net
