#include "net/gateway.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "runtime/job.hh"

namespace quma::net {

namespace {

/** splitmix64 finalizer: the rendezvous-score mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** FNV-1a over a string, mixed: the affinity/name hash. */
std::uint64_t
hashKey(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return mix64(h);
}

/**
 * sealFrame for payloads that are already raw bytes: the forwarding
 * path must not re-encode what it routes (byte-identity through the
 * gateway is the point), so frames are re-sealed around the original
 * payload bytes with only the header's requestId/version changed.
 */
std::vector<std::uint8_t>
sealRaw(MsgType type, std::uint64_t request_id,
        const std::vector<std::uint8_t> &payload,
        std::uint16_t version)
{
    if (payload.size() > kMaxPayloadBytes)
        throw WireError("payload exceeds the frame size cap");
    Writer header;
    header.u32(kWireMagic);
    header.u16(version);
    header.u16(static_cast<std::uint16_t>(type));
    header.u32(static_cast<std::uint32_t>(payload.size()));
    header.u64(request_id);
    std::vector<std::uint8_t> frame = header.bytes();
    frame.insert(frame.end(), payload.begin(), payload.end());
    return frame;
}

/** The gateway's ClockSync timebase (steady, epoch = first use). */
std::uint64_t
gatewayNowNanos()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

/**
 * Fold one backend's StatsFrame into the fleet view: counters and
 * capacities SUM (fleet totals), load signals and percentiles MAX
 * (the fleet is as saturated as its worst member -- summing EWMAs
 * would manufacture load no backend reports).
 */
void
mergeStatsFrame(StatsFrame &acc, const StatsFrame &s)
{
    auto &a = acc.scheduler;
    const auto &x = s.scheduler;
    a.submitted += x.submitted;
    a.rejected += x.rejected;
    a.completed += x.completed;
    a.failed += x.failed;
    a.cancelled += x.cancelled;
    a.queueHighWater += x.queueHighWater;
    a.batchedJobs += x.batchedJobs;
    a.shardedJobs += x.shardedJobs;
    a.shardsExecuted += x.shardsExecuted;
    a.saturatedRuns += x.saturatedRuns;
    a.shardsStolen += x.shardsStolen;
    a.roundsStolen += x.roundsStolen;
    a.eventsDispatched += x.eventsDispatched;
    a.wheelHighWater = std::max(a.wheelHighWater, x.wheelHighWater);
    a.staleEventDrops += x.staleEventDrops;
    a.admissionSoftRejects += x.admissionSoftRejects;
    a.progressNotifications += x.progressNotifications;
    a.machineSaturation =
        std::max(a.machineSaturation, x.machineSaturation);
    a.poolWaitEwmaSeconds =
        std::max(a.poolWaitEwmaSeconds, x.poolWaitEwmaSeconds);
    for (std::size_t i = 0; i < a.latency.size(); ++i) {
        a.latency[i].count += x.latency[i].count;
        a.latency[i].p50 = std::max(a.latency[i].p50, x.latency[i].p50);
        a.latency[i].p95 = std::max(a.latency[i].p95, x.latency[i].p95);
        a.latency[i].max = std::max(a.latency[i].max, x.latency[i].max);
    }
    auto &ap = acc.pool;
    const auto &xp = s.pool;
    ap.machinesCreated += xp.machinesCreated;
    ap.acquisitions += xp.acquisitions;
    ap.reuseHits += xp.reuseHits;
    ap.evictions += xp.evictions;
    ap.machineResets += xp.machineResets;
    ap.idleMachines += xp.idleMachines;
    ap.leasedMachines += xp.leasedMachines;
    auto &ac = acc.cache;
    const auto &xc = s.cache;
    ac.programHits += xc.programHits;
    ac.programMisses += xc.programMisses;
    ac.programEvictions += xc.programEvictions;
    ac.lutHits += xc.lutHits;
    ac.lutMisses += xc.lutMisses;
    ac.lutEvictions += xc.lutEvictions;
    acc.effectiveQueueCapacity += s.effectiveQueueCapacity;
}

} // namespace

GatewayBackend
tcpBackend(const std::string &host, std::uint16_t port)
{
    GatewayBackend b;
    b.name = host + ":" + std::to_string(port);
    b.connect = [host, port] { return tcpConnect(host, port); };
    return b;
}

// --- Outbox -----------------------------------------------------------------

bool
QumaGateway::Outbox::push(std::vector<std::uint8_t> frame)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (closed)
            return false;
        if (frames.size() >= limit) {
            // Slow-consumer overflow, same contract as the server's
            // outbox: drop the backlog and let the writer tear the
            // connection down.
            closed = true;
            frames.clear();
            cv.notify_all();
            return false;
        }
        frames.push_back(std::move(frame));
    }
    cv.notify_all();
    return true;
}

std::optional<std::vector<std::uint8_t>>
QumaGateway::Outbox::pop()
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return closed || !frames.empty(); });
    if (closed)
        return std::nullopt;
    std::vector<std::uint8_t> frame = std::move(frames.front());
    frames.pop_front();
    cv.notify_all(); // wake a drain waiter watching the queue empty
    return frame;
}

void
QumaGateway::Outbox::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
        frames.clear();
    }
    cv.notify_all();
}

// --- construction / lifecycle -----------------------------------------------

QumaGateway::QumaGateway(std::vector<GatewayBackend> backend_list,
                         std::unique_ptr<Listener> listener_in,
                         GatewayConfig config)
    : cfg(config), listener(std::move(listener_in))
{
    if (backend_list.empty())
        fatal("QumaGateway needs at least one backend");
    for (auto &gb : backend_list) {
        auto b = std::make_unique<BackendState>();
        b->cfg = std::move(gb);
        b->nameHash = hashKey(b->cfg.name);
        backends.push_back(std::move(b));
    }
    // Probe everything once BEFORE accepting: routing needs a health
    // picture, and a backend that is down at connect time must be
    // out of the rotation from the first client frame.
    for (auto &b : backends)
        refreshBackend(*b);
    acceptor = std::thread([this] { acceptLoop(); });
    health = std::thread([this] { healthLoop(); });
}

QumaGateway::~QumaGateway() { stop(); }

bool
QumaGateway::stopping() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stopped;
}

void
QumaGateway::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopped = true;
    }
    cvHealth.notify_all();
    listener->close();
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto &c : conns) {
            {
                std::lock_guard<std::mutex> lk(c->mu);
                c->closing = true;
            }
            c->cvFlow.notify_all();
            c->stream->close();
            c->outbox.close();
        }
    }
    if (acceptor.joinable())
        acceptor.join();
    if (health.joinable())
        health.join();
    reapConnections(true);
    for (auto &b : backends) {
        std::lock_guard<std::mutex> lock(b->controlMu);
        b->control.reset();
    }
}

void
QumaGateway::reapConnections(bool join_all)
{
    std::vector<std::unique_ptr<Conn>> dead;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto it = conns.begin(); it != conns.end();) {
            if (join_all || (*it)->finished) {
                dead.push_back(std::move(*it));
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto &c : dead)
        if (c->reader.joinable())
            c->reader.join();
}

bool
QumaGateway::drain(const std::string &name)
{
    for (auto &b : backends)
        if (b->cfg.name == name) {
            b->draining.store(true);
            return true;
        }
    return false;
}

bool
QumaGateway::undrain(const std::string &name)
{
    for (auto &b : backends)
        if (b->cfg.name == name) {
            b->draining.store(false);
            return true;
        }
    return false;
}

// --- health -----------------------------------------------------------------

void
QumaGateway::refreshBackend(BackendState &b)
{
    bool ok = false;
    {
        std::lock_guard<std::mutex> lock(b.controlMu);
        try {
            if (!b.control)
                b.control =
                    std::make_unique<QumaClient>(b.cfg.connect());
            b.lastStats = b.control->stats();
            b.haveStats = true;
            b.statsAt = std::chrono::steady_clock::now();
            ok = true;
        } catch (const std::exception &) {
            // Unreachable or mid-restart: drop the control client
            // (a fresh connect next round) and mark unhealthy.
            b.control.reset();
        }
    }
    if (ok && b.cfg.healthProbe) {
        try {
            ok = b.cfg.healthProbe();
        } catch (const std::exception &) {
            ok = false;
        }
    }
    b.healthy.store(ok, std::memory_order_relaxed);
}

void
QumaGateway::healthLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(healthMu);
            cvHealth.wait_for(lock, cfg.healthInterval,
                              [this] { return stopping(); });
        }
        if (stopping())
            return;
        for (auto &b : backends)
            refreshBackend(*b);
    }
}

StatsFrame
QumaGateway::fleetStats(std::chrono::milliseconds max_age)
{
    const auto now = std::chrono::steady_clock::now();
    StatsFrame merged;
    for (auto &bp : backends) {
        BackendState &b = *bp;
        bool fresh;
        {
            std::lock_guard<std::mutex> lock(b.controlMu);
            fresh = b.haveStats && now - b.statsAt <= max_age;
        }
        if (!fresh)
            refreshBackend(b);
        std::lock_guard<std::mutex> lock(b.controlMu);
        // A dead backend contributes its last known snapshot: fleet
        // counters must not dip when a member goes away.
        if (b.haveStats)
            mergeStatsFrame(merged, b.lastStats);
    }
    return merged;
}

// --- routing ----------------------------------------------------------------

std::optional<std::size_t>
QumaGateway::chooseBackend(std::uint64_t affinity,
                           std::size_t exclude) const
{
    std::optional<std::size_t> best;
    std::uint64_t bestScore = 0;
    for (std::size_t i = 0; i < backends.size(); ++i) {
        const BackendState &b = *backends[i];
        if (i == exclude ||
            !b.healthy.load(std::memory_order_relaxed) ||
            b.draining.load(std::memory_order_relaxed))
            continue;
        // Rendezvous (highest-random-weight) hashing: stable under
        // membership change -- only keys whose winner left remap.
        std::uint64_t score = mix64(affinity ^ b.nameHash);
        if (!best || score > bestScore) {
            best = i;
            bestScore = score;
        }
    }
    return best;
}

bool
QumaGateway::backendSaturated(std::size_t index)
{
    BackendState &b = *backends[index];
    std::lock_guard<std::mutex> lock(b.controlMu);
    if (!b.haveStats)
        return false;
    return b.lastStats.scheduler.machineSaturation >=
               cfg.shedSaturation ||
           b.lastStats.scheduler.poolWaitEwmaSeconds >=
               cfg.shedPoolWaitSeconds;
}

// --- accept / client side ---------------------------------------------------

void
QumaGateway::acceptLoop()
{
    for (;;) {
        std::unique_ptr<ByteStream> stream = listener->accept();
        if (!stream)
            return;
        reapConnections(false);
        auto conn = std::make_unique<Conn>();
        conn->stream = std::move(stream);
        conn->outbox.limit = cfg.maxQueuedReplyFrames;
        Conn *cp = conn.get();
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopped) {
                conn->stream->close();
                return;
            }
            conns.push_back(std::move(conn));
        }
        connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
        cp->reader = std::thread([this, cp] { serveClient(*cp); });
    }
}

void
QumaGateway::writerLoop(Conn &conn)
{
    for (;;) {
        std::optional<std::vector<std::uint8_t>> frame =
            conn.outbox.pop();
        if (!frame)
            break;
        try {
            conn.stream->sendAll(frame->data(), frame->size());
        } catch (const std::exception &) {
            break;
        }
    }
    conn.outbox.close();
    conn.stream->close();
}

void
QumaGateway::serveClient(Conn &conn)
{
    std::thread writer([this, &conn] { writerLoop(conn); });
    try {
        while (serveClientFrame(conn)) {
        }
    } catch (const std::exception &) {
        // Dead client mid-frame: same teardown as a clean EOF.
    }
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        conn.closing = true;
    }
    conn.cvFlow.notify_all();
    conn.stream->close();
    conn.outbox.close();
    // Close every backend link and join its reader. Readers retire
    // themselves (links -> retired) on the way out, and a reader
    // mid-failover may still create a link after `closing` was set
    // in a narrow race -- hence the loop until both sets are empty.
    for (;;) {
        bool liveLinks;
        std::vector<std::shared_ptr<BackendLink>> to_join;
        {
            std::lock_guard<std::mutex> lock(conn.linkMu);
            for (auto &kv : conn.links)
                kv.second->stream->close();
            liveLinks = !conn.links.empty();
            to_join.swap(conn.retired);
        }
        for (auto &l : to_join)
            if (l->reader.joinable())
                l->reader.join();
        if (!liveLinks && to_join.empty())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer.join();
    {
        std::lock_guard<std::mutex> lock(mu);
        conn.finished = true;
    }
}

void
QumaGateway::queueFrame(Conn &conn, MsgType type, std::uint64_t rid,
                        std::uint16_t version, const Writer &payload)
{
    conn.outbox.push(sealFrame(type, rid, payload, version));
}

void
QumaGateway::queueError(Conn &conn, std::uint64_t rid,
                        std::uint16_t version, WireErrorCode code,
                        const std::string &message)
{
    Writer w;
    encodeErrorFrame(w, {code, message});
    conn.outbox.push(
        sealFrame(MsgType::ErrorReply, rid, w, version));
    errorsReturned.fetch_add(1, std::memory_order_relaxed);
}

void
QumaGateway::noteInFlight(std::size_t in_flight)
{
    std::size_t seen =
        inFlightHighWater.load(std::memory_order_relaxed);
    while (in_flight > seen &&
           !inFlightHighWater.compare_exchange_weak(
               seen, in_flight, std::memory_order_relaxed))
        ;
}

bool
QumaGateway::acquireFlowSlot(Conn &conn)
{
    std::unique_lock<std::mutex> lock(conn.mu);
    conn.cvFlow.wait(lock, [&] {
        return conn.closing ||
               conn.inFlight < cfg.maxInFlightPerClient;
    });
    if (conn.closing)
        return false;
    ++conn.inFlight;
    noteInFlight(conn.inFlight);
    return true;
}

void
QumaGateway::releaseFlowSlot(Conn &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        --conn.inFlight;
    }
    conn.cvFlow.notify_all();
}

bool
QumaGateway::serveClientFrame(Conn &conn)
{
    // Same defensive framing as the server: validate the shared
    // prefix before trusting the version-specific remainder.
    std::uint8_t header[kFrameHeaderBytes];
    if (!conn.stream->recvAll(header, kFrameHeaderPrefixBytes))
        return false; // clean EOF between frames
    std::uint16_t version;
    try {
        version = checkFramePrefixCompat(header);
        conn.peerVersion.store(version, std::memory_order_relaxed);
    } catch (const WireVersionError &ex) {
        queueError(conn, kConnectionRequestId, kWireVersion,
                   WireErrorCode::VersionMismatch, ex.what());
        // Give the writer a moment to flush the farewell frame.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return false;
    }
    if (!conn.stream->recvAll(header + kFrameHeaderPrefixBytes,
                              kFrameHeaderBytes -
                                  kFrameHeaderPrefixBytes))
        throw WireError("connection closed mid-header");
    FrameHeader fh = decodeFrameHeaderUnchecked(header);
    std::vector<std::uint8_t> payload(fh.length);
    if (fh.length > 0 &&
        !conn.stream->recvAll(payload.data(), payload.size()))
        throw WireError("connection closed mid-frame");

    const std::uint64_t rid = fh.requestId;
    try {
        switch (fh.type) {
        case MsgType::SubmitRequest:
        case MsgType::TrySubmitRequest: {
            // Decode for ROUTING only; the payload bytes forwarded
            // to the backend are exactly the client's.
            std::uint64_t affinity;
            {
                Reader r(payload);
                runtime::JobSpec spec = decodeJobSpec(r);
                if (version >= 4)
                    (void)decodeTraceContext(r);
                r.expectEnd();
                affinity =
                    hashKey(runtime::configKey(spec.machine));
            }
            if (!acquireFlowSlot(conn))
                return false;
            forwardSubmit(conn, version, rid, fh.type,
                          std::move(payload), affinity);
            return true;
        }
        case MsgType::StatusRequest:
        case MsgType::PollRequest:
        case MsgType::AwaitRequest:
        case MsgType::CancelRequest: {
            Reader r(payload);
            std::uint64_t gwId = r.u64();
            r.expectEnd();
            if (!acquireFlowSlot(conn))
                return false;
            forwardJobRequest(conn, version, rid, fh.type, gwId);
            return true;
        }
        case MsgType::StatsRequest: {
            Reader r(payload);
            r.expectEnd();
            // Answered locally with the merged fleet view: clients
            // asking "how loaded is the service" mean the fleet.
            // max_age 0 forces a synchronous refresh of every
            // backend -- an explicit StatsRequest earns accuracy,
            // not the health loop's cache (which serves shedding
            // and metrics callbacks).
            StatsFrame fleet = fleetStats(std::chrono::milliseconds(0));
            Writer w;
            encodeStatsFrame(w, fleet);
            queueFrame(conn, MsgType::StatsReply, rid, version, w);
            statsServed.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        case MsgType::ClockSyncRequest: {
            Reader r(payload);
            r.expectEnd();
            Writer w;
            encodeClockSyncFrame(w, {gatewayNowNanos()});
            queueFrame(conn, MsgType::ClockSyncReply, rid, version,
                       w);
            return true;
        }
        case MsgType::TraceDumpRequest: {
            Reader r(payload);
            r.expectEnd();
            // Per-backend traces stay on the backends (they carry
            // backend-local job ids); the gateway answers with an
            // empty dump rather than a misleading merge.
            Writer w;
            encodeTraceDumpFrame(w, {});
            queueFrame(conn, MsgType::TraceDumpReply, rid, version,
                       w);
            return true;
        }
        default:
            queueError(conn, rid, version, WireErrorCode::BadRequest,
                       "unsupported request frame type");
            return true;
        }
    } catch (const WireError &ex) {
        queueError(conn, rid, version, WireErrorCode::BadRequest,
                   ex.what());
        return true;
    }
}

// --- backend links ----------------------------------------------------------

std::shared_ptr<QumaGateway::BackendLink>
QumaGateway::ensureLink(Conn &conn, std::size_t index)
{
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        if (conn.closing)
            throw WireError("connection closing");
    }
    std::lock_guard<std::mutex> lock(conn.linkMu);
    auto it = conn.links.find(index);
    if (it != conn.links.end())
        return it->second;
    auto link = std::make_shared<BackendLink>();
    link->index = index;
    link->stream = backends[index]->cfg.connect(); // may throw
    conn.links.emplace(index, link);
    link->reader = std::thread(
        [this, &conn, link] { linkReaderLoop(conn, link); });
    return link;
}

void
QumaGateway::sendOnLink(BackendLink &link,
                        const std::vector<std::uint8_t> &frame)
{
    std::lock_guard<std::mutex> lock(link.sendMu);
    try {
        link.stream->sendAll(frame.data(), frame.size());
    } catch (const std::exception &) {
        // Dead link: close so its reader wakes up and fails over
        // everything pending there (including what this frame just
        // registered).
        link.stream->close();
        throw;
    }
}

void
QumaGateway::linkReaderLoop(Conn &conn,
                            std::shared_ptr<BackendLink> link)
{
    try {
        for (;;) {
            std::uint8_t header[kFrameHeaderBytes];
            if (!link->stream->recvAll(header,
                                       kFrameHeaderPrefixBytes))
                break;
            checkFramePrefixCompat(header);
            if (!link->stream->recvAll(
                    header + kFrameHeaderPrefixBytes,
                    kFrameHeaderBytes - kFrameHeaderPrefixBytes))
                break;
            FrameHeader fh = decodeFrameHeaderUnchecked(header);
            std::vector<std::uint8_t> payload(fh.length);
            if (fh.length > 0 &&
                !link->stream->recvAll(payload.data(),
                                       payload.size()))
                break;
            handleBackendFrame(conn, *link, fh, std::move(payload));
        }
    } catch (const std::exception &) {
        // A dead or misbehaving backend is the same event: fail
        // over whatever this link carried.
    }
    link->stream->close();
    {
        std::lock_guard<std::mutex> lock(conn.linkMu);
        auto it = conn.links.find(link->index);
        if (it != conn.links.end() && it->second == link)
            conn.links.erase(it);
        // Always self-retire exactly once: teardown joins retired
        // entries, never the live map.
        conn.retired.push_back(link);
    }
    failoverLink(conn, link->index);
}

// --- forwarding -------------------------------------------------------------

void
QumaGateway::forwardSubmit(Conn &conn, std::uint16_t version,
                           std::uint64_t client_rid, MsgType type,
                           std::vector<std::uint8_t> payload,
                           std::uint64_t affinity)
{
    for (std::size_t attempt = 0; attempt <= backends.size();
         ++attempt) {
        std::optional<std::size_t> pick = chooseBackend(affinity);
        if (!pick)
            break;
        if (type == MsgType::TrySubmitRequest &&
            backendSaturated(*pick)) {
            // The backend's own admission would soft-reject; shed
            // here and save the round trip.
            releaseFlowSlot(conn);
            Writer w;
            w.boolean(false);
            w.u64(0);
            queueFrame(conn, MsgType::TrySubmitReply, client_rid,
                       version, w);
            jobsShed.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        std::shared_ptr<BackendLink> link;
        try {
            link = ensureLink(conn, *pick);
        } catch (const std::exception &) {
            backends[*pick]->healthy.store(
                false, std::memory_order_relaxed);
            continue; // next-best backend
        }
        std::uint64_t rid;
        {
            std::lock_guard<std::mutex> lock(conn.mu);
            rid = conn.nextBackendRid++;
            Pending p;
            p.clientRid = client_rid;
            p.reqType = type;
            p.version = version;
            p.backendIndex = *pick;
            p.affinity = affinity;
            p.countsInFlight = true;
            p.payload = payload; // kept for failover replay
            conn.pending.emplace(rid, std::move(p));
        }
        backends[*pick]->jobsRouted.fetch_add(
            1, std::memory_order_relaxed);
        requestsForwarded.fetch_add(1, std::memory_order_relaxed);
        try {
            sendOnLink(*link, sealRaw(type, rid, payload, version));
        } catch (const std::exception &) {
            // The link reader's failover re-homes the pending we
            // just registered; from here the request is in flight.
        }
        return;
    }
    // Nothing healthy to route to.
    releaseFlowSlot(conn);
    if (type == MsgType::TrySubmitRequest) {
        Writer w;
        w.boolean(false);
        w.u64(0);
        queueFrame(conn, MsgType::TrySubmitReply, client_rid, version,
                   w);
        jobsShed.fetch_add(1, std::memory_order_relaxed);
    } else {
        queueError(conn, client_rid, version, WireErrorCode::Internal,
                   "no healthy backend");
    }
}

void
QumaGateway::answerLocally(Conn &conn, std::uint16_t version,
                           std::uint64_t client_rid, MsgType type)
{
    Writer w;
    switch (type) {
    case MsgType::StatusRequest:
        // A job whose backend is mid-failover is queued again by
        // definition (its resubmission is on the way).
        w.u8(static_cast<std::uint8_t>(runtime::JobStatus::Queued));
        queueFrame(conn, MsgType::StatusReply, client_rid, version, w);
        return;
    case MsgType::PollRequest:
        w.boolean(false);
        queueFrame(conn, MsgType::PollReply, client_rid, version, w);
        return;
    case MsgType::CancelRequest:
        // Cancel during the failover window is declined: the
        // resubmission is already racing the request.
        w.boolean(false);
        queueFrame(conn, MsgType::CancelReply, client_rid, version, w);
        return;
    default:
        queueError(conn, client_rid, version, WireErrorCode::Internal,
                   "request not answerable during failover");
        return;
    }
}

void
QumaGateway::forwardJobRequest(Conn &conn, std::uint16_t version,
                               std::uint64_t client_rid, MsgType type,
                               std::uint64_t gw_job_id)
{
    std::size_t backendIndex = 0;
    runtime::JobId backendId = 0;
    enum class Action
    {
        Forward,
        Unknown,
        Local
    } action;
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        auto it = conn.jobs.find(gw_job_id);
        if (it == conn.jobs.end()) {
            action = Action::Unknown;
        } else if (it->second.backendId == 0) {
            // Failover window: no live backend id to forward to.
            if (type == MsgType::AwaitRequest) {
                it->second.awaited = true;
                it->second.awaitRid = client_rid;
            }
            action = Action::Local;
        } else {
            backendIndex = it->second.backendIndex;
            backendId = it->second.backendId;
            if (type == MsgType::AwaitRequest) {
                it->second.awaited = true;
                it->second.awaitRid = client_rid;
            }
            action = Action::Forward;
        }
    }
    if (action == Action::Unknown) {
        releaseFlowSlot(conn);
        // Mirror the server: unknown ids error, except Cancel which
        // answers false.
        if (type == MsgType::CancelRequest) {
            Writer w;
            w.boolean(false);
            queueFrame(conn, MsgType::CancelReply, client_rid,
                       version, w);
        } else {
            queueError(conn, client_rid, version,
                       WireErrorCode::UnknownJob,
                       "unknown job id at the gateway");
        }
        return;
    }
    if (action == Action::Local) {
        releaseFlowSlot(conn);
        if (type != MsgType::AwaitRequest)
            answerLocally(conn, version, client_rid, type);
        // A deferred await is re-issued (slot-free) once the
        // failover resubmission acks.
        return;
    }
    std::uint64_t rid;
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        rid = conn.nextBackendRid++;
        Pending p;
        p.clientRid = client_rid;
        p.reqType = type;
        p.version = version;
        p.backendIndex = backendIndex;
        p.gwJobId = gw_job_id;
        p.countsInFlight = true;
        conn.pending.emplace(rid, std::move(p));
    }
    requestsForwarded.fetch_add(1, std::memory_order_relaxed);
    Writer w;
    w.u64(backendId);
    std::shared_ptr<BackendLink> link;
    try {
        link = ensureLink(conn, backendIndex);
        sendOnLink(*link, sealFrame(type, rid, w, version));
    } catch (const std::exception &) {
        backends[backendIndex]->healthy.store(
            false, std::memory_order_relaxed);
        // With a live link its reader runs the failover; with no
        // link (connect failed) nobody else will -- run it here.
        if (!link)
            failoverLink(conn, backendIndex);
    }
}

// --- backend replies --------------------------------------------------------

void
QumaGateway::handleBackendFrame(Conn &conn, BackendLink &link,
                                const FrameHeader &fh,
                                std::vector<std::uint8_t> payload)
{
    std::vector<LinkSend> sends;
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        if (fh.type == MsgType::ProgressFrame) {
            // Push under the await's rid: rewrite the job id and
            // pass along. No pending = a late push after failover
            // re-homed the await; it evaporates.
            auto it = conn.pending.find(fh.requestId);
            if (it == conn.pending.end())
                return;
            const Pending &p = it->second;
            Reader r(payload);
            ProgressFrameData pf = decodeProgressFrame(r);
            r.expectEnd();
            pf.job = p.gwJobId;
            Writer w;
            encodeProgressFrame(w, pf);
            conn.outbox.push(sealFrame(MsgType::ProgressFrame,
                                       p.clientRid, w, p.version));
            progressForwarded.fetch_add(1,
                                        std::memory_order_relaxed);
            return;
        }
        auto node = conn.pending.extract(fh.requestId);
        if (node.empty())
            return; // reply to a request failover already re-homed
        Pending p = std::move(node.mapped());
        if (p.countsInFlight) {
            --conn.inFlight;
            conn.cvFlow.notify_all();
        }
        const bool isError = fh.type == MsgType::ErrorReply;

        switch (p.reqType) {
        case MsgType::SubmitRequest:
        case MsgType::TrySubmitRequest: {
            if (isError) {
                if (p.internal) {
                    // The failover resubmission itself was refused:
                    // the job is lost; its awaiting client learns
                    // through the forwarded error.
                    auto jit = conn.jobs.find(p.gwJobId);
                    if (jit != conn.jobs.end()) {
                        if (jit->second.awaited)
                            conn.outbox.push(sealRaw(
                                MsgType::ErrorReply,
                                jit->second.awaitRid, payload,
                                jit->second.version));
                        conn.jobs.erase(jit);
                    }
                } else {
                    conn.outbox.push(sealRaw(MsgType::ErrorReply,
                                             p.clientRid, payload,
                                             p.version));
                }
                errorsReturned.fetch_add(1,
                                         std::memory_order_relaxed);
                break;
            }
            bool accepted = true;
            runtime::JobId backendJob = 0;
            {
                Reader r(payload);
                if (p.reqType == MsgType::TrySubmitRequest)
                    accepted = r.boolean();
                backendJob = r.u64();
                r.expectEnd();
            }
            if (p.internal) {
                // Resubmission acked: the job lives again, on the
                // new backend. Re-issue its await if one waits.
                auto jit = conn.jobs.find(p.gwJobId);
                if (jit == conn.jobs.end())
                    break;
                JobEntry &e = jit->second;
                e.backendIndex = p.backendIndex;
                e.backendId = backendJob;
                if (e.awaited) {
                    std::uint64_t rid = conn.nextBackendRid++;
                    Pending ap;
                    ap.clientRid = e.awaitRid;
                    ap.reqType = MsgType::AwaitRequest;
                    ap.version = e.version;
                    ap.backendIndex = p.backendIndex;
                    ap.gwJobId = p.gwJobId;
                    conn.pending.emplace(rid, std::move(ap));
                    Writer w;
                    w.u64(backendJob);
                    sends.push_back(
                        {nullptr,
                         sealFrame(MsgType::AwaitRequest, rid, w,
                                   e.version)});
                }
                break;
            }
            if (!accepted) {
                // Backend-side admission rejection: forward as-is.
                conn.outbox.push(sealRaw(MsgType::TrySubmitReply,
                                         p.clientRid, payload,
                                         p.version));
                break;
            }
            const std::uint64_t gwId = nextGwJobId.fetch_add(
                1, std::memory_order_relaxed);
            JobEntry e;
            e.backendIndex = p.backendIndex;
            e.backendId = backendJob;
            e.affinity = p.affinity;
            e.version = p.version;
            e.submitPayload = std::move(p.payload);
            conn.jobs.emplace(gwId, std::move(e));
            Writer w;
            if (p.reqType == MsgType::TrySubmitRequest) {
                w.boolean(true);
                w.u64(gwId);
                conn.outbox.push(sealFrame(MsgType::TrySubmitReply,
                                           p.clientRid, w,
                                           p.version));
            } else {
                w.u64(gwId);
                conn.outbox.push(sealFrame(MsgType::SubmitReply,
                                           p.clientRid, w,
                                           p.version));
            }
            break;
        }
        case MsgType::AwaitRequest: {
            if (!isError) {
                auto jit = conn.jobs.find(p.gwJobId);
                if (jit != conn.jobs.end()) {
                    // Keep the entry (Status/Poll still route after
                    // delivery) but drop the replay payload.
                    jit->second.delivered = true;
                    jit->second.awaited = false;
                    jit->second.submitPayload.clear();
                    jit->second.submitPayload.shrink_to_fit();
                }
                resultsForwarded.fetch_add(
                    1, std::memory_order_relaxed);
            } else {
                errorsReturned.fetch_add(1,
                                         std::memory_order_relaxed);
            }
            // The JobResult payload passes through BYTE-IDENTICAL:
            // this is what makes fleet results bit-identical to the
            // direct path.
            conn.outbox.push(
                sealRaw(fh.type, p.clientRid, payload, p.version));
            break;
        }
        default: {
            // Status/Poll/Cancel replies (or errors): no ids inside,
            // forward unmodified.
            if (isError)
                errorsReturned.fetch_add(1,
                                         std::memory_order_relaxed);
            conn.outbox.push(
                sealRaw(fh.type, p.clientRid, payload, p.version));
            break;
        }
        }
    }
    // Deferred sends (re-issued awaits) go on the SAME link the
    // resubmission was acked on, outside the connection mutex.
    for (auto &s : sends) {
        try {
            sendOnLink(link, s.frame);
        } catch (const std::exception &) {
            // Link died under us; its reader fails over the pending.
        }
    }
}

// --- failover ---------------------------------------------------------------

void
QumaGateway::failoverLink(Conn &conn, std::size_t dead_index)
{
    // Link readers land here whenever their stream dies -- including
    // when the gateway itself closed the link during connection
    // teardown. Only a link lost while the connection is still live
    // is evidence against the backend; marking it unhealthy on a
    // normal client disconnect would yank it out of routing until the
    // next probe.
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        if (conn.closing)
            return;
    }
    backends[dead_index]->healthy.store(false,
                                        std::memory_order_relaxed);

    struct Resubmit
    {
        std::uint64_t gwJobId = 0;
        std::uint64_t clientRid = 0;
        MsgType reqType = MsgType::SubmitRequest;
        std::uint16_t version = kWireVersion;
        std::uint64_t affinity = 0;
        bool internal = false;
        bool countsInFlight = false;
        std::vector<std::uint8_t> payload;
    };
    struct LocalReply
    {
        std::uint64_t clientRid = 0;
        std::uint16_t version = kWireVersion;
        MsgType reqType = MsgType::StatusRequest;
    };
    std::vector<Resubmit> resubmits;
    std::vector<LocalReply> locals;
    {
        std::lock_guard<std::mutex> lock(conn.mu);
        if (conn.closing)
            return;
        for (auto it = conn.pending.begin();
             it != conn.pending.end();) {
            if (it->second.backendIndex != dead_index) {
                ++it;
                continue;
            }
            Pending p = std::move(it->second);
            it = conn.pending.erase(it);
            if (p.countsInFlight) {
                --conn.inFlight;
                conn.cvFlow.notify_all();
            }
            switch (p.reqType) {
            case MsgType::SubmitRequest:
            case MsgType::TrySubmitRequest: {
                Resubmit rs;
                rs.gwJobId = p.gwJobId;
                rs.clientRid = p.clientRid;
                rs.reqType = p.reqType;
                rs.version = p.version;
                rs.affinity = p.affinity;
                rs.internal = p.internal;
                rs.countsInFlight = p.countsInFlight;
                rs.payload = std::move(p.payload);
                resubmits.push_back(std::move(rs));
                break;
            }
            case MsgType::AwaitRequest: {
                // Remember the await on the job; it is re-issued
                // when the job's resubmission acks.
                auto jit = conn.jobs.find(p.gwJobId);
                if (jit != conn.jobs.end()) {
                    jit->second.awaited = true;
                    jit->second.awaitRid = p.clientRid;
                }
                break;
            }
            default:
                locals.push_back(
                    {p.clientRid, p.version, p.reqType});
                break;
            }
        }
        // Acked-but-undelivered jobs living on the dead backend:
        // journal-acked work the client holds an id for. Resubmit
        // them from the stored payload bytes.
        for (auto &[gwId, e] : conn.jobs) {
            if (e.backendIndex != dead_index || e.delivered ||
                e.backendId == 0)
                continue;
            e.backendId = 0; // failover window opens
            Resubmit rs;
            rs.gwJobId = gwId;
            rs.reqType = MsgType::SubmitRequest;
            rs.version = e.version;
            rs.affinity = e.affinity;
            rs.internal = true;
            rs.payload = e.submitPayload;
            resubmits.push_back(std::move(rs));
        }
    }
    if (resubmits.empty() && locals.empty())
        return;
    failovers.fetch_add(1, std::memory_order_relaxed);

    for (auto &l : locals)
        answerLocally(conn, l.version, l.clientRid, l.reqType);

    for (auto &rs : resubmits) {
        bool placed = false;
        for (std::size_t attempt = 0;
             attempt <= backends.size() && !placed; ++attempt) {
            std::optional<std::size_t> pick =
                chooseBackend(rs.affinity, dead_index);
            if (!pick)
                break;
            std::shared_ptr<BackendLink> link;
            try {
                link = ensureLink(conn, *pick);
            } catch (const std::exception &) {
                backends[*pick]->healthy.store(
                    false, std::memory_order_relaxed);
                continue;
            }
            std::uint64_t rid;
            {
                std::lock_guard<std::mutex> lock(conn.mu);
                if (conn.closing)
                    return;
                rid = conn.nextBackendRid++;
                Pending p;
                p.clientRid = rs.clientRid;
                p.reqType = rs.reqType;
                p.version = rs.version;
                p.backendIndex = *pick;
                p.gwJobId = rs.gwJobId;
                p.affinity = rs.affinity;
                p.internal = rs.internal;
                p.countsInFlight = rs.countsInFlight;
                if (rs.countsInFlight) {
                    ++conn.inFlight;
                    noteInFlight(conn.inFlight);
                }
                p.payload = rs.payload;
                conn.pending.emplace(rid, std::move(p));
            }
            backends[*pick]->jobsRouted.fetch_add(
                1, std::memory_order_relaxed);
            backends[dead_index]->resubmittedAway.fetch_add(
                1, std::memory_order_relaxed);
            jobsResubmitted.fetch_add(1, std::memory_order_relaxed);
            try {
                sendOnLink(*link, sealRaw(rs.reqType, rid,
                                          rs.payload, rs.version));
            } catch (const std::exception &) {
                // That link died too; ITS reader re-homes the
                // pending we registered. Ownership transferred.
            }
            placed = true;
        }
        if (placed)
            continue;
        // No healthy backend anywhere: the job (or submit) fails.
        std::uint64_t awaitRid = 0;
        std::uint16_t awaitVersion = kWireVersion;
        bool answerAwait = false;
        if (rs.internal) {
            std::lock_guard<std::mutex> lock(conn.mu);
            auto jit = conn.jobs.find(rs.gwJobId);
            if (jit != conn.jobs.end()) {
                if (jit->second.awaited) {
                    answerAwait = true;
                    awaitRid = jit->second.awaitRid;
                    awaitVersion = jit->second.version;
                }
                conn.jobs.erase(jit);
            }
        }
        if (answerAwait)
            queueError(conn, awaitRid, awaitVersion,
                       WireErrorCode::Internal,
                       "backend lost and no healthy backend left "
                       "for failover");
        if (!rs.internal) {
            if (rs.reqType == MsgType::TrySubmitRequest) {
                Writer w;
                w.boolean(false);
                w.u64(0);
                queueFrame(conn, MsgType::TrySubmitReply,
                           rs.clientRid, rs.version, w);
            } else {
                queueError(conn, rs.clientRid, rs.version,
                           WireErrorCode::Internal,
                           "backend lost and no healthy backend "
                           "left for failover");
            }
        }
    }
}

// --- stats / metrics --------------------------------------------------------

QumaGateway::Stats
QumaGateway::stats() const
{
    Stats s;
    s.connectionsAccepted =
        connectionsAccepted.load(std::memory_order_relaxed);
    s.requestsForwarded =
        requestsForwarded.load(std::memory_order_relaxed);
    s.resultsForwarded =
        resultsForwarded.load(std::memory_order_relaxed);
    s.progressForwarded =
        progressForwarded.load(std::memory_order_relaxed);
    s.errorsReturned = errorsReturned.load(std::memory_order_relaxed);
    s.jobsShed = jobsShed.load(std::memory_order_relaxed);
    s.jobsResubmitted =
        jobsResubmitted.load(std::memory_order_relaxed);
    s.failovers = failovers.load(std::memory_order_relaxed);
    s.statsServed = statsServed.load(std::memory_order_relaxed);
    s.inFlightHighWater =
        inFlightHighWater.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &c : conns) {
            if (c->finished)
                continue;
            ++s.connectionsActive;
            std::lock_guard<std::mutex> lk(c->mu);
            for (const auto &kv : c->jobs)
                if (!kv.second.delivered)
                    ++s.jobsInFlight;
        }
    }
    for (const auto &b : backends) {
        BackendSnapshot snap;
        snap.name = b->cfg.name;
        snap.healthy = b->healthy.load(std::memory_order_relaxed);
        snap.draining = b->draining.load(std::memory_order_relaxed);
        snap.jobsRouted =
            b->jobsRouted.load(std::memory_order_relaxed);
        snap.jobsResubmittedAway =
            b->resubmittedAway.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(b->controlMu);
        snap.haveStats = b->haveStats;
        if (b->haveStats)
            snap.lastStats = b->lastStats;
        s.backends.push_back(std::move(snap));
    }
    return s;
}

void
QumaGateway::bindMetrics(metrics::MetricsRegistry &registry)
{
    auto load = [](const std::atomic<std::size_t> &a) {
        return static_cast<double>(
            a.load(std::memory_order_relaxed));
    };
    registry.counterFn(
        "quma_gateway_connections_accepted_total",
        "Client connections accepted by the gateway.", {},
        [this, load] { return load(connectionsAccepted); });
    registry.gaugeFn(
        "quma_gateway_connections_active",
        "Client connections currently multiplexed.", {}, [this] {
            std::lock_guard<std::mutex> lock(mu);
            std::size_t n = 0;
            for (const auto &c : conns)
                if (!c->finished)
                    ++n;
            return static_cast<double>(n);
        });
    registry.counterFn(
        "quma_gateway_requests_forwarded_total",
        "Client request frames forwarded to a backend.", {},
        [this, load] { return load(requestsForwarded); });
    registry.counterFn(
        "quma_gateway_results_forwarded_total",
        "AwaitReply frames forwarded back to clients.", {},
        [this, load] { return load(resultsForwarded); });
    registry.counterFn(
        "quma_gateway_progress_forwarded_total",
        "ProgressFrame pushes forwarded back to clients.", {},
        [this, load] { return load(progressForwarded); });
    registry.counterFn(
        "quma_gateway_errors_returned_total",
        "Requests answered with an ErrorReply frame.", {},
        [this, load] { return load(errorsReturned); });
    registry.counterFn(
        "quma_gateway_jobs_shed_total",
        "TrySubmits rejected locally on backend saturation.", {},
        [this, load] { return load(jobsShed); });
    registry.counterFn(
        "quma_gateway_jobs_resubmitted_total",
        "Jobs re-homed to another backend by failover.", {},
        [this, load] { return load(jobsResubmitted); });
    registry.counterFn(
        "quma_gateway_failovers_total",
        "Dead-backend-link events that triggered failover.", {},
        [this, load] { return load(failovers); });
    registry.counterFn(
        "quma_gateway_stats_served_total",
        "StatsRequests answered with the merged fleet view.", {},
        [this, load] { return load(statsServed); });
    registry.gaugeFn(
        "quma_gateway_in_flight_high_water",
        "Highest per-connection in-flight request count seen.", {},
        [this, load] { return load(inFlightHighWater); });
    registry.gaugeFn(
        "quma_gateway_jobs_in_flight",
        "Tracked jobs whose results were not yet delivered.", {},
        [this] { return static_cast<double>(stats().jobsInFlight); });
    registry.gaugeFn(
        "quma_gateway_backends_healthy",
        "Backends currently passing health checks.", {}, [this] {
            std::size_t n = 0;
            for (const auto &b : backends)
                if (b->healthy.load(std::memory_order_relaxed))
                    ++n;
            return static_cast<double>(n);
        });
    for (std::size_t i = 0; i < backends.size(); ++i) {
        const metrics::Labels labels{
            {"backend", backends[i]->cfg.name}};
        registry.gaugeFn(
            "quma_gateway_backend_healthy",
            "1 while the backend passes health checks.", labels,
            [this, i] {
                return backends[i]->healthy.load(
                           std::memory_order_relaxed)
                           ? 1.0
                           : 0.0;
            });
        registry.gaugeFn(
            "quma_gateway_backend_draining",
            "1 while the backend is drained out of routing.", labels,
            [this, i] {
                return backends[i]->draining.load(
                           std::memory_order_relaxed)
                           ? 1.0
                           : 0.0;
            });
        registry.counterFn(
            "quma_gateway_backend_jobs_routed_total",
            "Submit frames routed to the backend.", labels,
            [this, i, load] {
                return load(backends[i]->jobsRouted);
            });
        registry.counterFn(
            "quma_gateway_backend_jobs_resubmitted_away_total",
            "Jobs failover moved OFF the backend.", labels,
            [this, i, load] {
                return load(backends[i]->resubmittedAway);
            });
    }
    // The merged fleet view: one scrape of the gateway answers the
    // capacity questions that used to need scraping every backend.
    auto fleet = [this](auto pick) {
        return [this, pick] {
            return pick(fleetStats(cfg.healthInterval));
        };
    };
    registry.counterFn(
        "quma_fleet_jobs_submitted_total",
        "Jobs accepted across all live backends.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.scheduler.submitted);
        }));
    registry.counterFn(
        "quma_fleet_jobs_completed_total",
        "Jobs completed across all live backends.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.scheduler.completed);
        }));
    registry.counterFn(
        "quma_fleet_jobs_failed_total",
        "Jobs failed across all live backends.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.scheduler.failed);
        }));
    registry.counterFn(
        "quma_fleet_shards_executed_total",
        "Shard tasks executed across all live backends.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.scheduler.shardsExecuted);
        }));
    registry.gaugeFn(
        "quma_fleet_machine_saturation",
        "Worst machine-saturation EWMA across the fleet.", {},
        fleet([](const StatsFrame &s) {
            return s.scheduler.machineSaturation;
        }));
    registry.gaugeFn(
        "quma_fleet_queue_capacity",
        "Summed effective queue capacity across the fleet.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.effectiveQueueCapacity);
        }));
    registry.counterFn(
        "quma_fleet_pool_machines_created_total",
        "Machines constructed across all live backends.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.pool.machinesCreated);
        }));
    registry.counterFn(
        "quma_fleet_cache_program_hits_total",
        "Program-cache hits across all live backends.", {},
        fleet([](const StatsFrame &s) {
            return static_cast<double>(s.cache.programHits);
        }));
}

} // namespace quma::net
