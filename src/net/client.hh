/**
 * @file
 * QumaClient: a remote runtime::IExperimentBackend that pipelines.
 *
 * Wraps one wire-protocol connection to a QumaServer and implements
 * the same submit / trySubmit / poll / await surface as the local
 * ExperimentService -- so an experiment fan-out written against
 * IExperimentBackend (AllXY, RB, coherence sweeps) runs unchanged
 * whether its jobs execute in-process or on a server across a
 * socket, with bit-identical results (the spec, including seed,
 * priority and sharding fields, travels losslessly).
 *
 * MULTIPLEXING (wire v2). Every request leaves with a fresh
 * requestId; a background reader thread routes every incoming frame
 * by that id to the promise slot of whichever call is waiting for
 * it. Consequences:
 *
 *  - the client is thread-safe AND concurrent: any number of caller
 *    threads may have requests in flight on the one connection;
 *  - submitAll() pipelines a whole sweep -- all specs are written
 *    back-to-back before the first SubmitReply is read, so an
 *    N-point fan-out pays ~1 submit round-trip instead of N;
 *  - await()/awaitAll()/awaitMany() never poll: the server pushes
 *    each AwaitReply the moment the job completes (scheduler
 *    completion subscription), and the reader fulfils the slot --
 *    results stream in completion order, which awaitMany() exposes
 *    directly and awaitAll() reorders to argument order.
 *
 * Error mapping: ErrorReply{UnknownJob} surfaces as fatal(), exactly
 * like the local scheduler's unknown-id path; other error codes and
 * any framing violation surface as WireError. A dead connection
 * fails every in-flight and future call with WireError.
 */

#ifndef QUMA_NET_CLIENT_HH
#define QUMA_NET_CLIENT_HH

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/metrics.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "quma/hostlink.hh"
#include "runtime/backend.hh"

namespace quma::net {

class QumaClient final : public runtime::IExperimentBackend
{
  public:
    /**
     * Speak the wire protocol over an established stream.
     * @param link_bytes_per_second modeled rate for linkStats()
     */
    explicit QumaClient(std::unique_ptr<ByteStream> stream,
                        double link_bytes_per_second = 30.0e6);

    /** Convenience: connect over TCP (dotted-quad host). */
    QumaClient(const std::string &host, std::uint16_t port);

    ~QumaClient() override;

    // IExperimentBackend surface, forwarded over the wire. The
    // const calls still talk on the wire: connection state is
    // mutable, the observable backend state is not touched.
    runtime::JobId submit(runtime::JobSpec spec) override;
    std::optional<runtime::JobId>
    trySubmit(runtime::JobSpec spec) override;
    runtime::JobStatus status(runtime::JobId id) const override;
    std::optional<runtime::JobResult>
    poll(runtime::JobId id) const override;
    runtime::JobResult await(runtime::JobId id) override;

    /** Pipelined batch submit: all specs are on the wire before the
     *  first reply is read. Ids in argument order. */
    std::vector<runtime::JobId>
    submitAll(std::vector<runtime::JobSpec> specs) override;

    /** Pipelined awaits; results reordered to argument order. */
    std::vector<runtime::JobResult>
    awaitAll(const std::vector<runtime::JobId> &ids) override;

    /**
     * Streaming await: one AwaitRequest per id goes out up front,
     * then (id, result) pairs are returned in COMPLETION order as
     * the server pushes them -- the first finished job is available
     * while the rest still run. The callback overload delivers each
     * pair as it lands instead of collecting.
     */
    std::vector<std::pair<runtime::JobId, runtime::JobResult>>
    awaitMany(const std::vector<runtime::JobId> &ids);
    void awaitStreaming(
        const std::vector<runtime::JobId> &ids,
        const std::function<void(runtime::JobId,
                                 runtime::JobResult)> &deliver);

    /** Remote-side cancel of a still-queued job. */
    bool cancel(runtime::JobId id);

    /** Snapshot of the serving runtime's scheduler/pool stats. */
    StatsFrame stats();

    /** Wire traffic of this connection (bytesUp = toward server). */
    core::LinkStats linkStats() const;

    /**
     * Register this client's series with `registry` (quma_client_*
     * family). The client must outlive the registry's last render.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

    /** Hang up (idempotent, callable from any thread): every
     *  in-flight and future request fails with WireError. */
    void disconnect();

  private:
    /** One in-flight request's parking spot. */
    struct Slot
    {
        bool ready = false;
        MsgType type = MsgType::ErrorReply;
        std::vector<std::uint8_t> payload;
        /** Connection-level failure message (empty = none). */
        std::string failure;
        /** Arrival rank (awaitStreaming delivers in this order). */
        std::uint64_t seq = 0;
        /**
         * Nobody will ever consume this slot (its batch call threw
         * mid-collection): the reader erases it on arrival instead
         * of treating the reply as unsolicited or leaking it.
         */
        bool abandoned = false;
    };

    /**
     * Register a slot and put the request on the wire; returns the
     * requestId to wait on. Thread-safe; concurrent senders are
     * serialized per frame (sendMu), never per round-trip.
     */
    std::uint64_t sendRequest(MsgType type,
                              const Writer &payload) const;
    /** Park until the reader fulfils the slot; decode error replies
     *  (UnknownJob -> fatal, others -> WireError), check the type. */
    std::vector<std::uint8_t> waitReply(std::uint64_t request_id,
                                        MsgType expected_reply) const;
    /** sendRequest + waitReply, the strict-sequential convenience. */
    std::vector<std::uint8_t> roundTrip(MsgType request,
                                        const Writer &payload,
                                        MsgType expected_reply) const;
    void readerLoop();
    /** Fail every slot and all future calls (reader died). */
    void failAllLocked(const std::string &why);
    /**
     * A batch call is unwinding with replies still outstanding:
     * erase what already arrived, flag the rest so the reader
     * erases them on arrival (late pushes must neither leak in the
     * slot map nor read as unsolicited frames).
     */
    void abandonSlots(const std::uint64_t *rids,
                      std::size_t count) const;
    /** Slot -> payload with the shared error mapping applied. */
    std::vector<std::uint8_t> consumeSlotLocked(
        std::uint64_t request_id, MsgType expected_reply) const;

    /** Guards slots, nextRequestId, meter, readerDown. */
    mutable std::mutex mu;
    /** Broadcast whenever the reader fulfils any slot. */
    mutable std::condition_variable cvSlots;
    /** Serializes frame writes (frames must not interleave). */
    mutable std::mutex sendMu;
    std::unique_ptr<ByteStream> stream;
    mutable std::unordered_map<std::uint64_t, Slot> slots;
    mutable std::uint64_t nextRequestId = 1;
    /** Monotone arrival counter stamped onto fulfilled slots. */
    mutable std::uint64_t arrivalSeq = 0;
    mutable bool readerDown = false;
    mutable std::string readerFailure;
    mutable core::LinkMeter meter;

    /** Metric handles; no-ops until bound. Mutable: the const
     *  request surface still counts its traffic. */
    struct Instruments
    {
        metrics::Counter requestsSent;
        metrics::Counter repliesReceived;
    };
    mutable Instruments ms;

    std::thread reader;
};

} // namespace quma::net

#endif // QUMA_NET_CLIENT_HH
