/**
 * @file
 * QumaClient: a remote runtime::IExperimentBackend.
 *
 * Wraps one wire-protocol connection to a QumaServer and implements
 * the same submit / trySubmit / poll / await surface as the local
 * ExperimentService -- so an experiment fan-out written against
 * IExperimentBackend (AllXY, RB, coherence sweeps) runs unchanged
 * whether its jobs execute in-process or on a server across a
 * socket, with bit-identical results (the spec, including seed,
 * priority and sharding fields, travels losslessly).
 *
 * The protocol is strict request/reply, so calls are serialised on
 * an internal mutex: the client is thread-safe but one in-flight
 * request at a time. For concurrent load, open several clients (the
 * network bench drives one connection per thread).
 *
 * Error mapping: ErrorReply{UnknownJob} surfaces as fatal(), exactly
 * like the local scheduler's unknown-id path; other error codes and
 * any framing violation surface as WireError.
 */

#ifndef QUMA_NET_CLIENT_HH
#define QUMA_NET_CLIENT_HH

#include <memory>
#include <mutex>

#include "net/transport.hh"
#include "net/wire.hh"
#include "quma/hostlink.hh"
#include "runtime/backend.hh"

namespace quma::net {

class QumaClient final : public runtime::IExperimentBackend
{
  public:
    /**
     * Speak the wire protocol over an established stream.
     * @param link_bytes_per_second modeled rate for linkStats()
     */
    explicit QumaClient(std::unique_ptr<ByteStream> stream,
                        double link_bytes_per_second = 30.0e6);

    /** Convenience: connect over TCP (dotted-quad host). */
    QumaClient(const std::string &host, std::uint16_t port);

    ~QumaClient() override;

    // IExperimentBackend surface, forwarded over the wire. The
    // const calls still talk on the wire: connection state is
    // mutable, the observable backend state is not touched.
    runtime::JobId submit(runtime::JobSpec spec) override;
    std::optional<runtime::JobId>
    trySubmit(runtime::JobSpec spec) override;
    runtime::JobStatus status(runtime::JobId id) const override;
    std::optional<runtime::JobResult>
    poll(runtime::JobId id) const override;
    runtime::JobResult await(runtime::JobId id) override;

    /** Remote-side cancel of a still-queued job. */
    bool cancel(runtime::JobId id);

    /** Snapshot of the serving runtime's scheduler/pool stats. */
    StatsFrame stats();

    /** Wire traffic of this connection (bytesUp = toward server). */
    core::LinkStats linkStats() const;

    /** Hang up (idempotent, callable from any thread -- it unblocks
     *  an in-flight request, which then fails with WireError);
     *  subsequent requests fail. */
    void disconnect();

  private:
    /** Send `type`+payload, receive the reply, check its type.
     *  const: only the mutable connection plumbing is touched. */
    std::vector<std::uint8_t> roundTrip(MsgType request,
                                        const Writer &payload,
                                        MsgType expected_reply) const;

    mutable std::mutex mu;
    std::unique_ptr<ByteStream> stream;
    mutable core::LinkMeter meter;
};

} // namespace quma::net

#endif // QUMA_NET_CLIENT_HH
