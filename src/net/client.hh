/**
 * @file
 * QumaClient: a remote runtime::IExperimentBackend that pipelines.
 *
 * Wraps one wire-protocol connection to a QumaServer and implements
 * the same submit / trySubmit / poll / await surface as the local
 * ExperimentService -- so an experiment fan-out written against
 * IExperimentBackend (AllXY, RB, coherence sweeps) runs unchanged
 * whether its jobs execute in-process or on a server across a
 * socket, with bit-identical results (the spec, including seed,
 * priority and sharding fields, travels losslessly).
 *
 * MULTIPLEXING (wire v2). Every request leaves with a fresh
 * requestId; a background reader thread routes every incoming frame
 * by that id to the promise slot of whichever call is waiting for
 * it. Consequences:
 *
 *  - the client is thread-safe AND concurrent: any number of caller
 *    threads may have requests in flight on the one connection;
 *  - submitAll() pipelines a whole sweep -- all specs are written
 *    back-to-back before the first SubmitReply is read, so an
 *    N-point fan-out pays ~1 submit round-trip instead of N;
 *  - await()/awaitAll()/awaitMany() never poll: the server pushes
 *    each AwaitReply the moment the job completes (scheduler
 *    completion subscription), and the reader fulfils the slot --
 *    results stream in completion order, which awaitMany() exposes
 *    directly and awaitAll() reorders to argument order.
 *
 * OBSERVABILITY (wire v4). Every Submit carries this client's
 * trace context (a random per-client traceId plus a per-submit
 * spanId), so the server's job-lifecycle trace records under the
 * client's trace; enableSpans() additionally records client-side
 * spans (submit -> ack -> result) and mergedChromeTrace() joins
 * both sides into one clock-aligned Chrome trace JSON. awaitMany /
 * awaitStreaming accept an optional progress callback fed by
 * server-pushed ProgressFrames (rounds completed / total per job).
 *
 * Error mapping: ErrorReply{UnknownJob} surfaces as fatal(), exactly
 * like the local scheduler's unknown-id path; other error codes and
 * any framing violation surface as WireError. A dead connection
 * fails every in-flight and future call with WireError.
 */

#ifndef QUMA_NET_CLIENT_HH
#define QUMA_NET_CLIENT_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/metrics.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "quma/hostlink.hh"
#include "runtime/backend.hh"

namespace quma::net {

class QumaClient final : public runtime::IExperimentBackend
{
  public:
    /**
     * Per-job progress delivery: (job, roundsDone, roundsTotal).
     * Invoked on the client's reader thread as ProgressFrame pushes
     * land (wire v4) -- keep it cheap and non-blocking; a throwing
     * callback is caught and logged, never fails the connection.
     * Best-effort by contract: a job that finishes before its await
     * registers may produce no progress at all, and pushes are
     * rate-limited server-side.
     */
    using ProgressFn = std::function<void(
        runtime::JobId, std::uint64_t, std::uint64_t)>;

    /**
     * One client-side span of a remote job's life, in CLIENT steady
     * nanos (same timebase clockSync() aligns against the server):
     * submit on the wire -> SubmitReply decoded -> result decoded.
     * Recorded only while enableSpans() is on.
     */
    struct ClientSpan
    {
        runtime::JobId job = 0;
        /** Client-generated span id (travels in the v4 Submit's
         *  trace context alongside traceId()). */
        std::uint64_t spanId = 0;
        std::uint64_t submitNanos = 0;
        std::uint64_t ackNanos = 0;
        /** 0 until the result was decoded on this client. */
        std::uint64_t resultNanos = 0;
    };

    /**
     * Speak the wire protocol over an established stream.
     * @param link_bytes_per_second modeled rate for linkStats()
     */
    explicit QumaClient(std::unique_ptr<ByteStream> stream,
                        double link_bytes_per_second = 30.0e6);

    /** Convenience: connect over TCP (dotted-quad host). */
    QumaClient(const std::string &host, std::uint16_t port);

    ~QumaClient() override;

    // IExperimentBackend surface, forwarded over the wire. The
    // const calls still talk on the wire: connection state is
    // mutable, the observable backend state is not touched.
    runtime::JobId submit(runtime::JobSpec spec) override;
    std::optional<runtime::JobId>
    trySubmit(runtime::JobSpec spec) override;
    runtime::JobStatus status(runtime::JobId id) const override;
    std::optional<runtime::JobResult>
    poll(runtime::JobId id) const override;
    runtime::JobResult await(runtime::JobId id) override;

    /** Pipelined batch submit: all specs are on the wire before the
     *  first reply is read. Ids in argument order. */
    std::vector<runtime::JobId>
    submitAll(std::vector<runtime::JobSpec> specs) override;

    /** Pipelined awaits; results reordered to argument order. */
    std::vector<runtime::JobResult>
    awaitAll(const std::vector<runtime::JobId> &ids) override;

    /**
     * Streaming await: one AwaitRequest per id goes out up front,
     * then (id, result) pairs are returned in COMPLETION order as
     * the server pushes them -- the first finished job is available
     * while the rest still run. The callback overload delivers each
     * pair as it lands instead of collecting.
     */
    std::vector<std::pair<runtime::JobId, runtime::JobResult>>
    awaitMany(const std::vector<runtime::JobId> &ids,
              const ProgressFn &progress = {});
    void awaitStreaming(
        const std::vector<runtime::JobId> &ids,
        const std::function<void(runtime::JobId,
                                 runtime::JobResult)> &deliver,
        const ProgressFn &progress = {});

    /** Remote-side cancel of a still-queued job. */
    bool cancel(runtime::JobId id);

    /** Snapshot of the serving runtime's scheduler/pool stats. */
    StatsFrame stats();

    /**
     * The trace id this client stamps into every v4 Submit (random
     * per client instance): the server records job lifecycle events
     * under it, so one id names the whole distributed trace.
     */
    std::uint64_t traceId() const { return traceIdValue; }

    /** Start recording ClientSpans (one per submit from here on).
     *  Off by default: the log grows unbounded while enabled. */
    void enableSpans() { spansEnabled.store(true); }
    /** Everything recorded so far (acked spans first). */
    std::vector<ClientSpan> spans() const;

    /**
     * Estimate the server trace clock as an offset from this
     * client's span clock: one ClockSync round trip, reply mapped
     * onto the midpoint. Returns `offset` such that
     * server_nanos ~= client_nanos + offset (docs/observability.md
     * documents the recipe and its half-RTT error bound).
     */
    std::int64_t clockSync();

    /**
     * ONE Chrome/Perfetto trace-event JSON merging the server's
     * on-demand trace dump (clock-shifted into this client's
     * timebase via clockSync(); pid 1) with this client's recorded
     * spans (pid 2). Jobs submitted by this client carry its
     * traceId() in both halves.
     */
    std::string mergedChromeTrace();

    /** Wire traffic of this connection (bytesUp = toward server). */
    core::LinkStats linkStats() const;

    /**
     * Register this client's series with `registry` (quma_client_*
     * family). The client must outlive the registry's last render.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

    /** Hang up (idempotent, callable from any thread): every
     *  in-flight and future request fails with WireError. */
    void disconnect();

  private:
    /** One in-flight request's parking spot. */
    struct Slot
    {
        bool ready = false;
        MsgType type = MsgType::ErrorReply;
        std::vector<std::uint8_t> payload;
        /** Connection-level failure message (empty = none). */
        std::string failure;
        /** Arrival rank (awaitStreaming delivers in this order). */
        std::uint64_t seq = 0;
        /**
         * Nobody will ever consume this slot (its batch call threw
         * mid-collection): the reader erases it on arrival instead
         * of treating the reply as unsolicited or leaking it.
         */
        bool abandoned = false;
    };

    /**
     * Register a slot and put the request on the wire; returns the
     * requestId to wait on. Thread-safe; concurrent senders are
     * serialized per frame (sendMu), never per round-trip.
     */
    std::uint64_t sendRequest(MsgType type,
                              const Writer &payload) const;
    /** Park until the reader fulfils the slot; decode error replies
     *  (UnknownJob -> fatal, others -> WireError), check the type. */
    std::vector<std::uint8_t> waitReply(std::uint64_t request_id,
                                        MsgType expected_reply) const;
    /** sendRequest + waitReply, the strict-sequential convenience. */
    std::vector<std::uint8_t> roundTrip(MsgType request,
                                        const Writer &payload,
                                        MsgType expected_reply) const;
    void readerLoop();
    /** Fail every slot and all future calls (reader died). */
    void failAllLocked(const std::string &why);
    /**
     * A batch call is unwinding with replies still outstanding:
     * erase what already arrived, flag the rest so the reader
     * erases them on arrival (late pushes must neither leak in the
     * slot map nor read as unsolicited frames).
     */
    void abandonSlots(const std::uint64_t *rids,
                      std::size_t count) const;
    /** Slot -> payload with the shared error mapping applied. */
    std::vector<std::uint8_t> consumeSlotLocked(
        std::uint64_t request_id, MsgType expected_reply) const;
    /** Nanos on this client's span clock (steady, epoch = ctor). */
    std::uint64_t clientNowNanos() const;
    /** Span bookkeeping (no-ops while spans are disabled). */
    void noteSubmitSent(std::uint64_t rid, std::uint64_t span_id,
                        std::uint64_t nanos);
    void noteSubmitAcked(std::uint64_t rid, runtime::JobId id);
    void noteResultDecoded(runtime::JobId id);

    /** Guards slots, nextRequestId, meter, readerDown. */
    mutable std::mutex mu;
    /** Broadcast whenever the reader fulfils any slot. */
    mutable std::condition_variable cvSlots;
    /** Serializes frame writes (frames must not interleave). */
    mutable std::mutex sendMu;
    std::unique_ptr<ByteStream> stream;
    mutable std::unordered_map<std::uint64_t, Slot> slots;
    mutable std::uint64_t nextRequestId = 1;
    /** Monotone arrival counter stamped onto fulfilled slots. */
    mutable std::uint64_t arrivalSeq = 0;
    mutable bool readerDown = false;
    mutable std::string readerFailure;
    mutable core::LinkMeter meter;
    /**
     * ProgressFrame routing, by the awaiting requestId (guarded by
     * mu; handlers invoked OUTSIDE it on the reader thread, hence
     * the shared_ptr copy). A push with no handler -- late, or for
     * a progress-less await -- simply evaporates: unlike a result
     * reply, a ProgressFrame answers no request 1:1, so it can
     * never trip the unsolicited-reply teardown.
     */
    mutable std::unordered_map<std::uint64_t,
                               std::shared_ptr<const ProgressFn>>
        progressHandlers;

    /** Trace identity + span clock (see traceId()/spans()). */
    const std::uint64_t traceIdValue;
    const std::chrono::steady_clock::time_point epoch{
        std::chrono::steady_clock::now()};
    std::atomic<bool> spansEnabled{false};
    std::atomic<std::uint64_t> nextSpanId{0};
    /** Guards the two span maps (never nested with mu). */
    mutable std::mutex spanMu;
    /** Submit sent, reply not yet decoded: keyed by requestId. */
    std::unordered_map<std::uint64_t, ClientSpan> pendingSpans;
    /** Acked (job id known): keyed by job. */
    std::unordered_map<runtime::JobId, ClientSpan> ackedSpans;

    /** Metric handles; no-ops until bound. Mutable: the const
     *  request surface still counts its traffic. */
    struct Instruments
    {
        metrics::Counter requestsSent;
        metrics::Counter repliesReceived;
    };
    mutable Instruments ms;

    std::thread reader;
};

} // namespace quma::net

#endif // QUMA_NET_CLIENT_HH
