/**
 * @file
 * The QuMA wire protocol: versioned, length-prefixed binary frames
 * carrying the experiment runtime's request/reply surface between a
 * QumaClient and a QumaServer (see src/net/README.md for the full
 * frame layout and versioning rules).
 *
 * Every frame is
 *
 *     u32 magic     "QuMA" (0x414D7551 little-endian)
 *     u16 version   kWireVersion
 *     u16 type      MsgType
 *     u32 length    payload byte count (<= kMaxPayloadBytes)
 *     u64 requestId demultiplexing key (v2; see below)
 *     u8  payload[length]
 *
 * The requestId is what makes one connection carry many requests at
 * once: a client stamps every request with a fresh id, the server
 * echoes it on the matching reply, and the client's background
 * reader routes each incoming frame to the request that is waiting
 * for it -- in whatever order the replies arrive. Replies to
 * blocking requests (Await) are pushed by the server the moment the
 * job completes, so they routinely overtake later requests' replies.
 * requestId 0 is reserved for connection-level error frames that
 * answer no particular request (e.g. a version mismatch).
 *
 * Every multi-byte integer is serialized explicitly little-endian,
 * byte by byte -- never by memcpy of a host struct -- so the format
 * is identical across architectures and independent of padding.
 * Doubles travel as the little-endian bytes of their IEEE-754 bit
 * pattern, which is what makes remote JobResults candidates for
 * BIT-identity with local ones rather than mere closeness.
 *
 * Decoding is defensive: a Reader never reads past the payload it
 * was given and throws WireError (no UB, no over-read) on truncated
 * or malformed input; decodeFrameHeader rejects bad magic, foreign
 * versions and oversized lengths before any payload is touched. A
 * foreign version throws the WireVersionError subclass so a server
 * can answer the legacy peer with a clean VersionMismatch error
 * frame before hanging up, instead of dying silently.
 */

#ifndef QUMA_NET_WIRE_HH
#define QUMA_NET_WIRE_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/job.hh"
#include "runtime/machine_pool.hh"
#include "runtime/scheduler.hh"
#include "runtime/trace.hh"

namespace quma::net {

/** Malformed, truncated or protocol-violating wire data. */
class WireError : public std::runtime_error
{
  public:
    explicit WireError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * A structurally valid header speaking a different protocol version.
 * Distinct from plain WireError so the serving side can answer the
 * legacy peer with a VersionMismatch error frame (its framing is
 * intact enough to read) before closing the connection.
 */
class WireVersionError : public WireError
{
  public:
    WireVersionError(const std::string &msg, std::uint16_t peer)
        : WireError(msg), peerVersion(peer)
    {
    }

    /** The version the peer claimed to speak. */
    std::uint16_t peerVersion;
};

/** "QuMA" in little-endian byte order. */
inline constexpr std::uint32_t kWireMagic = 0x414D7551u;
/**
 * Bump on any incompatible layout change (see README).
 * v1: strict request/reply, 12-byte header.
 * v2: + u64 requestId in the header (connection multiplexing and
 *     completion-pushed Await replies).
 * v3: StatsFrame carries program/LUT-cache stats and the pool's
 *     machine-reset count (header layout unchanged from v2).
 * v4: Submit/TrySubmit payloads append a trace context
 *     (traceId + spanId), new ClockSync and TraceDump exchanges,
 *     and server-pushed ProgressFrames on awaited jobs (header
 *     layout unchanged from v2). Servers still serve v3 peers --
 *     see kMinCompatWireVersion.
 */
inline constexpr std::uint16_t kWireVersion = 4;
/**
 * Oldest peer version a server still serves (per connection): a v3
 * client gets v3-stamped replies, no trace context is read from its
 * Submit frames, and no progress frames are pushed at it. Anything
 * older gets the usual VersionMismatch error frame.
 */
inline constexpr std::uint16_t kMinCompatWireVersion = 3;
/** Hard per-frame payload cap; larger lengths are rejected. */
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
/** Serialized frame header size in bytes (v2+: requestId included). */
inline constexpr std::size_t kFrameHeaderBytes = 20;
/**
 * The header prefix every version shares: magic, version, type,
 * length (the v1 header was exactly this). A server reads this much
 * first and validates magic+version before trusting the
 * version-specific remainder -- a legacy frame SHORTER than the v2
 * header (e.g. a 12-byte v1 StatsRequest) must still produce a
 * clean VersionMismatch answer, not a blocked read.
 */
inline constexpr std::size_t kFrameHeaderPrefixBytes = 12;
/**
 * Request id reserved for connection-level error frames that answer
 * no particular request (version mismatch, undecodable header).
 */
inline constexpr std::uint64_t kConnectionRequestId = 0;

/**
 * Semantic caps on decoded JobSpecs. Framing checks alone would let
 * a ~100-byte frame claim 1e8 shards and make the serving scheduler
 * materialize one task per shard (gigabytes, under its mutex) --
 * the denial-of-service the decode side must refuse. Generous
 * multiples of every legitimate workload (the paper's largest sweep
 * is 25600 rounds x 42 bins; shards beyond the pool size are
 * useless).
 */
inline constexpr std::uint64_t kMaxWireShards = 4096;
inline constexpr std::uint64_t kMaxWireRounds = 1ull << 24;
inline constexpr std::uint64_t kMaxWireBins = 1ull << 20;
/** Cap on rounds x bins: bounds the per-job collector-sum memory. */
inline constexpr std::uint64_t kMaxWireRoundBins = 1ull << 26;

/**
 * Frame types. Requests occupy [1, 63], replies [64, 126]; 127 is
 * the error reply. A reply's type is its request's type + 64, which
 * clients use to reject mismatched responses. ProgressFrame (v4)
 * sits in the reply range but answers no request 1:1: the server
 * pushes any number of them under an AwaitRequest's id before the
 * terminal AwaitReply.
 */
enum class MsgType : std::uint16_t
{
    SubmitRequest = 1,
    TrySubmitRequest = 2,
    StatusRequest = 3,
    PollRequest = 4,
    AwaitRequest = 5,
    StatsRequest = 6,
    CancelRequest = 7,
    ClockSyncRequest = 8,
    TraceDumpRequest = 9,

    SubmitReply = 65,
    TrySubmitReply = 66,
    StatusReply = 67,
    PollReply = 68,
    AwaitReply = 69,
    StatsReply = 70,
    CancelReply = 71,
    ClockSyncReply = 72,
    TraceDumpReply = 73,

    /** Server-push: shard progress for an awaited job (v4). */
    ProgressFrame = 80,

    ErrorReply = 127,
};

/** Error codes carried by an ErrorReply frame. */
enum class WireErrorCode : std::uint16_t
{
    /** Request frame decoded but violated protocol rules. */
    BadRequest = 1,
    /** Job id unknown to the serving scheduler. */
    UnknownJob = 2,
    /** Server is shutting down; no further requests served. */
    Shutdown = 3,
    /** Serving-side exception while executing the request. */
    Internal = 4,
    /**
     * Peer speaks a different wire version. Sent with
     * requestId = kConnectionRequestId just before the connection is
     * closed (mixed-version deployments are unsupported; the frame
     * exists so the legacy peer fails with a diagnosis, not a hang).
     */
    VersionMismatch = 5,
};

/** Little-endian payload builder. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    /** u32 byte count + raw bytes. */
    void str(const std::string &s);
    void vecF64(const std::vector<double> &v);
    void vecU64(const std::vector<std::size_t> &v);

    const std::vector<std::uint8_t> &bytes() const { return buf; }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked little-endian payload consumer. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : p(data), n(size)
    {
    }
    explicit Reader(const std::vector<std::uint8_t> &payload)
        : Reader(payload.data(), payload.size())
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool boolean();
    std::string str();
    std::vector<double> vecF64();
    std::vector<std::size_t> vecU64();

    std::size_t remaining() const { return n - at; }
    /** Throw unless the payload was consumed exactly. */
    void expectEnd() const;

  private:
    void need(std::size_t bytes) const;

    const std::uint8_t *p;
    std::size_t n;
    std::size_t at = 0;
};

/** Decoded frame header (magic/version already validated). */
struct FrameHeader
{
    MsgType type = MsgType::ErrorReply;
    std::uint32_t length = 0;
    /** Demux key echoed between request and its replies. */
    std::uint64_t requestId = kConnectionRequestId;
};

/**
 * Serialize a complete frame (header + payload). `version` is the
 * version stamped into the header: a server answering a v3 peer
 * seals its replies at the peer's version (the v3 client's strict
 * header check would reject a v4 stamp). The header LAYOUT is
 * identical for every version >= 2, so only the stamp varies.
 */
std::vector<std::uint8_t> sealFrame(MsgType type,
                                    std::uint64_t request_id,
                                    const Writer &payload,
                                    std::uint16_t version = kWireVersion);

/**
 * Validate the version-independent prefix (kFrameHeaderPrefixBytes):
 * throws WireError on bad magic and WireVersionError on a foreign
 * version. Callers read and check this much FIRST, so a legacy
 * frame shorter than the v2 header still gets a clean diagnosis.
 */
void checkFramePrefix(const std::uint8_t *prefix);

/**
 * The serving side's prefix check: accepts any version in
 * [kMinCompatWireVersion, kWireVersion] and RETURNS the peer's
 * version so the connection can adapt (reply stamps, optional v4
 * fields). Throws like checkFramePrefix outside that window.
 */
std::uint16_t checkFramePrefixCompat(const std::uint8_t *prefix);

/**
 * Validate and decode the kFrameHeaderBytes header bytes; throws
 * WireError on bad magic, unknown type or oversized length, and
 * WireVersionError on a foreign version (so the caller can answer
 * the legacy peer before hanging up).
 */
FrameHeader decodeFrameHeader(const std::uint8_t *header);

/**
 * Decode type/length/requestId from a header whose prefix was
 * already validated by checkFramePrefixCompat -- the serving path
 * for connections that may legitimately speak an older (compatible)
 * version than kWireVersion.
 */
FrameHeader decodeFrameHeaderUnchecked(const std::uint8_t *header);

/** Error frame payload. */
struct ErrorFrame
{
    WireErrorCode code = WireErrorCode::Internal;
    std::string message;
};

/** Stats reply payload: one snapshot of the serving runtime. */
struct StatsFrame
{
    runtime::JobScheduler::Stats scheduler;
    runtime::MachinePool::Stats pool;
    /** Program/LUT cache counters (v3). */
    runtime::ProgramCache::Stats cache;
    std::size_t effectiveQueueCapacity = 0;
};

/**
 * Trace context a v4 client appends to every Submit/TrySubmit
 * payload: traceId names the whole client session (every job of one
 * sweep shares it), spanId names this request (the client uses its
 * requestId). The server records the job's lifecycle under this
 * trace, which is what lets the client merge both sides into one
 * trace-event file. All-zero means "no trace" and is legal.
 */
struct TraceContext
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
};

/**
 * Server-pushed shard progress for an awaited job (v4): rounds the
 * scheduler has completed out of the spec's total, across every
 * shard including stolen ranges. Monotonic per job; the terminal
 * AwaitReply -- not a 100% frame -- is the completion signal.
 */
struct ProgressFrameData
{
    runtime::JobId job = 0;
    std::uint64_t roundsDone = 0;
    std::uint64_t roundsTotal = 0;
};

/**
 * Clock-sync reply payload (v4): the server's trace clock "now"
 * (JobTraceRecorder::nowNanos) sampled while serving the request.
 * The client brackets the round trip with its own clock and derives
 * the offset that maps server trace timestamps into its timebase
 * (see docs/observability.md, "clock alignment").
 */
struct ClockSyncFrame
{
    std::uint64_t serverNanos = 0;
};

/**
 * Trace-dump reply payload (v4): the server's buffered lifecycle
 * events plus the job -> traceId associations, in the server's
 * timebase. Raw events rather than rendered JSON so the client can
 * clock-shift and merge without parsing.
 */
struct TraceDumpFrame
{
    std::vector<runtime::TraceEvent> events;
    std::vector<std::pair<runtime::JobId, std::uint64_t>> traceIds;
    /** Events lost to the bounded server buffer. */
    std::uint64_t dropped = 0;
};

// --- message payload codecs -------------------------------------------------
//
// Each encode appends to a Writer; each decode consumes from a Reader
// and throws WireError on malformed input. Frame payloads must be
// consumed exactly (the frame decoders call expectEnd()).

/**
 * Encode a JobSpec. Remote jobs travel as assembly source: a spec
 * carrying a pre-assembled isa::Program is rejected here (the binary
 * program image is a host-side optimisation, not a wire format).
 */
void encodeJobSpec(Writer &w, const runtime::JobSpec &spec);
runtime::JobSpec decodeJobSpec(Reader &r);

void encodeJobResult(Writer &w, const runtime::JobResult &result);
runtime::JobResult decodeJobResult(Reader &r);

void encodeStatsFrame(Writer &w, const StatsFrame &stats);
StatsFrame decodeStatsFrame(Reader &r);

void encodeErrorFrame(Writer &w, const ErrorFrame &error);
ErrorFrame decodeErrorFrame(Reader &r);

void encodeTraceContext(Writer &w, const TraceContext &ctx);
TraceContext decodeTraceContext(Reader &r);

void encodeProgressFrame(Writer &w, const ProgressFrameData &p);
ProgressFrameData decodeProgressFrame(Reader &r);

void encodeClockSyncFrame(Writer &w, const ClockSyncFrame &c);
ClockSyncFrame decodeClockSyncFrame(Reader &r);

void encodeTraceDumpFrame(Writer &w, const TraceDumpFrame &dump);
TraceDumpFrame decodeTraceDumpFrame(Reader &r);

void encodeMachineConfig(Writer &w, const core::MachineConfig &mc);
core::MachineConfig decodeMachineConfig(Reader &r);

} // namespace quma::net

#endif // QUMA_NET_WIRE_HH
