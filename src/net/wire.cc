#include "net/wire.hh"

#include <bit>

namespace quma::net {

// --- primitives -------------------------------------------------------------

void
Writer::u16(std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
Writer::u32(std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        buf.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
Writer::u64(std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        buf.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
Writer::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
Writer::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
Writer::str(const std::string &s)
{
    if (s.size() > kMaxPayloadBytes)
        throw WireError("string too large for a wire frame");
    u32(static_cast<std::uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

void
Writer::vecF64(const std::vector<double> &v)
{
    if (v.size() > kMaxPayloadBytes / 8)
        throw WireError("vector too large for a wire frame");
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v)
        f64(x);
}

void
Writer::vecU64(const std::vector<std::size_t> &v)
{
    if (v.size() > kMaxPayloadBytes / 8)
        throw WireError("vector too large for a wire frame");
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::size_t x : v)
        u64(x);
}

void
Reader::need(std::size_t bytes) const
{
    if (n - at < bytes)
        throw WireError("truncated payload: wanted " +
                        std::to_string(bytes) + " bytes, " +
                        std::to_string(n - at) + " left");
}

std::uint8_t
Reader::u8()
{
    need(1);
    return p[at++];
}

std::uint16_t
Reader::u16()
{
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        p[at] | (static_cast<std::uint16_t>(p[at + 1]) << 8));
    at += 2;
    return v;
}

std::uint32_t
Reader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[at + i]) << (8 * i);
    at += 4;
    return v;
}

std::uint64_t
Reader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[at + i]) << (8 * i);
    at += 8;
    return v;
}

std::int64_t
Reader::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
Reader::f64()
{
    return std::bit_cast<double>(u64());
}

bool
Reader::boolean()
{
    std::uint8_t v = u8();
    if (v > 1)
        throw WireError("malformed boolean byte");
    return v == 1;
}

std::string
Reader::str()
{
    std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(p + at), len);
    at += len;
    return s;
}

std::vector<double>
Reader::vecF64()
{
    std::uint32_t len = u32();
    // Validate the claimed element count against the bytes actually
    // present BEFORE allocating, so a malicious length cannot force a
    // huge allocation out of a tiny frame.
    need(static_cast<std::size_t>(len) * 8);
    std::vector<double> v;
    v.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i)
        v.push_back(f64());
    return v;
}

std::vector<std::size_t>
Reader::vecU64()
{
    std::uint32_t len = u32();
    need(static_cast<std::size_t>(len) * 8);
    std::vector<std::size_t> v;
    v.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i)
        v.push_back(static_cast<std::size_t>(u64()));
    return v;
}

void
Reader::expectEnd() const
{
    if (at != n)
        throw WireError("payload has " + std::to_string(n - at) +
                        " trailing bytes");
}

// --- framing ----------------------------------------------------------------

std::vector<std::uint8_t>
sealFrame(MsgType type, std::uint64_t request_id,
          const Writer &payload, std::uint16_t version)
{
    const std::vector<std::uint8_t> &body = payload.bytes();
    if (body.size() > kMaxPayloadBytes)
        throw WireError("payload exceeds the frame size cap");
    Writer header;
    header.u32(kWireMagic);
    header.u16(version);
    header.u16(static_cast<std::uint16_t>(type));
    header.u32(static_cast<std::uint32_t>(body.size()));
    header.u64(request_id);
    std::vector<std::uint8_t> frame = header.bytes();
    frame.insert(frame.end(), body.begin(), body.end());
    return frame;
}

namespace {

bool
knownMsgType(std::uint16_t t)
{
    switch (static_cast<MsgType>(t)) {
    case MsgType::SubmitRequest:
    case MsgType::TrySubmitRequest:
    case MsgType::StatusRequest:
    case MsgType::PollRequest:
    case MsgType::AwaitRequest:
    case MsgType::StatsRequest:
    case MsgType::CancelRequest:
    case MsgType::ClockSyncRequest:
    case MsgType::TraceDumpRequest:
    case MsgType::SubmitReply:
    case MsgType::TrySubmitReply:
    case MsgType::StatusReply:
    case MsgType::PollReply:
    case MsgType::AwaitReply:
    case MsgType::StatsReply:
    case MsgType::CancelReply:
    case MsgType::ClockSyncReply:
    case MsgType::TraceDumpReply:
    case MsgType::ProgressFrame:
    case MsgType::ErrorReply:
        return true;
    }
    return false;
}

} // namespace

namespace {

[[noreturn]] void
throwVersionError(std::uint16_t version)
{
    throw WireVersionError(
        "unsupported wire version " + std::to_string(version) +
            " (speaking " + std::to_string(kWireVersion) +
            (version < kWireVersion
                 ? "; v2 frames carry a requestId the peer does "
                   "not send)"
                 : ")"),
        version);
}

std::uint16_t
readPrefixVersion(const std::uint8_t *prefix)
{
    Reader r(prefix, kFrameHeaderPrefixBytes);
    std::uint32_t magic = r.u32();
    if (magic != kWireMagic)
        throw WireError("bad frame magic");
    return r.u16();
}

} // namespace

void
checkFramePrefix(const std::uint8_t *prefix)
{
    std::uint16_t version = readPrefixVersion(prefix);
    if (version != kWireVersion)
        throwVersionError(version);
}

std::uint16_t
checkFramePrefixCompat(const std::uint8_t *prefix)
{
    std::uint16_t version = readPrefixVersion(prefix);
    if (version < kMinCompatWireVersion || version > kWireVersion)
        throwVersionError(version);
    return version;
}

FrameHeader
decodeFrameHeaderUnchecked(const std::uint8_t *header)
{
    Reader r(header + 6, kFrameHeaderBytes - 6);
    std::uint16_t type = r.u16();
    if (!knownMsgType(type))
        throw WireError("unknown frame type " + std::to_string(type));
    std::uint32_t length = r.u32();
    if (length > kMaxPayloadBytes)
        throw WireError("frame payload length " +
                        std::to_string(length) +
                        " exceeds the size cap");
    std::uint64_t requestId = r.u64();
    return FrameHeader{static_cast<MsgType>(type), length, requestId};
}

FrameHeader
decodeFrameHeader(const std::uint8_t *header)
{
    checkFramePrefix(header);
    return decodeFrameHeaderUnchecked(header);
}

// --- machine configuration --------------------------------------------------

void
encodeMachineConfig(Writer &w, const core::MachineConfig &mc)
{
    w.u32(static_cast<std::uint32_t>(mc.qubits.size()));
    for (const auto &q : mc.qubits) {
        w.f64(q.freqHz);
        w.f64(q.resonatorHz);
        w.f64(q.t1Ns);
        w.f64(q.t2Ns);
        w.f64(q.quasiStaticDetuningSigmaHz);
        w.f64(q.rabiRadPerAmpNs);
        w.f64(q.readout.c0.real());
        w.f64(q.readout.c0.imag());
        w.f64(q.readout.c1.real());
        w.f64(q.readout.c1.imag());
        w.f64(q.readout.noiseSigma);
        w.f64(q.readout.ifHz);
        w.f64(q.readout.adcRateHz);
    }
    w.u32(mc.numAwgs);
    w.u32(static_cast<std::uint32_t>(mc.driveAwg.size()));
    for (unsigned a : mc.driveAwg)
        w.u32(a);
    w.f64(mc.ssbHz);
    w.f64(mc.pulseNs);
    w.u64(mc.gateWaitCycles);
    w.f64(mc.amplitudeError);
    w.f64(mc.carrierDetuningHz);
    w.u64(mc.uopDelayCycles);
    w.u64(mc.ctpgDelayCycles);
    w.u64(mc.mduLatencyCycles);
    w.u64(mc.msmtCycles);
    w.i64(mc.msmtPathDelayCycles);
    w.i64(mc.czDurationNs);
    w.f64(mc.msmtCarrierHz);
    w.u32(mc.exec.issueWidth);
    w.boolean(mc.exec.stallInjection);
    w.f64(mc.exec.stallProbability);
    w.u32(mc.exec.maxStallCycles);
    w.u64(mc.exec.seed);
    w.u64(mc.exec.dataMemoryWords);
    w.u64(mc.timing.timingQueueCapacity);
    w.u64(mc.timing.pulseQueueCapacity);
    w.u64(mc.timing.mpgQueueCapacity);
    w.u64(mc.timing.mdQueueCapacity);
    w.u32(mc.timing.numPulseQueues);
    w.u32(mc.timing.numMdQueues);
    w.u64(mc.qmbDepth);
    w.u32(mc.qmbDrainRate);
    w.u64(mc.chipSeed);
    w.boolean(mc.traceEnabled);
}

core::MachineConfig
decodeMachineConfig(Reader &r)
{
    core::MachineConfig mc;
    std::uint32_t nq = r.u32();
    // 13 doubles per qubit entry: size-check the claim up front.
    if (static_cast<std::size_t>(nq) * 13 * 8 > r.remaining())
        throw WireError("qubit list larger than its frame");
    mc.qubits.clear();
    mc.qubits.reserve(nq);
    for (std::uint32_t i = 0; i < nq; ++i) {
        qsim::TransmonParams q;
        q.freqHz = r.f64();
        q.resonatorHz = r.f64();
        q.t1Ns = r.f64();
        q.t2Ns = r.f64();
        q.quasiStaticDetuningSigmaHz = r.f64();
        q.rabiRadPerAmpNs = r.f64();
        double c0re = r.f64();
        double c0im = r.f64();
        q.readout.c0 = {c0re, c0im};
        double c1re = r.f64();
        double c1im = r.f64();
        q.readout.c1 = {c1re, c1im};
        q.readout.noiseSigma = r.f64();
        q.readout.ifHz = r.f64();
        q.readout.adcRateHz = r.f64();
        mc.qubits.push_back(q);
    }
    mc.numAwgs = r.u32();
    std::uint32_t nd = r.u32();
    if (static_cast<std::size_t>(nd) * 4 > r.remaining())
        throw WireError("driveAwg list larger than its frame");
    mc.driveAwg.clear();
    mc.driveAwg.reserve(nd);
    for (std::uint32_t i = 0; i < nd; ++i)
        mc.driveAwg.push_back(r.u32());
    mc.ssbHz = r.f64();
    mc.pulseNs = r.f64();
    mc.gateWaitCycles = r.u64();
    mc.amplitudeError = r.f64();
    mc.carrierDetuningHz = r.f64();
    mc.uopDelayCycles = r.u64();
    mc.ctpgDelayCycles = r.u64();
    mc.mduLatencyCycles = r.u64();
    mc.msmtCycles = r.u64();
    mc.msmtPathDelayCycles = r.i64();
    mc.czDurationNs = r.i64();
    mc.msmtCarrierHz = r.f64();
    mc.exec.issueWidth = r.u32();
    mc.exec.stallInjection = r.boolean();
    mc.exec.stallProbability = r.f64();
    mc.exec.maxStallCycles = r.u32();
    mc.exec.seed = r.u64();
    mc.exec.dataMemoryWords = r.u64();
    mc.timing.timingQueueCapacity = r.u64();
    mc.timing.pulseQueueCapacity = r.u64();
    mc.timing.mpgQueueCapacity = r.u64();
    mc.timing.mdQueueCapacity = r.u64();
    mc.timing.numPulseQueues = r.u32();
    mc.timing.numMdQueues = r.u32();
    mc.qmbDepth = r.u64();
    mc.qmbDrainRate = r.u32();
    mc.chipSeed = r.u64();
    mc.traceEnabled = r.boolean();
    return mc;
}

// --- job spec ---------------------------------------------------------------

void
encodeJobSpec(Writer &w, const runtime::JobSpec &spec)
{
    if (spec.program)
        throw WireError("remote jobs travel as assembly source; "
                        "pre-assembled programs are host-local");
    w.str(spec.name);
    w.str(spec.assembly);
    encodeMachineConfig(w, spec.machine);
    w.u64(spec.bins);
    w.u64(spec.seed);
    w.u64(spec.maxCycles);
    w.u64(spec.rounds);
    w.u64(spec.shards);
    w.u64(spec.minRoundsPerShard);
    w.u8(static_cast<std::uint8_t>(spec.priority));
}

runtime::JobSpec
decodeJobSpec(Reader &r)
{
    runtime::JobSpec spec;
    spec.name = r.str();
    spec.assembly = r.str();
    spec.machine = decodeMachineConfig(r);
    spec.bins = static_cast<std::size_t>(r.u64());
    spec.seed = r.u64();
    spec.maxCycles = r.u64();
    spec.rounds = static_cast<std::size_t>(r.u64());
    spec.shards = static_cast<std::size_t>(r.u64());
    spec.minRoundsPerShard = static_cast<std::size_t>(r.u64());
    if (spec.bins > kMaxWireBins)
        throw WireError("job bins " + std::to_string(spec.bins) +
                        " exceed the wire cap");
    if (spec.rounds > kMaxWireRounds)
        throw WireError("job rounds " + std::to_string(spec.rounds) +
                        " exceed the wire cap");
    if (spec.shards > kMaxWireShards)
        throw WireError("job shards " + std::to_string(spec.shards) +
                        " exceed the wire cap");
    if (spec.rounds > 0 && spec.bins > 0 &&
        spec.rounds > kMaxWireRoundBins / spec.bins)
        throw WireError("job rounds x bins exceed the wire cap");
    std::uint8_t prio = r.u8();
    if (prio > static_cast<std::uint8_t>(runtime::JobPriority::High))
        throw WireError("unknown job priority class " +
                        std::to_string(prio));
    spec.priority = static_cast<runtime::JobPriority>(prio);
    return spec;
}

// --- job result -------------------------------------------------------------

void
encodeJobResult(Writer &w, const runtime::JobResult &result)
{
    w.u64(result.run.cyclesRun);
    w.boolean(result.run.halted);
    w.u64(result.run.violations.latePoints);
    w.u64(result.run.violations.staleEvents);
    w.u64(result.run.violations.totalLateCycles);
    w.vecF64(result.averages);
    w.vecF64(result.bitAverages);
    w.u64(result.sampleCount);
    w.str(result.error);
}

runtime::JobResult
decodeJobResult(Reader &r)
{
    runtime::JobResult result;
    result.run.cyclesRun = r.u64();
    result.run.halted = r.boolean();
    result.run.violations.latePoints =
        static_cast<std::size_t>(r.u64());
    result.run.violations.staleEvents =
        static_cast<std::size_t>(r.u64());
    result.run.violations.totalLateCycles = r.u64();
    result.averages = r.vecF64();
    result.bitAverages = r.vecF64();
    result.sampleCount = static_cast<std::size_t>(r.u64());
    result.error = r.str();
    return result;
}

// --- stats ------------------------------------------------------------------

namespace {

void
encodeLatencyDigest(Writer &w,
                    const runtime::JobScheduler::LatencyDigest &d)
{
    w.u64(d.count);
    w.f64(d.p50);
    w.f64(d.p95);
    w.f64(d.max);
}

runtime::JobScheduler::LatencyDigest
decodeLatencyDigest(Reader &r)
{
    runtime::JobScheduler::LatencyDigest d;
    d.count = static_cast<std::size_t>(r.u64());
    d.p50 = r.f64();
    d.p95 = r.f64();
    d.max = r.f64();
    return d;
}

} // namespace

void
encodeStatsFrame(Writer &w, const StatsFrame &stats)
{
    const auto &s = stats.scheduler;
    w.u64(s.submitted);
    w.u64(s.rejected);
    w.u64(s.completed);
    w.u64(s.failed);
    w.u64(s.cancelled);
    w.u64(s.queueHighWater);
    w.u64(s.batchedJobs);
    w.u64(s.shardedJobs);
    w.u64(s.shardsExecuted);
    w.u64(s.saturatedRuns);
    w.u64(s.admissionSoftRejects);
    w.f64(s.machineSaturation);
    w.f64(s.poolWaitEwmaSeconds);
    for (const auto &d : s.latency)
        encodeLatencyDigest(w, d);

    const auto &p = stats.pool;
    w.u64(p.machinesCreated);
    w.u64(p.acquisitions);
    w.u64(p.reuseHits);
    w.u64(p.evictions);
    w.u64(p.machineResets);
    w.u64(p.idleMachines);
    w.u64(p.leasedMachines);

    const auto &c = stats.cache;
    w.u64(c.programHits);
    w.u64(c.programMisses);
    w.u64(c.programEvictions);
    w.u64(c.lutHits);
    w.u64(c.lutMisses);
    w.u64(c.lutEvictions);

    w.u64(stats.effectiveQueueCapacity);
}

StatsFrame
decodeStatsFrame(Reader &r)
{
    StatsFrame stats;
    auto &s = stats.scheduler;
    s.submitted = static_cast<std::size_t>(r.u64());
    s.rejected = static_cast<std::size_t>(r.u64());
    s.completed = static_cast<std::size_t>(r.u64());
    s.failed = static_cast<std::size_t>(r.u64());
    s.cancelled = static_cast<std::size_t>(r.u64());
    s.queueHighWater = static_cast<std::size_t>(r.u64());
    s.batchedJobs = static_cast<std::size_t>(r.u64());
    s.shardedJobs = static_cast<std::size_t>(r.u64());
    s.shardsExecuted = static_cast<std::size_t>(r.u64());
    s.saturatedRuns = static_cast<std::size_t>(r.u64());
    s.admissionSoftRejects = static_cast<std::size_t>(r.u64());
    s.machineSaturation = r.f64();
    s.poolWaitEwmaSeconds = r.f64();
    for (auto &d : s.latency)
        d = decodeLatencyDigest(r);

    auto &p = stats.pool;
    p.machinesCreated = static_cast<std::size_t>(r.u64());
    p.acquisitions = static_cast<std::size_t>(r.u64());
    p.reuseHits = static_cast<std::size_t>(r.u64());
    p.evictions = static_cast<std::size_t>(r.u64());
    p.machineResets = static_cast<std::size_t>(r.u64());
    p.idleMachines = static_cast<std::size_t>(r.u64());
    p.leasedMachines = static_cast<std::size_t>(r.u64());

    auto &c = stats.cache;
    c.programHits = static_cast<std::size_t>(r.u64());
    c.programMisses = static_cast<std::size_t>(r.u64());
    c.programEvictions = static_cast<std::size_t>(r.u64());
    c.lutHits = static_cast<std::size_t>(r.u64());
    c.lutMisses = static_cast<std::size_t>(r.u64());
    c.lutEvictions = static_cast<std::size_t>(r.u64());

    stats.effectiveQueueCapacity = static_cast<std::size_t>(r.u64());
    return stats;
}

// --- error ------------------------------------------------------------------

void
encodeErrorFrame(Writer &w, const ErrorFrame &error)
{
    w.u16(static_cast<std::uint16_t>(error.code));
    w.str(error.message);
}

ErrorFrame
decodeErrorFrame(Reader &r)
{
    ErrorFrame e;
    std::uint16_t code = r.u16();
    if (code < 1 ||
        code > static_cast<std::uint16_t>(WireErrorCode::VersionMismatch))
        throw WireError("unknown wire error code " +
                        std::to_string(code));
    e.code = static_cast<WireErrorCode>(code);
    e.message = r.str();
    return e;
}

// --- v4 observability payloads ----------------------------------------------

void
encodeTraceContext(Writer &w, const TraceContext &ctx)
{
    w.u64(ctx.traceId);
    w.u64(ctx.spanId);
}

TraceContext
decodeTraceContext(Reader &r)
{
    TraceContext ctx;
    ctx.traceId = r.u64();
    ctx.spanId = r.u64();
    return ctx;
}

void
encodeProgressFrame(Writer &w, const ProgressFrameData &p)
{
    w.u64(p.job);
    w.u64(p.roundsDone);
    w.u64(p.roundsTotal);
}

ProgressFrameData
decodeProgressFrame(Reader &r)
{
    ProgressFrameData p;
    p.job = r.u64();
    p.roundsDone = r.u64();
    p.roundsTotal = r.u64();
    if (p.roundsDone > p.roundsTotal)
        throw WireError("progress frame claims " +
                        std::to_string(p.roundsDone) + "/" +
                        std::to_string(p.roundsTotal) + " rounds");
    return p;
}

void
encodeClockSyncFrame(Writer &w, const ClockSyncFrame &c)
{
    w.u64(c.serverNanos);
}

ClockSyncFrame
decodeClockSyncFrame(Reader &r)
{
    ClockSyncFrame c;
    c.serverNanos = r.u64();
    return c;
}

void
encodeTraceDumpFrame(Writer &w, const TraceDumpFrame &dump)
{
    if (dump.events.size() > kMaxPayloadBytes / 21 ||
        dump.traceIds.size() > kMaxPayloadBytes / 16)
        throw WireError("trace dump too large for a wire frame");
    w.u32(static_cast<std::uint32_t>(dump.events.size()));
    for (const runtime::TraceEvent &e : dump.events) {
        w.u64(e.job);
        w.u32(e.shard);
        w.u8(static_cast<std::uint8_t>(e.phase));
        w.u64(e.nanos);
    }
    w.u32(static_cast<std::uint32_t>(dump.traceIds.size()));
    for (const auto &[job, traceId] : dump.traceIds) {
        w.u64(job);
        w.u64(traceId);
    }
    w.u64(dump.dropped);
}

TraceDumpFrame
decodeTraceDumpFrame(Reader &r)
{
    TraceDumpFrame dump;
    std::uint32_t nEvents = r.u32();
    // 21 bytes per serialized event: size-check the claim up front.
    if (static_cast<std::size_t>(nEvents) * 21 > r.remaining())
        throw WireError("trace event list larger than its frame");
    dump.events.reserve(nEvents);
    for (std::uint32_t i = 0; i < nEvents; ++i) {
        runtime::TraceEvent e;
        e.job = r.u64();
        e.shard = r.u32();
        std::uint8_t phase = r.u8();
        if (phase > static_cast<std::uint8_t>(
                        runtime::TracePhase::ResultPushed))
            throw WireError("unknown trace phase " +
                            std::to_string(phase));
        e.phase = static_cast<runtime::TracePhase>(phase);
        e.nanos = r.u64();
        dump.events.push_back(e);
    }
    std::uint32_t nIds = r.u32();
    if (static_cast<std::size_t>(nIds) * 16 > r.remaining())
        throw WireError("trace id list larger than its frame");
    dump.traceIds.reserve(nIds);
    for (std::uint32_t i = 0; i < nIds; ++i) {
        runtime::JobId job = r.u64();
        std::uint64_t traceId = r.u64();
        dump.traceIds.emplace_back(job, traceId);
    }
    dump.dropped = r.u64();
    return dump;
}

} // namespace quma::net
