/**
 * @file
 * Deterministic capture replay: re-drive a recorded connection
 * against a fresh service and diff every result byte-for-byte.
 *
 * The determinism contract (a JobResult is a pure function of its
 * JobSpec -- runtime/job.hh) means a captured session is a complete
 * reproduction recipe: feed the same inbound frames to a fresh
 * ExperimentService and every job MUST produce the bit-identical
 * result the original server streamed. replayCapture() automates
 * exactly that, which turns any incident capture into an exact-repro
 * debugger and any checked-in capture into a standing regression
 * guard on the contract (tests/data/, tests/test_journal.cc).
 *
 * ID REMAPPING. The fresh service assigns its own JobIds, so the
 * replies to Submit/TrySubmit requests are the correlation points:
 * for each such requestId the CAPTURED reply names the old id and the
 * REPLAYED reply names the new one. Id-bearing requests
 * (Status/Poll/Await/Cancel, payload = one u64) are rewritten
 * old -> new before sending; the sender blocks until the mapping
 * exists (the original client did too -- it could not name an id
 * before reading it).
 *
 * WHAT IS COMPARED. Only AwaitReply payloads: they carry final
 * JobResults, which determinism pins exactly. Status/Poll replies are
 * snapshots of a race (Queued vs Running vs Done depends on timing)
 * and Stats replies aggregate load -- both are re-driven but not
 * diffed. Submit/TrySubmit replies feed the id map. A request whose
 * captured reply was an ErrorReply expects an ErrorReply back (same
 * code class is not enforced -- error strings may differ).
 */

#ifndef QUMA_NET_REPLAY_HH
#define QUMA_NET_REPLAY_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/capture.hh"

namespace quma::net {

struct ReplayOptions
{
    /** Fresh-service worker count (determinism makes it free). */
    unsigned workers = 2;
    /** Fresh-service queue bound; generous so a capture recorded
     *  against a busy server is not throttled differently here. */
    std::size_t queueCapacity = 4096;
    /** Give up on missing replies after this long. */
    std::chrono::milliseconds timeout = std::chrono::minutes(2);
};

/** One reply whose byte-compare failed. */
struct ReplayMismatch
{
    std::uint64_t requestId = 0;
    std::string reason;
};

struct ReplayReport
{
    std::size_t framesSent = 0;
    /** Captured AwaitReply frames eligible for comparison. */
    std::size_t awaitedResults = 0;
    /** ... of which byte-matched the replayed reply. */
    std::size_t matchedResults = 0;
    std::vector<ReplayMismatch> mismatches;
    /** Replies still missing when ReplayOptions::timeout expired. */
    std::size_t timedOut = 0;
    /** Capture-side damage (torn tail) noted for the caller. */
    std::size_t corruptRecords = 0;

    bool
    ok() const
    {
        return awaitedResults == matchedResults &&
               mismatches.empty() && timedOut == 0;
    }
};

/**
 * Boot a fresh ExperimentService + QumaServer over an in-process
 * loopback, re-send `capture`'s inbound frames in order (ids
 * rewritten), and byte-compare every AwaitReply against the captured
 * one. Throws WireError only on an unusable capture (invalid file or
 * undecodable inbound frame); everything downstream is reported, not
 * thrown.
 */
ReplayReport replayCapture(const CaptureFile &capture,
                           const ReplayOptions &options = {});

} // namespace quma::net

#endif // QUMA_NET_REPLAY_HH
