/**
 * @file
 * Byte transports under the QuMA wire protocol.
 *
 * The protocol layer (wire.hh) and the endpoints (QumaServer,
 * QumaClient) speak to a blocking ByteStream; two transports
 * implement it:
 *
 *  - TCP over POSIX sockets (TcpListener / tcpConnect): the real
 *    deployment path, used by the quma_serve example, the network
 *    bench and the remote-vs-local bit-identity tests (loopback);
 *  - an in-process pipe pair (LoopbackListener / loopbackPair):
 *    deterministic, file-descriptor-free connections for unit tests
 *    and for embedding a server and its clients in one process.
 *
 * Both are stream-oriented and preserve byte order; framing is
 * entirely the wire protocol's job.
 */

#ifndef QUMA_NET_TRANSPORT_HH
#define QUMA_NET_TRANSPORT_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

namespace quma::net {

/**
 * A blocking, bidirectional byte stream. Thread model: one thread
 * may send while another receives, but each direction must be driven
 * by at most one thread at a time.
 */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /** Send exactly `size` bytes; throws WireError on a dead peer. */
    virtual void sendAll(const std::uint8_t *data, std::size_t size) = 0;

    /**
     * Receive exactly `size` bytes. Returns false on a clean EOF
     * BEFORE the first byte (peer closed between frames); throws
     * WireError when the stream dies mid-buffer.
     */
    virtual bool recvAll(std::uint8_t *data, std::size_t size) = 0;

    /**
     * Non-blocking liveness probe: false once the peer has hung up
     * (or this end closed). The server polls this from its bounded
     * scheduler waits so a vanished client's connection is torn down
     * -- and its queued jobs cancelled -- without waiting for the
     * blocked request to complete.
     */
    virtual bool peerAlive() = 0;

    /** Shut the stream down, unblocking both directions (idempotent,
     *  safe to call from any thread). */
    virtual void close() = 0;
};

/** Accept side of a transport. */
class Listener
{
  public:
    virtual ~Listener() = default;

    /** Block for the next connection; nullptr once closed. */
    virtual std::unique_ptr<ByteStream> accept() = 0;

    /** Stop accepting and unblock accept() (idempotent). */
    virtual void close() = 0;
};

// --- TCP --------------------------------------------------------------------

/**
 * Listening TCP socket. Binds 127.0.0.1 by default (the serving
 * layer models the paper's host-PC-to-control-box link, which is a
 * local cable, and tests/benches only need loopback); pass
 * loopback_only = false to serve a real network interface.
 */
class TcpListener final : public Listener
{
  public:
    /** @param port TCP port; 0 picks an ephemeral one (see port()). */
    explicit TcpListener(std::uint16_t port,
                         bool loopback_only = true);
    ~TcpListener() override;

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return boundPort; }

    std::unique_ptr<ByteStream> accept() override;
    void close() override;

  private:
    int fd = -1;
    std::uint16_t boundPort = 0;
};

/** Connect to a QumaServer over TCP. */
std::unique_ptr<ByteStream> tcpConnect(const std::string &host,
                                       std::uint16_t port);

// --- in-process loopback ----------------------------------------------------

/** One direction of an in-process pipe. */
struct PipeBuffer
{
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::uint8_t> bytes;
    bool closed = false;
    /**
     * Buffered-byte bound, modeling a kernel socket buffer: a
     * sender blocks once this many bytes are unread, exactly the
     * backpressure a real TCP stream exerts on a peer that stops
     * reading. Unlimited by default (the historical behaviour).
     */
    std::size_t capacity = static_cast<std::size_t>(-1);
};

/**
 * A connected pair of in-process streams (client end, server end).
 * @param capacity per-direction buffered-byte bound (see PipeBuffer)
 */
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
loopbackPair(std::size_t capacity = static_cast<std::size_t>(-1));

/**
 * In-process listener: connect() synthesises a loopbackPair, queues
 * the server end for accept() and returns the client end.
 */
class LoopbackListener final : public Listener
{
  public:
    /** @param pipe_capacity buffered-byte bound per direction of
     *  every synthesised connection (default unlimited). */
    explicit LoopbackListener(
        std::size_t pipe_capacity = static_cast<std::size_t>(-1))
        : pipeCapacity(pipe_capacity)
    {
    }

    /** New connection; returns the client-side stream. */
    std::unique_ptr<ByteStream> connect();

    std::unique_ptr<ByteStream> accept() override;
    void close() override;

  private:
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<ByteStream>> pending;
    bool stopped = false;
    const std::size_t pipeCapacity;
};

} // namespace quma::net

#endif // QUMA_NET_TRANSPORT_HH
