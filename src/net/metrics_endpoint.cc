#include "net/metrics_endpoint.hh"

#include <cstddef>
#include <string>

#include "common/logging.hh"

namespace quma::net {

namespace {

/** Hard cap on one request's bytes: a request line plus a sane
 *  header block fits far under this; past it the peer is hostile. */
constexpr std::size_t kMaxRequestBytes = 8192;

/** The exposition content type Prometheus scrapers negotiate. */
constexpr const char *kContentType =
    "text/plain; version=0.0.4; charset=utf-8";

std::string
httpResponse(const std::string &status, const std::string &body)
{
    std::string out = "HTTP/1.0 " + status + "\r\n";
    out += "Content-Type: ";
    out += kContentType;
    out += "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsEndpoint::MetricsEndpoint(
    const metrics::MetricsRegistry &registry_,
    std::unique_ptr<Listener> listener_)
    : registry(registry_), listener(std::move(listener_))
{
    if (!listener)
        fatal("MetricsEndpoint needs a listener");
    acceptor = std::thread([this] { acceptLoop(); });
}

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

void
MetricsEndpoint::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped)
            return;
        stopped = true;
        // A scrape in flight must not hold the join below: closing
        // its stream unblocks the byte-at-a-time request read.
        if (active)
            active->close();
    }
    listener->close();
    if (acceptor.joinable())
        acceptor.join();
}

std::size_t
MetricsEndpoint::scrapesServed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return scrapes;
}

void
MetricsEndpoint::acceptLoop()
{
    for (;;) {
        std::unique_ptr<ByteStream> stream = listener->accept();
        if (!stream)
            return;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopped) {
                stream->close();
                return;
            }
            active = stream.get();
        }
        try {
            serveScrape(*stream);
        } catch (const std::exception &) {
            // Dead or hostile scraper: drop the connection, keep
            // the endpoint.
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            active = nullptr;
        }
        stream->close();
    }
}

void
MetricsEndpoint::serveScrape(ByteStream &stream)
{
    // Byte-at-a-time until the header terminator: an HTTP request
    // has no length prefix, and over-reading past the terminator
    // would block forever on a client that sent exactly one request
    // (curl keeps the socket open for the response).
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
        if (request.size() >= kMaxRequestBytes) {
            std::string r =
                httpResponse("400 Bad Request", "request too large\n");
            stream.sendAll(
                reinterpret_cast<const std::uint8_t *>(r.data()),
                r.size());
            return;
        }
        std::uint8_t byte = 0;
        if (!stream.recvAll(&byte, 1))
            return; // peer hung up before finishing the request
        request.push_back(static_cast<char>(byte));
    }

    // Request line: METHOD SP PATH SP VERSION. Only the first two
    // tokens matter here.
    std::size_t eol = request.find_first_of("\r\n");
    std::string line = request.substr(0, eol);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    std::string method =
        sp1 == std::string::npos ? line : line.substr(0, sp1);
    std::string path = sp2 == std::string::npos
                           ? std::string()
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);

    std::string response;
    if (method != "GET" || path.empty()) {
        response = httpResponse("400 Bad Request",
                                "only GET requests are served\n");
    } else if (path != "/metrics") {
        response = httpResponse("404 Not Found",
                                "try GET /metrics\n");
    } else {
        response =
            httpResponse("200 OK", registry.renderPrometheus());
        std::lock_guard<std::mutex> lock(mu);
        ++scrapes;
    }
    stream.sendAll(
        reinterpret_cast<const std::uint8_t *>(response.data()),
        response.size());
}

} // namespace quma::net
