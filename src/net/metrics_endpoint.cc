#include "net/metrics_endpoint.hh"

#include <cstddef>
#include <optional>
#include <string>

#include "common/logging.hh"

namespace quma::net {

namespace {

/** Hard cap on one request's bytes: a request line plus a sane
 *  header block fits far under this; past it the peer is hostile. */
constexpr std::size_t kMaxRequestBytes = 8192;

/** The exposition content type Prometheus scrapers negotiate. */
constexpr const char *kContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/**
 * One full response. `head_only` keeps the body off the wire while
 * Content-Length still states its size -- the HEAD contract, which
 * lets a liveness probe check a page without paying for its bytes.
 */
std::string
httpResponse(const std::string &status,
             const std::string &content_type, const std::string &body,
             bool head_only = false)
{
    std::string out = "HTTP/1.0 " + status + "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    if (!head_only)
        out += body;
    return out;
}

} // namespace

MetricsEndpoint::MetricsEndpoint(
    const metrics::MetricsRegistry &registry_,
    std::unique_ptr<Listener> listener_)
    : registry(registry_), listener(std::move(listener_))
{
    if (!listener)
        fatal("MetricsEndpoint needs a listener");
    acceptor = std::thread([this] { acceptLoop(); });
}

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

void
MetricsEndpoint::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped)
            return;
        stopped = true;
        // A scrape in flight must not hold the join below: closing
        // its stream unblocks the byte-at-a-time request read.
        if (active)
            active->close();
    }
    listener->close();
    if (acceptor.joinable())
        acceptor.join();
}

std::size_t
MetricsEndpoint::scrapesServed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return scrapes;
}

void
MetricsEndpoint::addHandler(const std::string &path,
                            const std::string &content_type,
                            std::function<std::string()> render)
{
    if (path.empty() || path.front() != '/')
        fatal("handler path must start with '/': '", path, "'");
    if (!render)
        fatal("handler for '", path, "' needs a render function");
    std::lock_guard<std::mutex> lock(mu);
    handlers[path] = Handler{content_type, std::move(render)};
}

void
MetricsEndpoint::acceptLoop()
{
    for (;;) {
        std::unique_ptr<ByteStream> stream = listener->accept();
        if (!stream)
            return;
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopped) {
                stream->close();
                return;
            }
            active = stream.get();
        }
        try {
            serveScrape(*stream);
        } catch (const std::exception &) {
            // Dead or hostile scraper: drop the connection, keep
            // the endpoint.
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            active = nullptr;
        }
        stream->close();
    }
}

void
MetricsEndpoint::serveScrape(ByteStream &stream)
{
    // Byte-at-a-time until the header terminator: an HTTP request
    // has no length prefix, and over-reading past the terminator
    // would block forever on a client that sent exactly one request
    // (curl keeps the socket open for the response).
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
        if (request.size() >= kMaxRequestBytes) {
            std::string r = httpResponse("400 Bad Request",
                                         kContentType,
                                         "request too large\n");
            stream.sendAll(
                reinterpret_cast<const std::uint8_t *>(r.data()),
                r.size());
            return;
        }
        std::uint8_t byte = 0;
        if (!stream.recvAll(&byte, 1))
            return; // peer hung up before finishing the request
        request.push_back(static_cast<char>(byte));
    }

    // Request line: METHOD SP PATH SP VERSION. Only the first two
    // tokens matter here.
    std::size_t eol = request.find_first_of("\r\n");
    std::string line = request.substr(0, eol);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    std::string method =
        sp1 == std::string::npos ? line : line.substr(0, sp1);
    std::string path = sp2 == std::string::npos
                           ? std::string()
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);

    // HEAD routes exactly like GET; only the body is withheld.
    const bool head = method == "HEAD";
    std::string response;
    if ((method != "GET" && !head) || path.empty()) {
        response =
            httpResponse("400 Bad Request", kContentType,
                         "only GET and HEAD are served\n", head);
    } else {
        // Copy the handler out so its render runs without mu: a
        // render may read stats from the very runtime whose metric
        // callbacks could otherwise interleave with this lock.
        std::optional<Handler> handler;
        {
            std::lock_guard<std::mutex> lock(mu);
            auto it = handlers.find(path);
            if (it != handlers.end())
                handler = it->second;
        }
        if (handler) {
            try {
                response = httpResponse("200 OK",
                                        handler->contentType,
                                        handler->render(), head);
                std::lock_guard<std::mutex> lock(mu);
                ++scrapes;
            } catch (const std::exception &ex) {
                response = httpResponse(
                    "500 Internal Server Error", kContentType,
                    std::string("handler failed: ") + ex.what() +
                        "\n",
                    head);
            }
        } else if (path == "/metrics") {
            response = httpResponse("200 OK", kContentType,
                                    registry.renderPrometheus(),
                                    head);
            std::lock_guard<std::mutex> lock(mu);
            ++scrapes;
        } else {
            response = httpResponse("404 Not Found", kContentType,
                                    "try GET /metrics\n", head);
        }
    }
    stream.sendAll(
        reinterpret_cast<const std::uint8_t *>(response.data()),
        response.size());
}

} // namespace quma::net
