#include "net/capture.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "runtime/journal.hh"

namespace quma::net {

CaptureFile
readCapture(const std::string &path)
{
    CaptureFile out;

    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return out;
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }

    runtime::ScanResult scan =
        runtime::scanRecords(bytes, kCaptureMagic);
    out.corruptRecords = scan.corruptRecords;
    out.valid = scan.magicValid;
    for (runtime::ScannedRecord &rec : scan.records) {
        switch (static_cast<CaptureRecordType>(rec.type)) {
        case CaptureRecordType::Inbound:
        case CaptureRecordType::Outbound:
            out.frames.push_back(
                {rec.type == static_cast<std::uint16_t>(
                                 CaptureRecordType::Inbound),
                 std::move(rec.payload)});
            break;
        default:
            break; // future record type: skip, keep the rest
        }
    }
    return out;
}

CaptureWriter::CaptureWriter(const std::string &path)
{
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("capture: cannot open '", path,
              "': ", std::strerror(errno));
    if (::write(fd, kCaptureMagic.data(), kCaptureMagic.size()) !=
        static_cast<ssize_t>(kCaptureMagic.size())) {
        ::close(fd);
        fatal("capture: cannot write magic to '", path,
              "': ", std::strerror(errno));
    }
}

CaptureWriter::~CaptureWriter()
{
    if (fd >= 0)
        ::close(fd);
}

void
CaptureWriter::record(CaptureRecordType direction,
                      const std::uint8_t *frame, std::size_t size)
{
    std::vector<std::uint8_t> payload(frame, frame + size);
    std::vector<std::uint8_t> record;
    runtime::appendRecord(record,
                          static_cast<std::uint16_t>(direction),
                          payload);

    std::lock_guard<std::mutex> lock(mu);
    if (fd < 0)
        return;
    std::size_t off = 0;
    while (off < record.size()) {
        const ssize_t n =
            ::write(fd, record.data() + off, record.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("capture: write failed: ", std::strerror(errno));
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

} // namespace quma::net
