/**
 * @file
 * QumaGateway: the fleet front door -- a mostly-stateless frame
 * forwarder that multiplexes wire v3/v4 client connections across N
 * QumaServer backends (docs/fleet.md is the operator contract).
 *
 * ROUTING. Every Submit/TrySubmit is routed by CONFIG AFFINITY: the
 * gateway hashes runtime::configKey(spec.machine) -- the canonical,
 * seed-free identity of a MachineConfig -- and picks a backend by
 * rendezvous (highest-random-weight) hashing over the healthy,
 * non-draining set. Jobs for one machine configuration therefore
 * land on the backend whose ProgramCache and MachinePool shard are
 * already warm for it, and adding or draining a backend only remaps
 * the keys that touched it (no global reshuffle). The spec is
 * decoded for routing only; the original payload bytes are forwarded
 * unmodified, so the backend journals and executes exactly what the
 * client sent.
 *
 * MULTIPLEXING. One client connection fans out over per-backend
 * links opened lazily by that connection. The gateway mints fresh
 * backend-side requestIds (a pending map routes each backend reply
 * to the client requestId that caused it) and fresh GATEWAY JOB IDS
 * (backend job ids are per-process sequences and would collide
 * across the fleet): SubmitReply/TrySubmitReply ids, the id operand
 * of Status/Poll/Await/Cancel requests, and the job field of pushed
 * ProgressFrames are rewritten at the boundary. AwaitReply and
 * PollReply payloads carry no job id, so results pass through
 * BYTE-IDENTICAL -- the fleet preserves the runtime's bit-identity
 * contract end to end (pinned by tests/test_gateway.cc).
 *
 * LIFECYCLE. A health thread probes every backend each
 * healthInterval through a per-backend control QumaClient (a wire
 * stats round trip; an optional healthProbe hook adds an HTTP
 * /healthz check). drain()/undrain() remove a backend from routing
 * while in-flight jobs finish. When a backend dies mid-flight (link
 * EOF or wire error), the gateway FAILS OVER: every job of that
 * connection acked-but-undelivered on the dead backend is
 * resubmitted -- from the stored submit payload, under a fresh
 * internal requestId -- to the next backend its affinity hash
 * selects, and pending awaits are re-issued once the resubmission is
 * acked. Client-visible ids never change; the client just sees its
 * results arrive. (Re-running a job on another backend returns the
 * bit-identical result by the determinism contract, so failover is
 * invisible, not merely survivable.)
 *
 * PROTECTION. Per-connection flow control caps the client-origin
 * requests a connection may have in flight (the reader simply stops
 * reading at the cap -- TCP backpressure does the rest), so one
 * greedy pipeliner cannot monopolize a backend queue. Overload
 * shedding consults the chosen backend's admission EWMAs from its
 * last StatsFrame (machine saturation, pool wait) and answers
 * TrySubmit locally with a rejection when the backend is saturated
 * -- the cheap no before the expensive round trip. Blocking Submits
 * are never shed (their backpressure is the contract).
 *
 * AGGREGATION. StatsRequests are answered locally with the merged
 * fleet view (counters summed, EWMAs max-combined), and
 * bindMetrics() exposes both the gateway's own counters
 * (quma_gateway_*) and the merged per-backend runtime stats
 * (quma_fleet_*) -- the fleet-wide metric aggregation the ROADMAP
 * called for. ClockSync is answered with the gateway's clock;
 * TraceDump returns an empty dump (per-backend traces stay on the
 * backends; see docs/fleet.md).
 */

#ifndef QUMA_NET_GATEWAY_HH
#define QUMA_NET_GATEWAY_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.hh"
#include "net/client.hh"
#include "net/transport.hh"
#include "net/wire.hh"

namespace quma::net {

/** One routable backend: a name (stable identity for metrics and
 *  drain commands) plus how to reach it. */
struct GatewayBackend
{
    std::string name;
    /** Open a fresh wire connection (throws WireError when the
     *  backend is unreachable -- that IS the health signal). */
    std::function<std::unique_ptr<ByteStream>()> connect;
    /**
     * Optional extra liveness check run by the health thread after
     * the wire probe succeeds (e.g. an HTTP GET /healthz against the
     * backend's metrics port). Empty = wire probe only.
     */
    std::function<bool()> healthProbe;
};

/** Convenience: a TCP backend named "host:port". */
GatewayBackend tcpBackend(const std::string &host, std::uint16_t port);

struct GatewayConfig
{
    /** Health-probe cadence (also the staleness bound metric
     *  callbacks accept before refreshing backend stats). */
    std::chrono::milliseconds healthInterval{500};
    /**
     * Per-connection cap on client-origin requests in flight through
     * the gateway. At the cap the connection's reader stops reading
     * -- the client feels ordinary TCP backpressure -- until a
     * reply frees a slot. Internal failover traffic is exempt (it
     * must drain even through a saturated connection).
     */
    std::size_t maxInFlightPerClient = 256;
    /** Shed TrySubmit locally when the routed backend's machine
     *  saturation EWMA is at/over this (its scheduler would soft-
     *  reject anyway; the gateway saves the round trip). */
    double shedSaturation = 0.9;
    /** Same, for the pool-wait EWMA (seconds). */
    double shedPoolWaitSeconds = 0.5;
    /** Per-connection outbox bound (slow-consumer teardown),
     *  mirroring ServerConfig::maxQueuedReplyFrames. */
    std::size_t maxQueuedReplyFrames = 8192;
};

class QumaGateway
{
  public:
    /** Point-in-time view of one backend, inside Stats. */
    struct BackendSnapshot
    {
        std::string name;
        bool healthy = false;
        bool draining = false;
        /** lastStats holds a real (possibly stale) snapshot. */
        bool haveStats = false;
        StatsFrame lastStats;
        /** Submit/TrySubmit frames routed here. */
        std::size_t jobsRouted = 0;
        /** Jobs moved OFF this backend by failover. */
        std::size_t jobsResubmittedAway = 0;
    };

    struct Stats
    {
        std::size_t connectionsAccepted = 0;
        std::size_t connectionsActive = 0;
        /** Client request frames forwarded to a backend. */
        std::size_t requestsForwarded = 0;
        /** AwaitReply frames forwarded back to clients. */
        std::size_t resultsForwarded = 0;
        /** ProgressFrame pushes forwarded back to clients. */
        std::size_t progressForwarded = 0;
        /** Requests answered with an ErrorReply (locally or
         *  forwarded from a backend). */
        std::size_t errorsReturned = 0;
        /** TrySubmits answered locally with a rejection because the
         *  routed backend's admission EWMAs were over threshold. */
        std::size_t jobsShed = 0;
        /** Jobs resubmitted to another backend by failover. */
        std::size_t jobsResubmitted = 0;
        /** Dead-backend-link events that triggered failover. */
        std::size_t failovers = 0;
        /** StatsRequests answered with the merged fleet view. */
        std::size_t statsServed = 0;
        /** Highest per-connection in-flight count ever reached
         *  (pins the flow-control cap in tests). */
        std::size_t inFlightHighWater = 0;
        /** Tracked jobs not yet delivered, across connections. */
        std::size_t jobsInFlight = 0;
        std::vector<BackendSnapshot> backends;
    };

    /**
     * Start the front door: probes every backend once (so routing
     * has a health picture before the first client), then accepts
     * until stop(). At least one backend is required.
     */
    QumaGateway(std::vector<GatewayBackend> backend_list,
                std::unique_ptr<Listener> listener,
                GatewayConfig config = {});
    ~QumaGateway();

    QumaGateway(const QumaGateway &) = delete;
    QumaGateway &operator=(const QumaGateway &) = delete;

    /** Stop accepting, close every connection and link, join all
     *  threads (idempotent). */
    void stop();

    /**
     * Take a backend out of routing (new jobs avoid it; in-flight
     * jobs keep running and their results still flow back). False
     * when no backend has that name.
     */
    bool drain(const std::string &name);
    /** Put a drained backend back into routing. */
    bool undrain(const std::string &name);

    Stats stats() const;

    /**
     * The merged fleet view (what a client's StatsRequest gets):
     * per-backend StatsFrames no older than `max_age` are merged --
     * counters and capacities summed, EWMAs and percentiles
     * max-combined. Stale backends are refreshed synchronously
     * through their control client; an unreachable backend
     * contributes its last known snapshot (or nothing).
     */
    StatsFrame fleetStats(std::chrono::milliseconds max_age);

    /**
     * Register the gateway's own series (quma_gateway_*) and the
     * merged backend runtime series (quma_fleet_*) with `registry`.
     * The gateway must outlive the registry's last render.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    /** Sealed reply frames queued for one connection's writer. */
    struct Outbox
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<std::vector<std::uint8_t>> frames;
        bool closed = false;
        std::size_t limit = 8192;

        bool push(std::vector<std::uint8_t> frame);
        std::optional<std::vector<std::uint8_t>> pop();
        void close();
    };

    /** One backend link opened by one client connection. */
    struct BackendLink
    {
        std::size_t index = 0;
        std::unique_ptr<ByteStream> stream;
        /** Serializes frame writes onto the link. */
        std::mutex sendMu;
        std::thread reader;
    };

    /** One request in flight toward a backend. */
    struct Pending
    {
        /** The client requestId awaiting the reply (for internal
         *  resubmits: the await rid to answer, or 0). */
        std::uint64_t clientRid = 0;
        MsgType reqType = MsgType::SubmitRequest;
        /** Wire version the client frame carried (replies are
         *  sealed at it; internal traffic runs at it too so the
         *  backend's trace-context gating matches the original). */
        std::uint16_t version = kWireVersion;
        std::size_t backendIndex = 0;
        /** Gateway job id this request concerns (0 = none yet). */
        std::uint64_t gwJobId = 0;
        /** Routing hash of the spec (submits only). */
        std::uint64_t affinity = 0;
        /** Gateway-originated failover resubmit: its SubmitReply
         *  updates the job entry instead of answering a client. */
        bool internal = false;
        /** Occupies a flow-control slot. */
        bool countsInFlight = false;
        /** Submit payload bytes, kept until acked (failover replays
         *  them verbatim). */
        std::vector<std::uint8_t> payload;
    };

    /** One client-visible job and where it currently lives. */
    struct JobEntry
    {
        std::size_t backendIndex = 0;
        /** Backend-side id; 0 while a failover resubmit is in
         *  flight (requests against it are answered locally). */
        runtime::JobId backendId = 0;
        std::uint64_t affinity = 0;
        std::uint16_t version = kWireVersion;
        /** Kept until the result is delivered: failover resubmits
         *  these exact bytes. */
        std::vector<std::uint8_t> submitPayload;
        bool awaited = false;
        /** Client rid whose AwaitReply delivers the result. */
        std::uint64_t awaitRid = 0;
        /** Result delivered; retained so Status/Poll still route. */
        bool delivered = false;
    };

    /** One accepted client connection. */
    struct Conn
    {
        std::unique_ptr<ByteStream> stream;
        Outbox outbox;
        std::thread reader;
        bool finished = false;

        std::mutex mu;
        std::condition_variable cvFlow;
        std::uint64_t nextBackendRid = 1;
        std::unordered_map<std::uint64_t, Pending> pending;
        std::unordered_map<std::uint64_t, JobEntry> jobs;
        std::size_t inFlight = 0;
        bool closing = false;
        std::atomic<std::uint16_t> peerVersion{kWireVersion};

        /** Guards links/retired; held across link connect (only
         *  the client reader and failover create links). */
        std::mutex linkMu;
        std::map<std::size_t, std::shared_ptr<BackendLink>> links;
        /** Dead links awaiting join at teardown. */
        std::vector<std::shared_ptr<BackendLink>> retired;
    };

    /** Gateway-side view of one configured backend. */
    struct BackendState
    {
        GatewayBackend cfg;
        std::uint64_t nameHash = 0;
        std::atomic<bool> healthy{false};
        std::atomic<bool> draining{false};
        std::atomic<std::size_t> jobsRouted{0};
        std::atomic<std::size_t> resubmittedAway{0};

        /** Guards the control client and the stats cache. */
        std::mutex controlMu;
        std::unique_ptr<QumaClient> control;
        bool haveStats = false;
        StatsFrame lastStats;
        std::chrono::steady_clock::time_point statsAt{};
    };

    /** A frame to push on a backend link outside the conn mutex. */
    struct LinkSend
    {
        std::shared_ptr<BackendLink> link;
        std::vector<std::uint8_t> frame;
    };

    void acceptLoop();
    void healthLoop();
    /** Probe one backend (wire stats + optional healthProbe);
     *  updates healthy/lastStats. */
    void refreshBackend(BackendState &b);

    void serveClient(Conn &conn);
    void writerLoop(Conn &conn);
    /** Decode and route one client frame; false ends the conn. */
    bool serveClientFrame(Conn &conn);
    /** Route a Submit/TrySubmit (flow slot already held). False =
     *  nothing healthy; the caller answered the client. */
    void forwardSubmit(Conn &conn, std::uint16_t version,
                       std::uint64_t client_rid, MsgType type,
                       std::vector<std::uint8_t> payload,
                       std::uint64_t affinity);
    /** Route an id-carrying request (Status/Poll/Await/Cancel). */
    void forwardJobRequest(Conn &conn, std::uint16_t version,
                           std::uint64_t client_rid, MsgType type,
                           std::uint64_t gw_job_id);
    /** Answer a request locally for a job with no live backend id
     *  (failover window): Queued / no-result / not-cancelled. */
    void answerLocally(Conn &conn, std::uint16_t version,
                       std::uint64_t client_rid, MsgType type);

    void linkReaderLoop(Conn &conn, std::shared_ptr<BackendLink> link);
    /** Route one backend frame back to the client (rewriting ids). */
    void handleBackendFrame(Conn &conn, BackendLink &link,
                            const FrameHeader &header,
                            std::vector<std::uint8_t> payload);
    /** A link died: re-home every pending request and undelivered
     *  job of `conn` on that backend. */
    void failoverLink(Conn &conn, std::size_t dead_index);

    /** Lazily open (or return) `conn`'s link to backend `index`;
     *  throws WireError when the backend is unreachable. */
    std::shared_ptr<BackendLink> ensureLink(Conn &conn,
                                            std::size_t index);
    /** Seal and send on the link; closes the link stream on failure
     *  (its reader then runs failover) and rethrows. */
    void sendOnLink(BackendLink &link,
                    const std::vector<std::uint8_t> &frame);

    /** Rendezvous-hash a backend for `affinity` over the healthy,
     *  non-draining set (minus `exclude`); nullopt when empty. */
    std::optional<std::size_t>
    chooseBackend(std::uint64_t affinity,
                  std::size_t exclude = SIZE_MAX) const;
    /** Admission EWMAs of backend `index` over threshold? */
    bool backendSaturated(std::size_t index);

    /** Block until the connection has a free flow-control slot and
     *  take it; false when the connection is closing. */
    bool acquireFlowSlot(Conn &conn);
    void releaseFlowSlot(Conn &conn);

    void queueFrame(Conn &conn, MsgType type, std::uint64_t rid,
                    std::uint16_t version, const Writer &payload);
    void queueError(Conn &conn, std::uint64_t rid,
                    std::uint16_t version, WireErrorCode code,
                    const std::string &message);
    /** Raise the gateway-wide in-flight high-water mark. */
    void noteInFlight(std::size_t in_flight);

    void reapConnections(bool join_all);
    bool stopping() const;

    const GatewayConfig cfg;
    std::vector<std::unique_ptr<BackendState>> backends;
    std::unique_ptr<Listener> listener;

    mutable std::mutex mu;
    bool stopped = false;
    std::vector<std::unique_ptr<Conn>> conns;
    std::thread acceptor;

    std::mutex healthMu;
    std::condition_variable cvHealth;
    std::thread health;

    std::atomic<std::uint64_t> nextGwJobId{1};
    std::atomic<std::size_t> connectionsAccepted{0};
    std::atomic<std::size_t> requestsForwarded{0};
    std::atomic<std::size_t> resultsForwarded{0};
    std::atomic<std::size_t> progressForwarded{0};
    std::atomic<std::size_t> errorsReturned{0};
    std::atomic<std::size_t> jobsShed{0};
    std::atomic<std::size_t> jobsResubmitted{0};
    std::atomic<std::size_t> failovers{0};
    std::atomic<std::size_t> statsServed{0};
    std::atomic<std::size_t> inFlightHighWater{0};
};

} // namespace quma::net

#endif // QUMA_NET_GATEWAY_HH
