/**
 * @file
 * MetricsEndpoint: the /metrics scrape surface of a serving runtime.
 *
 * A deliberately minimal HTTP/1.0 responder over any transport
 * Listener (TCP in quma_serve, the in-process loopback in tests):
 * `GET /metrics` answers 200 with the registry's Prometheus text
 * exposition (v0.0.4), any other path answers 404, anything that is
 * not a well-formed GET or HEAD answers 400. Every response closes
 * the connection explicitly (`Connection: close`, HTTP/1.0
 * semantics) -- no keep-alive, no chunking, no header parsing beyond
 * the request line, which is all a Prometheus scraper (or curl)
 * needs and all a quantum-experiment server should carry.
 *
 * INTROSPECTION. addHandler() grows the same surface into a live
 * introspection endpoint: quma_serve registers /healthz (liveness +
 * journal/recovery state), /statusz (a JSON snapshot of service and
 * server stats) and /tracez (an on-demand Chrome-trace dump) without
 * this class knowing any of them. Handlers render per request on the
 * acceptor thread, so they inherit the serial, load-bounded scrape
 * discipline. HEAD answers like GET with the body withheld
 * (Content-Length still states the would-be size), so probes can
 * check liveness without paying for a render's bytes on the wire.
 *
 * The endpoint serves scrapes SERIALLY on its one acceptor thread: a
 * scrape is a single registry render (microseconds) and serializing
 * them keeps the endpoint from ever amplifying load on the runtime
 * it observes. Requests are read byte-at-a-time up to a hard cap, so
 * a misbehaving scraper can neither buffer unbounded bytes nor hold
 * the endpoint hostage past the cap.
 *
 * stop() (and destruction) closes the listener and whatever stream
 * is mid-scrape, then joins the acceptor -- the same deterministic
 * teardown discipline as QumaServer.
 */

#ifndef QUMA_NET_METRICS_ENDPOINT_HH
#define QUMA_NET_METRICS_ENDPOINT_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics.hh"
#include "net/transport.hh"

namespace quma::net {

class MetricsEndpoint
{
  public:
    /**
     * Start answering scrapes immediately.
     * @param registry rendered per scrape; must outlive the endpoint
     * @param listener transport accept side (TCP or loopback)
     */
    MetricsEndpoint(const metrics::MetricsRegistry &registry,
                    std::unique_ptr<Listener> listener);
    ~MetricsEndpoint();

    MetricsEndpoint(const MetricsEndpoint &) = delete;
    MetricsEndpoint &operator=(const MetricsEndpoint &) = delete;

    /** Close the listener and any in-flight scrape; join the
     *  acceptor (idempotent). */
    void stop();

    /** Scrapes answered 200 since construction (any path). */
    std::size_t scrapesServed() const;

    /**
     * Serve `GET <path>` (and its HEAD) with `render()`'s output as
     * `content_type`. The handler runs on the acceptor thread, one
     * request at a time; exceptions it throws surface as a 500 with
     * the connection kept serving. Registering "/metrics" replaces
     * the built-in exposition render. Thread-safe, but meant for
     * setup time; must not be called from inside a handler.
     */
    void addHandler(const std::string &path,
                    const std::string &content_type,
                    std::function<std::string()> render);

  private:
    struct Handler
    {
        std::string contentType;
        std::function<std::string()> render;
    };

    void acceptLoop();
    /** Read one request, write one response, close. */
    void serveScrape(ByteStream &stream);

    const metrics::MetricsRegistry &registry;
    std::unique_ptr<Listener> listener;

    mutable std::mutex mu;
    bool stopped = false;
    /** The stream being served right now (stop() closes it). */
    ByteStream *active = nullptr;
    std::size_t scrapes = 0;
    /** Registered introspection pages, by exact path (guarded by
     *  mu; the render runs OUTSIDE it on a copied handler). */
    std::map<std::string, Handler> handlers;
    std::thread acceptor;
};

} // namespace quma::net

#endif // QUMA_NET_METRICS_ENDPOINT_HH
