/**
 * @file
 * QumaServer: the experiment runtime behind a socket, multiplexed.
 *
 * One server wraps one shared runtime::ExperimentService and serves
 * the wire protocol (wire.hh) over any transport Listener -- TCP for
 * real remote clients, the in-process loopback for deterministic
 * tests. Each accepted connection gets a READER thread that decodes
 * request frames and a WRITER thread that drains the connection's
 * outbox; every reply frame echoes its request's requestId, so one
 * connection carries any number of requests in flight at once.
 *
 * STREAMING. An AwaitRequest no longer parks the connection: the
 * reader registers a JobScheduler completion subscription and moves
 * on to the next frame. When the job finishes, the scheduler's
 * notifier thread drops the shared result into the connection's
 * outbox and the writer encodes and pushes it immediately (encoding
 * on the per-connection writer keeps the single notifier thread
 * cheap and lets concurrent connections encode in parallel) --
 * results stream back in completion order, interleaved with other
 * replies, with no awaitFor polling loop anywhere. The only request
 * that can still block the reader is a Submit against a full queue
 * (deliberate backpressure: the client should not be able to buffer
 * unbounded work).
 *
 * Remote jobs keep the runtime's determinism contract end to end:
 * the decoded JobSpec carries the same seed, priority and
 * round-structured sharding fields the client serialized, so a job
 * submitted over the wire produces the bit-identical JobResult the
 * in-process path produces (pinned by tests/test_net.cc).
 *
 * DISCONNECT. When a connection dies (EOF or a wire error), jobs it
 * submitted whose results were not yet delivered and that are still
 * fully queued are cancelled (JobScheduler::cancel) -- nobody is
 * left to read their results. Work already running is never
 * interrupted. Pending completion subscriptions hold only a weak
 * reference to the connection's shared state; late pushes find the
 * outbox closed and evaporate.
 *
 * SHUTDOWN. Serving threads are TRACKED and JOINED: stop() closes
 * the listener, every live stream and outbox, then joins the
 * acceptor and every reader (each reader joins its own writer), so
 * teardown is deterministic -- no detached thread ever touches a
 * dead server (the pre-v2 detached design could).
 *
 * VERSIONING. Frames stamped v3 or v4 are both served: the reader
 * remembers the peer's version per connection, seals every reply at
 * that version, and withholds the v4-only extras (Submit trace
 * context, ProgressFrame pushes) from v3 peers. A frame claiming any
 * other wire version is answered with an
 * ErrorReply{VersionMismatch} carrying requestId 0 (the
 * connection-level id) and the connection is closed: a legacy v1
 * client fails with a diagnosis instead of hanging.
 *
 * PROGRESS STREAMING (v4). An AwaitRequest from a v4 peer also
 * registers a JobScheduler progress subscription: rate-limited
 * ProgressFrame pushes (rounds completed / total) ride the same
 * outbox under the await's requestId, always ahead of the terminal
 * AwaitReply (the scheduler queues the forced 100% notification
 * before the completion). Like result pushes, progress pushes hold
 * the connection weakly and evaporate on a dead connection.
 *
 * ACCOUNTING. Every frame in either direction is metered through a
 * core::LinkMeter, pricing the serving traffic in the same
 * bytes-and-seconds units as the paper's §7.1 host-link budget.
 */

#ifndef QUMA_NET_SERVER_HH
#define QUMA_NET_SERVER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/metrics.hh"
#include "net/capture.hh"
#include "net/transport.hh"
#include "net/wire.hh"
#include "quma/hostlink.hh"
#include "runtime/service.hh"

namespace quma::net {

struct ServerConfig
{
    /** Modeled link rate for the wire-traffic accounting. */
    double linkBytesPerSecond = 30.0e6;
    /**
     * Per-connection cap on reply frames queued for the writer. A
     * client that issues requests without ever reading replies would
     * otherwise grow the outbox without bound (the pre-v2 design
     * throttled naturally because the one serving thread blocked in
     * send). At the cap the connection is treated as a dead slow
     * consumer and torn down. Generous: a legitimate pipeliner's
     * backlog is bounded by the scheduler queue it can fill.
     */
    std::size_t maxQueuedReplyFrames = 8192;
    /**
     * Record every connection's wire traffic into this directory
     * ("" = off), one `conn-<N>.qcap` file per accepted connection
     * (see net/capture.hh for the format). A captured session can be
     * re-driven byte-for-byte by quma_replay -- the exact-repro
     * debugging loop docs/durability.md describes.
     */
    std::string captureDir;
};

class QumaServer
{
  public:
    struct Stats
    {
        std::size_t connectionsAccepted = 0;
        std::size_t connectionsActive = 0;
        std::size_t requestsServed = 0;
        /** Requests answered with an ErrorReply frame. */
        std::size_t errorsReturned = 0;
        /** Queued jobs cancelled because their client vanished. */
        std::size_t jobsCancelledOnDisconnect = 0;
        /** AwaitReply frames pushed by completion subscriptions. */
        std::size_t resultsStreamed = 0;
        /** ProgressFrame pushes delivered to v4 peers' outboxes. */
        std::size_t progressFramesPushed = 0;
        /**
         * Requests by frame type, indexed by the request MsgType
         * value (1..9); slot 0 counts non-request frame types that
         * reached dispatch.
         */
        std::array<std::size_t, 10> requestsByType{};
        /** Wire traffic (bytesUp = client-to-server requests). */
        core::LinkStats link;
    };

    /**
     * Start serving immediately: the accept loop runs on its own
     * thread until stop() (or destruction).
     *
     * @param service the shared runtime every connection drives
     * @param listener transport accept side (TCP or loopback)
     */
    QumaServer(runtime::ExperimentService &service,
               std::unique_ptr<Listener> listener,
               ServerConfig config = {});
    ~QumaServer();

    QumaServer(const QumaServer &) = delete;
    QumaServer &operator=(const QumaServer &) = delete;

    /**
     * Stop accepting, close every live connection and join all
     * serving threads (idempotent). Jobs already submitted to the
     * service keep running; only their queued-but-undelivered work is
     * cancelled by the per-connection disconnect handling.
     */
    void stop();

    /**
     * One coherent snapshot: every field is read under a single
     * acquisition of the server mutex (live connections' streamed
     * counts are atomics, so no per-connection lock nests inside).
     */
    Stats stats() const;

    /**
     * Register this server's series with `registry` (quma_server_*
     * and quma_link_* families). The server must outlive the
     * registry's last render: the series are callbacks reading live
     * server state.
     */
    void bindMetrics(metrics::MetricsRegistry &registry);

  private:
    /**
     * One queued reply: either an already-sealed frame, or a
     * deferred streamed result (shared with the scheduler, encoded
     * by the WRITER thread -- so the scheduler's single notifier
     * thread never pays per-result wire encoding, and concurrent
     * connections encode their streams in parallel).
     */
    struct OutFrame
    {
        std::vector<std::uint8_t> frame;
        std::shared_ptr<const runtime::JobResult> result;
        std::uint64_t requestId = 0;
    };

    /**
     * Replies queued for one connection's writer thread. Sealed
     * frames go in from the reader (inline replies), deferred
     * results from the scheduler's notifier thread (streamed
     * AwaitReplys); the writer drains in FIFO order. close() drops
     * whatever is pending -- once the connection is going away
     * there is nobody to read it.
     */
    struct Outbox
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<OutFrame> frames;
        bool closed = false;
        /** The writer popped an entry and is encoding/sending it. */
        bool sending = false;
        /** Queued-entry cap (ServerConfig::maxQueuedReplyFrames);
         *  overflowing it closes the outbox -- slow-consumer
         *  disconnect, the writer tears the stream down. */
        std::size_t limit = 8192;

        /** False (entry dropped) once closed or over the cap. */
        bool push(OutFrame entry);
        /** Block for the next entry (marks it in flight); nullopt
         *  once closed and empty. */
        std::optional<OutFrame> pop();
        /** The in-flight entry left sendAll (either way). */
        void sent();
        /**
         * Bounded wait for the writer to drain queue AND in-flight
         * frame: lets a farewell frame (VersionMismatch, Shutdown)
         * out before close() drops the rest. Bounded because the
         * writer may be wedged against a dead peer.
         */
        void drainFor(std::chrono::milliseconds timeout);
        void close();
    };

    /**
     * Per-connection state shared between the reader, the writer and
     * any in-flight completion callbacks (which hold it weakly: a
     * push that outlives the connection finds the outbox closed).
     */
    struct ConnState
    {
        Outbox outbox;
        std::mutex mu;
        /** Jobs submitted here whose results were not delivered. */
        std::unordered_set<runtime::JobId> submitted;
        /** AwaitReply frames streamed on this connection. Atomic so
         *  stats() reads it without nesting this->mu inside the
         *  server mutex. */
        std::atomic<std::size_t> streamed{0};
        /** ProgressFrame pushes accepted by this connection's
         *  outbox (same accounting pattern as `streamed`). */
        std::atomic<std::size_t> progressPushed{0};
        /**
         * The peer's negotiated wire version: stamped from the first
         * byte-compatible frame prefix the reader accepts (v3 or
         * v4). Every reply on this connection is sealed at THIS
         * version, and v4-only extras (trace context in Submit
         * payloads, ProgressFrame pushes) are gated on >= 4, so a v3
         * client sees exactly the v3 protocol. Atomic because the
         * writer thread and scheduler-notifier pushers read it while
         * the reader updates it.
         */
        std::atomic<std::uint16_t> peerVersion{kWireVersion};
        /**
         * Teardown hook for pushers: set by the reader while the
         * connection lives (guarded by mu, cleared before the
         * reader exits, so the target is always valid when called).
         * An outbox overflow closes the stream through this, which
         * unblocks a writer wedged in sendAll against the dead
         * peer and wakes the reader into the disconnect handling.
         */
        ByteStream *stream = nullptr;
        /** Wire-traffic recorder (ServerConfig::captureDir); null
         *  when capture is off. Internally mutex-serialized, so the
         *  reader and writer threads record through it directly. */
        std::shared_ptr<CaptureWriter> capture;

        void noteSubmitted(runtime::JobId id);
        void noteDelivered(runtime::JobId id);
        bool owns(runtime::JobId id);
        /** Drain the undelivered set (disconnect cancellation). */
        std::vector<runtime::JobId> takeSubmitted();
        /** Close the live stream, if any (idempotent). */
        void closeStream();
    };

    /** One tracked connection: stream, shared state, reader thread
     *  (the reader owns and joins the writer). */
    struct Connection
    {
        std::unique_ptr<ByteStream> stream;
        std::shared_ptr<ConnState> state;
        std::thread reader;
        /** Set by the reader on exit; the acceptor reaps. */
        bool finished = false;
    };

    void acceptLoop();
    void serveConnection(Connection &conn);
    void writerLoop(ByteStream &stream, ConnState &state);
    /** Decode and serve one request; false ends the connection.
     *  The state travels as a shared_ptr so an Await subscription
     *  can capture it weakly. */
    bool serveRequest(ByteStream &stream,
                      const std::shared_ptr<ConnState> &state);
    /** The type switch; false ends the connection (shutdown). */
    bool dispatchRequest(ByteStream &stream,
                         const std::shared_ptr<ConnState> &state,
                         const FrameHeader &header, Reader &r);
    void queueFrame(ConnState &state, MsgType type,
                    std::uint64_t request_id, const Writer &payload);
    void queueError(ConnState &state, std::uint64_t request_id,
                    WireErrorCode code, const std::string &message);
    /** Join and erase finished connections (called by the acceptor
     *  and by stop(), which first closes everything). */
    void reapConnections(bool join_all);
    bool stopping() const;
    /** Reply frames queued across live connections' outboxes. */
    std::size_t queuedReplyFrames() const;

    runtime::ExperimentService &service;
    std::unique_ptr<Listener> listener;
    const ServerConfig cfg;

    mutable std::mutex mu;
    bool stopped = false;
    std::thread acceptor;
    /** Tracked connections; reaped on accept and joined at stop(). */
    std::vector<std::unique_ptr<Connection>> connections;
    Stats counters;
    core::LinkMeter meter;
};

} // namespace quma::net

#endif // QUMA_NET_SERVER_HH
