/**
 * @file
 * QumaServer: the experiment runtime behind a socket.
 *
 * One server wraps one shared runtime::ExperimentService and serves
 * the wire protocol (wire.hh) over any transport Listener -- TCP for
 * real remote clients, the in-process loopback for deterministic
 * tests. Each accepted connection gets its own serving thread that
 * decodes request frames, drives the service, and writes reply
 * frames; blocking requests (Await) block only their own
 * connection's thread, so concurrent clients proceed independently.
 *
 * Remote jobs keep the runtime's determinism contract end to end:
 * the decoded JobSpec carries the same seed, priority and
 * round-structured sharding fields the client serialized, so a job
 * submitted over the wire produces the bit-identical JobResult the
 * in-process path produces (pinned by tests/test_net.cc).
 *
 * DISCONNECT. When a connection dies (EOF or a wire error), jobs it
 * submitted that are still fully queued are cancelled
 * (JobScheduler::cancel) -- nobody is left to read their results.
 * Work already running is never interrupted.
 *
 * ACCOUNTING. Every frame in either direction is metered through a
 * core::LinkMeter, pricing the serving traffic in the same
 * bytes-and-seconds units as the paper's §7.1 host-link budget.
 */

#ifndef QUMA_NET_SERVER_HH
#define QUMA_NET_SERVER_HH

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/transport.hh"
#include "net/wire.hh"
#include "quma/hostlink.hh"
#include "runtime/service.hh"

namespace quma::net {

struct ServerConfig
{
    /** Modeled link rate for the wire-traffic accounting. */
    double linkBytesPerSecond = 30.0e6;
};

class QumaServer
{
  public:
    struct Stats
    {
        std::size_t connectionsAccepted = 0;
        std::size_t connectionsActive = 0;
        std::size_t requestsServed = 0;
        /** Requests answered with an ErrorReply frame. */
        std::size_t errorsReturned = 0;
        /** Queued jobs cancelled because their client vanished. */
        std::size_t jobsCancelledOnDisconnect = 0;
        /** Wire traffic (bytesUp = client-to-server requests). */
        core::LinkStats link;
    };

    /**
     * Start serving immediately: the accept loop runs on its own
     * thread until stop() (or destruction).
     *
     * @param service the shared runtime every connection drives
     * @param listener transport accept side (TCP or loopback)
     */
    QumaServer(runtime::ExperimentService &service,
               std::unique_ptr<Listener> listener,
               ServerConfig config = {});
    ~QumaServer();

    QumaServer(const QumaServer &) = delete;
    QumaServer &operator=(const QumaServer &) = delete;

    /**
     * Stop accepting, close every live connection and join all
     * serving threads (idempotent). Jobs already submitted to the
     * service keep running; only their queued-but-unread work is
     * cancelled by the per-connection disconnect handling.
     */
    void stop();

    Stats stats() const;

  private:
    void acceptLoop();
    void serveConnection(ByteStream *stream);
    /** Decode and serve one request; false once the peer hung up. */
    bool serveRequest(ByteStream &stream,
                      std::unordered_set<runtime::JobId> &submitted);
    /** The type switch; false ends the connection (shutdown). */
    bool dispatchRequest(ByteStream &stream, MsgType type, Reader &r,
                         std::unordered_set<runtime::JobId> &submitted);
    void sendFrame(ByteStream &stream, MsgType type,
                   const Writer &payload);
    void sendError(ByteStream &stream, WireErrorCode code,
                   const std::string &message);
    bool stopping() const;

    runtime::ExperimentService &service;
    std::unique_ptr<Listener> listener;
    const ServerConfig cfg;

    mutable std::mutex mu;
    /** stop() waits on this for connectionsActive to reach zero. */
    std::condition_variable cvDrained;
    bool stopped = false;
    std::thread acceptor;
    /**
     * Live connections, for unblocking their recvs on stop(). Each
     * serving thread runs DETACHED and erases its own entry on exit
     * (stream, fd and thread state are reclaimed per disconnect, not
     * accumulated until shutdown); stop() closes whatever is still
     * here and waits for the active count to drain.
     */
    std::vector<std::unique_ptr<ByteStream>> connections;
    Stats counters;
    core::LinkMeter meter;
};

} // namespace quma::net

#endif // QUMA_NET_SERVER_HH
