#include "net/transport.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "net/wire.hh"

namespace quma::net {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw WireError(what + ": " + std::strerror(errno));
}

/** TCP stream over a connected socket fd. */
class TcpStream final : public ByteStream
{
  public:
    explicit TcpStream(int fd_) : fd(fd_)
    {
        // Request/reply frames are small and latency-bound; never
        // let Nagle hold a reply back.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    ~TcpStream() override
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    sendAll(const std::uint8_t *data, std::size_t size) override
    {
        std::size_t sent = 0;
        while (sent < size) {
            // MSG_NOSIGNAL: a vanished peer must surface as an error
            // return, not a process-killing SIGPIPE.
            ssize_t n = ::send(fd, data + sent, size - sent,
                               MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                throwErrno("send failed");
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    bool
    recvAll(std::uint8_t *data, std::size_t size) override
    {
        std::size_t got = 0;
        while (got < size) {
            ssize_t n = ::recv(fd, data + got, size - got, 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                throwErrno("recv failed");
            }
            if (n == 0) {
                if (got == 0)
                    return false; // clean EOF between frames
                throw WireError("connection closed mid-frame");
            }
            got += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool
    peerAlive() override
    {
        std::uint8_t probe;
        ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (n > 0)
            return true; // bytes pending: very much alive
        if (n == 0)
            return false; // orderly shutdown from the peer
        return errno == EAGAIN || errno == EWOULDBLOCK ||
               errno == EINTR;
    }

    void
    close() override
    {
        // Shutdown (not close) so a concurrent recv/send unblocks
        // without racing the fd teardown in the destructor.
        ::shutdown(fd, SHUT_RDWR);
    }

  private:
    int fd;
};

} // namespace

// --- TcpListener ------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port, bool loopback_only)
{
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr =
        htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
    addr.sin_port = htons(port);
    // close() may clobber errno; save the failing call's value so
    // the exception message names the real cause.
    auto failWith = [this](const char *what) {
        int saved = errno;
        ::close(fd);
        fd = -1;
        errno = saved;
        throwErrno(what);
    };
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        failWith("bind failed");
    if (::listen(fd, SOMAXCONN) < 0)
        failWith("listen failed");

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) < 0)
        failWith("getsockname failed");
    boundPort = ntohs(bound.sin_port);
}

TcpListener::~TcpListener()
{
    if (fd >= 0)
        ::close(fd);
}

std::unique_ptr<ByteStream>
TcpListener::accept()
{
    for (;;) {
        int client = ::accept(fd, nullptr, nullptr);
        if (client >= 0)
            return std::make_unique<TcpStream>(client);
        switch (errno) {
        case EINTR:
        case ECONNABORTED:
            // The connection died between the kernel's queue and our
            // accept: the LISTENER is fine, keep accepting.
            continue;
        case EMFILE:
        case ENFILE:
        case ENOBUFS:
        case ENOMEM:
            // Resource exhaustion is transient; returning nullptr
            // here would silently stop the server accepting forever.
            warn("accept failed (", std::strerror(errno),
                 "); retrying");
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        default:
            // EBADF/EINVAL after close() shut the listening socket
            // down: a clean end of accepting, not an error.
            return nullptr;
        }
    }
}

void
TcpListener::close()
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

std::unique_ptr<ByteStream>
tcpConnect(const std::string &host, std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket failed");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw WireError("not an IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        throwErrno("connect to " + host + ":" + std::to_string(port) +
                   " failed");
    }
    return std::make_unique<TcpStream>(fd);
}

// --- in-process loopback ----------------------------------------------------

namespace {

/** One end of a loopback pipe: reads `in`, writes `out`. */
class PipeStream final : public ByteStream
{
  public:
    PipeStream(std::shared_ptr<PipeBuffer> in_,
               std::shared_ptr<PipeBuffer> out_)
        : in(std::move(in_)), out(std::move(out_))
    {
    }

    ~PipeStream() override { close(); }

    void
    sendAll(const std::uint8_t *data, std::size_t size) override
    {
        std::unique_lock<std::mutex> lock(out->mu);
        std::size_t sent = 0;
        while (sent < size) {
            // Block while the peer's unread backlog is at capacity:
            // the same backpressure a full kernel socket buffer
            // exerts on a sender whose peer stopped reading.
            out->cv.wait(lock, [this] {
                return out->closed ||
                       out->bytes.size() < out->capacity;
            });
            if (out->closed)
                throw WireError("send on a closed loopback stream");
            std::size_t room = out->capacity - out->bytes.size();
            std::size_t chunk = std::min(room, size - sent);
            out->bytes.insert(out->bytes.end(), data + sent,
                              data + sent + chunk);
            sent += chunk;
            out->cv.notify_all();
        }
    }

    bool
    recvAll(std::uint8_t *data, std::size_t size) override
    {
        std::unique_lock<std::mutex> lock(in->mu);
        std::size_t got = 0;
        while (got < size) {
            in->cv.wait(lock, [this] {
                return !in->bytes.empty() || in->closed;
            });
            if (in->bytes.empty()) {
                if (got == 0)
                    return false;
                throw WireError("loopback closed mid-frame");
            }
            while (got < size && !in->bytes.empty()) {
                data[got++] = in->bytes.front();
                in->bytes.pop_front();
            }
            // Space freed: wake a sender blocked on the capacity.
            in->cv.notify_all();
        }
        return true;
    }

    bool
    peerAlive() override
    {
        std::lock_guard<std::mutex> lock(in->mu);
        return !in->closed || !in->bytes.empty();
    }

    void
    close() override
    {
        for (const auto &side : {in, out}) {
            std::lock_guard<std::mutex> lock(side->mu);
            side->closed = true;
            side->cv.notify_all();
        }
    }

  private:
    std::shared_ptr<PipeBuffer> in;
    std::shared_ptr<PipeBuffer> out;
};

} // namespace

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
loopbackPair(std::size_t capacity)
{
    auto a2b = std::make_shared<PipeBuffer>();
    auto b2a = std::make_shared<PipeBuffer>();
    a2b->capacity = capacity;
    b2a->capacity = capacity;
    return {std::make_unique<PipeStream>(b2a, a2b),
            std::make_unique<PipeStream>(a2b, b2a)};
}

std::unique_ptr<ByteStream>
LoopbackListener::connect()
{
    auto [client, server] = loopbackPair(pipeCapacity);
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped)
            throw WireError("connect on a closed listener");
        pending.push_back(std::move(server));
    }
    cv.notify_one();
    return std::move(client);
}

std::unique_ptr<ByteStream>
LoopbackListener::accept()
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !pending.empty() || stopped; });
    if (pending.empty())
        return nullptr;
    auto stream = std::move(pending.front());
    pending.pop_front();
    return stream;
}

void
LoopbackListener::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopped = true;
    }
    cv.notify_all();
}

} // namespace quma::net
