#include "measure/mdu.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"
#include "signal/phasor.hh"

namespace quma::measure {

MduCalibration
calibrateMdu(const qsim::ReadoutParams &params, TimeNs window_ns)
{
    MduCalibration cal;
    double dt_ns = 1e9 / params.adcRateHz;
    auto n = static_cast<std::size_t>(
        std::floor(static_cast<double>(window_ns) / dt_ns));
    if (n == 0)
        fatal("calibrateMdu: window shorter than one ADC sample");

    cal.weights.resize(n);
    double s0 = 0, s1 = 0;
    // The noiseless |0>/|1> responses are Re(c * exp(i*arg)) on a
    // uniform phase grid: generate the tone incrementally.
    signal::Phasor ph = signal::gridPhasor(params.ifHz, 0.0, dt_ns);
    for (std::size_t k = 0; k < n; ++k) {
        double co = ph.cosine(), si = ph.sine();
        ph.advance();
        double v0 = params.c0.real() * co - params.c0.imag() * si;
        double v1 = params.c1.real() * co - params.c1.imag() * si;
        cal.weights[k] = v1 - v0;
        s0 += v0 * cal.weights[k];
        s1 += v1 * cal.weights[k];
    }
    // Normalise so the |0>-|1> separation is independent of window
    // length (keeps thresholds comparable across durations).
    double scale = 1.0 / static_cast<double>(n);
    for (auto &w : cal.weights)
        w *= scale;
    cal.s0 = s0 * scale;
    cal.s1 = s1 * scale;
    cal.threshold = (cal.s0 + cal.s1) / 2.0;
    return cal;
}

Mdu::Mdu(MduCalibration calibration, Cycle latency_cycles)
    : cal(std::move(calibration)), latency(latency_cycles)
{
    if (cal.weights.empty())
        fatal("Mdu needs a non-empty weight function");
}

void
Mdu::submitTrace(signal::Waveform trace, Cycle td, Cycle duration_cycles)
{
    if (pendingTrace)
        fatal("Mdu: a second measurement started before the previous "
              "MD trigger consumed its trace");
    PendingTrace pt{std::move(trace), td, duration_cycles};
    if (armedTrigger) {
        ArmedTrigger trigger = *armedTrigger;
        armedTrigger.reset();
        process(pt, trigger);
    } else {
        pendingTrace = std::move(pt);
    }
}

std::pair<double, bool>
Mdu::integrate(const signal::Waveform &trace) const
{
    double s = 0;
    std::size_t n = std::min(trace.size(), cal.weights.size());
    for (std::size_t k = 0; k < n; ++k)
        s += trace[k] * cal.weights[k];
    return {s, s > cal.threshold};
}

void
Mdu::discriminate(Cycle td, RegIndex dest_reg, QubitMask qubit)
{
    if (inFlight || armedTrigger)
        fatal("Mdu: discrimination already in progress");
    ArmedTrigger trigger{td, dest_reg, qubit};
    if (pendingTrace) {
        PendingTrace pt = std::move(*pendingTrace);
        pendingTrace.reset();
        process(pt, trigger);
    } else {
        armedTrigger = trigger;
    }
}

void
Mdu::process(const PendingTrace &trace, const ArmedTrigger &trigger)
{
    auto [s, bit] = integrate(trace.trace);
    MduResult r;
    r.s = s;
    r.bit = bit;
    r.destReg = trigger.destReg;
    r.qubit = trigger.qubit;
    // The result is available after the integration window has been
    // captured plus the (fixed) discrimination pipeline latency.
    Cycle windowEnd =
        std::max(trigger.td, trace.td + trace.durationCycles);
    r.completionCycle = windowEnd + latency;
    inFlight = r;
}

std::optional<Cycle>
Mdu::nextEventCycle() const
{
    if (!inFlight)
        return std::nullopt;
    return inFlight->completionCycle;
}

void
Mdu::advanceTo(Cycle now)
{
    if (inFlight && inFlight->completionCycle <= now) {
        MduResult r = *inFlight;
        inFlight.reset();
        ++done;
        if (resultSink)
            resultSink(r);
    }
}

void
Mdu::reset()
{
    pendingTrace.reset();
    armedTrigger.reset();
    inFlight.reset();
    done = 0;
}

} // namespace quma::measure
