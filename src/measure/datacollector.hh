/**
 * @file
 * Data collection unit (paper §7.1): accumulates K consecutive
 * integration results per round over N rounds and produces the
 * per-bin averages
 *
 *     S_bar_i = (sum_j S_{i,j}) / N,  i in {0 .. K-1}.
 *
 * For AllXY, K = 42 (21 gate pairs measured twice) and N = 25600.
 */

#ifndef QUMA_MEASURE_DATACOLLECTOR_HH
#define QUMA_MEASURE_DATACOLLECTOR_HH

#include <cstddef>
#include <vector>

namespace quma::measure {

class DataCollectionUnit
{
  public:
    /** Configure for K bins; resets any collected data. */
    void configure(std::size_t k);

    std::size_t numBins() const { return sums.size(); }

    /**
     * Record one integration result. Results are assigned to bins
     * round-robin: sample m lands in bin m % K.
     */
    void addSample(double s);

    /** Samples recorded so far. */
    std::size_t sampleCount() const { return count; }

    /** Completed rounds (each round is K samples). */
    std::size_t completedRounds() const;

    /** Per-bin averages over the rounds recorded so far. */
    std::vector<double> averages() const;

    /** Per-bin averages of the BINARY results, if also recorded. */
    void addBit(bool bit);
    std::vector<double> bitAverages() const;

    // Raw accumulator access: the runtime's shard merge re-sums
    // per-round sums in global round order (bit-identical for any
    // round partition), so it needs the sums before the division.
    const std::vector<double> &binSums() const { return sums; }
    const std::vector<std::size_t> &binCounts() const { return counts; }
    const std::vector<double> &bitBinSums() const { return bitSums; }
    const std::vector<std::size_t> &bitBinCounts() const
    {
        return bitCounts;
    }

    void clear();

    /** Return to the unconfigured (freshly-constructed) state. */
    void reset();

  private:
    std::vector<double> sums;
    std::vector<double> bitSums;
    std::vector<std::size_t> counts;
    std::vector<std::size_t> bitCounts;
    std::size_t count = 0;
    std::size_t bitCount = 0;
};

} // namespace quma::measure

#endif // QUMA_MEASURE_DATACOLLECTOR_HH
