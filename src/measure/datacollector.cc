#include "measure/datacollector.hh"

#include "common/logging.hh"

namespace quma::measure {

void
DataCollectionUnit::configure(std::size_t k)
{
    if (k == 0)
        fatal("DataCollectionUnit needs at least one bin");
    sums.assign(k, 0.0);
    bitSums.assign(k, 0.0);
    counts.assign(k, 0);
    bitCounts.assign(k, 0);
    count = 0;
    bitCount = 0;
}

void
DataCollectionUnit::addSample(double s)
{
    quma_assert(!sums.empty(), "DataCollectionUnit not configured");
    std::size_t bin = count % sums.size();
    sums[bin] += s;
    ++counts[bin];
    ++count;
}

void
DataCollectionUnit::addBit(bool bit)
{
    quma_assert(!bitSums.empty(), "DataCollectionUnit not configured");
    std::size_t bin = bitCount % bitSums.size();
    bitSums[bin] += bit ? 1.0 : 0.0;
    ++bitCounts[bin];
    ++bitCount;
}

std::size_t
DataCollectionUnit::completedRounds() const
{
    if (sums.empty())
        return 0;
    return count / sums.size();
}

std::vector<double>
DataCollectionUnit::averages() const
{
    std::vector<double> out(sums.size(), 0.0);
    for (std::size_t i = 0; i < sums.size(); ++i)
        if (counts[i] > 0)
            out[i] = sums[i] / static_cast<double>(counts[i]);
    return out;
}

std::vector<double>
DataCollectionUnit::bitAverages() const
{
    std::vector<double> out(bitSums.size(), 0.0);
    for (std::size_t i = 0; i < bitSums.size(); ++i)
        if (bitCounts[i] > 0)
            out[i] = bitSums[i] / static_cast<double>(bitCounts[i]);
    return out;
}

void
DataCollectionUnit::clear()
{
    configure(sums.empty() ? 1 : sums.size());
}

void
DataCollectionUnit::reset()
{
    sums.clear();
    bitSums.clear();
    counts.clear();
    bitCounts.clear();
    count = 0;
    bitCount = 0;
}

} // namespace quma::measure
