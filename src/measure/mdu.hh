/**
 * @file
 * Measurement discrimination unit (paper §4.2.1, §5.1.2).
 *
 * Hardware-based discrimination with sub-microsecond latency: the
 * digitised readout trace Va(t) is integrated against a calibrated
 * weight function Wq(t),
 *
 *     Sq = sum_t Va(t) * Wq(t),    Mq = (Sq > Tq) ? 1 : 0,
 *
 * and the binary result is written back for feedback control. The
 * integration result Sq also feeds the data collection unit for
 * ensemble averaging.
 */

#ifndef QUMA_MEASURE_MDU_HH
#define QUMA_MEASURE_MDU_HH

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "qsim/readout.hh"
#include "signal/waveform.hh"

namespace quma::measure {

/** Calibrated discrimination data for one qubit. */
struct MduCalibration
{
    /** Integration weights at the ADC sample rate. */
    std::vector<double> weights;
    /** Decision threshold on the integration result. */
    double threshold = 0.0;
    /** Expected S for |0> and |1> (diagnostics / rescaling). */
    double s0 = 0.0;
    double s1 = 0.0;
};

/**
 * Build a matched filter for the given readout response: weights
 * proportional to the difference of the noiseless |1> and |0>
 * responses over the window, threshold midway between the two
 * expected integration results.
 */
MduCalibration calibrateMdu(const qsim::ReadoutParams &params,
                            TimeNs window_ns);

/** Result of one discrimination. */
struct MduResult
{
    double s = 0.0;
    bool bit = false;
    RegIndex destReg = 0;
    QubitMask qubit = 0;
    /** TD cycle at which the result becomes architecturally visible. */
    Cycle completionCycle = 0;
};

/**
 * One measurement discrimination unit instance (per qubit).
 *
 * Event-driven usage: the machine deposits the digitised trace when
 * the measurement pulse fires, the MD event starts discrimination,
 * and the result is delivered after the integration window plus the
 * discrimination latency.
 */
class Mdu
{
  public:
    using ResultSink = std::function<void(const MduResult &)>;

    Mdu(MduCalibration calibration, Cycle latency_cycles = 100);

    const MduCalibration &calibration() const { return cal; }
    Cycle latencyCycles() const { return latency; }

    void setResultSink(ResultSink sink) { resultSink = std::move(sink); }

    /** Deposit the digitised trace of an in-flight measurement. */
    void submitTrace(signal::Waveform trace, Cycle td,
                     Cycle duration_cycles);

    /** True while a submitted trace awaits its MD trigger. */
    bool hasPendingTrace() const { return pendingTrace.has_value(); }

    /**
     * MD trigger. If the digitised trace has already arrived it is
     * integrated immediately; otherwise the discriminator is ARMED
     * and fires when submitTrace delivers the window (the MD trigger
     * and the measurement pulse fire at the same timing label, but
     * the analog path has its own latency).
     */
    void discriminate(Cycle td, RegIndex dest_reg, QubitMask qubit);

    /** True while an MD trigger awaits its trace. */
    bool armed() const { return armedTrigger.has_value(); }

    /** Synchronous discrimination of an arbitrary trace (no events). */
    std::pair<double, bool> integrate(const signal::Waveform &trace) const;

    std::optional<Cycle> nextEventCycle() const;
    void advanceTo(Cycle now);

    std::size_t discriminationsDone() const { return done; }

    /**
     * Drop any pending trace / armed trigger / in-flight result and
     * zero the counters; the calibration is preserved (machine
     * re-arm).
     */
    void reset();

  private:
    MduCalibration cal;
    Cycle latency;
    ResultSink resultSink;

    struct PendingTrace
    {
        signal::Waveform trace;
        Cycle td;
        Cycle durationCycles;
    };
    struct ArmedTrigger
    {
        Cycle td;
        RegIndex destReg;
        QubitMask qubit;
    };

    void process(const PendingTrace &trace, const ArmedTrigger &trigger);

    std::optional<PendingTrace> pendingTrace;
    std::optional<ArmedTrigger> armedTrigger;
    std::optional<MduResult> inFlight;
    std::size_t done = 0;
};

} // namespace quma::measure

#endif // QUMA_MEASURE_MDU_HH
