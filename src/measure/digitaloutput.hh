/**
 * @file
 * Digital output unit of the master controller (paper §7.1): converts
 * a measurement operation tuple (QAddr, D) into a '1' marker of D
 * cycles on the outputs masked by QAddr. Each marker gates a
 * pulse-modulated microwave source that produces the measurement
 * pulse for the addressed qubits.
 */

#ifndef QUMA_MEASURE_DIGITALOUTPUT_HH
#define QUMA_MEASURE_DIGITALOUTPUT_HH

#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "signal/pulse.hh"

namespace quma::measure {

/** A recorded marker window on one digital output. */
struct MarkerWindow
{
    unsigned output = 0;
    Cycle startCycle = 0;
    Cycle durationCycles = 0;

    bool operator==(const MarkerWindow &) const = default;
};

class DigitalOutputUnit
{
  public:
    /** Gated-source callback: measurement pulse for one qubit. */
    using PulseSink =
        std::function<void(unsigned qubit,
                           const signal::MeasurementPulse &)>;

    /**
     * @param num_outputs number of digital outputs (paper: 8)
     * @param msmt_carrier_hz the gated readout source (6.849 GHz)
     */
    explicit DigitalOutputUnit(unsigned num_outputs = 8,
                               double msmt_carrier_hz = 6.849e9);

    unsigned numOutputs() const { return outputs; }

    void setPulseSink(PulseSink sink) { pulseSink = std::move(sink); }

    /**
     * Schedule markers for the mask to rise at TD cycle `td` (which
     * may be in the future relative to the current machine cycle:
     * the measurement path's calibrated latency is applied by the
     * caller). Delivery happens in advanceTo so it stays ordered
     * with the other deterministic-domain events.
     */
    void fire(QubitMask mask, Cycle td, Cycle duration_cycles);

    std::optional<Cycle> nextEventCycle() const;
    void advanceTo(Cycle now);

    /** Every marker window raised so far (for trace reproduction). */
    const std::vector<MarkerWindow> &markers() const { return history; }
    void clearHistory() { history.clear(); }

    /** Drop pending markers and the history (machine re-arm). */
    void reset();

  private:
    struct Pending
    {
        Cycle cycle;
        unsigned qubit;
        Cycle durationCycles;
        std::uint64_t order;

        bool
        operator>(const Pending &other) const
        {
            if (cycle != other.cycle)
                return cycle > other.cycle;
            return order > other.order;
        }
    };

    unsigned outputs;
    double carrierHz;
    PulseSink pulseSink;
    std::vector<MarkerWindow> history;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
        pending;
    std::uint64_t orderCounter = 0;
};

} // namespace quma::measure

#endif // QUMA_MEASURE_DIGITALOUTPUT_HH
