#include "measure/digitaloutput.hh"

#include "common/logging.hh"

namespace quma::measure {

DigitalOutputUnit::DigitalOutputUnit(unsigned num_outputs,
                                     double msmt_carrier_hz)
    : outputs(num_outputs), carrierHz(msmt_carrier_hz)
{
    if (num_outputs == 0 || num_outputs > 32)
        fatal("DigitalOutputUnit supports 1..32 outputs");
}

void
DigitalOutputUnit::fire(QubitMask mask, Cycle td, Cycle duration_cycles)
{
    if (duration_cycles == 0)
        fatal("measurement pulse needs a positive duration");
    for (unsigned q = 0; q < outputs; ++q) {
        if (!(mask & (QubitMask{1} << q)))
            continue;
        pending.push(Pending{td, q, duration_cycles, orderCounter++});
    }
}

std::optional<Cycle>
DigitalOutputUnit::nextEventCycle() const
{
    if (pending.empty())
        return std::nullopt;
    return pending.top().cycle;
}

void
DigitalOutputUnit::advanceTo(Cycle now)
{
    while (!pending.empty() && pending.top().cycle <= now) {
        Pending p = pending.top();
        pending.pop();
        history.push_back(
            MarkerWindow{p.qubit, p.cycle, p.durationCycles});
        if (pulseSink) {
            signal::MeasurementPulse pulse;
            pulse.t0Ns = cyclesToNs(p.cycle);
            pulse.durationNs = cyclesToNs(p.durationCycles);
            pulse.carrierHz = carrierHz;
            pulseSink(p.qubit, pulse);
        }
    }
}

void
DigitalOutputUnit::reset()
{
    pending = {};
    history.clear();
    orderCounter = 0;
}

} // namespace quma::measure
