#include "timing/controller.hh"

#include "common/logging.hh"

namespace quma::timing {

TimingController::TimingController(TimingConfig config)
    : cfg(config), timingQueue(config.timingQueueCapacity),
      mpgQueue(config.mpgQueueCapacity)
{
    if (cfg.numPulseQueues == 0 || cfg.numMdQueues == 0)
        fatal("TimingController needs at least one pulse and MD queue");
    for (unsigned i = 0; i < cfg.numPulseQueues; ++i)
        pulseQueues.emplace_back(cfg.pulseQueueCapacity);
    for (unsigned i = 0; i < cfg.numMdQueues; ++i)
        mdQueues.emplace_back(cfg.mdQueueCapacity);
}

void
TimingController::reset()
{
    timingQueue.clear();
    timingQueue.clearStats();
    for (auto &q : pulseQueues) {
        q.clear();
        q.clearStats();
    }
    mpgQueue.clear();
    mpgQueue.clearStats();
    for (auto &q : mdQueues) {
        q.clear();
        q.clearStats();
    }
    isStarted = false;
    lastFire = 0;
    tailDue = 0;
    lastLabel = 0;
    nowCycle = 0;
    viol = TimingViolations{};
}

void
TimingController::start(Cycle at)
{
    quma_assert(!isStarted, "timing controller started twice");
    if (timingQueue.empty()) {
        tailDue = at;
    } else {
        // Time points pushed before start computed their due cycles
        // relative to 0; starting anywhere else would invalidate
        // the chained lateness accounting.
        quma_assert(at == 0,
                    "a pre-filled timing queue requires TD start at 0");
    }
    isStarted = true;
    nowCycle = at;
    lastFire = at;
    fire(at, 0);
}

bool
TimingController::pushTimePoint(Cycle interval, TimingLabel label)
{
    quma_assert(interval > 0, "time point needs a positive interval");
    TimePoint tp{interval, label};
    // A full queue rejects the push and counts it (backpressure is
    // the saturation signal the pool scheduler watches).
    if (!timingQueue.push(tp))
        return false;
    Cycle due = tailDue + interval;
    if (isStarted && due < nowCycle) {
        ++viol.latePoints;
        viol.totalLateCycles += nowCycle - due;
    }
    tailDue = due;
    return true;
}

bool
TimingController::pushPulse(unsigned queue, const PulseEvent &event)
{
    quma_assert(queue < pulseQueues.size(), "pulse queue out of range");
    if (isStarted && event.label <= lastLabel) {
        ++viol.staleEvents;
        return true; // consumed (dropped): its time point already fired
    }
    return pulseQueues[queue].push(event);
}

bool
TimingController::pushMpg(const MpgEvent &event)
{
    if (isStarted && event.label <= lastLabel) {
        ++viol.staleEvents;
        return true;
    }
    return mpgQueue.push(event);
}

bool
TimingController::pushMd(unsigned queue, const MdEvent &event)
{
    quma_assert(queue < mdQueues.size(), "MD queue out of range");
    if (isStarted && event.label <= lastLabel) {
        ++viol.staleEvents;
        return true;
    }
    return mdQueues[queue].push(event);
}

std::optional<Cycle>
TimingController::nextDueCycle() const
{
    if (!isStarted || timingQueue.empty())
        return std::nullopt;
    Cycle due = lastFire + timingQueue.front().interval;
    return due;
}

void
TimingController::advanceTo(Cycle now)
{
    quma_assert(now >= nowCycle, "TD moved backwards");
    nowCycle = now;
    while (isStarted && !timingQueue.empty()) {
        Cycle due = lastFire + timingQueue.front().interval;
        if (due > now)
            break;
        TimingLabel label = timingQueue.front().label;
        // Remove before firing so snapshots inside sinks see the
        // post-fire state (paper Tables 2-4 convention).
        std::vector<TimePoint> fired;
        std::size_t stale = 0;
        timingQueue.popMatching(label, fired, stale);
        quma_assert(stale == 0 && fired.size() == 1,
                    "timing queue labels must be unique and ordered");
        fire(due, label);
    }
}

void
TimingController::fire(Cycle due, TimingLabel label)
{
    lastFire = due;
    lastLabel = label;
    if (fireObserver)
        fireObserver(due, label);

    std::size_t stale = 0;
    for (unsigned qi = 0; qi < pulseQueues.size(); ++qi) {
        std::vector<PulseEvent> fired;
        pulseQueues[qi].popMatching(label, fired, stale);
        for (const auto &ev : fired)
            if (pulseSink)
                pulseSink(qi, due, ev);
    }
    {
        std::vector<MpgEvent> fired;
        mpgQueue.popMatching(label, fired, stale);
        for (const auto &ev : fired)
            if (mpgSink)
                mpgSink(due, ev);
    }
    for (unsigned qi = 0; qi < mdQueues.size(); ++qi) {
        std::vector<MdEvent> fired;
        mdQueues[qi].popMatching(label, fired, stale);
        for (const auto &ev : fired)
            if (mdSink)
                mdSink(qi, due, ev);
    }
    viol.staleEvents += stale;
}

namespace {

template <typename T>
QueueSaturation
saturationOf(const EventQueue<T> &q)
{
    return {q.pushFailed(), q.highWaterMark(), q.capacity(),
            q.staleDropped()};
}

} // namespace

TimingUnitStats
TimingController::queueStats() const
{
    TimingUnitStats stats;
    stats.timing = saturationOf(timingQueue);
    stats.mpg = saturationOf(mpgQueue);
    for (const auto &q : pulseQueues)
        stats.pulse.push_back(saturationOf(q));
    for (const auto &q : mdQueues)
        stats.md.push_back(saturationOf(q));
    return stats;
}

std::vector<TimePoint>
TimingController::timingQueueSnapshot() const
{
    return timingQueue.snapshot();
}

std::vector<PulseEvent>
TimingController::pulseQueueSnapshot(unsigned queue) const
{
    quma_assert(queue < pulseQueues.size(), "pulse queue out of range");
    return pulseQueues[queue].snapshot();
}

std::vector<MpgEvent>
TimingController::mpgQueueSnapshot() const
{
    return mpgQueue.snapshot();
}

std::vector<MdEvent>
TimingController::mdQueueSnapshot(unsigned queue) const
{
    quma_assert(queue < mdQueues.size(), "MD queue out of range");
    return mdQueues[queue].snapshot();
}

bool
TimingController::pulseQueueFull(unsigned queue) const
{
    quma_assert(queue < pulseQueues.size(), "pulse queue out of range");
    return pulseQueues[queue].full();
}

bool
TimingController::mdQueueFull(unsigned queue) const
{
    quma_assert(queue < mdQueues.size(), "MD queue out of range");
    return mdQueues[queue].full();
}

bool
TimingController::allQueuesEmpty() const
{
    if (!timingQueue.empty() || !mpgQueue.empty())
        return false;
    for (const auto &q : pulseQueues)
        if (!q.empty())
            return false;
    for (const auto &q : mdQueues)
        if (!q.empty())
            return false;
    return true;
}

} // namespace quma::timing
