/**
 * @file
 * The timing control unit (paper §5.2).
 *
 * Splits the microarchitecture into a non-deterministic domain (the
 * pipeline filling the queues as fast as possible) and a
 * deterministic domain (this unit firing events at exact cycles).
 *
 * A timing queue buffers (interval, label) time points; event queues
 * buffer labelled events. A counter in the timing controller counts
 * cycles of the deterministic clock TD; when it reaches the front
 * interval the label is broadcast to every event queue, matching
 * events fire, and the counter restarts.
 *
 * Hazard accounting (exercised by failure-injection tests and the
 * scalability bench):
 *  - LATE TIME POINT: a Wait reached the unit after its due cycle
 *    had already passed (the upstream pipeline fell behind);
 *  - STALE EVENT: an event arrived after its label had already been
 *    broadcast, or was still queued when a later label fired.
 */

#ifndef QUMA_TIMING_CONTROLLER_HH
#define QUMA_TIMING_CONTROLLER_HH

#include <functional>
#include <optional>
#include <vector>

#include "timing/events.hh"
#include "timing/queues.hh"

namespace quma::timing {

/** Configuration of the timing control unit. */
struct TimingConfig
{
    std::size_t timingQueueCapacity = 64;
    std::size_t pulseQueueCapacity = 64;
    std::size_t mpgQueueCapacity = 32;
    std::size_t mdQueueCapacity = 32;
    /** One pulse queue per u-op unit (AWG). */
    unsigned numPulseQueues = 3;
    /** One MD queue per measurement discrimination unit. */
    unsigned numMdQueues = 1;
};

/** Saturation counters of one bounded queue. */
struct QueueSaturation
{
    std::size_t pushFailed = 0;
    std::size_t highWater = 0;
    std::size_t capacity = 0;
    /** Stale payloads silently dropped by popMatching. */
    std::size_t staleDropped = 0;
};

/**
 * Saturation counters of every queue in the unit. A non-zero
 * pushFailed means the producer hit backpressure (the push is retried
 * by the pipeline, so no event is lost -- but a pool scheduler
 * watching these knows the machine is running at queue capacity).
 */
struct TimingUnitStats
{
    QueueSaturation timing;
    QueueSaturation mpg;
    std::vector<QueueSaturation> pulse;
    std::vector<QueueSaturation> md;

    std::size_t
    totalPushFailed() const
    {
        std::size_t total = timing.pushFailed + mpg.pushFailed;
        for (const auto &s : pulse)
            total += s.pushFailed;
        for (const auto &s : md)
            total += s.pushFailed;
        return total;
    }

    std::size_t
    totalStaleDropped() const
    {
        std::size_t total = timing.staleDropped + mpg.staleDropped;
        for (const auto &s : pulse)
            total += s.staleDropped;
        for (const auto &s : md)
            total += s.staleDropped;
        return total;
    }
};

/** Counters for the hazards described above. */
struct TimingViolations
{
    std::size_t latePoints = 0;
    std::size_t staleEvents = 0;
    /** Total lateness (cycles) accumulated by late points. */
    Cycle totalLateCycles = 0;

    bool clean() const { return latePoints == 0 && staleEvents == 0; }

    bool operator==(const TimingViolations &) const = default;
};

class TimingController
{
  public:
    using PulseSink =
        std::function<void(unsigned queue, Cycle td, const PulseEvent &)>;
    using MpgSink = std::function<void(Cycle td, const MpgEvent &)>;
    using MdSink =
        std::function<void(unsigned queue, Cycle td, const MdEvent &)>;

    explicit TimingController(TimingConfig config = {});

    const TimingConfig &config() const { return cfg; }

    void setPulseSink(PulseSink sink) { pulseSink = std::move(sink); }
    void setMpgSink(MpgSink sink) { mpgSink = std::move(sink); }
    void setMdSink(MdSink sink) { mdSink = std::move(sink); }

    /** Observer invoked for every label broadcast (tracing). */
    using FireObserver = std::function<void(Cycle, TimingLabel)>;
    void setFireObserver(FireObserver observer)
    {
        fireObserver = std::move(observer);
    }

    /**
     * Start the deterministic clock at the given cycle. Broadcasts
     * the implicit label 0 so events queued before the first Wait
     * fire at TD start.
     */
    void start(Cycle at);
    bool started() const { return isStarted; }

    /** Drop all queued state and return to the unstarted condition. */
    void reset();

    /** Push a time point; false when the timing queue is full. */
    bool pushTimePoint(Cycle interval, TimingLabel label);
    bool pushPulse(unsigned queue, const PulseEvent &event);
    bool pushMpg(const MpgEvent &event);
    bool pushMd(unsigned queue, const MdEvent &event);

    /**
     * Cycle at which the next time point is due, if any. A late
     * point reports the current lateness horizon (it fires as soon
     * as the machine advances).
     */
    std::optional<Cycle> nextDueCycle() const;

    /** Fire every time point due at or before `now`. */
    void advanceTo(Cycle now);

    const TimingViolations &violations() const { return viol; }
    /** Per-queue saturation counters since the last reset(). */
    TimingUnitStats queueStats() const;
    TimingLabel lastBroadcastLabel() const { return lastLabel; }
    /** Due cycle of the most recently fired time point. */
    Cycle lastFireCycle() const { return lastFire; }

    // Introspection for tests and the queue-state reproductions.
    std::vector<TimePoint> timingQueueSnapshot() const;
    std::vector<PulseEvent> pulseQueueSnapshot(unsigned queue) const;
    std::vector<MpgEvent> mpgQueueSnapshot() const;
    std::vector<MdEvent> mdQueueSnapshot(unsigned queue) const;
    bool timingQueueFull() const { return timingQueue.full(); }
    bool pulseQueueFull(unsigned queue) const;
    bool mpgQueueFull() const { return mpgQueue.full(); }
    bool mdQueueFull(unsigned queue) const;
    bool allQueuesEmpty() const;

  private:
    void fire(Cycle due, TimingLabel label);

    TimingConfig cfg;
    EventQueue<TimePoint> timingQueue;
    std::vector<EventQueue<PulseEvent>> pulseQueues;
    EventQueue<MpgEvent> mpgQueue;
    std::vector<EventQueue<MdEvent>> mdQueues;

    PulseSink pulseSink;
    MpgSink mpgSink;
    MdSink mdSink;
    FireObserver fireObserver;

    bool isStarted = false;
    Cycle lastFire = 0;
    /** Due cycle of the latest pushed time point (chained). */
    Cycle tailDue = 0;
    TimingLabel lastLabel = 0;
    Cycle nowCycle = 0;
    TimingViolations viol;
};

} // namespace quma::timing

#endif // QUMA_TIMING_CONTROLLER_HH
