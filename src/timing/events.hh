/**
 * @file
 * Event records buffered in the timing control unit's queues.
 *
 * Each event carries the timing label of the time point at which it
 * must fire (paper §5.2). Labels are assigned by the quantum
 * microinstruction buffer in strictly increasing order; label 0 is
 * the implicit time point at which the deterministic-domain clock TD
 * starts.
 */

#ifndef QUMA_TIMING_EVENTS_HH
#define QUMA_TIMING_EVENTS_HH

#include "common/types.hh"

namespace quma::timing {

/** An entry of the timing queue: fire `label` after `interval`. */
struct TimePoint
{
    Cycle interval = 0;
    TimingLabel label = 0;

    bool operator==(const TimePoint &) const = default;
};

/** A micro-operation destined for a u-op unit (pulse queue entry). */
struct PulseEvent
{
    TimingLabel label = 0;
    QubitMask mask = 0;
    std::uint8_t uop = 0;

    bool operator==(const PulseEvent &) const = default;
};

/** A measurement-pulse generation trigger (MPG queue entry). */
struct MpgEvent
{
    TimingLabel label = 0;
    QubitMask mask = 0;
    Cycle durationCycles = 0;

    bool operator==(const MpgEvent &) const = default;
};

/** A measurement discrimination trigger (MD queue entry). */
struct MdEvent
{
    TimingLabel label = 0;
    QubitMask mask = 0;
    RegIndex destReg = 0;
    /**
     * Write-back mode: a single-qubit MD overwrites the whole
     * destination register with 0/1; a multi-qubit MD packs each
     * qubit's result into its own bit of the register.
     */
    bool overwrite = true;
    unsigned bitIndex = 0;

    bool operator==(const MdEvent &) const = default;
};

} // namespace quma::timing

#endif // QUMA_TIMING_EVENTS_HH
