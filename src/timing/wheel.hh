/**
 * @file
 * Hierarchical timing wheel for next-event dispatch.
 *
 * The machine's event loop needs one operation fast: "which cycle has
 * work next, and whose work is it?". Polling every component's
 * nextEventCycle() per step is O(#components) per step; the wheel
 * makes it O(1) amortized. Every event source owns a small integer id
 * and REGISTERS its next due cycle whenever that cycle changes; the
 * loop pops the global minimum and gets back the exact set of sources
 * due there.
 *
 * Layout: a radix-64 trie over absolute cycle numbers, kLevels deep.
 * A source due at cycle D lives at the lowest level whose slot D
 * shares with the current cursor's enclosing block -- so level 0
 * holds the sources due inside the cursor's current 64-cycle block
 * (one slot per exact cycle), level 1 one slot per 64-cycle block of
 * the enclosing 4096-cycle block, and so on. Each slot is a 64-bit
 * source mask, and each level keeps a slot-occupancy mask, so "first
 * occupied slot at or after the cursor" is a shift and a
 * count-trailing-zeros. Advancing the cursor into a new block
 * CASCADES that block's sources one level down; each source cascades
 * at most kLevels-1 times per registration, which is the amortized
 * O(1). Dues beyond the wheel horizon (64^kLevels cycles past the
 * cursor's top-level block) wait in an overflow set and re-enter when
 * the cursor's top-level block reaches them.
 *
 * Determinism: popEarliest returns ALL sources registered at the
 * minimum cycle as one mask; the caller processes them in its own
 * fixed component order, so the dispatch order never depends on
 * registration order.
 *
 * Capacity is kMaxSources (64) sources -- a source id is a bit in the
 * slot masks. The QumaMachine uses ~a dozen (timing unit, AWGs,
 * digital outputs, MDUs, pipeline, execution controller).
 */

#ifndef QUMA_TIMING_WHEEL_HH
#define QUMA_TIMING_WHEEL_HH

#include <bit>
#include <cstdint>
#include <optional>

#include "common/logging.hh"
#include "common/types.hh"

namespace quma::timing {

/** Lifetime counters of one EventWheel (cleared with clearStats). */
struct EventWheelStats
{
    /** schedule() calls that placed or moved a source. */
    std::size_t scheduled = 0;
    /** Source dispatches delivered by popEarliest (mask popcounts). */
    std::size_t dispatched = 0;
    /** popEarliest calls that returned a cycle (loop iterations). */
    std::size_t pops = 0;
    /** Source re-placements while cascading levels down. */
    std::size_t cascades = 0;
    /** Most sources registered at once. */
    std::size_t highWater = 0;
    /** Sources registered right now. */
    std::size_t occupancy = 0;
};

class EventWheel
{
  public:
    static constexpr unsigned kMaxSources = 64;
    static constexpr unsigned kSlotBits = 6;
    static constexpr unsigned kSlots = 1u << kSlotBits;
    static constexpr unsigned kLevels = 4;
    /** Cycles spanned by the levels before overflow takes over. */
    static constexpr Cycle kHorizon = Cycle{1}
                                      << (kSlotBits * kLevels);

    explicit EventWheel(unsigned num_sources = kMaxSources)
    {
        quma_assert(num_sources >= 1 && num_sources <= kMaxSources,
                    "EventWheel supports 1..64 sources");
        nsrc = num_sources;
        clear();
    }

    unsigned numSources() const { return nsrc; }
    bool empty() const { return liveCount == 0; }
    std::size_t size() const { return liveCount; }
    Cycle cursor() const { return cur; }
    bool registered(unsigned src) const
    {
        quma_assert(src < nsrc, "wheel source id out of range");
        return level[src] != kLevelNone;
    }
    /** Registered due cycle; source must be registered. */
    Cycle
    dueCycle(unsigned src) const
    {
        quma_assert(registered(src), "source not registered");
        return due[src];
    }

    /**
     * Register (or move) a source's next due cycle. A due in the
     * past is clamped to the cursor: it fires on the next pop.
     * Re-registering an unchanged due is a no-op.
     */
    void
    schedule(unsigned src, Cycle when)
    {
        quma_assert(src < nsrc, "wheel source id out of range");
        if (when < cur)
            when = cur;
        if (level[src] != kLevelNone) {
            if (due[src] == when)
                return;
            detach(src);
        } else {
            ++liveCount;
            if (liveCount > stat.highWater)
                stat.highWater = liveCount;
        }
        due[src] = when;
        place(src);
        ++stat.scheduled;
        stat.occupancy = liveCount;
    }

    /** Remove a source's registration (idempotent). */
    void
    cancel(unsigned src)
    {
        quma_assert(src < nsrc, "wheel source id out of range");
        if (level[src] == kLevelNone)
            return;
        detach(src);
        level[src] = kLevelNone;
        --liveCount;
        stat.occupancy = liveCount;
    }

    /** One popped dispatch: the minimum cycle and every source due
     *  at it (bit per source id). */
    struct Popped
    {
        Cycle cycle = 0;
        std::uint64_t sources = 0;
    };

    /**
     * Pop the minimum registered due cycle and all sources due at
     * it, advancing the cursor there. Empty wheel returns nullopt.
     */
    std::optional<Popped>
    popEarliest()
    {
        if (liveCount == 0)
            return std::nullopt;
        // Invariant: every level>=1 slot along the cursor's block
        // path is empty (place() puts such sources at level 0), so
        // the common path is one masked scan of level 0. Cascading
        // is needed only right after advanceCursor moves the cursor
        // into a new block.
        for (;;) {
            unsigned off = static_cast<unsigned>(cur) & (kSlots - 1);
            std::uint64_t ahead = occ[0] & (~std::uint64_t{0} << off);
            if (ahead != 0) {
                auto s = static_cast<unsigned>(std::countr_zero(ahead));
                Popped p;
                p.cycle = (cur & ~Cycle{kSlots - 1}) | s;
                p.sources = slots[0][s];
                occ[0] &= ~(std::uint64_t{1} << s);
                slots[0][s] = 0;
                std::uint64_t m = p.sources;
                while (m != 0) {
                    auto src =
                        static_cast<unsigned>(std::countr_zero(m));
                    m &= m - 1;
                    level[src] = kLevelNone;
                }
                auto n = static_cast<std::size_t>(
                    std::popcount(p.sources));
                liveCount -= n;
                stat.dispatched += n;
                ++stat.pops;
                stat.occupancy = liveCount;
                cur = p.cycle;
                return p;
            }
            if (!advanceCursor())
                return std::nullopt; // unreachable while liveCount>0
            cascadeAt(cur);
        }
    }

    /** Drop every registration and rewind the cursor to 0. */
    void
    clear()
    {
        for (unsigned l = 0; l < kLevels; ++l) {
            occ[l] = 0;
            for (unsigned s = 0; s < kSlots; ++s)
                slots[l][s] = 0;
        }
        overflow = 0;
        for (unsigned s = 0; s < kMaxSources; ++s) {
            level[s] = kLevelNone;
            due[s] = 0;
        }
        liveCount = 0;
        cur = 0;
        stat.occupancy = 0;
    }

    const EventWheelStats &stats() const { return stat; }
    void
    clearStats()
    {
        stat = EventWheelStats{};
        stat.occupancy = liveCount;
        stat.highWater = liveCount;
    }

  private:
    static constexpr std::uint8_t kLevelNone = 0xff;
    static constexpr std::uint8_t kLevelOverflow = 0xfe;

    static unsigned
    slotOf(Cycle c, unsigned lvl)
    {
        return static_cast<unsigned>(c >> (kSlotBits * lvl)) &
               (kSlots - 1);
    }

    /** Level at which `when` shares a parent block with the cursor:
     *  the lowest l where when and cur agree above bit 6*(l+1). */
    void
    place(unsigned src)
    {
        Cycle when = due[src];
        for (unsigned l = 0; l < kLevels; ++l) {
            if ((when >> (kSlotBits * (l + 1))) ==
                (cur >> (kSlotBits * (l + 1)))) {
                unsigned s = slotOf(when, l);
                slots[l][s] |= std::uint64_t{1} << src;
                occ[l] |= std::uint64_t{1} << s;
                level[src] = static_cast<std::uint8_t>(l);
                slot[src] = static_cast<std::uint8_t>(s);
                return;
            }
        }
        overflow |= std::uint64_t{1} << src;
        level[src] = kLevelOverflow;
    }

    /** Unlink a registered source from its slot (level[] untouched). */
    void
    detach(unsigned src)
    {
        if (level[src] == kLevelOverflow) {
            overflow &= ~(std::uint64_t{1} << src);
            return;
        }
        unsigned l = level[src];
        unsigned s = slot[src];
        slots[l][s] &= ~(std::uint64_t{1} << src);
        if (slots[l][s] == 0)
            occ[l] &= ~(std::uint64_t{1} << s);
    }

    /** Pull every source sharing `at`'s blocks down to its resting
     *  level, top level first so each re-place lands finally. */
    void
    cascadeAt(Cycle at)
    {
        if (overflow != 0) {
            std::uint64_t m = overflow;
            while (m != 0) {
                auto src =
                    static_cast<unsigned>(std::countr_zero(m));
                m &= m - 1;
                if ((due[src] >> (kSlotBits * kLevels)) ==
                    (at >> (kSlotBits * kLevels))) {
                    overflow &= ~(std::uint64_t{1} << src);
                    place(src);
                    ++stat.cascades;
                }
            }
        }
        for (unsigned l = kLevels - 1; l >= 1; --l) {
            unsigned s = slotOf(at, l);
            std::uint64_t m = slots[l][s];
            if (m == 0)
                continue;
            slots[l][s] = 0;
            occ[l] &= ~(std::uint64_t{1} << s);
            while (m != 0) {
                auto src =
                    static_cast<unsigned>(std::countr_zero(m));
                m &= m - 1;
                place(src); // lands below l: due shares l's block
                ++stat.cascades;
            }
        }
    }

    /**
     * Nothing due in the cursor's level-0 block: jump the cursor to
     * the start of the next block holding work. Returns false only
     * when the wheel is empty.
     */
    bool
    advanceCursor()
    {
        for (unsigned l = 1; l < kLevels; ++l) {
            unsigned pos = slotOf(cur, l);
            std::uint64_t ahead =
                occ[l] & (~std::uint64_t{0} << pos);
            if (ahead != 0) {
                auto s =
                    static_cast<unsigned>(std::countr_zero(ahead));
                Cycle width = Cycle{1} << (kSlotBits * l);
                Cycle base = cur & ~((width << kSlotBits) - 1);
                cur = base + static_cast<Cycle>(s) * width;
                return true;
            }
        }
        if (overflow != 0) {
            // Everything left is past the horizon: jump straight to
            // the earliest overflow due (it is the global minimum).
            Cycle best = 0;
            bool any = false;
            std::uint64_t m = overflow;
            while (m != 0) {
                auto src =
                    static_cast<unsigned>(std::countr_zero(m));
                m &= m - 1;
                if (!any || due[src] < best)
                    best = due[src];
                any = true;
            }
            cur = best;
            return true;
        }
        return false;
    }

    unsigned nsrc = kMaxSources;
    Cycle cur = 0;
    std::size_t liveCount = 0;
    std::uint64_t occ[kLevels] = {};
    std::uint64_t slots[kLevels][kSlots] = {};
    std::uint64_t overflow = 0;
    Cycle due[kMaxSources] = {};
    std::uint8_t level[kMaxSources] = {};
    std::uint8_t slot[kMaxSources] = {};
    EventWheelStats stat;
};

} // namespace quma::timing

#endif // QUMA_TIMING_WHEEL_HH
