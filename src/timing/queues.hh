/**
 * @file
 * Bounded FIFO event queues used by the timing control unit.
 */

#ifndef QUMA_TIMING_QUEUES_HH
#define QUMA_TIMING_QUEUES_HH

#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace quma::timing {

/**
 * A bounded FIFO of labelled events. The stored type T must expose a
 * `label` member.
 */
template <typename T>
class EventQueue
{
  public:
    explicit EventQueue(std::size_t capacity = 64) : cap(capacity)
    {
        quma_assert(capacity > 0, "queue capacity must be positive");
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const { return q.size(); }
    bool empty() const { return q.empty(); }
    bool full() const { return q.size() >= cap; }

    /** Rejected pushes since the last clearStats() (backpressure). */
    std::size_t pushFailed() const { return pushFailedCount; }
    /** Deepest occupancy reached since the last clearStats(). */
    std::size_t highWaterMark() const { return highWater; }
    /** Stale front entries dropped by popMatching since clearStats():
     *  payloads silently discarded because their time point already
     *  passed -- a saturation signal just like pushFailed. */
    std::size_t staleDropped() const { return staleDroppedCount; }

    /** Enqueue; returns false (and drops nothing) when full. */
    bool
    push(const T &event)
    {
        if (full()) {
            ++pushFailedCount;
            return false;
        }
        q.push_back(event);
        if (q.size() > highWater)
            highWater = q.size();
        return true;
    }

    /** Front element; queue must not be empty. */
    const T &
    front() const
    {
        quma_assert(!q.empty(), "front() on empty event queue");
        return q.front();
    }

    /**
     * Pop every front entry whose label matches `label` into `fired`.
     * Front entries with a SMALLER label are stale (their time point
     * already passed): they are dropped and counted in `stale`.
     */
    void
    popMatching(TimingLabel label, std::vector<T> &fired,
                std::size_t &stale)
    {
        while (!q.empty() && q.front().label < label) {
            q.pop_front();
            ++stale;
            ++staleDroppedCount;
        }
        while (!q.empty() && q.front().label == label) {
            fired.push_back(q.front());
            q.pop_front();
        }
    }

    /** Snapshot of the queue contents, front first. */
    std::vector<T>
    snapshot() const
    {
        return std::vector<T>(q.begin(), q.end());
    }

    void clear() { q.clear(); }

    /** Zero the saturation counters (queue contents untouched). */
    void
    clearStats()
    {
        pushFailedCount = 0;
        highWater = 0;
        staleDroppedCount = 0;
    }

  private:
    std::deque<T> q;
    std::size_t cap;
    std::size_t pushFailedCount = 0;
    std::size_t highWater = 0;
    std::size_t staleDroppedCount = 0;
};

} // namespace quma::timing

#endif // QUMA_TIMING_QUEUES_HH
