#include "microcode/controlstore.hh"

#include "common/logging.hh"
#include "isa/nametable.hh"

namespace quma::microcode {

MicroStep
MicroStep::wait(Cycle cycles)
{
    MicroStep s;
    s.kind = Kind::Wait;
    s.cycles = cycles;
    return s;
}

MicroStep
MicroStep::pulse(QubitRole role, std::uint8_t uop)
{
    MicroStep s;
    s.kind = Kind::Pulse;
    s.slots.emplace_back(role, uop);
    return s;
}

MicroStep
MicroStep::pulseMulti(std::vector<std::pair<QubitRole, std::uint8_t>> slots)
{
    MicroStep s;
    s.kind = Kind::Pulse;
    s.slots = std::move(slots);
    return s;
}

void
QControlStore::define(std::uint8_t gate, Microprogram program)
{
    store[gate] = std::move(program);
}

bool
QControlStore::contains(std::uint8_t gate) const
{
    return store.count(gate) != 0;
}

const Microprogram &
QControlStore::programFor(std::uint8_t gate) const
{
    auto it = store.find(gate);
    if (it == store.end())
        fatal("Q control store has no microprogram for gate id ",
              static_cast<unsigned>(gate));
    return it->second;
}

std::vector<isa::Instruction>
QControlStore::expand(const Microprogram &prog, QubitMask all,
                      QubitMask target, QubitMask control) const
{
    std::vector<isa::Instruction> out;
    for (const auto &step : prog.body) {
        if (step.kind == MicroStep::Kind::Wait) {
            out.push_back(isa::Instruction::wait(
                static_cast<std::int64_t>(step.cycles)));
            continue;
        }
        std::vector<isa::PulseSlot> slots;
        for (const auto &[role, uop] : step.slots) {
            QubitMask mask = 0;
            switch (role) {
              case QubitRole::All:
                mask = all;
                break;
              case QubitRole::Target:
                mask = target;
                break;
              case QubitRole::Control:
                mask = control;
                break;
              case QubitRole::Both:
                mask = target | control;
                break;
            }
            if (mask == 0)
                fatal("microprogram '", prog.name,
                      "' references an unbound qubit role");
            slots.push_back({mask, uop});
        }
        out.push_back(isa::Instruction::pulse(std::move(slots)));
    }
    return out;
}

std::vector<isa::Instruction>
QControlStore::expandApply(std::uint8_t gate, QubitMask mask) const
{
    return expand(programFor(gate), mask, 0, 0);
}

std::vector<isa::Instruction>
QControlStore::expandCnot(unsigned qt, unsigned qc) const
{
    QubitMask t = QubitMask{1} << qt;
    QubitMask c = QubitMask{1} << qc;
    return expand(programFor(kCnotGate), t | c, t, c);
}

std::vector<isa::Instruction>
QControlStore::expandMeasure(QubitMask mask, RegIndex rd) const
{
    return {isa::Instruction::mpg(mask,
                                  static_cast<std::int64_t>(msmtCycles)),
            isa::Instruction::md(mask, rd)};
}

QControlStore
QControlStore::standard(Cycle gate_cycles, Cycle msmt_cycles)
{
    namespace u = isa::uops;
    QControlStore cs;
    cs.setMeasurementCycles(msmt_cycles);

    auto single = [&](std::uint8_t uop, const char *name) {
        Microprogram p;
        p.name = name;
        p.body.push_back(MicroStep::pulse(QubitRole::All, uop));
        p.body.push_back(MicroStep::wait(gate_cycles));
        cs.define(uop, std::move(p));
    };
    single(u::I, "I");
    single(u::X180, "X180");
    single(u::X90, "X90");
    single(u::Xm90, "Xm90");
    single(u::Y180, "Y180");
    single(u::Y90, "Y90");
    single(u::Ym90, "Ym90");
    // Composite micro-operations are still one Pulse at this level:
    // the u-op unit expands them into codeword sequences. Their
    // duration spans the emulated sequence.
    {
        Microprogram p;
        p.name = "Z180";
        p.body.push_back(MicroStep::pulse(QubitRole::All, u::Z180));
        p.body.push_back(MicroStep::wait(2 * gate_cycles));
        cs.define(u::Z180, std::move(p));
    }
    {
        Microprogram p;
        p.name = "Z90";
        p.body.push_back(MicroStep::pulse(QubitRole::All, u::Z90));
        p.body.push_back(MicroStep::wait(3 * gate_cycles));
        cs.define(u::Z90, std::move(p));
    }
    {
        Microprogram p;
        p.name = "Zm90";
        p.body.push_back(MicroStep::pulse(QubitRole::All, u::Zm90));
        p.body.push_back(MicroStep::wait(3 * gate_cycles));
        cs.define(u::Zm90, std::move(p));
    }
    {
        Microprogram p;
        p.name = "H";
        p.body.push_back(MicroStep::pulse(QubitRole::All, u::H));
        p.body.push_back(MicroStep::wait(2 * gate_cycles));
        cs.define(u::H, std::move(p));
    }

    // Paper Algorithm 2: CNOT qt, qc = Ym90(t); CZ; Y90(t).
    {
        Microprogram p;
        p.name = "CNOT";
        p.body.push_back(MicroStep::pulse(QubitRole::Target, u::Ym90));
        p.body.push_back(MicroStep::wait(gate_cycles));
        p.body.push_back(MicroStep::pulse(QubitRole::Both, u::Cz));
        p.body.push_back(MicroStep::wait(2 * gate_cycles));
        p.body.push_back(MicroStep::pulse(QubitRole::Target, u::Y90));
        p.body.push_back(MicroStep::wait(gate_cycles));
        cs.define(kCnotGate, std::move(p));
    }
    return cs;
}

} // namespace quma::microcode
