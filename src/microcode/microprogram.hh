/**
 * @file
 * Microprogram templates stored in the Q control store.
 *
 * A microprogram emulates one QIS instruction as a sequence of QuMIS
 * microinstructions (Wilkes-style microcode, paper §3 and §5.3). Gate
 * microprograms are templates: their Pulse slots name qubit ROLES
 * (all addressed qubits / CNOT target / CNOT control) that are bound
 * to concrete qubit masks when the physical microcode unit expands a
 * QIS instruction.
 */

#ifndef QUMA_MICROCODE_MICROPROGRAM_HH
#define QUMA_MICROCODE_MICROPROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace quma::microcode {

/** How a template slot's qubit mask is derived at expansion time. */
enum class QubitRole : std::uint8_t
{
    All,     ///< every qubit addressed by the QIS instruction
    Target,  ///< CNOT target
    Control, ///< CNOT control
    Both,    ///< CNOT target and control together (e.g. the CZ pulse)
};

/** One template step: either a Pulse with role-based slots or a Wait. */
struct MicroStep
{
    enum class Kind : std::uint8_t { Pulse, Wait };

    Kind kind = Kind::Wait;

    /** Pulse: (role, micro-operation id) pairs. */
    std::vector<std::pair<QubitRole, std::uint8_t>> slots;

    /** Wait: interval in cycles. */
    Cycle cycles = 0;

    static MicroStep wait(Cycle cycles);
    static MicroStep pulse(QubitRole role, std::uint8_t uop);
    static MicroStep
    pulseMulti(std::vector<std::pair<QubitRole, std::uint8_t>> slots);
};

/** A named microprogram: the body executed for one QIS instruction. */
struct Microprogram
{
    std::string name;
    std::vector<MicroStep> body;
};

} // namespace quma::microcode

#endif // QUMA_MICROCODE_MICROPROGRAM_HH
