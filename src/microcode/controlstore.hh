/**
 * @file
 * The Q control store: gate id -> microprogram, plus the expansion
 * performed by the physical microcode unit.
 */

#ifndef QUMA_MICROCODE_CONTROLSTORE_HH
#define QUMA_MICROCODE_CONTROLSTORE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "microcode/microprogram.hh"

namespace quma::microcode {

/**
 * Holds the uploaded microprograms and expands QIS instructions into
 * QuMIS instruction sequences.
 */
class QControlStore
{
  public:
    /** Upload (or replace) the microprogram for a gate id. */
    void define(std::uint8_t gate, Microprogram program);

    bool contains(std::uint8_t gate) const;
    const Microprogram &programFor(std::uint8_t gate) const;

    /** Number of stored microprograms. */
    std::size_t size() const { return store.size(); }

    /**
     * Expand `Apply gate, mask` into QuMIS instructions by binding
     * the template roles (All -> mask).
     */
    std::vector<isa::Instruction> expandApply(std::uint8_t gate,
                                              QubitMask mask) const;

    /**
     * Expand `CNOT qt, qc` using the microprogram registered under
     * the pseudo-gate id kCnotGate (paper Algorithm 2).
     */
    std::vector<isa::Instruction> expandCnot(unsigned qt,
                                             unsigned qc) const;

    /**
     * Expand `Measure mask, rd` into MPG + MD with the configured
     * measurement pulse duration.
     */
    std::vector<isa::Instruction> expandMeasure(QubitMask mask,
                                                RegIndex rd) const;

    /** Measurement pulse duration used by expandMeasure (cycles). */
    Cycle measurementCycles() const { return msmtCycles; }
    void setMeasurementCycles(Cycle c) { msmtCycles = c; }

    /** Pseudo-gate id under which the CNOT microprogram is stored. */
    static constexpr std::uint8_t kCnotGate = 255;

    /**
     * The standard store: pass-through single-pulse microprograms for
     * the Table 1 primitives (each followed by the gate-time Wait),
     * composite Z/H programs, and the Algorithm 2 CNOT.
     *
     * @param gate_cycles spacing after a single-qubit gate (default
     *        4 cycles = 20 ns, the paper's pulse duration)
     */
    static QControlStore standard(Cycle gate_cycles = 4,
                                  Cycle msmt_cycles = 300);

  private:
    std::vector<isa::Instruction>
    expand(const Microprogram &prog, QubitMask all, QubitMask target,
           QubitMask control) const;

    std::unordered_map<std::uint8_t, Microprogram> store;
    Cycle msmtCycles = 300;
};

} // namespace quma::microcode

#endif // QUMA_MICROCODE_CONTROLSTORE_HH
