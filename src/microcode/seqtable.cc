#include "microcode/seqtable.hh"

#include "common/logging.hh"
#include "isa/nametable.hh"

namespace quma::microcode {

void
UopSequenceTable::define(std::uint8_t uop, std::vector<SeqEntry> seq)
{
    if (seq.empty())
        fatal("micro-operation sequence must not be empty");
    if (seq.front().delta != 0)
        fatal("first codeword of a sequence must have delta 0");
    table[uop] = std::move(seq);
}

bool
UopSequenceTable::contains(std::uint8_t uop) const
{
    return table.count(uop) != 0;
}

const std::vector<SeqEntry> &
UopSequenceTable::sequenceFor(std::uint8_t uop) const
{
    auto it = table.find(uop);
    if (it == table.end())
        fatal("u-op unit has no sequence for micro-operation ",
              static_cast<unsigned>(uop));
    return it->second;
}

Cycle
UopSequenceTable::spanOf(std::uint8_t uop) const
{
    Cycle span = 0;
    for (const auto &e : sequenceFor(uop))
        span += e.delta;
    return span;
}

UopSequenceTable
UopSequenceTable::standard()
{
    namespace u = isa::uops;
    UopSequenceTable t;
    // Primitives: forward the codeword without translation (paper §8).
    for (std::uint8_t uop : {u::I, u::X180, u::X90, u::Xm90, u::Y180,
                             u::Y90, u::Ym90, u::Msmt, u::Cz})
        t.define(uop, {{0, static_cast<Codeword>(uop)}});

    // SeqZ = ([0, 1]; [4, 4]) exactly as in paper §5.3.2: an X180
    // then a Y180 four cycles later (Z = Y * X up to global phase).
    t.define(u::Z180, {{0, u::X180}, {4, u::Y180}});
    // Rz(+90) = (temporal) Xm90, Y90, X90; Rz(-90) is the reverse.
    t.define(u::Z90, {{0, u::Xm90}, {4, u::Y90}, {4, u::X90}});
    t.define(u::Zm90, {{0, u::X90}, {4, u::Y90}, {4, u::Xm90}});
    // H = X * Ry(pi/2) up to phase: Y90 then X180.
    t.define(u::H, {{0, u::Y90}, {4, u::X180}});
    return t;
}

} // namespace quma::microcode
