/**
 * @file
 * Micro-operation sequence tables for the u-op unit.
 *
 * For each predefined micro-operation uOp_i the u-op unit stores a
 * sequence Seq_i = ([0, cw0]; [dt1, cw1]; ...) of codeword triggers
 * with inter-trigger intervals in cycles (paper §5.3.2). Primitive
 * operations pass straight through (one codeword at offset 0); the
 * table can also emulate composite operations such as
 * SeqZ = ([0, 1]; [4, 4]) -- an X180 codeword then a Y180 codeword
 * four cycles later, since Z = Y * X up to global phase.
 */

#ifndef QUMA_MICROCODE_SEQTABLE_HH
#define QUMA_MICROCODE_SEQTABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace quma::microcode {

/** One codeword trigger within a micro-operation sequence. */
struct SeqEntry
{
    /** Interval in cycles after the PREVIOUS trigger (0 for first). */
    Cycle delta = 0;
    Codeword codeword = 0;

    bool operator==(const SeqEntry &) const = default;
};

class UopSequenceTable
{
  public:
    /** Upload (or replace) the sequence for a micro-operation. */
    void define(std::uint8_t uop, std::vector<SeqEntry> seq);

    bool contains(std::uint8_t uop) const;
    const std::vector<SeqEntry> &sequenceFor(std::uint8_t uop) const;

    /** Total span (sum of deltas) of a sequence in cycles. */
    Cycle spanOf(std::uint8_t uop) const;

    std::size_t size() const { return table.size(); }

    /**
     * The standard table: pass-through for codewords 0..8 and
     * emulation sequences for Z180/Z90/Zm90/H built from Table 1
     * primitives.
     */
    static UopSequenceTable standard();

  private:
    std::unordered_map<std::uint8_t, std::vector<SeqEntry>> table;
};

} // namespace quma::microcode

#endif // QUMA_MICROCODE_SEQTABLE_HH
