#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace quma {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
detail::emitMessage(const char *tag, const std::string &msg)
{
    std::cerr << tag << ": " << msg << "\n";
}

} // namespace quma
