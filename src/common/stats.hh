/**
 * @file
 * Small statistics toolkit: running moments, linear regression, and the
 * model fits needed by the coherence-time experiments (exponential decay
 * for T1/T2-echo, exponentially damped cosine for T2 Ramsey).
 */

#ifndef QUMA_COMMON_STATS_HH
#define QUMA_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace quma {

/** Accumulates count/mean/variance/min/max in one pass (Welford). */
class RunningStats
{
  public:
    void add(double x);
    void clear();

    std::size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Result of a least-squares straight-line fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/** Ordinary least squares over (x, y) pairs; requires >= 2 points. */
LinearFit linearFit(const std::vector<double> &x,
                    const std::vector<double> &y);

/** Result of fitting y = amplitude * exp(-x / tau) + offset. */
struct ExpFit
{
    double amplitude = 0.0;
    double tau = 0.0;
    double offset = 0.0;
    /** Root-mean-square residual of the fit. */
    double rmsResidual = 0.0;
};

/**
 * Fit an exponential decay. For a fixed tau the problem is linear in
 * (amplitude, offset); tau itself is found by golden-section search on
 * the residual, bracketed by the span of x.
 */
ExpFit expDecayFit(const std::vector<double> &x,
                   const std::vector<double> &y);

/** Result of fitting y = a * exp(-x/tau) * cos(2*pi*f*x + phi) + c. */
struct DampedCosineFit
{
    double amplitude = 0.0;
    double tau = 0.0;
    double frequency = 0.0;
    double phase = 0.0;
    double offset = 0.0;
    double rmsResidual = 0.0;
};

/**
 * Fit an exponentially damped cosine (Ramsey fringe). The frequency is
 * located by a coarse scan refined by golden-section; for fixed
 * (tau, f) the remaining parameters are solved linearly.
 *
 * @param freqHint approximate oscillation frequency (e.g. the artificial
 *                 detuning programmed into the experiment); the scan
 *                 searches within a factor of two around it.
 */
DampedCosineFit dampedCosineFit(const std::vector<double> &x,
                                const std::vector<double> &y,
                                double freqHint);

/** Mean absolute deviation between two equal-length series. */
double meanAbsDeviation(const std::vector<double> &a,
                        const std::vector<double> &b);

} // namespace quma

#endif // QUMA_COMMON_STATS_HH
