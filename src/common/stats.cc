#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace quma {

void
RunningStats::add(double x)
{
    ++n;
    if (n == 1) {
        mu = lo = hi = x;
        m2 = 0.0;
        return;
    }
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
RunningStats::clear()
{
    n = 0;
    mu = m2 = lo = hi = 0.0;
}

double
RunningStats::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

LinearFit
linearFit(const std::vector<double> &x, const std::vector<double> &y)
{
    quma_assert(x.size() == y.size(), "linearFit: size mismatch");
    if (x.size() < 2)
        fatal("linearFit needs at least two points, got ", x.size());

    double n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }
    double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-300)
        fatal("linearFit: degenerate x values");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double ssTot = syy - sy * sy / n;
    double ssRes = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double r = y[i] - (fit.slope * x[i] + fit.intercept);
        ssRes += r * r;
    }
    fit.r2 = ssTot > 0 ? 1.0 - ssRes / ssTot : 1.0;
    return fit;
}

namespace {

/**
 * Solve for (amplitude, offset) of y = a * b(x) + c by linear least
 * squares given basis values b(x), and return the rms residual.
 */
double
solveAmplitudeOffset(const std::vector<double> &basis,
                     const std::vector<double> &y, double &a, double &c)
{
    double n = static_cast<double>(y.size());
    double sb = 0, sy = 0, sbb = 0, sby = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        sb += basis[i];
        sy += y[i];
        sbb += basis[i] * basis[i];
        sby += basis[i] * y[i];
    }
    double denom = n * sbb - sb * sb;
    if (std::abs(denom) < 1e-300) {
        a = 0.0;
        c = sy / n;
    } else {
        a = (n * sby - sb * sy) / denom;
        c = (sy - a * sb) / n;
    }
    double ss = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        double r = y[i] - (a * basis[i] + c);
        ss += r * r;
    }
    return std::sqrt(ss / n);
}

double
expResidual(const std::vector<double> &x, const std::vector<double> &y,
            double tau, double &a, double &c)
{
    std::vector<double> basis(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        basis[i] = std::exp(-x[i] / tau);
    return solveAmplitudeOffset(basis, y, a, c);
}

/** Golden-section minimisation of f over [lo, hi]. */
template <typename F>
double
goldenSection(F f, double lo, double hi, int iters = 80)
{
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo, b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    double fc = f(c), fd = f(d);
    for (int i = 0; i < iters; ++i) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    return (a + b) / 2.0;
}

} // namespace

ExpFit
expDecayFit(const std::vector<double> &x, const std::vector<double> &y)
{
    quma_assert(x.size() == y.size(), "expDecayFit: size mismatch");
    if (x.size() < 3)
        fatal("expDecayFit needs at least three points, got ", x.size());

    double xmax = *std::max_element(x.begin(), x.end());
    double xmin = *std::min_element(x.begin(), x.end());
    double span = std::max(xmax - xmin, 1e-12);

    double a = 0, c = 0;
    auto objective = [&](double tau) {
        double aa, cc;
        return expResidual(x, y, tau, aa, cc);
    };
    double tau = goldenSection(objective, span * 1e-3, span * 20.0);

    ExpFit fit;
    fit.rmsResidual = expResidual(x, y, tau, a, c);
    fit.tau = tau;
    fit.amplitude = a;
    fit.offset = c;
    return fit;
}

DampedCosineFit
dampedCosineFit(const std::vector<double> &x, const std::vector<double> &y,
                double freqHint)
{
    quma_assert(x.size() == y.size(), "dampedCosineFit: size mismatch");
    if (x.size() < 6)
        fatal("dampedCosineFit needs at least six points, got ", x.size());
    if (freqHint <= 0)
        fatal("dampedCosineFit: freqHint must be positive");

    double xmax = *std::max_element(x.begin(), x.end());
    double xmin = *std::min_element(x.begin(), x.end());
    double span = std::max(xmax - xmin, 1e-12);

    // For fixed (tau, f) the model is linear in
    // (a*cos(phi), -a*sin(phi), c) via the two quadrature bases.
    auto solve = [&](double tau, double f, DampedCosineFit &out) {
        const double twoPi = 2.0 * std::numbers::pi;
        std::size_t m = x.size();
        // Normal equations for [p, q, c] with bases
        // e(x)cos(wx), e(x)sin(wx), 1.
        double mat[3][3] = {};
        double rhs[3] = {};
        for (std::size_t i = 0; i < m; ++i) {
            double e = std::exp(-x[i] / tau);
            double b0 = e * std::cos(twoPi * f * x[i]);
            double b1 = e * std::sin(twoPi * f * x[i]);
            double b[3] = {b0, b1, 1.0};
            for (int r = 0; r < 3; ++r) {
                for (int s = 0; s < 3; ++s)
                    mat[r][s] += b[r] * b[s];
                rhs[r] += b[r] * y[i];
            }
        }
        // Gaussian elimination with partial pivoting (3x3).
        int piv[3] = {0, 1, 2};
        for (int col = 0; col < 3; ++col) {
            int best = col;
            for (int r = col + 1; r < 3; ++r)
                if (std::abs(mat[piv[r]][col]) > std::abs(mat[piv[best]][col]))
                    best = r;
            std::swap(piv[col], piv[best]);
            double p = mat[piv[col]][col];
            if (std::abs(p) < 1e-300)
                return 1e300;
            for (int r = col + 1; r < 3; ++r) {
                double factor = mat[piv[r]][col] / p;
                for (int s = col; s < 3; ++s)
                    mat[piv[r]][s] -= factor * mat[piv[col]][s];
                rhs[piv[r]] -= factor * rhs[piv[col]];
            }
        }
        double sol[3];
        for (int col = 2; col >= 0; --col) {
            double acc = rhs[piv[col]];
            for (int s = col + 1; s < 3; ++s)
                acc -= mat[piv[col]][s] * sol[s];
            sol[col] = acc / mat[piv[col]][col];
        }
        double p = sol[0], q = sol[1], c = sol[2];
        out.amplitude = std::hypot(p, q);
        out.phase = std::atan2(-q, p);
        out.offset = c;
        out.tau = tau;
        out.frequency = f;
        double ss = 0;
        for (std::size_t i = 0; i < m; ++i) {
            double e = std::exp(-x[i] / tau);
            double model = e * (p * std::cos(twoPi * f * x[i]) +
                                q * std::sin(twoPi * f * x[i])) + c;
            double r = y[i] - model;
            ss += r * r;
        }
        out.rmsResidual = std::sqrt(ss / static_cast<double>(m));
        return out.rmsResidual;
    };

    // Coarse scan over frequency within a factor of two of the hint,
    // each with a tau found by golden-section, then refine.
    DampedCosineFit best;
    double bestRes = 1e300;
    for (int k = 0; k <= 40; ++k) {
        double f = freqHint * std::pow(2.0, -1.0 + 2.0 * k / 40.0);
        DampedCosineFit trial;
        auto obj = [&](double tau) {
            DampedCosineFit t;
            return solve(tau, f, t);
        };
        double tau = goldenSection(obj, span * 1e-2, span * 20.0, 40);
        double res = solve(tau, f, trial);
        if (res < bestRes) {
            bestRes = res;
            best = trial;
        }
    }
    // Local refinement of frequency around the coarse winner.
    auto objF = [&](double f) {
        DampedCosineFit t;
        return solve(best.tau, f, t);
    };
    double f = goldenSection(objF, best.frequency * 0.8,
                             best.frequency * 1.25, 60);
    auto objTau = [&](double tau) {
        DampedCosineFit t;
        return solve(tau, f, t);
    };
    double tau = goldenSection(objTau, span * 1e-2, span * 20.0, 60);
    solve(tau, f, best);
    return best;
}

double
meanAbsDeviation(const std::vector<double> &a, const std::vector<double> &b)
{
    quma_assert(a.size() == b.size(), "meanAbsDeviation: size mismatch");
    if (a.empty())
        return 0.0;
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += std::abs(a[i] - b[i]);
    return acc / static_cast<double>(a.size());
}

} // namespace quma
