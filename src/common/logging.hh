/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can inspect the failure.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed program, ...); exits cleanly.
 * warn()   - something is suspicious but the simulation continues.
 * inform() - normal operating status for the user.
 */

#ifndef QUMA_COMMON_LOGGING_HH
#define QUMA_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace quma {

/** Exception thrown by fatal(): a user-level, recoverable-by-caller error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emitMessage(const char *tag, const std::string &msg);

} // namespace detail

/** Global verbosity switch for inform()/warn() output. */
void setLogQuiet(bool quiet);
bool logQuiet();

/**
 * Report an unrecoverable internal error (library bug) and throw
 * PanicError. Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user error (bad input/config) and throw
 * FatalError. Never returns normally.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage("fatal", msg);
    throw FatalError(msg);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (!logQuiet())
        detail::emitMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (!logQuiet())
        detail::emitMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define quma_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::quma::panic("assertion '", #cond, "' failed: ",                \
                          ##__VA_ARGS__);                                    \
    } while (0)

} // namespace quma

#endif // QUMA_COMMON_LOGGING_HH
