#include "common/strings.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace quma {

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char delim, bool keep_empty)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            std::string_view field = s.substr(start, i - start);
            if (!field.empty() || keep_empty)
                out.emplace_back(field);
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

bool
parseInt(std::string_view s, long long &out)
{
    std::string buf = trim(s);
    if (buf.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

} // namespace quma
