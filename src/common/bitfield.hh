/**
 * @file
 * Bit-slicing helpers for instruction encoding, after gem5's bitfield.hh.
 */

#ifndef QUMA_COMMON_BITFIELD_HH
#define QUMA_COMMON_BITFIELD_HH

#include <cstdint>

namespace quma {

/** Mask of n low bits (n in [0, 64]). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [first, last] (inclusive, last >= first) of val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & lowMask(last - first + 1);
}

/** Return val with bits [first, last] replaced by the low bits of field. */
constexpr std::uint64_t
insertBits(std::uint64_t val, unsigned last, unsigned first,
           std::uint64_t field)
{
    std::uint64_t mask = lowMask(last - first + 1) << first;
    return (val & ~mask) | ((field << first) & mask);
}

/** Sign-extend the low n bits of val. */
constexpr std::int64_t
signExtend(std::uint64_t val, unsigned n)
{
    std::uint64_t m = std::uint64_t{1} << (n - 1);
    std::uint64_t x = val & lowMask(n);
    return static_cast<std::int64_t>((x ^ m) - m);
}

} // namespace quma

#endif // QUMA_COMMON_BITFIELD_HH
