#include "common/metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace quma::metrics {

namespace detail {

void
AtomicDouble::add(double v)
{
    std::uint64_t old = bits.load(std::memory_order_relaxed);
    for (;;) {
        double next = std::bit_cast<double>(old) + v;
        if (bits.compare_exchange_weak(old,
                                       std::bit_cast<std::uint64_t>(next),
                                       std::memory_order_relaxed))
            return;
    }
}

void
AtomicDouble::set(double v)
{
    bits.store(std::bit_cast<std::uint64_t>(v),
               std::memory_order_relaxed);
}

double
AtomicDouble::get() const
{
    return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

HistogramCell::HistogramCell(std::vector<double> upper_bounds)
    : bucketCounts(upper_bounds.size() + 1),
      bounds(std::move(upper_bounds))
{
}

void
HistogramCell::observe(double v)
{
    // First bucket whose upper bound admits v; the extra final slot
    // is the +Inf overflow. Bounds are few and sorted -- a linear
    // scan beats binary search at these sizes and stays branch-
    // predictable for clustered observations.
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i])
        ++i;
    bucketCounts[i].fetch_add(1, std::memory_order_relaxed);
    sum.add(v);
    observations.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

std::vector<double>
latencyBucketsSeconds()
{
    return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
            0.1,   0.25,   0.5,   1.0,  2.5,   5.0, 10.0};
}

MetricsRegistry::MetricsRegistry(bool enabled) : on(enabled) {}

MetricsRegistry::~MetricsRegistry() = default;

bool
MetricsRegistry::validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name)
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

bool
MetricsRegistry::validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_';
    };
    if (!head(name[0]))
        return false;
    for (char c : name)
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    // "__"-prefixed label names are reserved for internal use by the
    // Prometheus ecosystem.
    return name.rfind("__", 0) != 0;
}

std::string
MetricsRegistry::escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
MetricsRegistry::formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    // Counts render as integers (the common case, and what the
    // format tests pin); everything else as shortest round-trippable
    // decimal.
    if (v == std::rint(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    // Shortest decimal that round-trips: bucket bounds like 0.1 must
    // render as "0.1", not "0.10000000000000001" -- scrape parsers
    // key histogram buckets on the literal `le` string.
    char buf[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
MetricsRegistry::labelKey(const Labels &labels)
{
    // The rendered form IS the key: series with the same values
    // dedupe, and std::map order over it is the deterministic
    // exposition order.
    std::string key;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i)
            key += ',';
        key += labels[i].first;
        key += "=\"";
        key += escapeLabelValue(labels[i].second);
        key += '"';
    }
    return key;
}

void
MetricsRegistry::checkLabels(const std::string &name,
                             const Labels &labels)
{
    for (const auto &[k, v] : labels) {
        (void)v;
        if (!validLabelName(k))
            fatal("metric ", name, ": invalid label name '", k, "'");
        if (k == "le")
            fatal("metric ", name,
                  ": label 'le' is reserved for histogram buckets");
    }
}

MetricsRegistry::Family &
MetricsRegistry::familyLocked(const std::string &name,
                              const std::string &help, Kind kind,
                              const Labels &labels)
{
    if (!validMetricName(name))
        fatal("invalid metric name '", name, "'");
    checkLabels(name, labels);
    std::vector<std::string> names;
    names.reserve(labels.size());
    for (const auto &[k, v] : labels) {
        (void)v;
        names.push_back(k);
    }
    auto it = families.find(name);
    if (it == families.end()) {
        Family f;
        f.help = help;
        f.kind = kind;
        f.labelNames = std::move(names);
        it = families.emplace(name, std::move(f)).first;
        return it->second;
    }
    Family &f = it->second;
    if (f.kind != kind)
        fatal("metric '", name, "' re-registered with another type");
    if (f.labelNames != names)
        fatal("metric '", name,
              "' re-registered with a different label-name set");
    return f;
}

Counter
MetricsRegistry::counter(const std::string &name,
                         const std::string &help, const Labels &labels)
{
    Counter handle;
    if (!on)
        return handle;
    std::lock_guard<std::mutex> lock(mu);
    Family &f = familyLocked(name, help, Kind::Counter, labels);
    Series &s = f.series[labelKey(labels)];
    if (!s.counter) {
        s.labels = labels;
        s.counter = std::make_unique<detail::CounterCell>();
    }
    handle.cell = s.counter.get();
    return handle;
}

Gauge
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const Labels &labels)
{
    Gauge handle;
    if (!on)
        return handle;
    std::lock_guard<std::mutex> lock(mu);
    Family &f = familyLocked(name, help, Kind::Gauge, labels);
    Series &s = f.series[labelKey(labels)];
    if (!s.gauge) {
        s.labels = labels;
        s.gauge = std::make_unique<detail::GaugeCell>();
    }
    handle.cell = s.gauge.get();
    return handle;
}

Histogram
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const std::vector<double> &upper_bounds,
                           const Labels &labels)
{
    Histogram handle;
    if (!on)
        return handle;
    for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
        if (!std::isfinite(upper_bounds[i]))
            fatal("histogram '", name,
                  "': bucket bounds must be finite (+Inf is implicit)");
        if (i > 0 && upper_bounds[i] <= upper_bounds[i - 1])
            fatal("histogram '", name,
                  "': bucket bounds must be strictly increasing");
    }
    std::lock_guard<std::mutex> lock(mu);
    Family &f = familyLocked(name, help, Kind::Histogram, labels);
    if (f.series.empty())
        f.buckets = upper_bounds;
    else if (f.buckets != upper_bounds)
        fatal("histogram '", name,
              "': every series must share the family's bucket bounds");
    Series &s = f.series[labelKey(labels)];
    if (!s.histogram) {
        s.labels = labels;
        s.histogram =
            std::make_unique<detail::HistogramCell>(upper_bounds);
    }
    handle.cell = s.histogram.get();
    return handle;
}

void
MetricsRegistry::gaugeFn(const std::string &name,
                         const std::string &help, const Labels &labels,
                         std::function<double()> fn)
{
    if (!on)
        return;
    if (!fn)
        fatal("metric '", name, "': callback series needs a callable");
    std::lock_guard<std::mutex> lock(mu);
    Family &f = familyLocked(name, help, Kind::Gauge, labels);
    Series &s = f.series[labelKey(labels)];
    s.labels = labels;
    s.fn = std::move(fn);
}

void
MetricsRegistry::counterFn(const std::string &name,
                           const std::string &help,
                           const Labels &labels,
                           std::function<double()> fn)
{
    if (!on)
        return;
    if (!fn)
        fatal("metric '", name, "': callback series needs a callable");
    std::lock_guard<std::mutex> lock(mu);
    Family &f = familyLocked(name, help, Kind::Counter, labels);
    Series &s = f.series[labelKey(labels)];
    s.labels = labels;
    s.fn = std::move(fn);
}

std::size_t
MetricsRegistry::familyCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return families.size();
}

std::string
MetricsRegistry::renderPrometheus() const
{
    if (!on)
        return "";
    std::lock_guard<std::mutex> lock(mu);
    std::string out;
    out.reserve(4096);

    auto escapeHelp = [](const std::string &help) {
        // HELP lines escape backslash and newline (not quotes --
        // help text is not quoted in the exposition format).
        std::string h;
        h.reserve(help.size());
        for (char c : help) {
            if (c == '\\')
                h += "\\\\";
            else if (c == '\n')
                h += "\\n";
            else
                h += c;
        }
        return h;
    };

    auto sampleLine = [&out](const std::string &name,
                             const std::string &labelStr, double v) {
        out += name;
        if (!labelStr.empty()) {
            out += '{';
            out += labelStr;
            out += '}';
        }
        out += ' ';
        out += formatValue(v);
        out += '\n';
    };

    for (const auto &[name, family] : families) {
        out += "# HELP " + name + ' ' + escapeHelp(family.help) + '\n';
        out += "# TYPE " + name + ' ';
        switch (family.kind) {
        case Kind::Counter:
            out += "counter";
            break;
        case Kind::Gauge:
            out += "gauge";
            break;
        case Kind::Histogram:
            out += "histogram";
            break;
        }
        out += '\n';

        for (const auto &[key, series] : family.series) {
            if (series.fn) {
                sampleLine(name, key, series.fn());
                continue;
            }
            switch (family.kind) {
            case Kind::Counter:
                sampleLine(name, key, series.counter->value.get());
                break;
            case Kind::Gauge:
                sampleLine(name, key, series.gauge->value.get());
                break;
            case Kind::Histogram: {
                const detail::HistogramCell &h = *series.histogram;
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < h.bounds.size(); ++i) {
                    cumulative += h.bucketCounts[i].load(
                        std::memory_order_relaxed);
                    std::string bucketLabels = key;
                    if (!bucketLabels.empty())
                        bucketLabels += ',';
                    bucketLabels +=
                        "le=\"" + formatValue(h.bounds[i]) + '"';
                    sampleLine(name + "_bucket", bucketLabels,
                               static_cast<double>(cumulative));
                }
                cumulative += h.bucketCounts[h.bounds.size()].load(
                    std::memory_order_relaxed);
                std::string infLabels = key;
                if (!infLabels.empty())
                    infLabels += ',';
                infLabels += "le=\"+Inf\"";
                sampleLine(name + "_bucket", infLabels,
                           static_cast<double>(cumulative));
                sampleLine(name + "_sum", key, h.sum.get());
                // _count from the SAME accumulation as the +Inf
                // bucket: the two must be equal in every scrape,
                // even one racing live observations.
                sampleLine(name + "_count", key,
                           static_cast<double>(cumulative));
                break;
            }
            }
        }
    }
    return out;
}

} // namespace quma::metrics
