/**
 * @file
 * MetricsRegistry: the observability substrate of the serving
 * runtime.
 *
 * A registry holds metric FAMILIES (name + help + type), each fanned
 * out into SERIES by label values -- the Prometheus data model. Three
 * instrument kinds cover everything the runtime counts:
 *
 *  - Counter: monotonically increasing event count (jobs completed,
 *    frames served, bytes moved);
 *  - Gauge: a value that goes both ways (queue depth, leased
 *    machines, an admission EWMA);
 *  - Histogram: fixed-bucket distribution of observations (job
 *    latency, pool lease waits), rendered with the cumulative
 *    `_bucket{le=...}` / `_sum` / `_count` triple Prometheus expects.
 *
 * THREADING AND COST. Registration takes the registry mutex;
 * instrument HANDLES returned by it are plain pointers into
 * registry-owned cells, and every hot-path operation (inc / set /
 * observe) is a handful of relaxed atomic ops -- no lock, no
 * allocation. A default-constructed handle (and every handle from a
 * DISABLED registry) is a no-op, which is how instrumented code runs
 * at full speed when nobody is scraping: the instrumentation sites
 * always exist, the registry decides whether they cost anything
 * (pinned by the metrics-overhead section of
 * bench_runtime_throughput).
 *
 * CALLBACK SERIES (gaugeFn / counterFn) are evaluated at render time
 * -- the natural fit for point-in-time values a subsystem already
 * computes under its own lock (queue depth, idle machines). The
 * callback must be thread-safe and must not call back into this
 * registry.
 *
 * RENDERING. renderPrometheus() emits text exposition format v0.0.4:
 * families sorted by name, series sorted by label values, label
 * values escaped (backslash, double quote, newline), histograms
 * cumulative with a final le="+Inf" bucket equal to `_count`. The
 * ordering is deterministic so scrapes diff cleanly and tests can
 * pin exact output.
 *
 * Metric and label names are validated against the Prometheus
 * grammar at registration (fatal() on violation -- a bad name is a
 * programming error, not load-dependent).
 */

#ifndef QUMA_COMMON_METRICS_HH
#define QUMA_COMMON_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace quma::metrics {

/** Label set of one series: (name, value) pairs. */
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/**
 * Lock-free double accumulator: C++20 guarantees atomic<double>, but
 * fetch_add on floating atomics is patchily available, so add() is a
 * CAS loop on the bit pattern (one iteration in the uncontended
 * case). Relaxed ordering throughout: metrics are statistical, a
 * scrape needs no synchronizes-with edge with the instrumented code.
 */
struct AtomicDouble
{
    std::atomic<std::uint64_t> bits{0};

    void add(double v);
    void set(double v);
    double get() const;
};

struct CounterCell
{
    AtomicDouble value;
};

struct GaugeCell
{
    AtomicDouble value;
};

struct HistogramCell
{
    /** Per-bucket NON-cumulative counts (render accumulates);
     *  one extra slot at the end is the +Inf overflow bucket. */
    std::vector<std::atomic<std::uint64_t>> bucketCounts;
    AtomicDouble sum;
    std::atomic<std::uint64_t> observations{0};
    /** Upper bounds, strictly increasing, +Inf excluded. */
    std::vector<double> bounds;

    explicit HistogramCell(std::vector<double> upper_bounds);
    void observe(double v);
};

} // namespace detail

/** Monotone event counter handle (no-op when default-constructed). */
class Counter
{
  public:
    void
    inc(double v = 1.0)
    {
        if (cell)
            cell->value.add(v);
    }
    double value() const { return cell ? cell->value.get() : 0.0; }
    bool bound() const { return cell != nullptr; }

  private:
    friend class MetricsRegistry;
    detail::CounterCell *cell = nullptr;
};

/** Point-in-time value handle (no-op when default-constructed). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (cell)
            cell->value.set(v);
    }
    void
    add(double v)
    {
        if (cell)
            cell->value.add(v);
    }
    double value() const { return cell ? cell->value.get() : 0.0; }
    bool bound() const { return cell != nullptr; }

  private:
    friend class MetricsRegistry;
    detail::GaugeCell *cell = nullptr;
};

/** Fixed-bucket distribution handle (no-op when default-constructed). */
class Histogram
{
  public:
    void
    observe(double v)
    {
        if (cell)
            cell->observe(v);
    }
    std::uint64_t
    count() const
    {
        return cell ? cell->observations.load(std::memory_order_relaxed)
                    : 0;
    }
    double sum() const { return cell ? cell->sum.get() : 0.0; }
    bool bound() const { return cell != nullptr; }

  private:
    friend class MetricsRegistry;
    detail::HistogramCell *cell = nullptr;
};

/**
 * Default histogram buckets for latencies in seconds: 1 ms to 10 s,
 * roughly 1-2.5-5 per decade (the Prometheus convention).
 */
std::vector<double> latencyBucketsSeconds();

class MetricsRegistry
{
  public:
    /**
     * @param enabled false = every instrument this registry hands
     *        out is a no-op and renderPrometheus() returns "" --
     *        the zero-cost configuration the overhead bench pins.
     */
    explicit MetricsRegistry(bool enabled = true);
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    bool enabled() const { return on; }

    /**
     * Register (or re-fetch) the counter series `name`+`labels`.
     * Re-registering an identical series returns a handle to the
     * SAME cell; registering `name` with a different type or a
     * different label-name set fatal()s.
     */
    Counter counter(const std::string &name, const std::string &help,
                    const Labels &labels = {});
    Gauge gauge(const std::string &name, const std::string &help,
                const Labels &labels = {});
    /**
     * @param upper_bounds strictly increasing finite bucket bounds
     *        (+Inf is implicit and always appended). Every series of
     *        one family must use the same bounds.
     */
    Histogram histogram(const std::string &name,
                        const std::string &help,
                        const std::vector<double> &upper_bounds,
                        const Labels &labels = {});

    /**
     * Callback series: `fn` is evaluated at every render, under no
     * registry lock ordering guarantees beyond "during
     * renderPrometheus()". The fn must be thread-safe and must not
     * touch this registry.
     */
    void gaugeFn(const std::string &name, const std::string &help,
                 const Labels &labels, std::function<double()> fn);
    void counterFn(const std::string &name, const std::string &help,
                   const Labels &labels, std::function<double()> fn);

    /** Text exposition format v0.0.4; "" when disabled. */
    std::string renderPrometheus() const;

    /** Registered family count (diagnostics/tests). */
    std::size_t familyCount() const;

    // --- grammar helpers (exposed for the format tests) ---
    /** [a-zA-Z_:][a-zA-Z0-9_:]* */
    static bool validMetricName(const std::string &name);
    /** [a-zA-Z_][a-zA-Z0-9_]* and not starting "__" (reserved). */
    static bool validLabelName(const std::string &name);
    /** Escape backslash, double-quote and newline for label values. */
    static std::string escapeLabelValue(const std::string &value);
    /** Render a sample value the way the exposition format expects. */
    static std::string formatValue(double v);

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Series
    {
        Labels labels;
        std::unique_ptr<detail::CounterCell> counter;
        std::unique_ptr<detail::GaugeCell> gauge;
        std::unique_ptr<detail::HistogramCell> histogram;
        std::function<double()> fn;
    };

    struct Family
    {
        std::string help;
        Kind kind = Kind::Counter;
        /** Label names every series of this family must carry. */
        std::vector<std::string> labelNames;
        /** Histogram bucket bounds shared by the family. */
        std::vector<double> buckets;
        /** Keyed by the rendered label string: deterministic order
         *  and duplicate detection in one structure. */
        std::map<std::string, Series> series;
    };

    Family &familyLocked(const std::string &name,
                         const std::string &help, Kind kind,
                         const Labels &labels);
    static std::string labelKey(const Labels &labels);
    static void checkLabels(const std::string &name,
                            const Labels &labels);

    const bool on;
    mutable std::mutex mu;
    /** std::map: families render sorted by name. */
    std::map<std::string, Family> families;
};

} // namespace quma::metrics

#endif // QUMA_COMMON_METRICS_HH
