/**
 * @file
 * Fundamental scalar types and timing constants shared across QuMA.
 *
 * The paper's digital domain is clocked at 200 MHz: one cycle is 5 ns.
 * All deterministic-domain timing is expressed in cycles; analog-domain
 * quantities (pulse envelopes, readout traces) are expressed in
 * nanoseconds or samples.
 */

#ifndef QUMA_COMMON_TYPES_HH
#define QUMA_COMMON_TYPES_HH

#include <cstdint>

namespace quma {

/** A count of 5 ns digital-domain cycles. */
using Cycle = std::uint64_t;

/** A point or duration in nanoseconds. */
using TimeNs = std::int64_t;

/** Index into a codeword-triggered pulse generation lookup table. */
using Codeword = std::uint16_t;

/**
 * Bit mask addressing a set of qubits (QAddr in the paper's QuMIS).
 * Bit i set means qubit i is addressed; supports up to 32 qubits.
 */
using QubitMask = std::uint32_t;

/** Register index in the execution controller's register file. */
using RegIndex = std::uint8_t;

/** A timing label broadcast by the timing controller (Section 5.2). */
using TimingLabel = std::uint32_t;

/** Duration of one digital cycle in nanoseconds (200 MHz clock). */
inline constexpr TimeNs kCycleNs = 5;

/** Convert cycles to nanoseconds. */
constexpr TimeNs
cyclesToNs(Cycle c)
{
    return static_cast<TimeNs>(c) * kCycleNs;
}

/** Convert a nanosecond duration to cycles, rounding up. */
constexpr Cycle
nsToCycles(TimeNs ns)
{
    return static_cast<Cycle>((ns + kCycleNs - 1) / kCycleNs);
}

/** Number of general-purpose registers in the execution controller. */
inline constexpr unsigned kNumRegisters = 32;

/** AWG analog sample rate used for pulse envelopes (1 GSa/s, paper §4.2). */
inline constexpr double kAwgSampleRateHz = 1.0e9;

/** Vertical resolution of stored envelope samples in bits (paper §4.2). */
inline constexpr unsigned kSampleResolutionBits = 12;

/** ADC sample rate of the master controller's acquisition (200 MSa/s). */
inline constexpr double kAdcSampleRateHz = 200.0e6;

/** Fixed CTPG latency from codeword trigger to pulse output (paper §7.1). */
inline constexpr TimeNs kCtpgDelayNs = 80;
inline constexpr Cycle kCtpgDelayCycles = kCtpgDelayNs / kCycleNs;

} // namespace quma

#endif // QUMA_COMMON_TYPES_HH
