/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 */

#ifndef QUMA_COMMON_RNG_HH
#define QUMA_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace quma {

namespace detail {

/**
 * Precomputed tables for the ziggurat normal sampler (Marsaglia &
 * Tsang 2000, in the double-precision formulation of Doornik 2005).
 *
 * The standard-normal density is covered by kLayers horizontal strips
 * of equal area; x[i] are the strip widths (decreasing, x[kLayers] = 0,
 * x[0] is the virtual width of the base strip whose overhang is the
 * tail beyond r), f[i] = exp(-x[i]^2 / 2) the density at the strip
 * edges, and ratio[i] = x[i+1] / x[i] the rectangular accept bound.
 */
struct ZigguratTables
{
    static constexpr int kLayers = 256;
    /** Tail cut-off for 256 layers. */
    static constexpr double kR = 3.6541528853610088;

    double x[kLayers + 1];
    double f[kLayers + 1];
    double ratio[kLayers];

    ZigguratTables()
    {
        auto density = [](double v) { return std::exp(-0.5 * v * v); };
        // Area per strip: r * f(r) plus the tail beyond r.
        double tail =
            std::sqrt(std::atan(1.0) * 2.0) * std::erfc(kR / std::sqrt(2.0));
        double area = kR * density(kR) + tail;

        x[0] = area / density(kR);
        x[1] = kR;
        f[0] = density(x[0]);
        f[1] = density(kR);
        for (int i = 2; i < kLayers; ++i) {
            // Equal areas: f(x[i]) = area / x[i-1] + f(x[i-1]).
            double fi = area / x[i - 1] + f[i - 1];
            x[i] = std::sqrt(-2.0 * std::log(fi));
            f[i] = fi;
        }
        x[kLayers] = 0.0;
        f[kLayers] = 1.0;
        for (int i = 0; i < kLayers; ++i)
            ratio[i] = x[i + 1] / x[i];
    }
};

inline const ZigguratTables &
zigguratTables()
{
    static const ZigguratTables tables;
    return tables;
}

} // namespace detail

/**
 * A seedable random source built on xoshiro256++ (Blackman & Vigna).
 *
 * Every stochastic component (readout noise, qubit projection, stall
 * injection) owns or borrows an Rng so experiments are exactly
 * reproducible from a single seed. The generator sits on the readout
 * hot path (one draw per ADC noise sample), so both the engine and the
 * distributions are implemented inline without libstdc++ distribution
 * machinery. The engine and the integer/uniform paths are
 * bit-deterministic everywhere; gaussian() is bit-deterministic for a
 * given libm (the ~1% of draws taking the ziggurat wedge/tail branch
 * go through std::exp/std::log, which are not correctly rounded, so
 * streams can differ between C libraries -- though not between C++
 * standard libraries, unlike std::normal_distribution).
 *
 * Rng itself satisfies UniformRandomBitGenerator, so it can be handed
 * to std::shuffle and friends directly.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eed) { reseed(seed); }

    /**
     * Re-seed the generator: the four state words are independent
     * derive() streams, decorrelated even for adjacent or zero seeds.
     */
    void
    reseed(std::uint64_t seed)
    {
        for (std::uint64_t i = 0; i < 4; ++i)
            state[i] = derive(seed, i);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Raw 64-bit draw (xoshiro256++). */
    result_type
    operator()()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state[0] + state[3], 23) + state[0];
        std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive (unbiased). */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uint64_t span = hi - lo + 1;
        if (span == 0)
            return (*this)(); // full 64-bit range
        // Lemire's multiply-shift rejection method.
        for (;;) {
            std::uint64_t v = (*this)();
            auto m = static_cast<unsigned __int128>(v) * span;
            auto low = static_cast<std::uint64_t>(m);
            if (low >= span || low >= (-span) % span)
                return lo + static_cast<std::uint64_t>(m >> 64);
        }
    }

    /**
     * Normally distributed double, drawn with a 256-layer ziggurat:
     * one engine draw and one multiply ~99% of the time.
     */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return mean + stddev * standardNormal();
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Fill buf[0..n) with standard-normal draws. The draws are the
     * same stream, in the same order, as n successive
     * standardNormal() calls -- batching a hot loop's noise into one
     * pass never changes the results, it only separates the RNG
     * work from whatever the loop interleaved it with.
     */
    void
    fillStandardNormal(double *buf, std::size_t n)
    {
        for (std::size_t k = 0; k < n; ++k)
            buf[k] = standardNormal();
    }

    /**
     * Derive an independent stream seed from a base seed and a stream
     * index (splitmix64). Used wherever one logical seed must fan out
     * into several decorrelated generators -- e.g. a runtime job seed
     * feeding both the chip-noise and the stall-injection RNGs.
     */
    static std::uint64_t
    derive(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Standard normal draw via the ziggurat tables. */
    double
    standardNormal()
    {
        const auto &z = detail::zigguratTables();
        for (;;) {
            std::uint64_t bits = (*this)();
            int i = static_cast<int>(bits &
                                     (detail::ZigguratTables::kLayers - 1));
            // Signed uniform in [-1, 1) from the top 53 bits.
            double u =
                2.0 * (static_cast<double>(bits >> 11) * 0x1.0p-53) - 1.0;
            if (std::abs(u) < z.ratio[i])
                return u * z.x[i]; // strictly inside the rectangle
            if (i == 0) {
                // Base strip overhang: exact samples from the tail
                // beyond r (Marsaglia's exponential-rejection tail).
                double xx, yy;
                do {
                    xx = -std::log(unitOpen()) / z.kR;
                    yy = -std::log(unitOpen());
                } while (yy + yy < xx * xx);
                return u < 0 ? -(z.kR + xx) : z.kR + xx;
            }
            // Wedge between the rectangle and the density curve.
            double x = u * z.x[i];
            double y = z.f[i] + uniform() * (z.f[i + 1] - z.f[i]);
            if (y < std::exp(-0.5 * x * x))
                return x;
        }
    }

  private:
    /** Uniform double in (0, 1], safe as a std::log argument. */
    double
    unitOpen()
    {
        return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
    }

    std::uint64_t state[4];
};

} // namespace quma

#endif // QUMA_COMMON_RNG_HH
