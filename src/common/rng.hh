/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 */

#ifndef QUMA_COMMON_RNG_HH
#define QUMA_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace quma {

/**
 * A seedable random source wrapping a 64-bit Mersenne Twister.
 *
 * Every stochastic component (readout noise, qubit projection, stall
 * injection) owns or borrows an Rng so experiments are exactly
 * reproducible from a single seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) : engine(seed) {}

    /** Re-seed the generator. */
    void reseed(std::uint64_t seed) { engine.seed(seed); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine);
    }

    /** Normally distributed double. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine);
    }

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &raw() { return engine; }

    /**
     * Derive an independent stream seed from a base seed and a stream
     * index (splitmix64). Used wherever one logical seed must fan out
     * into several decorrelated generators -- e.g. a runtime job seed
     * feeding both the chip-noise and the stall-injection RNGs.
     */
    static std::uint64_t
    derive(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::mt19937_64 engine;
};

} // namespace quma

#endif // QUMA_COMMON_RNG_HH
