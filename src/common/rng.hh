/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 */

#ifndef QUMA_COMMON_RNG_HH
#define QUMA_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace quma {

/**
 * A seedable random source wrapping a 64-bit Mersenne Twister.
 *
 * Every stochastic component (readout noise, qubit projection, stall
 * injection) owns or borrows an Rng so experiments are exactly
 * reproducible from a single seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed) : engine(seed) {}

    /** Re-seed the generator. */
    void reseed(std::uint64_t seed) { engine.seed(seed); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine);
    }

    /** Normally distributed double. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine);
    }

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace quma

#endif // QUMA_COMMON_RNG_HH
