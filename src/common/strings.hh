/**
 * @file
 * Minimal string helpers used by the assembler and report printers.
 */

#ifndef QUMA_COMMON_STRINGS_HH
#define QUMA_COMMON_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace quma {

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character, optionally dropping empty fields. */
std::vector<std::string> split(std::string_view s, char delim,
                               bool keep_empty = false);

/** Split on any whitespace run. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** ASCII lower-casing. */
std::string toLower(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/**
 * Parse a signed integer, accepting decimal and 0x-prefixed hex.
 * @retval true on success, with *out set.
 */
bool parseInt(std::string_view s, long long &out);

} // namespace quma

#endif // QUMA_COMMON_STRINGS_HH
