/**
 * @file
 * The conventional AWG control flow the paper argues against
 * (§4.2.2, §5.1.1): every combination of operations is rendered as
 * one long waveform, all waveforms are uploaded ahead of time, and a
 * sequencer plays them. Any change to the experiment requires
 * re-rendering and re-uploading entire waveforms.
 *
 * This model reproduces the paper's memory arithmetic exactly: for
 * AllXY, 21 two-gate waveforms cost 2520 bytes of sample memory
 * against 420 bytes for the 7 stored primitives of the
 * codeword-triggered scheme.
 */

#ifndef QUMA_BASELINE_WAVEFORM_METHOD_HH
#define QUMA_BASELINE_WAVEFORM_METHOD_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace quma::baseline {

/** One uploaded waveform: a rendered sequence of gate pulses. */
struct UploadedWaveform
{
    std::string name;
    /** Number of gate pulses concatenated into the waveform. */
    unsigned pulses = 0;
    /** Total duration in nanoseconds. */
    double durationNs = 0;
};

/** Accounting of one upload session. */
struct UploadStats
{
    std::size_t waveforms = 0;
    std::size_t sampleCount = 0;
    std::size_t bytes = 0;
    /** Upload time over the configured link (seconds). */
    double uploadSeconds = 0;
};

class ConventionalAwgController
{
  public:
    /**
     * @param sample_rate_hz   AWG sample rate (1 GSa/s)
     * @param sample_bits      vertical resolution (12)
     * @param link_bytes_per_s upload link throughput (USB-ish 30 MB/s)
     */
    ConventionalAwgController(double sample_rate_hz = kAwgSampleRateHz,
                              unsigned sample_bits =
                                  kSampleResolutionBits,
                              double link_bytes_per_s = 30.0e6);

    /**
     * Upload one waveform combining `pulses` gate pulses of
     * `pulse_ns` each (both I and Q are stored).
     */
    void uploadWaveform(const std::string &name, unsigned pulses,
                        double pulse_ns);

    /** Drop everything (a "small change" forces re-uploading). */
    void clear();

    const std::vector<UploadedWaveform> &waveforms() const
    {
        return uploaded;
    }

    UploadStats stats() const;

    /**
     * Sample memory for `combinations` waveforms of
     * `pulses_per_combination` pulses each -- the paper's formula
     * N_s = 2 * Td * Rs per component.
     */
    std::size_t bytesFor(unsigned combinations,
                         unsigned pulses_per_combination,
                         double pulse_ns) const;

  private:
    double rateHz;
    unsigned bits;
    double linkRate;
    std::vector<UploadedWaveform> uploaded;
};

} // namespace quma::baseline

#endif // QUMA_BASELINE_WAVEFORM_METHOD_HH
