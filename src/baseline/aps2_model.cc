#include "baseline/aps2_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace quma::baseline {

Aps2System::Aps2System(unsigned num_modules, Cycle trigger_latency)
    : modules(num_modules), triggerLatency(trigger_latency)
{
    if (num_modules == 0)
        fatal("Aps2System needs at least one module");
}

std::vector<Aps2Binary>
Aps2System::compileWorkload(const DistributedWorkload &workload) const
{
    if (workload.numQubits == 0)
        fatal("workload needs at least one qubit");
    // One module per qubit (the APS2 fully controls up to eight
    // qubits with nine modules; we map 1:1 and fail past capacity).
    if (workload.numQubits > modules)
        fatal("workload needs ", workload.numQubits,
              " modules but the system has ", modules);

    std::vector<Aps2Binary> binaries(workload.numQubits);
    unsigned syncId = 0;
    for (unsigned q = 0; q < workload.numQubits; ++q)
        binaries[q].module = "APS2-" + std::to_string(q);

    for (const auto &seg : workload.segments) {
        if (seg.pulseCycles.size() != workload.numQubits)
            fatal("segment qubit count mismatch");
        if (seg.barrier) {
            for (auto &b : binaries) {
                Aps2Instruction sync;
                sync.kind = Aps2Instruction::Kind::SyncWait;
                sync.syncId = syncId;
                b.instructions.push_back(sync);
            }
            ++syncId;
        }
        for (unsigned q = 0; q < workload.numQubits; ++q) {
            Cycle dur = seg.pulseCycles[q];
            Aps2Instruction inst;
            if (dur > 0) {
                inst.kind = Aps2Instruction::Kind::PlayWaveform;
                inst.addr = q; // one waveform slot per qubit
                inst.durationCycles = dur;
            } else {
                // An idle waveform must cover the other qubits'
                // pulse time to preserve alignment.
                Cycle longest = 0;
                for (Cycle d : seg.pulseCycles)
                    longest = std::max(longest, d);
                inst.kind = Aps2Instruction::Kind::PlayIdle;
                inst.durationCycles = longest;
            }
            binaries[q].instructions.push_back(inst);
            if (seg.gapCycles > 0) {
                Aps2Instruction gap;
                gap.kind = Aps2Instruction::Kind::PlayIdle;
                gap.durationCycles = seg.gapCycles;
                binaries[q].instructions.push_back(gap);
            }
        }
    }
    return binaries;
}

Aps2RunStats
Aps2System::run(const std::vector<Aps2Binary> &binaries) const
{
    Aps2RunStats stats;
    stats.binaries = binaries.size();

    // Cooperative simulation: advance each module until its next
    // sync point, then release the barrier with the trigger latency.
    std::vector<std::size_t> pc(binaries.size(), 0);
    std::vector<Cycle> clock(binaries.size(), 0);
    std::size_t maxSync = 0;
    for (const auto &b : binaries) {
        stats.totalInstructions += b.instructions.size();
        for (const auto &inst : b.instructions)
            if (inst.kind == Aps2Instruction::Kind::SyncWait)
                maxSync = std::max<std::size_t>(maxSync, inst.syncId + 1);
    }
    stats.syncPoints = maxSync;

    auto runUntilSync = [&](std::size_t m) {
        const auto &insts = binaries[m].instructions;
        while (pc[m] < insts.size()) {
            const auto &inst = insts[pc[m]];
            if (inst.kind == Aps2Instruction::Kind::SyncWait)
                return true; // parked at the barrier
            clock[m] += inst.durationCycles;
            ++pc[m];
        }
        return false;
    };

    bool anyParked = true;
    while (anyParked) {
        anyParked = false;
        // Advance everyone to their next barrier (or completion).
        std::vector<bool> parked(binaries.size(), false);
        for (std::size_t m = 0; m < binaries.size(); ++m)
            parked[m] = runUntilSync(m);
        // Release the lowest pending barrier.
        Cycle releaseAt = 0;
        bool found = false;
        for (std::size_t m = 0; m < binaries.size(); ++m) {
            if (parked[m]) {
                releaseAt = std::max(releaseAt, clock[m]);
                found = true;
            }
        }
        if (found) {
            releaseAt += triggerLatency;
            for (std::size_t m = 0; m < binaries.size(); ++m) {
                if (parked[m]) {
                    stats.stallCycles += releaseAt - clock[m];
                    clock[m] = releaseAt;
                    ++pc[m]; // step past the SyncWait
                }
            }
            anyParked = true;
        }
    }
    for (Cycle c : clock)
        stats.makespanCycles = std::max(stats.makespanCycles, c);
    return stats;
}

CentralizedStats
centralizedCost(const DistributedWorkload &workload)
{
    CentralizedStats stats;
    Cycle clock = 0;
    for (const auto &seg : workload.segments) {
        Cycle longest = 0;
        bool anyPulse = false;
        for (Cycle d : seg.pulseCycles) {
            longest = std::max(longest, d);
            if (d > 0)
                anyPulse = true;
        }
        // One horizontal Pulse instruction drives every active qubit
        // in the segment; one Wait spaces to the next segment.
        // Barriers need no instructions: alignment is a property of
        // the timing labels.
        if (anyPulse)
            stats.totalInstructions += 1;
        stats.totalInstructions += 1; // the Wait
        clock += longest + seg.gapCycles;
    }
    stats.makespanCycles = clock;
    return stats;
}

} // namespace quma::baseline
