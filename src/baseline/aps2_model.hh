/**
 * @file
 * Behavioural model of the Raytheon BBN APS2-style distributed
 * control architecture the paper compares against (§6).
 *
 * The APS2 system is distributed: nine APS2 output modules plus a
 * trigger distribution module (TDM). A quantum application compiles
 * into one binary PER MODULE; each binary interleaves low-level
 * output instructions (play waveform at a memory address, play an
 * idle waveform for spacing) with synchronisation points at which the
 * module stalls until the TDM broadcasts a trigger over the
 * interconnect. While waiting, no output instructions can be
 * processed.
 *
 * QuMA's centralized design needs one binary, encodes timing in the
 * instruction stream, and keeps processing instructions during
 * waits. The bench built on this model quantifies the §6 comparison:
 * binary count, aggregate instruction count, sync stalls, and
 * makespan sensitivity to trigger-network latency.
 */

#ifndef QUMA_BASELINE_APS2_MODEL_HH
#define QUMA_BASELINE_APS2_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace quma::baseline {

/** One output instruction of an APS2 module binary. */
struct Aps2Instruction
{
    enum class Kind : std::uint8_t
    {
        PlayWaveform, ///< play `durationCycles` from memory `addr`
        PlayIdle,     ///< idle waveform implementing a gap
        SyncWait,     ///< stall until the TDM trigger `syncId`
    };

    Kind kind = Kind::PlayIdle;
    unsigned addr = 0;
    Cycle durationCycles = 0;
    unsigned syncId = 0;
};

/** A compiled per-module binary. */
struct Aps2Binary
{
    std::string module;
    std::vector<Aps2Instruction> instructions;
};

/** The result of executing the distributed system. */
struct Aps2RunStats
{
    std::size_t binaries = 0;
    std::size_t totalInstructions = 0;
    std::size_t syncPoints = 0;
    /** Cycles modules spent stalled at sync barriers. */
    Cycle stallCycles = 0;
    /** Completion time of the slowest module (cycles). */
    Cycle makespanCycles = 0;
};

/**
 * A minimal experiment description for compilation onto either
 * architecture: per-qubit sequences of (gate duration, gap) slots
 * with optional cross-module sync barriers between segments.
 */
struct DistributedWorkload
{
    struct Segment
    {
        /** Pulse duration in cycles per qubit (0 = idle this seg). */
        std::vector<Cycle> pulseCycles;
        /** Gap after the pulse, in cycles. */
        Cycle gapCycles = 0;
        /** Whether the segment starts with a global barrier. */
        bool barrier = false;
    };
    unsigned numQubits = 2;
    std::vector<Segment> segments;
};

class Aps2System
{
  public:
    /**
     * @param num_modules     output modules (paper: nine)
     * @param trigger_latency TDM trigger distribution latency
     */
    explicit Aps2System(unsigned num_modules = 9,
                        Cycle trigger_latency = 4);

    unsigned numModules() const { return modules; }

    /** Compile the workload into one binary per involved module. */
    std::vector<Aps2Binary>
    compileWorkload(const DistributedWorkload &workload) const;

    /** Execute the binaries and account stalls / makespan. */
    Aps2RunStats run(const std::vector<Aps2Binary> &binaries) const;

  private:
    unsigned modules;
    Cycle triggerLatency;
};

/** QuMA-side accounting for the same workload (single binary). */
struct CentralizedStats
{
    std::size_t binaries = 1;
    std::size_t totalInstructions = 0;
    Cycle makespanCycles = 0;
};

/**
 * Count the instructions QuMA needs for the workload: one Pulse per
 * active segment (horizontal across qubits) plus one Wait per
 * distinct time step; barriers are free (timing is explicit).
 */
CentralizedStats centralizedCost(const DistributedWorkload &workload);

} // namespace quma::baseline

#endif // QUMA_BASELINE_APS2_MODEL_HH
