#include "baseline/waveform_method.hh"

#include <cmath>

#include "common/logging.hh"

namespace quma::baseline {

ConventionalAwgController::ConventionalAwgController(
    double sample_rate_hz, unsigned sample_bits, double link_bytes_per_s)
    : rateHz(sample_rate_hz), bits(sample_bits),
      linkRate(link_bytes_per_s)
{
    if (rateHz <= 0 || linkRate <= 0 || bits == 0)
        fatal("ConventionalAwgController: bad parameters");
}

void
ConventionalAwgController::uploadWaveform(const std::string &name,
                                          unsigned pulses,
                                          double pulse_ns)
{
    UploadedWaveform w;
    w.name = name;
    w.pulses = pulses;
    w.durationNs = pulses * pulse_ns;
    uploaded.push_back(std::move(w));
}

void
ConventionalAwgController::clear()
{
    uploaded.clear();
}

UploadStats
ConventionalAwgController::stats() const
{
    UploadStats s;
    s.waveforms = uploaded.size();
    for (const auto &w : uploaded) {
        // Both I and Q components are stored: Ns = 2 * Td * Rs.
        auto samples = static_cast<std::size_t>(
            std::llround(2.0 * w.durationNs * 1e-9 * rateHz));
        s.sampleCount += samples;
    }
    s.bytes = (s.sampleCount * bits + 7) / 8;
    s.uploadSeconds = static_cast<double>(s.bytes) / linkRate;
    return s;
}

std::size_t
ConventionalAwgController::bytesFor(unsigned combinations,
                                    unsigned pulses_per_combination,
                                    double pulse_ns) const
{
    auto samples = static_cast<std::size_t>(std::llround(
        combinations * 2.0 * pulses_per_combination * pulse_ns * 1e-9 *
        rateHz));
    return (samples * bits + 7) / 8;
}

} // namespace quma::baseline
