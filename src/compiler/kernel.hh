/**
 * @file
 * OpenQL-lite: a small C++ eDSL for describing quantum experiments.
 *
 * The paper drives its validation from "a quantum programming
 * language OpenQL based on C++ with a compiler that can translate
 * the OpenQL description into the auxiliary classical instructions
 * and QuMIS instructions" (§7.2). This module plays that role: a
 * Kernel collects gate/measure/wait operations, a QuantumProgram
 * collects kernels plus a repetition count, and the code generator
 * lowers everything to the mixed classical + quantum instruction
 * stream the execution controller consumes.
 */

#ifndef QUMA_COMPILER_KERNEL_HH
#define QUMA_COMPILER_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace quma::compiler {

/** One operation in a kernel, in program order. */
struct Operation
{
    enum class Kind : std::uint8_t
    {
        Gate,     ///< named single-qubit gate on one or more qubits
        Cnot,     ///< two-qubit CNOT (target, control)
        Measure,  ///< measure + discriminate into a register
        Wait,     ///< explicit wait in cycles
        WaitReg,  ///< wait whose duration lives in a register
    };

    Kind kind = Kind::Wait;
    std::string gate;
    QubitMask mask = 0;
    unsigned target = 0;
    unsigned control = 0;
    RegIndex reg = 0;
    Cycle cycles = 0;
};

class Kernel
{
  public:
    explicit Kernel(std::string name) : kernelName(std::move(name)) {}

    const std::string &name() const { return kernelName; }
    const std::vector<Operation> &operations() const { return ops; }

    /** Apply a named gate to one qubit. */
    Kernel &gate(const std::string &gate_name, unsigned qubit);

    /** Apply a named gate to several qubits at once (horizontal). */
    Kernel &gateOn(const std::string &gate_name, QubitMask qubits);

    Kernel &cnot(unsigned target, unsigned control);

    /** Measure a qubit into a register (default r7 as in the paper). */
    Kernel &measure(unsigned qubit, RegIndex reg = 7);

    /** Explicit wait. */
    Kernel &wait(Cycle cycles);

    /** Wait whose duration is read from a register at runtime. */
    Kernel &waitReg(RegIndex reg);

    /**
     * Qubit initialisation by relaxation: a register-programmed wait
     * of several T1 (the paper's Algorithm 1 "Init the qubit").
     */
    Kernel &init(RegIndex reg = 15);

  private:
    std::string kernelName;
    std::vector<Operation> ops;
};

} // namespace quma::compiler

#endif // QUMA_COMPILER_KERNEL_HH
