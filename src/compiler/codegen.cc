#include "compiler/codegen.hh"

#include <sstream>

#include "common/logging.hh"
#include "isa/disassembler.hh"

namespace quma::compiler {

QuantumProgram::QuantumProgram(std::string name, unsigned num_qubits,
                               std::size_t repetitions)
    : programName(std::move(name)), qubits(num_qubits),
      reps(repetitions)
{
    if (num_qubits == 0 || num_qubits > 32)
        fatal("QuantumProgram supports 1..32 qubits");
    if (repetitions == 0)
        fatal("QuantumProgram needs at least one repetition");
}

Kernel &
QuantumProgram::newKernel(const std::string &kernel_name)
{
    kernelList.emplace_back(kernel_name);
    return kernelList.back();
}

isa::Program
QuantumProgram::compile(const CompilerOptions &opt) const
{
    using isa::Instruction;
    isa::NameTable gateTable = isa::NameTable::standardGates();
    isa::NameTable uopTable = isa::NameTable::standardUops();

    isa::Program prog;

    bool loop = reps > 1;
    if (loop) {
        prog.push(Instruction::mov(opt.loopCounterReg, 0));
        prog.push(Instruction::mov(
            opt.loopLimitReg, static_cast<std::int64_t>(reps)));
    }
    prog.push(Instruction::mov(
        opt.initReg, static_cast<std::int64_t>(opt.initCycles)));

    prog.defineLabel("Outer_Loop");
    std::size_t loopTop = prog.size();

    for (const Kernel &k : kernelList) {
        for (const Operation &op : k.operations()) {
            switch (op.kind) {
              case Operation::Kind::Gate: {
                auto id = gateTable.idOf(op.gate);
                if (!id)
                    fatal("unknown gate '", op.gate, "' in kernel '",
                          k.name(), "'");
                if (opt.useQisGates) {
                    prog.push(Instruction::apply(*id, op.mask));
                } else {
                    auto uop = uopTable.idOf(op.gate);
                    if (!uop)
                        fatal("gate '", op.gate,
                              "' has no micro-operation");
                    prog.push(Instruction::pulse1(op.mask, *uop));
                    prog.push(Instruction::wait(
                        static_cast<std::int64_t>(opt.gateCycles)));
                }
                break;
              }
              case Operation::Kind::Cnot:
                prog.push(Instruction::cnot(
                    static_cast<RegIndex>(op.target),
                    static_cast<RegIndex>(op.control)));
                break;
              case Operation::Kind::Measure:
                if (opt.useQisGates) {
                    prog.push(Instruction::measure(op.mask, op.reg));
                } else {
                    prog.push(Instruction::mpg(
                        op.mask,
                        static_cast<std::int64_t>(opt.msmtCycles)));
                    prog.push(Instruction::md(op.mask, op.reg));
                }
                break;
              case Operation::Kind::Wait:
                prog.push(Instruction::wait(
                    static_cast<std::int64_t>(op.cycles)));
                break;
              case Operation::Kind::WaitReg:
                prog.push(Instruction::waitReg(op.reg));
                break;
            }
        }
    }

    if (opt.epilogueCycles > 0)
        prog.push(Instruction::wait(
            static_cast<std::int64_t>(opt.epilogueCycles)));

    if (loop) {
        prog.push(Instruction::addi(opt.loopCounterReg,
                                    opt.loopCounterReg, 1));
        prog.push(Instruction::bne(opt.loopCounterReg,
                                   opt.loopLimitReg,
                                   static_cast<std::int64_t>(loopTop)));
    }
    prog.push(Instruction::halt());
    return prog;
}

std::string
QuantumProgram::compileToAssembly(const CompilerOptions &opt) const
{
    isa::Disassembler dis;
    std::ostringstream oss;
    oss << "# program: " << programName << " (" << reps << " round"
        << (reps == 1 ? "" : "s") << ")\n";
    oss << dis.render(compile(opt));
    return oss.str();
}

} // namespace quma::compiler
