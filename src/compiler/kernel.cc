#include "compiler/kernel.hh"

#include "common/logging.hh"

namespace quma::compiler {

Kernel &
Kernel::gate(const std::string &gate_name, unsigned qubit)
{
    return gateOn(gate_name, QubitMask{1} << qubit);
}

Kernel &
Kernel::gateOn(const std::string &gate_name, QubitMask qubits)
{
    if (qubits == 0)
        fatal("gate '", gate_name, "' needs at least one qubit");
    Operation op;
    op.kind = Operation::Kind::Gate;
    op.gate = gate_name;
    op.mask = qubits;
    ops.push_back(std::move(op));
    return *this;
}

Kernel &
Kernel::cnot(unsigned target, unsigned control)
{
    if (target == control)
        fatal("CNOT needs distinct target and control");
    Operation op;
    op.kind = Operation::Kind::Cnot;
    op.target = target;
    op.control = control;
    ops.push_back(op);
    return *this;
}

Kernel &
Kernel::measure(unsigned qubit, RegIndex reg)
{
    Operation op;
    op.kind = Operation::Kind::Measure;
    op.mask = QubitMask{1} << qubit;
    op.reg = reg;
    ops.push_back(op);
    return *this;
}

Kernel &
Kernel::wait(Cycle cycles)
{
    if (cycles == 0)
        fatal("wait needs a positive duration");
    Operation op;
    op.kind = Operation::Kind::Wait;
    op.cycles = cycles;
    ops.push_back(op);
    return *this;
}

Kernel &
Kernel::waitReg(RegIndex reg)
{
    Operation op;
    op.kind = Operation::Kind::WaitReg;
    op.reg = reg;
    ops.push_back(op);
    return *this;
}

Kernel &
Kernel::init(RegIndex reg)
{
    return waitReg(reg);
}

} // namespace quma::compiler
