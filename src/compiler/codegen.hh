/**
 * @file
 * Lowering from the OpenQL-lite IR to the mixed instruction stream.
 */

#ifndef QUMA_COMPILER_CODEGEN_HH
#define QUMA_COMPILER_CODEGEN_HH

#include <string>
#include <vector>

#include "compiler/kernel.hh"
#include "isa/nametable.hh"
#include "isa/program.hh"

namespace quma::compiler {

struct CompilerOptions
{
    /**
     * Emit QIS-level gate instructions (Apply/Measure/CNOT, expanded
     * at runtime by the physical microcode unit) instead of raw
     * QuMIS (Pulse/Wait/MPG/MD). The paper's prototype used the raw
     * level because its microcode unit was partial; both levels are
     * fully implemented here.
     */
    bool useQisGates = true;
    /** Cycles a single-qubit gate occupies (pulse length). */
    Cycle gateCycles = 4;
    /** Measurement pulse duration in cycles. */
    Cycle msmtCycles = 300;
    /** Register used as the outer-loop counter. */
    RegIndex loopCounterReg = 1;
    /** Register holding the round count. */
    RegIndex loopLimitReg = 2;
    /** Register preloaded with the initialisation wait. */
    RegIndex initReg = 15;
    /** Value preloaded into initReg (cycles; 40000 = 200 us). */
    Cycle initCycles = 40000;
    /**
     * Wait appended after the last measurement of a round so the
     * discrimination result lands before the next round's branch.
     */
    Cycle epilogueCycles = 500;
};

/**
 * A quantum program: kernels executed in order inside an outer
 * averaging loop of `repetitions` rounds (paper Algorithm 3 shape).
 */
class QuantumProgram
{
  public:
    QuantumProgram(std::string name, unsigned num_qubits,
                   std::size_t repetitions = 1);

    const std::string &name() const { return programName; }
    unsigned numQubits() const { return qubits; }
    std::size_t repetitions() const { return reps; }

    /** Append a kernel; returns it for fluent construction. */
    Kernel &newKernel(const std::string &kernel_name);

    const std::vector<Kernel> &kernels() const { return kernelList; }

    /** Lower to an executable program. */
    isa::Program compile(const CompilerOptions &options = {}) const;

    /** Lower to assembly text (assembles to the same program). */
    std::string compileToAssembly(const CompilerOptions &options = {})
        const;

  private:
    std::string programName;
    unsigned qubits;
    std::size_t reps;
    std::vector<Kernel> kernelList;
};

} // namespace quma::compiler

#endif // QUMA_COMPILER_CODEGEN_HH
