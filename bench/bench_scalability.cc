/**
 * @file
 * Reproduces the paper's §6 scalability discussion: the single
 * instruction stream limits the operation output rate as more qubits
 * need pulses per cycle; a VLIW execution controller (the paper's
 * proposed future work, implemented here as the issue-width
 * parameter) relieves the pressure.
 *
 * The workload asks for dense horizontal pulses across a growing
 * number of qubits with short waits; the figure of merit is the
 * number of LATE time points (deterministic-timing violations) the
 * timing controller records.
 */

#include <cstdio>
#include <string>

#include "bench/report.hh"
#include "quma/machine.hh"

using namespace quma;

namespace {

/** Dense per-qubit pulse bursts with 1-cycle spacing. */
std::string
denseProgram(unsigned qubits, unsigned rounds)
{
    std::string src = "mov r15, 1000\nQNopReg r15\n";
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned q = 0; q < qubits; ++q) {
            src += "Pulse {q" + std::to_string(q) + "}, X90\n";
            src += "Wait 1\n";
        }
    }
    src += "Wait 600\nhalt\n";
    return src;
}

struct Outcome
{
    std::size_t latePoints;
    Cycle lateCycles;
};

Outcome
run(unsigned qubits, unsigned issue_width)
{
    core::MachineConfig cfg;
    cfg.qubits.assign(qubits, qsim::paperQubitParams());
    cfg.numAwgs = qubits;
    cfg.exec.issueWidth = issue_width;
    // Small queues sharpen the issue-rate bottleneck.
    cfg.timing.timingQueueCapacity = 8;
    cfg.timing.pulseQueueCapacity = 8;
    cfg.qmbDrainRate = issue_width;
    core::QumaMachine m(cfg);
    m.loadAssembly(denseProgram(qubits, 24));
    auto r = m.run(10'000'000);
    return {r.violations.latePoints, r.violations.totalLateCycles};
}

/** Tight-timing program under jitter with a given queue depth. */
Outcome
runDepth(std::size_t depth, unsigned wait_cycles)
{
    core::MachineConfig cfg;
    cfg.timing.timingQueueCapacity = depth;
    cfg.timing.pulseQueueCapacity = depth;
    cfg.exec.stallInjection = true;
    cfg.exec.stallProbability = 0.6;
    cfg.exec.maxStallCycles = 6;
    cfg.exec.seed = 42;
    core::QumaMachine m(cfg);
    std::string src = "mov r15, 1000\nQNopReg r15\n";
    for (int i = 0; i < 64; ++i) {
        src += "Pulse {q0}, X90\nWait " +
               std::to_string(wait_cycles) + "\n";
    }
    src += "Wait 600\nhalt\n";
    m.loadAssembly(src);
    auto r = m.run(10'000'000);
    return {r.violations.latePoints, r.violations.totalLateCycles};
}

} // namespace

int
main()
{
    bench::banner("Section 6: issue-rate pressure vs qubit count, "
                  "VLIW ablation");
    std::printf("%-8s %-14s %-18s %-14s %-18s\n", "qubits",
                "late (w=1)", "late cycles (w=1)", "late (w=4)",
                "late cycles (w=4)");
    bench::rule();
    for (unsigned qubits : {1u, 2u, 4u, 6u, 8u}) {
        Outcome scalar = run(qubits, 1);
        Outcome vliw = run(qubits, 4);
        std::printf("%-8u %-14zu %-18llu %-14zu %-18llu\n", qubits,
                    scalar.latePoints,
                    static_cast<unsigned long long>(scalar.lateCycles),
                    vliw.latePoints,
                    static_cast<unsigned long long>(vliw.lateCycles));
    }
    bench::rule();
    std::printf("with a scalar stream the controller misses "
                "deadlines once several qubits\ndemand a pulse every "
                "cycle; widening the issue width (the paper's "
                "proposed\nVLIW direction) removes or defers the "
                "violations.\n");

    bench::banner("ablation: queue depth vs. late points under "
                  "execution jitter");
    std::printf("%-8s %-16s %-16s %-16s\n", "depth", "late (Wait 2)",
                "late (Wait 3)", "late (Wait 4)");
    bench::rule();
    for (std::size_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
        std::printf("%-8zu %-16zu %-16zu %-16zu\n", depth,
                    runDepth(depth, 2).latePoints,
                    runDepth(depth, 3).latePoints,
                    runDepth(depth, 4).latePoints);
    }
    bench::rule();
    std::printf("deeper queues absorb instruction-timing jitter: the "
                "producer can run\nfurther ahead, so fewer time "
                "points arrive after their deadline. With\nenough "
                "slack per operation (Wait 4+) even shallow queues "
                "stay clean --\nthe quantitative version of the "
                "paper's queue-sizing argument.\n");
    return 0;
}
