/**
 * @file
 * Reproduces paper Table 5: the multilevel decoding of the AllXY
 * experiment. Prints all four representations -- the QIS input, the
 * QuMIS stream entering the QMB, the micro-operations reaching the
 * u-op units, and the codeword triggers reaching the CTPGs/MDUs with
 * their TD timestamps.
 */

#include <cstdio>

#include "bench/report.hh"
#include "isa/disassembler.hh"
#include "quma/machine.hh"

using namespace quma;

int
main()
{
    bench::banner("Table 5: multilevel instruction decoding (2 rounds)");

    const char *qisSource = R"(
        mov r15, 40000
        QNopReg r15
        Apply I, q0
        Apply I, q0
        Measure q0, r7
        QNopReg r15
        Apply X180, q0
        Apply X180, q0
        Measure q0, r7
        Wait 600
        halt
    )";

    std::printf("--- QIS input (execution controller) ---\n%s\n",
                qisSource);

    core::MachineConfig cfg;
    cfg.traceEnabled = true;
    core::QumaMachine machine(cfg);
    machine.loadAssembly(qisSource);
    machine.run();

    isa::Disassembler dis;
    std::printf("--- QuMIS stream (input to the QMB) ---\n");
    for (const auto &mi : machine.trace().microInsts())
        std::printf("    %s\n", dis.render(mi.inst).c_str());

    std::printf("\n--- micro-operations (input to the u-op units) "
                "---\n");
    for (const auto &u : machine.trace().uopFires())
        std::printf("    TD = %-8llu uop %u sent to u-op unit %u\n",
                    static_cast<unsigned long long>(u.td), u.uop,
                    u.awg);
    for (const auto &m : machine.trace().mpgFires())
        std::printf("    TD = %-8llu # MPG & MD bypass this stage\n",
                    static_cast<unsigned long long>(m.td));

    std::printf("\n--- codeword triggers (input to CTPG / MDU) ---\n");
    for (const auto &c : machine.trace().codewords())
        std::printf("    TD = %-8llu CW %u sent to CTPG%u "
                    "(= label TD + delta, delta = %llu)\n",
                    static_cast<unsigned long long>(c.td), c.codeword,
                    c.awg,
                    static_cast<unsigned long long>(
                        cfg.uopDelayCycles));
    for (const auto &m : machine.trace().mpgFires())
        std::printf("    TD = %-8llu CW 7 sent to msmt path  # Msmt\n",
                    static_cast<unsigned long long>(m.td));
    for (const auto &r : machine.trace().mduResults())
        std::printf("    TD = %-8llu MD(r%u) completed, bit = %d\n",
                    static_cast<unsigned long long>(r.completionTd),
                    r.destReg, r.bit);

    bench::rule();
    std::printf("paper Table 5 reference points: I uops at TD 40000 / "
                "40004, X180 uops at\nTD 80008 / 80012, measurement "
                "triggers at TD 40008 / 80016, codewords at\nlabel TD "
                "+ delta.\n");
    return 0;
}
