/**
 * @file
 * Throughput and latency of the network serving layer: a
 * QumaServer over a real TCP loopback socket, driven by an
 * increasing number of concurrent client connections.
 *
 * A fixed batch of opaque AllXY jobs is split evenly across C
 * connections (one QumaClient per thread); the bench reports
 * end-to-end jobs/sec, the mean submit round-trip latency, and the
 * per-job wire traffic, for C = 1, 2, 4, ... -- plus a determinism
 * check: the per-seed results must be bit-identical no matter how
 * many connections carried them (and identical to an in-process
 * run of the same specs).
 *
 * A second section measures what wire-v2 multiplexing buys on ONE
 * connection: a batch of deliberately LIGHT jobs (one averaging
 * round each -- the §7.1 regime where the host link, not the
 * physics, bounds the rate) run strictly serially (submit+await
 * each job, the v1 request/reply discipline) vs pipelined
 * (submitAll, then awaitMany streaming results back in completion
 * order). Same jobs, same socket; the ratio is the per-job
 * round-trip cost the v2 protocol amortizes away.
 *
 * Tunables (environment): QUMA_BENCH_NET_JOBS (batch size, default
 * 48), QUMA_BENCH_NET_ROUNDS (averaged shots per job, default 8),
 * QUMA_BENCH_NET_PIPE_ROUNDS (rounds of the pipelined-vs-serial
 * jobs, default 1), QUMA_BENCH_NET_MAX_CONNS (default 4),
 * QUMA_BENCH_NET_WORKERS (service workers, default 4).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench/report.hh"
#include "experiments/allxy.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "runtime/service.hh"

using namespace quma;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The same job mix the runtime bench uses, keyed by seed. */
std::vector<runtime::JobSpec>
makeBatch(std::size_t jobs, std::size_t rounds)
{
    std::vector<runtime::JobSpec> batch;
    for (std::size_t i = 0; i < jobs; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        cfg.shards = 1;
        cfg.amplitudeError = 0.02 * static_cast<double>(i % 3);
        cfg.seed = 0xbe9c + i;
        batch.push_back(experiments::allxyJob(cfg));
    }
    return batch;
}

struct ConnOutcome
{
    double seconds = 0.0;
    double meanSubmitRttMs = 0.0;
    std::size_t wireBytes = 0;
    /** seed -> result, for the cross-width determinism check. */
    std::map<std::uint64_t, runtime::JobResult> bySeed;
};

/** Run the batch through `conns` concurrent TCP connections. */
ConnOutcome
runWithConnections(const std::vector<runtime::JobSpec> &batch,
                   std::uint16_t port, unsigned conns)
{
    std::vector<std::thread> drivers;
    std::vector<ConnOutcome> partial(conns);
    auto start = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < conns; ++c)
        drivers.emplace_back([&, c] {
            net::QumaClient client("127.0.0.1", port);
            std::vector<runtime::JobId> ids;
            std::vector<std::uint64_t> seeds;
            double submitSeconds = 0.0;
            // Connection c takes jobs c, c+conns, c+2*conns, ...
            for (std::size_t j = c; j < batch.size(); j += conns) {
                auto t0 = std::chrono::steady_clock::now();
                ids.push_back(client.submit(batch[j]));
                submitSeconds += secondsSince(t0);
                seeds.push_back(batch[j].seed);
            }
            std::vector<runtime::JobResult> results =
                client.awaitAll(ids);
            ConnOutcome &mine = partial[c];
            for (std::size_t k = 0; k < results.size(); ++k)
                mine.bySeed.emplace(seeds[k], std::move(results[k]));
            if (!ids.empty())
                mine.meanSubmitRttMs =
                    1e3 * submitSeconds /
                    static_cast<double>(ids.size());
            core::LinkStats link = client.linkStats();
            mine.wireBytes = link.bytesUp + link.bytesDown;
        });
    for (auto &d : drivers)
        d.join();

    ConnOutcome out;
    out.seconds = secondsSince(start);
    double rttSum = 0.0;
    for (const ConnOutcome &p : partial) {
        out.bySeed.insert(p.bySeed.begin(), p.bySeed.end());
        out.wireBytes += p.wireBytes;
        rttSum += p.meanSubmitRttMs;
    }
    out.meanSubmitRttMs = rttSum / static_cast<double>(conns);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = bench::envSize("QUMA_BENCH_NET_JOBS", 48);
    std::size_t rounds = bench::envSize("QUMA_BENCH_NET_ROUNDS", 8);
    std::size_t maxConns = bench::envSize("QUMA_BENCH_NET_MAX_CONNS", 4);
    std::size_t workers = bench::envSize("QUMA_BENCH_NET_WORKERS", 4);
    std::string jsonPath = bench::argValue(argc, argv, "--json");
    bench::JsonReport json("net_throughput");
    json.metric("jobs", static_cast<double>(jobs));
    json.metric("rounds", static_cast<double>(rounds));
    json.metric("workers", static_cast<double>(workers));

    bench::banner("network serving: jobs/sec vs client connections");
    std::printf("batch: %zu AllXY jobs x %zu rounds over TCP "
                "loopback, %zu service workers\n",
                jobs, rounds, workers);

    runtime::ServiceConfig sc;
    sc.workers = static_cast<unsigned>(workers);
    // Room for the heavyweight batch AND the (4x larger) light batch
    // the pipelined-vs-serial section bursts in at once.
    sc.queueCapacity = 4 * jobs + 2;
    runtime::ExperimentService service(sc);
    auto listener = std::make_unique<net::TcpListener>(0);
    std::uint16_t port = listener->port();
    net::QumaServer server(service, std::move(listener));

    std::vector<runtime::JobSpec> batch = makeBatch(jobs, rounds);

    // In-process reference: remote results must match it bit for bit.
    std::map<std::uint64_t, runtime::JobResult> reference;
    {
        runtime::ExperimentService local(
            {.workers = static_cast<unsigned>(workers),
             .queueCapacity = jobs + 2});
        std::vector<runtime::JobId> ids;
        for (const auto &spec : batch)
            ids.push_back(local.submit(spec));
        std::vector<runtime::JobResult> results = local.awaitAll(ids);
        for (std::size_t i = 0; i < batch.size(); ++i)
            reference.emplace(batch[i].seed, std::move(results[i]));
    }

    std::printf("%-13s %-12s %-12s %-16s %-14s\n", "connections",
                "seconds", "jobs/sec", "submit RTT (ms)",
                "wire B/job");
    bench::rule();
    for (std::size_t conns = 1; conns <= maxConns; conns *= 2) {
        ConnOutcome out = runWithConnections(
            batch, port, static_cast<unsigned>(conns));
        double rate = static_cast<double>(jobs) / out.seconds;
        double bytesPerJob = static_cast<double>(out.wireBytes) /
                             static_cast<double>(jobs);
        std::printf("%-13zu %-12.3f %-12.1f %-16.3f %-14.0f\n",
                    conns, out.seconds, rate, out.meanSubmitRttMs,
                    bytesPerJob);
        json.metric("net_jobs_per_sec_" + std::to_string(conns) + "c",
                    rate, "jobs/s");
        json.metric("net_submit_rtt_ms_" + std::to_string(conns) + "c",
                    out.meanSubmitRttMs, "ms");
        json.metric("net_wire_bytes_per_job_" + std::to_string(conns) +
                        "c",
                    bytesPerJob, "B");
        if (out.bySeed != reference) {
            std::printf("REMOTE-VS-LOCAL DETERMINISM VIOLATION at "
                        "%zu connections\n",
                        conns);
            return 1;
        }
    }
    bench::rule();
    std::printf(
        "every connection count returned the bit-identical per-seed\n"
        "results the in-process service computes: the wire protocol\n"
        "adds transport, not physics. Request latency is dominated\n"
        "by queue depth ahead of the job, not by the frame codec.\n");

    // --- pipelined vs serial on one connection --------------------
    //
    // Serial replays the v1 discipline: one request in flight, the
    // connection (and the whole service) idles for a round-trip
    // between every job. Pipelined ships the whole batch before
    // reading the first reply and streams results back as they
    // finish. The jobs are LIGHT (default one round) so the
    // per-job link cost -- the term §7.1 budgets and v2 amortizes --
    // is what the ratio measures, not the physics compute that
    // dominates the heavyweight sections above.
    std::size_t pipeRounds =
        bench::envSize("QUMA_BENCH_NET_PIPE_ROUNDS", 1);
    // 4x the heavyweight batch: light jobs finish in fractions of a
    // millisecond, so the section needs more of them for a stable
    // measurement.
    std::size_t pipeJobs = 4 * jobs;
    bench::banner("one connection: pipelined vs serial (wire v2)");
    std::printf("batch: %zu light AllXY jobs x %zu round(s)\n",
                pipeJobs, pipeRounds);
    std::vector<runtime::JobSpec> light;
    for (std::size_t i = 0; i < pipeJobs; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = pipeRounds;
        cfg.shards = 1;
        cfg.seed = 0x11fe + i;
        light.push_back(experiments::allxyJob(cfg));
    }
    std::map<std::uint64_t, runtime::JobResult> lightReference;
    {
        runtime::ExperimentService local(
            {.workers = static_cast<unsigned>(workers),
             .queueCapacity = pipeJobs + 2});
        std::vector<runtime::JobId> ids = local.submitAll(light);
        std::vector<runtime::JobResult> results = local.awaitAll(ids);
        for (std::size_t i = 0; i < light.size(); ++i)
            lightReference.emplace(light[i].seed,
                                   std::move(results[i]));
    }
    double serialRate;
    {
        net::QumaClient client("127.0.0.1", port);
        auto start = std::chrono::steady_clock::now();
        std::map<std::uint64_t, runtime::JobResult> got;
        for (const auto &spec : light)
            got.emplace(spec.seed,
                        client.await(client.submit(spec)));
        double seconds = secondsSince(start);
        serialRate = static_cast<double>(pipeJobs) / seconds;
        std::printf("serial    : %8.3f s   %8.1f jobs/sec\n", seconds,
                    serialRate);
        if (got != lightReference) {
            std::printf("SERIAL DETERMINISM VIOLATION\n");
            return 1;
        }
    }
    double pipelinedRate;
    {
        net::QumaClient client("127.0.0.1", port);
        auto start = std::chrono::steady_clock::now();
        std::vector<runtime::JobId> ids = client.submitAll(light);
        std::map<std::uint64_t, runtime::JobResult> got;
        std::size_t streamed = 0;
        // awaitMany delivers in COMPLETION order; map back to seeds
        // through the id order submitAll returned.
        std::map<runtime::JobId, std::uint64_t> seedOf;
        for (std::size_t i = 0; i < ids.size(); ++i)
            seedOf.emplace(ids[i], light[i].seed);
        for (auto &[id, result] : client.awaitMany(ids)) {
            got.emplace(seedOf.at(id), std::move(result));
            ++streamed;
        }
        double seconds = secondsSince(start);
        pipelinedRate = static_cast<double>(pipeJobs) / seconds;
        std::printf("pipelined : %8.3f s   %8.1f jobs/sec   "
                    "(%zu results streamed)\n",
                    seconds, pipelinedRate, streamed);
        if (got != lightReference) {
            std::printf("PIPELINED DETERMINISM VIOLATION\n");
            return 1;
        }
    }
    double speedup = pipelinedRate / serialRate;
    std::printf("pipelining speedup at 1 connection: %.2fx\n",
                speedup);
    json.metric("net_serial_jobs_per_sec_1c", serialRate, "jobs/s");
    json.metric("net_pipelined_jobs_per_sec_1c", pipelinedRate,
                "jobs/s");
    json.metric("net_pipelined_speedup_1c", speedup);

    // --- progress streaming overhead (wire v4) --------------------
    //
    // The same pipelined batch, now with a progress callback on the
    // awaitMany: every await additionally registers a server-side
    // progress subscription and at minimum one 100% ProgressFrame
    // per job crosses the wire ahead of its result. The ratio to
    // the progress-off run above prices the whole v4 progress path
    // -- subscription, notifier traffic, extra frames -- on the
    // worst case for overhead (light jobs, where the added frames
    // are largest relative to the work).
    double progressRate;
    {
        net::QumaClient client("127.0.0.1", port);
        auto start = std::chrono::steady_clock::now();
        std::vector<runtime::JobId> ids = client.submitAll(light);
        std::map<runtime::JobId, std::uint64_t> seedOf;
        for (std::size_t i = 0; i < ids.size(); ++i)
            seedOf.emplace(ids[i], light[i].seed);
        std::map<std::uint64_t, runtime::JobResult> got;
        std::atomic<std::size_t> frames{0};
        for (auto &[id, result] : client.awaitMany(
                 ids, [&frames](runtime::JobId, std::uint64_t,
                                std::uint64_t) {
                     frames.fetch_add(1, std::memory_order_relaxed);
                 }))
            got.emplace(seedOf.at(id), std::move(result));
        double seconds = secondsSince(start);
        progressRate = static_cast<double>(pipeJobs) / seconds;
        std::printf("progress-on: %7.3f s   %8.1f jobs/sec   "
                    "(%zu progress frames)\n",
                    seconds, progressRate, frames.load());
        if (got != lightReference) {
            std::printf("PROGRESS DETERMINISM VIOLATION\n");
            return 1;
        }
    }
    double overhead = pipelinedRate / progressRate;
    std::printf("progress streaming overhead at 1 connection: "
                "%.3fx\n",
                overhead);
    json.metric("net_progress_on_jobs_per_sec_1c", progressRate,
                "jobs/s");
    json.metric("net_progress_overhead_1c", overhead);

    json.writeTo(jsonPath);
    return 0;
}
