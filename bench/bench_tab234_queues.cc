/**
 * @file
 * Reproduces paper Tables 2-4: the queue state of the AllXY
 * experiment when TD = 0, TD = 40000 and TD = 40008. The queues are
 * filled exactly as the QMB would for rounds 0 and 1 and printed in
 * the paper's (value, label) convention, front of queue at the
 * bottom.
 */

#include <cstdio>

#include "bench/report.hh"
#include "isa/nametable.hh"
#include "timing/controller.hh"

using namespace quma;

namespace {

void
fillRounds(timing::TimingController &tcu)
{
    // Round 0 (I, I) then round 1 (X180, X180), labels 1..6.
    tcu.pushTimePoint(40000, 1);
    tcu.pushPulse(0, {1, 0x1, 0});
    tcu.pushTimePoint(4, 2);
    tcu.pushPulse(0, {2, 0x1, 0});
    tcu.pushTimePoint(4, 3);
    tcu.pushMpg({3, 0x1, 300});
    tcu.pushMd(0, {3, 0x1, 7});
    tcu.pushTimePoint(40000, 4);
    tcu.pushPulse(0, {4, 0x1, 1});
    tcu.pushTimePoint(4, 5);
    tcu.pushPulse(0, {5, 0x1, 1});
    tcu.pushTimePoint(4, 6);
    tcu.pushMpg({6, 0x1, 300});
    tcu.pushMd(0, {6, 0x1, 7});
}

void
printState(const timing::TimingController &tcu, const char *title)
{
    auto names = isa::NameTable::standardUops();
    bench::banner(title);
    std::printf("%-18s %-16s %-12s %-12s\n", "Timing Queue",
                "Pulse Queue", "MPG Queue", "MD Queue");
    bench::rule();

    auto timing = tcu.timingQueueSnapshot();
    auto pulses = tcu.pulseQueueSnapshot(0);
    auto mpgs = tcu.mpgQueueSnapshot();
    auto mds = tcu.mdQueueSnapshot(0);
    std::size_t rows = std::max(
        std::max(timing.size(), pulses.size()),
        std::max(mpgs.size(), mds.size()));

    // Paper convention: the bottom row is the front of each queue.
    for (std::size_t row = rows; row-- > 0;) {
        char col[4][32] = {"", "", "", ""};
        if (row < timing.size())
            std::snprintf(col[0], sizeof(col[0]), "(%llu, %u)",
                          static_cast<unsigned long long>(
                              timing[row].interval),
                          timing[row].label);
        if (row < pulses.size()) {
            auto n = names.nameOf(pulses[row].uop);
            std::snprintf(col[1], sizeof(col[1]), "(%s, %u)",
                          n ? n->c_str() : "?", pulses[row].label);
        }
        if (row < mpgs.size())
            std::snprintf(col[2], sizeof(col[2]), "(%u)",
                          mpgs[row].label);
        if (row < mds.size())
            std::snprintf(col[3], sizeof(col[3]), "(r%u, %u)",
                          mds[row].destReg, mds[row].label);
        std::printf("%-18s %-16s %-12s %-12s\n", col[0], col[1],
                    col[2], col[3]);
    }
    bench::rule();
}

} // namespace

int
main()
{
    {
        timing::TimingController tcu;
        fillRounds(tcu);
        printState(tcu, "Table 2: queue state at TD = 0 (not started)");
    }
    {
        timing::TimingController tcu;
        fillRounds(tcu);
        tcu.start(0);
        tcu.advanceTo(40000);
        printState(tcu, "Table 3: queue state at TD = 40000");
    }
    {
        timing::TimingController tcu;
        fillRounds(tcu);
        tcu.start(0);
        tcu.advanceTo(40008);
        printState(tcu, "Table 4: queue state at TD = 40008");
    }
    std::printf("\nAll three snapshots match paper Tables 2-4: label "
                "1 fires the first I at\nTD=40000, labels 2-3 complete "
                "round 0 by TD=40008 (MPG and MD share\nlabel 3), and "
                "round 1's (X180, 4) entry reaches the queue front.\n");
    return 0;
}
