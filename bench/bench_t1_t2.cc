/**
 * @file
 * Reproduces the coherence-time experiments of paper §8: T1, T2*
 * (Ramsey with artificial detuning) and T2 echo, all through the
 * full microarchitecture, with fits against the configured chip
 * parameters.
 *
 * Environment: QUMA_COHERENCE_ROUNDS overrides rounds per point
 * (default 256).
 */

#include <cstdio>

#include "bench/report.hh"
#include "experiments/coherence.hh"

using namespace quma;
using namespace quma::experiments;

namespace {

void
printSweep(const char *name, const std::vector<double> &delays,
           const std::vector<double> &population)
{
    std::printf("%s\n", name);
    std::printf("%-12s %-10s %s\n", "tau (ns)", "P(|1>)", "plot");
    bench::rule(60);
    for (std::size_t i = 0; i < delays.size(); ++i) {
        int stars = static_cast<int>(population[i] * 40.0 + 0.5);
        stars = std::max(0, std::min(stars, 44));
        std::printf("%-12.0f %-10.4f |%.*s\n", delays[i],
                    population[i], stars,
                    "********************************************");
    }
    bench::rule(60);
}

} // namespace

int
main()
{
    std::size_t rounds = bench::envSize("QUMA_COHERENCE_ROUNDS", 256);
    bench::banner("Section 8 coherence experiments (N = " +
                  std::to_string(rounds) + " per point)");

    qsim::TransmonParams chip = qsim::paperQubitParams();
    chip.t1Ns = 30000.0;
    chip.t2Ns = 25000.0;
    chip.quasiStaticDetuningSigmaHz = 60.0e3;

    // ------------------------------------------------------------ T1
    CoherenceConfig t1cfg = CoherenceConfig::withLinearSweep(90000, 12);
    t1cfg.rounds = rounds;
    t1cfg.qubitParams = chip;
    auto t1 = runT1(t1cfg);
    printSweep("T1 relaxation: X180 - wait - measure", t1.delaysNs,
               t1.population);
    std::printf("fitted T1 = %.1f us  [configured: %.1f us]\n\n",
                t1.fit.tau * 1e-3, chip.t1Ns * 1e-3);

    // -------------------------------------------------------- Ramsey
    CoherenceConfig ramseyCfg;
    for (int i = 1; i <= 20; ++i)
        ramseyCfg.delaysCycles.push_back(static_cast<Cycle>(i) * 160);
    ramseyCfg.rounds = rounds;
    ramseyCfg.qubitParams = chip;
    ramseyCfg.artificialDetuningHz = 100.0e3;
    auto ramsey = runRamsey(ramseyCfg);
    printSweep("T2* Ramsey: X90 - wait - X90 (100 kHz artificial "
               "detuning)",
               ramsey.delaysNs, ramsey.population);
    std::printf("fitted fringe: %.1f kHz [programmed 100.0 kHz], "
                "envelope T2* = %.1f us\n\n",
                ramsey.fit.frequency * 1e9 * 1e-3,
                ramsey.fit.tau * 1e-3);

    // ---------------------------------------------------------- Echo
    CoherenceConfig echoCfg = CoherenceConfig::withLinearSweep(48000, 12);
    echoCfg.rounds = rounds;
    echoCfg.qubitParams = chip;
    auto echo = runEcho(echoCfg);
    printSweep("T2 echo: X90 - tau/2 - X180 - tau/2 - Xm90",
               echo.delaysNs, echo.population);
    std::printf("fitted echo decay = %.1f us  [configured Markovian "
                "T2 = %.1f us; the echo\nrefocuses the %.0f kHz "
                "quasi-static noise that shortens the Ramsey "
                "envelope]\n",
                echo.fit.tau * 1e-3, chip.t2Ns * 1e-3,
                chip.quasiStaticDetuningSigmaHz * 1e-3);
    return 0;
}
