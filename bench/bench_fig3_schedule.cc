/**
 * @file
 * Reproduces paper Figure 3: the waveforms and timings of one round
 * of the AllXY experiment. The bench runs three combinations of one
 * round through the full machine and prints the analog schedule that
 * reaches the chip: pulse start/end times, codewords and the
 * measurement windows.
 */

#include <cstdio>

#include "bench/report.hh"
#include "isa/nametable.hh"
#include "quma/machine.hh"

using namespace quma;

int
main()
{
    bench::banner("Figure 3: AllXY one-round waveform/timing schedule");

    core::MachineConfig cfg;
    cfg.traceEnabled = true;
    core::QumaMachine machine(cfg);
    machine.loadAssembly(R"(
        mov r15, 40000
        # Combination 0: I, I
        QNopReg r15
        Pulse {q0}, I
        Wait 4
        Pulse {q0}, I
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        # Combination 1: X180, X180
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        # Combination 17: X180, I
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        Pulse {q0}, I
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        halt
    )");
    auto result = machine.run();
    auto names = isa::NameTable::standardUops();

    std::printf("%-12s %-12s %-8s %-10s %s\n", "start (ns)", "end (ns)",
                "kind", "pulse", "notes");
    bench::rule();
    for (const auto &p : machine.trace().pulses()) {
        auto name = names.nameOf(static_cast<std::uint8_t>(p.codeword));
        std::printf("%-12lld %-12lld %-8s %-10s cw %u on AWG %u\n",
                    static_cast<long long>(p.t0Ns),
                    static_cast<long long>(p.t0Ns) +
                        static_cast<long long>(p.durationNs),
                    "gate", name ? name->c_str() : "?", p.codeword,
                    p.awg);
    }
    for (const auto &m : machine.trace().measurements()) {
        std::printf("%-12lld %-12lld %-8s %-10s qubit %u, true |%d>\n",
                    static_cast<long long>(cyclesToNs(m.windowStart)),
                    static_cast<long long>(
                        cyclesToNs(m.windowStart + m.durationCycles)),
                    "msmt", "MSMT", m.qubit, m.trueOutcome);
    }
    bench::rule();
    std::printf("pulses are back-to-back 20 ns gates; the measurement "
                "window opens\nimmediately after the second gate "
                "(paper Figure 3). Timing violations: %zu late, %zu "
                "stale.\n",
                result.violations.latePoints,
                result.violations.staleEvents);
    return 0;
}
