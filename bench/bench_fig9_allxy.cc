/**
 * @file
 * Reproduces paper Figure 9: the AllXY result of the measured qubit.
 * Runs the full experiment through the microarchitecture (including
 * readout-error rescaling against the calibration points) and prints
 * the 42-point staircase with an ASCII rendering plus the deviation
 * figure of merit (paper: 0.012 at N = 25600).
 *
 * Environment: QUMA_ALLXY_ROUNDS overrides the round count
 * (default 2048; the paper's 25600 takes a few minutes).
 */

#include <cstdio>

#include "bench/report.hh"
#include "experiments/allxy.hh"

using namespace quma;
using namespace quma::experiments;

int
main()
{
    std::size_t rounds = bench::envSize("QUMA_ALLXY_ROUNDS", 2048);
    bench::banner("Figure 9: AllXY result (N = " +
                  std::to_string(rounds) + " rounds)");

    AllxyConfig cfg;
    cfg.rounds = rounds;
    AllxyResult r = runAllxy(cfg);

    std::printf("%-6s %-8s %-10s %-10s %s\n", "point", "label",
                "ideal", "measured", "staircase");
    bench::rule();
    for (std::size_t i = 0; i < r.fidelity.size(); ++i) {
        int stars = static_cast<int>(r.fidelity[i] * 40.0 + 0.5);
        stars = std::max(0, std::min(stars, 44));
        std::printf("%-6zu %-8s %-10.2f %-10.4f |%.*s\n", i,
                    r.labels[i].c_str(), r.ideal[i], r.fidelity[i],
                    stars,
                    "********************************************");
    }
    bench::rule();
    std::printf("deviation (mean |measured - ideal|): %.4f   "
                "[paper Figure 9: 0.012 at N = 25600]\n",
                r.deviation);
    std::printf("timing violations: %zu late points, %zu stale events "
                "(must be 0)\n",
                r.run.violations.latePoints,
                r.run.violations.staleEvents);
    std::printf("total deterministic-domain cycles: %llu (%.1f ms of "
                "experiment time)\n",
                static_cast<unsigned long long>(r.run.cyclesRun),
                static_cast<double>(cyclesToNs(r.run.cyclesRun)) *
                    1e-6);
    return 0;
}
