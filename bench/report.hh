/**
 * @file
 * Shared formatting helpers for the reproduction benches. Every
 * bench binary regenerates one table or figure of the paper and
 * prints it in a fixed-width layout so runs can be diffed.
 */

#ifndef QUMA_BENCH_REPORT_HH
#define QUMA_BENCH_REPORT_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace quma::bench {

inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
rule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Read a positive integer parameter from the environment. */
inline std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || parsed == 0)
        return fallback;
    return static_cast<std::size_t>(parsed);
}

} // namespace quma::bench

#endif // QUMA_BENCH_REPORT_HH
