/**
 * @file
 * Shared formatting helpers for the reproduction benches. Every
 * bench binary regenerates one table or figure of the paper and
 * prints it in a fixed-width layout so runs can be diffed.
 */

#ifndef QUMA_BENCH_REPORT_HH
#define QUMA_BENCH_REPORT_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace quma::bench {

inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
rule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Read a positive integer parameter from the environment. */
inline std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || parsed == 0)
        return fallback;
    return static_cast<std::size_t>(parsed);
}

/** Value of `--flag <value>` in argv, or the empty string. */
inline std::string
argValue(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (flag == argv[i])
            return argv[i + 1];
    return {};
}

/** True when `--flag` appears in argv. */
inline bool
argFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

/**
 * Machine-readable bench output: named numeric metrics collected while
 * the bench prints its human-readable table, then written as a JSON
 * document (`--json <path>`) so BENCH_*.json artifacts are comparable
 * across runs and PRs.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench_name)
        : name(std::move(bench_name))
    {
    }

    void
    metric(const std::string &metric_name, double value,
           const std::string &unit = "")
    {
        metrics.push_back({metric_name, value, unit});
    }

    /** Write the document; returns false (with a note) on I/O failure. */
    bool
    writeTo(const std::string &path) const
    {
        if (path.empty())
            return true;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n",
                     name.c_str());
        for (std::size_t i = 0; i < metrics.size(); ++i) {
            const Entry &e = metrics[i];
            // inf/nan are not valid JSON tokens; degrade to null so
            // the artifact stays parseable on degenerate runs.
            if (std::isfinite(e.value))
                std::fprintf(f, "    \"%s\": {\"value\": %.6g",
                             e.name.c_str(), e.value);
            else
                std::fprintf(f, "    \"%s\": {\"value\": null",
                             e.name.c_str());
            if (!e.unit.empty())
                std::fprintf(f, ", \"unit\": \"%s\"", e.unit.c_str());
            std::fprintf(f, "}%s\n",
                         i + 1 < metrics.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        return true;
    }

  private:
    struct Entry
    {
        std::string name;
        double value;
        std::string unit;
    };

    std::string name;
    std::vector<Entry> metrics;
};

} // namespace quma::bench

#endif // QUMA_BENCH_REPORT_HH
