/**
 * @file
 * Throughput of the concurrent experiment runtime: a fixed batch of
 * experiment jobs is pushed through the ExperimentService at
 * increasing worker counts, reporting jobs/sec and the speedup over
 * one worker. A final pass checks the determinism invariant (the
 * batch's results must not depend on the worker count) and prints the
 * cache/pool counters that explain where the time went.
 *
 * Tunables (environment): QUMA_BENCH_JOBS (batch size, default 48),
 * QUMA_BENCH_ROUNDS (averaged shots per job, default 24),
 * QUMA_BENCH_MAX_WORKERS (default 8).
 *
 * Scaling requires physical cores: on an N-core host the curve
 * saturates near N, and on a single-core host it stays flat -- the
 * simulation is pure CPU.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/report.hh"
#include "experiments/allxy.hh"
#include "runtime/service.hh"

using namespace quma;

namespace {

struct BatchOutcome
{
    double seconds = 0.0;
    std::vector<runtime::JobResult> results;
    runtime::ProgramCache::Stats cache;
    runtime::MachinePool::Stats pool;
};

/** The job mix: AllXY runs over a few distinct error configurations,
 *  so the pool sees several shards and the cache several programs. */
std::vector<runtime::JobSpec>
makeBatch(std::size_t jobs, std::size_t rounds)
{
    std::vector<runtime::JobSpec> batch;
    for (std::size_t i = 0; i < jobs; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        cfg.amplitudeError = 0.02 * static_cast<double>(i % 3);
        cfg.seed = 0xbe9c + i;
        batch.push_back(experiments::allxyJob(cfg));
    }
    return batch;
}

BatchOutcome
runBatch(const std::vector<runtime::JobSpec> &batch, unsigned workers)
{
    runtime::ServiceConfig sc;
    sc.workers = workers;
    sc.queueCapacity = batch.size() + 1;
    runtime::ExperimentService svc(sc);

    auto start = std::chrono::steady_clock::now();
    std::vector<runtime::JobId> ids;
    ids.reserve(batch.size());
    for (const auto &job : batch)
        ids.push_back(svc.submit(job));
    BatchOutcome out;
    out.results = svc.awaitAll(ids);
    auto stop = std::chrono::steady_clock::now();
    out.seconds =
        std::chrono::duration<double>(stop - start).count();
    out.cache = svc.cache().stats();
    out.pool = svc.pool().stats();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = bench::envSize("QUMA_BENCH_JOBS", 48);
    std::size_t rounds = bench::envSize("QUMA_BENCH_ROUNDS", 24);
    std::size_t maxWorkers = bench::envSize("QUMA_BENCH_MAX_WORKERS", 8);
    std::string jsonPath = bench::argValue(argc, argv, "--json");
    bench::JsonReport json("runtime_throughput");
    json.metric("jobs", static_cast<double>(jobs));
    json.metric("rounds", static_cast<double>(rounds));

    bench::banner("concurrent experiment runtime: jobs/sec vs workers");
    std::printf("batch: %zu AllXY jobs x %zu rounds, host cores: %u\n",
                jobs, rounds, std::thread::hardware_concurrency());
    std::printf("%-10s %-12s %-12s %-10s %-14s %-12s\n", "workers",
                "seconds", "jobs/sec", "speedup", "machines", "cache hits");
    bench::rule();

    std::vector<runtime::JobSpec> batch = makeBatch(jobs, rounds);
    double baseline = 0.0;
    std::vector<runtime::JobResult> baselineResults;
    for (unsigned workers = 1; workers <= maxWorkers; workers *= 2) {
        BatchOutcome out = runBatch(batch, workers);
        double rate = static_cast<double>(jobs) / out.seconds;
        if (workers == 1) {
            baseline = rate;
            baselineResults = out.results;
        }
        std::printf("%-10u %-12.3f %-12.1f %-10.2f %-14zu %-12zu\n",
                    workers, out.seconds, rate,
                    baseline > 0 ? rate / baseline : 1.0,
                    out.pool.machinesCreated, out.cache.programHits);
        json.metric("jobs_per_sec_" + std::to_string(workers) + "w",
                    rate, "jobs/s");
        // Determinism invariant: identical results at every width.
        if (workers > 1 && out.results != baselineResults) {
            std::printf("DETERMINISM VIOLATION at %u workers\n",
                        workers);
            return 1;
        }
    }
    bench::rule();
    json.writeTo(jsonPath);
    std::printf(
        "every width produced bit-identical results (per-job RNG\n"
        "streams derived from the job seed); the pool constructs one\n"
        "machine per shard per worker at most, and repeated jobs hit\n"
        "the compiled-program cache instead of the assembler.\n");
    return 0;
}
