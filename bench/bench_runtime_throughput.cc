/**
 * @file
 * Throughput and scheduling-policy benchmarks of the concurrent
 * experiment runtime, in three sections:
 *
 *  1. BATCH THROUGHPUT -- a fixed batch of opaque AllXY jobs is
 *     pushed through the ExperimentService at increasing worker
 *     counts, reporting jobs/sec and the speedup over one worker,
 *     with a determinism check (results must not depend on width).
 *
 *  2. SHARDED SINGLE JOB -- ONE large AllXY job (many averaging
 *     rounds) is run unsharded on a single machine, then
 *     round-structured and split across the pool. Sharding is what
 *     lets one big job use more than one machine; the section checks
 *     the 2-way and 4-way merges are bit-identical and reports the
 *     rounds/sec gain over the unsharded baseline.
 *
 *  3. PRIORITY LATENCY -- a backlog of Normal jobs is queued behind
 *     a paused service, one High job is appended, and the service is
 *     started: the High job's completion position and latency show
 *     the queue-jump the priority policy buys.
 *
 *  4. METRICS OVERHEAD -- the same batch run four ways: without
 *     observability, bound to a live MetricsRegistry, bound to a
 *     disabled registry (the no-op handle path), and with
 *     job-lifecycle tracing enabled. The jobs/sec ratios pin the
 *     "near-zero overhead" claim of docs/observability.md.
 *
 * Tunables (environment): QUMA_BENCH_JOBS (batch size, default 48),
 * QUMA_BENCH_ROUNDS (averaged shots per batch job, default 24),
 * QUMA_BENCH_MAX_WORKERS (default 8), QUMA_BENCH_SHARD_ROUNDS
 * (rounds of the single sharded job, default 192).
 *
 * Scaling requires physical cores: on an N-core host the curve
 * saturates near N, and on a single-core host it stays flat -- the
 * simulation is pure CPU.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/report.hh"
#include "common/metrics.hh"
#include "experiments/allxy.hh"
#include "runtime/service.hh"

using namespace quma;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct BatchOutcome
{
    double seconds = 0.0;
    std::vector<runtime::JobResult> results;
    runtime::ProgramCache::Stats cache;
    runtime::MachinePool::Stats pool;
};

/** The job mix: AllXY runs over a few distinct error configurations,
 *  so the pool sees several shards and the cache several programs.
 *  shards = 1 keeps the jobs opaque (the averaging loop stays in the
 *  program), matching the historical batch numbers. */
std::vector<runtime::JobSpec>
makeBatch(std::size_t jobs, std::size_t rounds)
{
    std::vector<runtime::JobSpec> batch;
    for (std::size_t i = 0; i < jobs; ++i) {
        experiments::AllxyConfig cfg;
        cfg.rounds = rounds;
        cfg.shards = 1;
        cfg.amplitudeError = 0.02 * static_cast<double>(i % 3);
        cfg.seed = 0xbe9c + i;
        batch.push_back(experiments::allxyJob(cfg));
    }
    return batch;
}

BatchOutcome
runBatch(const std::vector<runtime::JobSpec> &batch, unsigned workers)
{
    runtime::ServiceConfig sc;
    sc.workers = workers;
    sc.queueCapacity = batch.size() + 1;
    runtime::ExperimentService svc(sc);

    auto start = std::chrono::steady_clock::now();
    std::vector<runtime::JobId> ids;
    ids.reserve(batch.size());
    for (const auto &job : batch)
        ids.push_back(svc.submit(job));
    BatchOutcome out;
    out.results = svc.awaitAll(ids);
    out.seconds = secondsSince(start);
    out.cache = svc.cache().stats();
    out.pool = svc.pool().stats();
    return out;
}

/** One large AllXY job, shard-split `shards` ways (1 = opaque). */
runtime::JobSpec
bigJob(std::size_t rounds, std::size_t shards)
{
    experiments::AllxyConfig cfg;
    cfg.rounds = rounds;
    cfg.shards = shards;
    cfg.seed = 0x51a6;
    return experiments::allxyJob(cfg);
}

double
timedSingleJob(runtime::JobSpec job, unsigned workers,
               runtime::JobResult &result)
{
    runtime::ExperimentService svc({.workers = workers});
    auto start = std::chrono::steady_clock::now();
    result = svc.runSync(std::move(job));
    return secondsSince(start);
}

int
shardedSingleJobSection(std::size_t rounds, unsigned workers,
                        bench::JsonReport &json)
{
    bench::banner("shot sharding: one large job across the pool");
    std::printf("one AllXY job x %zu rounds on a %u-worker service\n",
                rounds, workers);
    std::printf("%-22s %-12s %-14s %-10s\n", "variant", "seconds",
                "rounds/sec", "speedup");
    bench::rule();

    runtime::JobResult unsharded;
    double tUnsharded =
        timedSingleJob(bigJob(rounds, 1), workers, unsharded);
    double unshardedRate = static_cast<double>(rounds) / tUnsharded;
    std::printf("%-22s %-12.3f %-14.1f %-10.2f\n", "unsharded (1 machine)",
                tUnsharded, unshardedRate, 1.0);

    runtime::JobResult twoWay;
    runtime::JobResult sharded;
    timedSingleJob(bigJob(rounds, 2), workers, twoWay);
    double tSharded =
        timedSingleJob(bigJob(rounds, workers), workers, sharded);
    // The determinism check needs two genuinely different
    // partitions: when the timed run was itself 2-way, run a 4-way
    // split for the comparison (shard count may exceed workers).
    runtime::JobResult fourWay;
    if (workers == 4)
        fourWay = sharded;
    else
        timedSingleJob(bigJob(rounds, 4), workers, fourWay);
    double shardedRate = static_cast<double>(rounds) / tSharded;
    std::printf("%-22s %-12.3f %-14.1f %-10.2f\n", "sharded (auto split)",
                tSharded, shardedRate, tUnsharded / tSharded);
    bench::rule();

    json.metric("single_job_rounds", static_cast<double>(rounds));
    json.metric("single_job_unsharded_rounds_per_sec", unshardedRate,
                "rounds/s");
    json.metric("single_job_sharded_rounds_per_sec", shardedRate,
                "rounds/s");
    json.metric("single_job_sharded_speedup", tUnsharded / tSharded);

    // The tentpole invariant, re-checked where it is marketed: the
    // 2-way and 4-way merges of the same job must match bit for bit.
    // (The unsharded variant keeps its averaging loop in the program
    // and is a different -- legacy -- execution mode, so it is
    // compared for physics, not bits, by the tests.)
    if (!(twoWay == fourWay)) {
        std::printf("SHARD MERGE DETERMINISM VIOLATION\n");
        return 1;
    }
    std::printf("2-way and 4-way shard merges are bit-identical; the\n"
                "unsharded run pins one machine while the rest of the\n"
                "pool idles -- sharding is what turns pool capacity\n"
                "into single-job latency.\n");
    return 0;
}

void
priorityLatencySection(std::size_t backlog, std::size_t rounds,
                       unsigned workers, bench::JsonReport &json)
{
    bench::banner("priority scheduling: queue-jump latency");
    runtime::ServiceConfig sc;
    sc.workers = workers;
    sc.queueCapacity = backlog + 2;
    sc.startPaused = true;
    runtime::ExperimentService svc(sc);

    std::vector<runtime::JobSpec> batch = makeBatch(backlog, rounds);
    for (auto &job : batch)
        svc.submit(std::move(job));

    experiments::AllxyConfig cfg;
    cfg.rounds = rounds;
    cfg.shards = 1;
    cfg.seed = 0xfa57;
    runtime::JobSpec urgent = experiments::allxyJob(cfg);
    urgent.priority = runtime::JobPriority::High;
    runtime::JobId urgentId = svc.submit(std::move(urgent));

    auto start = std::chrono::steady_clock::now();
    svc.start();
    svc.await(urgentId);
    double urgentLatency = secondsSince(start);
    svc.drain();
    double drainSeconds = secondsSince(start);

    std::vector<runtime::JobId> order =
        svc.scheduler().finishedIds();
    auto pos = static_cast<std::size_t>(
        std::find(order.begin(), order.end(), urgentId) -
        order.begin());

    std::printf("backlog: %zu Normal jobs, then 1 High job, %u workers\n",
                backlog, workers);
    std::printf("high-priority job finished #%zu of %zu, after %.3f s\n",
                pos + 1, order.size(), urgentLatency);
    std::printf("full drain: %.3f s (FIFO would have held the High\n"
                "job for most of it)\n",
                drainSeconds);
    bench::rule();

    json.metric("priority_backlog", static_cast<double>(backlog));
    json.metric("priority_finish_position", static_cast<double>(pos + 1));
    json.metric("priority_latency_s", urgentLatency, "s");
    json.metric("priority_drain_s", drainSeconds, "s");
}

/** How a metrics-overhead variant instruments the service. */
enum class Observability
{
    None,             // no registry bound, tracing off
    DisabledRegistry, // bound, but every handle is a no-op
    LiveRegistry,     // bound and counting
    LiveWithTrace,    // counting, plus the lifecycle trace recorder
};

double
observedBatchRate(const std::vector<runtime::JobSpec> &batch,
                  unsigned workers, Observability mode)
{
    // The registry must outlive the service: gauge callbacks capture
    // component pointers and are evaluated at render time.
    metrics::MetricsRegistry registry(
        mode == Observability::LiveRegistry ||
        mode == Observability::LiveWithTrace);
    metrics::MetricsRegistry disabled(false);

    runtime::ServiceConfig sc;
    sc.workers = workers;
    sc.queueCapacity = batch.size() + 1;
    runtime::ExperimentService svc(sc);
    if (mode != Observability::None)
        svc.bindMetrics(mode == Observability::DisabledRegistry
                            ? disabled
                            : registry);
    if (mode == Observability::LiveWithTrace)
        svc.trace().enable();

    auto start = std::chrono::steady_clock::now();
    std::vector<runtime::JobId> ids;
    ids.reserve(batch.size());
    for (const auto &job : batch)
        ids.push_back(svc.submit(job));
    svc.awaitAll(ids);
    return static_cast<double>(batch.size()) / secondsSince(start);
}

void
metricsOverheadSection(std::size_t jobs, std::size_t rounds,
                       unsigned workers, bench::JsonReport &json)
{
    bench::banner("metrics overhead: observability on the hot path");
    std::printf("batch: %zu AllXY jobs x %zu rounds, %u workers\n",
                jobs, rounds, workers);
    std::printf("%-26s %-12s %-10s\n", "variant", "jobs/sec",
                "vs plain");
    bench::rule();

    std::vector<runtime::JobSpec> batch = makeBatch(jobs, rounds);
    struct Variant
    {
        const char *name;
        const char *key;
        Observability mode;
    };
    const Variant variants[] = {
        {"plain (unbound)", "plain", Observability::None},
        {"disabled registry", "disabled", Observability::DisabledRegistry},
        {"live registry", "live", Observability::LiveRegistry},
        {"live + job tracing", "traced", Observability::LiveWithTrace},
    };
    // Warm-up run: page in the code and prime the allocator so the
    // first measured variant is not charged the cold-start cost.
    observedBatchRate(batch, workers, Observability::None);

    double plainRate = 0.0;
    for (const Variant &v : variants) {
        double rate = observedBatchRate(batch, workers, v.mode);
        if (v.mode == Observability::None)
            plainRate = rate;
        std::printf("%-26s %-12.1f %-10.3f\n", v.name, rate,
                    plainRate > 0 ? rate / plainRate : 1.0);
        json.metric(std::string("metrics_overhead_") + v.key +
                        "_jobs_per_sec",
                    rate, "jobs/s");
    }
    bench::rule();
    std::printf(
        "instrumentation is a relaxed atomic add per event and the\n"
        "disabled paths are a null-check: all variants should sit\n"
        "within run-to-run noise of the plain rate.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t jobs = bench::envSize("QUMA_BENCH_JOBS", 48);
    std::size_t rounds = bench::envSize("QUMA_BENCH_ROUNDS", 24);
    std::size_t maxWorkers = bench::envSize("QUMA_BENCH_MAX_WORKERS", 8);
    std::size_t shardRounds =
        bench::envSize("QUMA_BENCH_SHARD_ROUNDS", 192);
    std::string jsonPath = bench::argValue(argc, argv, "--json");
    bench::JsonReport json("runtime_throughput");
    json.metric("jobs", static_cast<double>(jobs));
    json.metric("rounds", static_cast<double>(rounds));

    bench::banner("concurrent experiment runtime: jobs/sec vs workers");
    std::printf("batch: %zu AllXY jobs x %zu rounds, host cores: %u\n",
                jobs, rounds, std::thread::hardware_concurrency());
    std::printf("%-10s %-12s %-12s %-10s %-14s %-12s\n", "workers",
                "seconds", "jobs/sec", "speedup", "machines", "cache hits");
    bench::rule();

    std::vector<runtime::JobSpec> batch = makeBatch(jobs, rounds);
    double baseline = 0.0;
    std::vector<runtime::JobResult> baselineResults;
    unsigned widest = 1;
    for (unsigned workers = 1; workers <= maxWorkers; workers *= 2) {
        BatchOutcome out = runBatch(batch, workers);
        double rate = static_cast<double>(jobs) / out.seconds;
        if (workers == 1) {
            baseline = rate;
            baselineResults = out.results;
        }
        widest = workers;
        std::printf("%-10u %-12.3f %-12.1f %-10.2f %-14zu %-12zu\n",
                    workers, out.seconds, rate,
                    baseline > 0 ? rate / baseline : 1.0,
                    out.pool.machinesCreated, out.cache.programHits);
        json.metric("jobs_per_sec_" + std::to_string(workers) + "w",
                    rate, "jobs/s");
        // Determinism invariant: identical results at every width.
        if (workers > 1 && out.results != baselineResults) {
            std::printf("DETERMINISM VIOLATION at %u workers\n",
                        workers);
            return 1;
        }
    }
    bench::rule();
    std::printf(
        "every width produced bit-identical results (per-job RNG\n"
        "streams derived from the job seed); the pool constructs one\n"
        "machine per shard per worker at most, and repeated jobs hit\n"
        "the compiled-program cache instead of the assembler.\n\n");

    unsigned shardWorkers = std::max(
        2u, static_cast<unsigned>(std::min<std::size_t>(maxWorkers, 4)));
    if (int rc = shardedSingleJobSection(shardRounds, shardWorkers, json))
        return rc;
    std::printf("\n");

    priorityLatencySection(std::min<std::size_t>(jobs, 24), rounds,
                           std::min<unsigned>(widest, 2), json);
    std::printf("\n");

    metricsOverheadSection(jobs, rounds, shardWorkers, json);

    json.writeTo(jsonPath);
    return 0;
}
