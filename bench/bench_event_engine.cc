/**
 * @file
 * Micro-benchmarks of the PR 7 event-engine hot paths: the
 * hierarchical timing wheel's pop/re-register cycle against the
 * poll-every-component scan it replaced, at 1/4/8/16 registered
 * sources, and the batched readout-noise fill against the per-sample
 * gaussian loop. Prints a fixed-width table and, with `--json <path>`,
 * writes machine-readable metrics per docs/benchmarks.md.
 *
 * `--smoke` runs every case exactly once (no timing claims): the
 * perf_smoke ctest label uses it to catch bit-rot in Debug builds.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "common/rng.hh"
#include "qsim/readout.hh"
#include "qsim/transmon.hh"
#include "timing/wheel.hh"

using namespace quma;

namespace {

bool g_smoke = false;
volatile double benchmarkSink = 0.0;

/** Mean ns/op over enough iterations to fill a small time budget. */
template <class F>
double
timeNs(F &&body, std::size_t iters)
{
    if (g_smoke)
        iters = 1;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        body();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
}

/**
 * Steady-state wheel traffic: `sources` registered sources with
 * staggered periods; each pop re-registers every fired source one
 * period later, exactly the QumaMachine run-loop's access pattern.
 * Reported per dispatched event.
 */
double
wheelDispatchNs(unsigned sources, std::size_t events)
{
    timing::EventWheel w(sources);
    std::vector<Cycle> period(sources);
    for (unsigned s = 0; s < sources; ++s) {
        // Mixed cadences spanning level-0 and level-1 placement.
        period[s] = 4 + 37 * (s % 7) + (s % 3) * 4000;
        w.schedule(s, period[s]);
    }
    std::size_t fired = 0;
    auto t0 = std::chrono::steady_clock::now();
    while (fired < events) {
        auto p = w.popEarliest();
        std::uint64_t m = p->sources;
        Cycle now = p->cycle;
        while (m != 0) {
            auto s = static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            w.schedule(s, now + period[s]);
            ++fired;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    benchmarkSink = static_cast<double>(w.cursor());
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(fired);
}

/**
 * The replaced scheme for reference: a linear scan over every
 * source's next-due cycle per step, O(sources) per dispatch.
 */
double
pollScanNs(unsigned sources, std::size_t events)
{
    std::vector<Cycle> due(sources), period(sources);
    for (unsigned s = 0; s < sources; ++s) {
        period[s] = 4 + 37 * (s % 7) + (s % 3) * 4000;
        due[s] = period[s];
    }
    std::size_t fired = 0;
    auto t0 = std::chrono::steady_clock::now();
    while (fired < events) {
        Cycle best = due[0];
        for (unsigned s = 1; s < sources; ++s)
            best = std::min(best, due[s]);
        for (unsigned s = 0; s < sources; ++s)
            if (due[s] == best) {
                due[s] = best + period[s];
                ++fired;
            }
    }
    auto t1 = std::chrono::steady_clock::now();
    benchmarkSink = static_cast<double>(due[0]);
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(fired);
}

void
benchDispatch(bench::JsonReport &json)
{
    bench::banner("next-event dispatch (wheel vs poll scan)");
    std::size_t events = g_smoke ? 64 : 4'000'000;
    for (unsigned sources : {1u, 4u, 8u, 16u}) {
        double wheel = wheelDispatchNs(sources, events);
        double poll = pollScanNs(sources, events);
        std::printf("dispatch %2u sources: wheel %7.1f ns/event "
                    "(%8.2f Mev/s)   poll %7.1f ns/event\n",
                    sources, wheel, 1e3 / wheel, poll);
        std::string tag = std::to_string(sources) + "_sources";
        json.metric("wheel_dispatch_" + tag, wheel, "ns/event");
        json.metric("wheel_dispatch_rate_" + tag, 1e9 / wheel,
                    "events/s");
        json.metric("poll_dispatch_" + tag, poll, "ns/event");
    }
}

void
benchNoise(bench::JsonReport &json)
{
    bench::banner("readout noise (per-sample vs batched gaussian)");
    constexpr std::size_t kSamples = 300; // one 1500 ns window
    Rng perSample(0x9b1d), batched(0x9b1d);
    std::vector<double> buf(kSamples);
    std::size_t iters = 20000;

    double loop = timeNs(
        [&] {
            double acc = 0.0;
            for (std::size_t k = 0; k < kSamples; ++k)
                acc += perSample.standardNormal();
            benchmarkSink = acc;
        },
        iters);
    double batch = timeNs(
        [&] {
            batched.fillStandardNormal(buf.data(), kSamples);
            benchmarkSink = buf[kSamples - 1];
        },
        iters);
    std::printf("gaussian x%zu: per-sample %8.1f ns  batched %8.1f "
                "ns  (%.2fx)\n",
                kSamples, loop, batch, loop / batch);
    json.metric("gaussian_300_per_sample", loop, "ns/window");
    json.metric("gaussian_300_batched", batch, "ns/window");

    // End-to-end readout window with the batched fill in place.
    auto rp = qsim::paperQubitParams().readout;
    Rng rng(0x9b1d);
    std::vector<double> scratch;
    double readout = timeNs(
        [&] {
            auto t = qsim::simulateReadout(rp, false, 1500, 30000.0,
                                           rng, &scratch);
            benchmarkSink = t.trace.empty() ? 0.0 : t.trace[0];
        },
        g_smoke ? 1 : 4000);
    std::printf("simulate_readout_1500ns: %8.1f ns\n", readout);
    json.metric("simulate_readout_1500ns_batched", readout, "ns/op");
}

} // namespace

int
main(int argc, char **argv)
{
    g_smoke = bench::argFlag(argc, argv, "--smoke");
    std::string jsonPath = bench::argValue(argc, argv, "--json");

    bench::JsonReport json("event_engine");
    if (g_smoke)
        std::printf("(smoke mode: single iteration, timings "
                    "meaningless)\n");

    benchDispatch(json);
    benchNoise(json);
    bench::rule();

    return json.writeTo(jsonPath) ? 0 : 1;
}
