/**
 * @file
 * google-benchmark micro-benchmarks of the hot architectural paths:
 * instruction encode/decode, assembly, timing-queue operations,
 * control-store expansion, density-matrix updates, and a full
 * machine round. These document the simulator's own performance,
 * not the paper's hardware.
 */

#include <benchmark/benchmark.h>

#include "experiments/allxy.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "microcode/controlstore.hh"
#include "qsim/channels.hh"
#include "qsim/density.hh"
#include "timing/controller.hh"

using namespace quma;

namespace {

void
BM_EncodeDecode(benchmark::State &state)
{
    auto inst = isa::Instruction::pulse({{0x1, 2}, {0x2, 5}});
    for (auto _ : state) {
        auto w = isa::encode(inst);
        benchmark::DoNotOptimize(isa::decode(w));
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_AssembleAllxyRound(benchmark::State &state)
{
    isa::Assembler as;
    const std::string src = R"(
        QNopReg r15
        Pulse {q2}, I
        Wait 4
        Pulse {q2}, I
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
    )";
    for (auto _ : state)
        benchmark::DoNotOptimize(as.assemble(src));
}
BENCHMARK(BM_AssembleAllxyRound);

void
BM_TimingQueueCycle(benchmark::State &state)
{
    timing::TimingController tcu;
    tcu.setPulseSink(
        [](unsigned, Cycle, const timing::PulseEvent &) {});
    tcu.start(0);
    Cycle now = 0;
    TimingLabel label = 0;
    for (auto _ : state) {
        ++label;
        tcu.pushTimePoint(4, label);
        tcu.pushPulse(0, {label, 0x1, 1});
        now += 4;
        tcu.advanceTo(now);
    }
}
BENCHMARK(BM_TimingQueueCycle);

void
BM_ControlStoreExpandCnot(benchmark::State &state)
{
    auto cs = microcode::QControlStore::standard();
    for (auto _ : state)
        benchmark::DoNotOptimize(cs.expandCnot(0, 1));
}
BENCHMARK(BM_ControlStoreExpandCnot);

void
BM_DensityIdleChannel(benchmark::State &state)
{
    qsim::DensityMatrix rho(static_cast<unsigned>(state.range(0)));
    rho.apply1(0, qsim::gates::hadamard());
    auto chan = qsim::idleChannel(100.0, 30000.0, 25000.0);
    for (auto _ : state)
        rho.applyKraus1(0, chan);
}
BENCHMARK(BM_DensityIdleChannel)->Arg(1)->Arg(2)->Arg(4);

void
BM_MachineAllxyRound(benchmark::State &state)
{
    using namespace quma::experiments;
    for (auto _ : state) {
        state.PauseTiming();
        AllxyConfig cfg;
        cfg.rounds = 1;
        cfg.stallInjection = false;
        state.ResumeTiming();
        benchmark::DoNotOptimize(runAllxy(cfg));
    }
}
BENCHMARK(BM_MachineAllxyRound)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
