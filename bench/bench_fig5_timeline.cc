/**
 * @file
 * Reproduces paper Figure 5: the operations of the AllXY experiment
 * on the timeline, with timing labels and the intervals between
 * consecutive time points in cycles.
 */

#include <cstdio>

#include "bench/report.hh"
#include "quma/machine.hh"

using namespace quma;

int
main()
{
    bench::banner(
        "Figure 5: AllXY operations on the timeline (2 rounds)");

    core::MachineConfig cfg;
    cfg.traceEnabled = true;
    core::QumaMachine machine(cfg);
    machine.loadAssembly(R"(
        mov r15, 40000
        QNopReg r15
        Pulse {q0}, I
        Wait 4
        Pulse {q0}, I
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        QNopReg r15
        Pulse {q0}, X180
        Wait 4
        Pulse {q0}, X180
        Wait 4
        MPG {q0}, 300
        MD {q0}, r7
        Wait 600
        halt
    )");
    machine.run();

    std::printf("%-10s %-14s %-16s %s\n", "label", "TD (cycles)",
                "time (us)", "events fired");
    bench::rule();
    Cycle prev = 0;
    bool first = true;
    for (const auto &fire : machine.trace().labelFires()) {
        std::string events;
        for (const auto &u : machine.trace().uopFires())
            if (u.td == fire.td)
                events += (events.empty() ? "" : ", ") +
                          std::string("pulse uop ") +
                          std::to_string(u.uop);
        for (const auto &m : machine.trace().mpgFires())
            if (m.td == fire.td)
                events += (events.empty() ? "" : ", ") +
                          std::string("MPG(") +
                          std::to_string(m.durationCycles) + ")+MD";
        if (events.empty())
            events = fire.label == 0 ? "(TD start)" : "(wait only)";
        std::printf("%-10u %-14llu %-16.3f %s", fire.label,
                    static_cast<unsigned long long>(fire.td),
                    static_cast<double>(cyclesToNs(fire.td)) * 1e-3,
                    events.c_str());
        if (!first)
            std::printf("   [interval %llu]",
                        static_cast<unsigned long long>(fire.td - prev));
        std::printf("\n");
        prev = fire.td;
        first = false;
    }
    bench::rule();
    std::printf("matches paper Figure 5: intervals 40000, 4, 4 per "
                "round; measurement\npulse generation and "
                "discrimination share the round's third label.\n");
    return 0;
}
