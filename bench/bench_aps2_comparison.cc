/**
 * @file
 * Reproduces the paper's §6 comparison between QuMA's centralized
 * architecture and the distributed APS2-style system: binaries,
 * aggregate instruction counts, synchronisation stalls, and makespan
 * sensitivity to the trigger-distribution latency.
 */

#include <cstdio>

#include "baseline/aps2_model.hh"
#include "bench/report.hh"

using namespace quma;
using namespace quma::baseline;

namespace {

DistributedWorkload
makeWorkload(unsigned qubits, unsigned segments, unsigned barrierEvery)
{
    DistributedWorkload w;
    w.numQubits = qubits;
    for (unsigned s = 0; s < segments; ++s) {
        DistributedWorkload::Segment seg;
        for (unsigned q = 0; q < qubits; ++q)
            seg.pulseCycles.push_back((s + q) % 3 == 0 ? 0 : 4);
        seg.gapCycles = 4;
        seg.barrier = barrierEvery != 0 && s % barrierEvery == 0;
        w.segments.push_back(seg);
    }
    return w;
}

} // namespace

int
main()
{
    bench::banner("Section 6: QuMA (centralized) vs APS2-style "
                  "(distributed)");

    std::printf("%-8s %-10s %-12s %-12s %-12s %-12s\n", "qubits",
                "arch", "binaries", "instrs", "sync stalls",
                "makespan");
    bench::rule();
    for (unsigned qubits : {2u, 4u, 8u}) {
        auto w = makeWorkload(qubits, 64, 4);
        Aps2System sys(9, 4);
        auto d = sys.run(sys.compileWorkload(w));
        auto c = centralizedCost(w);
        std::printf("%-8u %-10s %-12zu %-12zu %-12llu %-12llu\n",
                    qubits, "APS2", d.binaries, d.totalInstructions,
                    static_cast<unsigned long long>(d.stallCycles),
                    static_cast<unsigned long long>(d.makespanCycles));
        std::printf("%-8u %-10s %-12zu %-12zu %-12s %-12llu\n", qubits,
                    "QuMA", c.binaries, c.totalInstructions, "0",
                    static_cast<unsigned long long>(c.makespanCycles));
    }
    bench::rule();

    bench::banner("makespan vs trigger-distribution latency "
                  "(8 qubits, barrier every 4 segments)");
    std::printf("%-18s %-14s %-14s\n", "trigger latency", "APS2",
                "QuMA");
    bench::rule();
    auto w = makeWorkload(8, 64, 4);
    auto c = centralizedCost(w);
    for (Cycle lat : {0u, 2u, 4u, 8u, 16u, 32u}) {
        Aps2System sys(9, lat);
        auto d = sys.run(sys.compileWorkload(w));
        std::printf("%-18llu %-14llu %-14llu\n",
                    static_cast<unsigned long long>(lat),
                    static_cast<unsigned long long>(d.makespanCycles),
                    static_cast<unsigned long long>(c.makespanCycles));
    }
    bench::rule();
    std::printf("QuMA needs one binary regardless of qubit count, "
                "issues fewer\ninstructions (horizontal Pulse + "
                "explicit Wait vs per-module idle\nwaveforms), and "
                "its makespan is untouched by synchronisation because "
                "\nbarriers are just properties of the timing labels "
                "(paper Section 6).\n");
    return 0;
}
